//! Bound-vs-observation verification.
//!
//! Packages the soundness argument of the test suite as a reusable API:
//! given a system, its response-time analysis and the observations of one
//! or more simulation runs, check that **every** analytical bound
//! dominates **every** observation and report each comparison. Useful as
//! a regression harness for analysis changes and as evidence in a safety
//! case.
//!
//! # Examples
//!
//! ```
//! use time_disparity::model::prelude::*;
//! use time_disparity::sim::prelude::*;
//! use time_disparity::verify::verify_run;
//!
//! let mut b = SystemBuilder::new();
//! let ecu = b.add_ecu("e");
//! let ms = Duration::from_millis;
//! let s1 = b.add_task(TaskSpec::periodic("s1", ms(10)));
//! let s2 = b.add_task(TaskSpec::periodic("s2", ms(30)));
//! let fuse = b.add_task(TaskSpec::periodic("fuse", ms(30)).execution(ms(1), ms(2)).on_ecu(ecu));
//! b.connect(s1, fuse);
//! b.connect(s2, fuse);
//! let graph = b.build()?;
//!
//! let chains = graph.chains_to(fuse, 16)?;
//! let mut sim = Simulator::new(&graph, SimConfig::default());
//! sim.monitor_chains(chains.iter().cloned());
//! let outcome = sim.run()?;
//!
//! let report = verify_run(&graph, &chains, &outcome.metrics)?;
//! assert!(report.all_passed(), "{report}");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use core::fmt;

use disparity_core::backward::backward_bounds;
use disparity_core::disparity::{worst_case_disparity, AnalysisConfig};
use disparity_core::error::AnalysisError;
use disparity_core::pairwise::Method;
use disparity_model::chain::Chain;
use disparity_model::graph::CauseEffectGraph;
use disparity_sched::schedulability::analyze;
use disparity_sim::metrics::ObservedMetrics;

/// What a single check compared.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CheckKind {
    /// Observed response time vs `R(τ)`.
    ResponseTime,
    /// Observed release-to-start delay vs `R(τ) − W(τ)`.
    StartDelay,
    /// Observed backward-time range vs `[B(π), W(π)]`.
    BackwardTime,
    /// Observed maximum disparity vs the Theorem 1/2 bounds.
    Disparity,
}

impl fmt::Display for CheckKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckKind::ResponseTime => write!(f, "response-time"),
            CheckKind::StartDelay => write!(f, "start-delay"),
            CheckKind::BackwardTime => write!(f, "backward-time"),
            CheckKind::Disparity => write!(f, "disparity"),
        }
    }
}

/// One bound-vs-observation comparison.
#[derive(Debug, Clone)]
pub struct CheckOutcome {
    /// What was compared.
    pub kind: CheckKind,
    /// Human-readable subject (task or chain).
    pub subject: String,
    /// Whether the bound dominated the observation.
    pub passed: bool,
    /// `bound >= observed` rendered for humans.
    pub detail: String,
}

/// The full comparison report.
#[derive(Debug, Clone, Default)]
pub struct VerificationReport {
    /// Every individual comparison, in deterministic order.
    pub checks: Vec<CheckOutcome>,
}

impl VerificationReport {
    /// `true` when every check passed.
    #[must_use]
    pub fn all_passed(&self) -> bool {
        self.checks.iter().all(|c| c.passed)
    }

    /// The failed checks, if any.
    #[must_use]
    pub fn failures(&self) -> Vec<&CheckOutcome> {
        self.checks.iter().filter(|c| !c.passed).collect()
    }

    fn push(&mut self, kind: CheckKind, subject: String, passed: bool, detail: String) {
        self.checks.push(CheckOutcome {
            kind,
            subject,
            passed,
            detail,
        });
    }
}

impl fmt::Display for VerificationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "verification: {}/{} checks passed",
            self.checks.iter().filter(|c| c.passed).count(),
            self.checks.len()
        )?;
        for c in &self.checks {
            writeln!(
                f,
                "  [{}] {:<14} {:<28} {}",
                if c.passed { "ok" } else { "FAIL" },
                c.kind,
                c.subject,
                c.detail
            )?;
        }
        Ok(())
    }
}

/// Verifies one run's observations against all analytical bounds:
/// per-task response times and start delays, per-monitored-chain backward
/// times, and the disparity of every monitored chain's tail.
///
/// `chains` must be the chains that were monitored on the simulator, in
/// registration order (their metrics are looked up by index).
///
/// # Errors
///
/// Propagates scheduling and analysis errors (the system must be
/// analyzable; an unschedulable system cannot be verified against bounds
/// that assume `R ≤ T`).
pub fn verify_run(
    graph: &CauseEffectGraph,
    chains: &[Chain],
    metrics: &ObservedMetrics,
) -> Result<VerificationReport, AnalysisError> {
    let sched = analyze(graph)?;
    if !sched.all_schedulable() {
        return Err(AnalysisError::Unschedulable {
            violations: sched.violations(),
        });
    }
    let rt = sched.into_response_times();
    let mut report = VerificationReport::default();

    for task in graph.tasks() {
        let bound = rt.wcrt(task.id());
        let observed = metrics.max_response(task.id());
        report.push(
            CheckKind::ResponseTime,
            task.name().to_string(),
            observed <= bound,
            format!("{bound} >= {observed}"),
        );
        let delay_bound = rt.max_start_delay(task.id());
        let delay_obs = metrics.max_start_delay(task.id());
        report.push(
            CheckKind::StartDelay,
            task.name().to_string(),
            delay_obs <= delay_bound,
            format!("{delay_bound} >= {delay_obs}"),
        );
    }

    for (i, chain) in chains.iter().enumerate() {
        let bounds = backward_bounds(graph, chain, &rt);
        let obs = metrics.chain(i);
        let (passed, detail) = match (obs.min_backward, obs.max_backward) {
            (Some(lo), Some(hi)) => (
                bounds.bcbt <= lo && hi <= bounds.wcbt,
                format!("[{lo}, {hi}] within [{}, {}]", bounds.bcbt, bounds.wcbt),
            ),
            _ => (true, "no samples".to_string()),
        };
        report.push(CheckKind::BackwardTime, chain.to_string(), passed, detail);
    }

    let mut tails: Vec<_> = chains.iter().map(Chain::tail).collect();
    tails.sort_unstable();
    tails.dedup();
    for tail in tails {
        let bound = worst_case_disparity(graph, tail, &rt, AnalysisConfig::default())?.bound;
        let p_bound = worst_case_disparity(
            graph,
            tail,
            &rt,
            AnalysisConfig {
                method: Method::Independent,
                ..Default::default()
            },
        )?
        .bound;
        if let Some(observed) = metrics.max_disparity(tail) {
            report.push(
                CheckKind::Disparity,
                graph.task(tail).name().to_string(),
                observed <= bound && observed <= p_bound,
                format!("S-diff {bound} / P-diff {p_bound} >= {observed}"),
            );
        }
    }

    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use disparity_model::builder::SystemBuilder;
    use disparity_model::task::TaskSpec;
    use disparity_model::time::Duration;
    use disparity_sim::engine::{SimConfig, Simulator};

    fn ms(v: i64) -> Duration {
        Duration::from_millis(v)
    }

    fn system() -> (CauseEffectGraph, Vec<Chain>) {
        let mut b = SystemBuilder::new();
        let e = b.add_ecu("e");
        let s1 = b.add_task(TaskSpec::periodic("s1", ms(10)));
        let s2 = b.add_task(TaskSpec::periodic("s2", ms(30)));
        let fuse = b.add_task(
            TaskSpec::periodic("fuse", ms(30))
                .execution(ms(1), ms(3))
                .on_ecu(e),
        );
        b.connect(s1, fuse);
        b.connect(s2, fuse);
        let g = b.build().unwrap();
        let chains = g.chains_to(fuse, 16).unwrap();
        (g, chains)
    }

    #[test]
    fn clean_run_verifies() {
        let (g, chains) = system();
        let mut sim = Simulator::new(
            &g,
            SimConfig {
                horizon: ms(2000),
                ..Default::default()
            },
        );
        sim.monitor_chains(chains.iter().cloned());
        let out = sim.run().unwrap();
        let report = verify_run(&g, &chains, &out.metrics).unwrap();
        assert!(report.all_passed(), "{report}");
        assert!(report.failures().is_empty());
        // 3 tasks × 2 checks + 2 chains + 1 disparity = 9 checks.
        assert_eq!(report.checks.len(), 9);
        assert!(report.to_string().contains("9/9 checks passed"));
    }

    #[test]
    fn mismatched_observations_fail_verification() {
        // Observations taken on a *slower* twin system (s2 at 120ms) must
        // violate the bounds computed for the fast original (s2 at 30ms):
        // verification catches bound/observation mismatches.
        let (fast, chains) = system();
        let mut b = SystemBuilder::new();
        let e = b.add_ecu("e");
        let s1 = b.add_task(TaskSpec::periodic("s1", ms(10)));
        let s2 = b.add_task(TaskSpec::periodic("s2", ms(120)).offset(ms(113)));
        let fuse = b.add_task(
            TaskSpec::periodic("fuse", ms(30))
                .execution(ms(1), ms(3))
                .on_ecu(e),
        );
        b.connect(s1, fuse);
        b.connect(s2, fuse);
        let slow = b.build().unwrap();

        let mut sim = Simulator::new(
            &slow,
            SimConfig {
                horizon: ms(4000),
                ..Default::default()
            },
        );
        sim.monitor_chains(chains.iter().cloned());
        let out = sim.run().unwrap();
        let report = verify_run(&fast, &chains, &out.metrics).unwrap();
        assert!(!report.all_passed(), "{report}");
        assert!(report
            .failures()
            .iter()
            .any(|c| matches!(c.kind, CheckKind::Disparity | CheckKind::BackwardTime)));
    }

    #[test]
    fn unschedulable_systems_are_rejected() {
        let mut b = SystemBuilder::new();
        let e = b.add_ecu("e");
        b.add_task(TaskSpec::periodic("hi", ms(10)).wcet(ms(6)).on_ecu(e));
        b.add_task(TaskSpec::periodic("lo", ms(30)).wcet(ms(9)).on_ecu(e));
        let g = b.build().unwrap();
        let metrics = ObservedMetrics::new(2, 0);
        assert!(matches!(
            verify_run(&g, &[], &metrics),
            Err(AnalysisError::Unschedulable { .. })
        ));
    }
}
