//! Release-offset tuning: a second disparity-reduction knob.
//!
//! The paper's §IV reduces worst-case disparity with buffer sizes, which
//! shift a chain's sampling window by whole source periods. Offsets are
//! the finer-grained sibling knob: they shift *when* each sensor samples
//! within its period. Offsets do not change the worst-case bounds (the
//! analysis is offset-oblivious, as it must be for sporadic-safe
//! guarantees), but for a concrete deployment they directly shape the
//! *actual* disparity.
//!
//! For **zero-jitter** deployments — every task with `B(τ) = W(τ)` and
//! fixed offsets — the schedule is deterministic and, after a transient,
//! periodic; the simulated maximum over a hyperperiod is then the *exact*
//! disparity of that deployment, and tuning minimizes an exact quantity.
//! With execution-time jitter the tuned value is a (seeded, reproducible)
//! estimate and the analytical bounds remain the only guarantee.

use disparity_model::graph::CauseEffectGraph;
use disparity_model::ids::TaskId;
use disparity_model::time::Duration;
use disparity_sim::engine::{SimConfig, Simulator};
use disparity_sim::error::SimError;
use disparity_sim::exec::ExecutionTimeModel;

/// Parameters for [`tune_offsets`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OffsetTuningConfig {
    /// Offset candidates tried per task (evenly spaced over the period).
    pub candidates_per_task: usize,
    /// Coordinate-descent sweeps over all source tasks.
    pub rounds: usize,
    /// Simulated horizon per evaluation.
    pub horizon: Duration,
    /// Warm-up excluded from each evaluation.
    pub warmup: Duration,
    /// Execution-time model used for evaluation; [`ExecutionTimeModel::WorstCase`]
    /// gives deterministic (hence exactly comparable) evaluations.
    pub exec_model: ExecutionTimeModel,
}

impl Default for OffsetTuningConfig {
    fn default() -> Self {
        OffsetTuningConfig {
            candidates_per_task: 8,
            rounds: 2,
            horizon: Duration::from_secs(5),
            warmup: Duration::from_millis(500),
            exec_model: ExecutionTimeModel::WorstCase,
        }
    }
}

/// Result of [`tune_offsets`].
#[derive(Debug, Clone)]
pub struct TunedOffsets {
    /// The graph with the chosen offsets applied.
    pub graph: CauseEffectGraph,
    /// Observed maximum disparity before tuning.
    pub before: Duration,
    /// Observed maximum disparity with the chosen offsets.
    pub after: Duration,
    /// The tasks whose offsets were adjusted (sources of the graph).
    pub tuned_tasks: Vec<TaskId>,
}

impl TunedOffsets {
    /// Observed improvement (never negative: tuning keeps the incumbent
    /// when no candidate beats it).
    #[must_use]
    pub fn improvement(&self) -> Duration {
        (self.before - self.after).max_zero()
    }
}

fn evaluate(
    graph: &CauseEffectGraph,
    task: TaskId,
    config: &OffsetTuningConfig,
) -> Result<Duration, SimError> {
    let sim = Simulator::new(
        graph,
        SimConfig {
            horizon: config.horizon,
            warmup: config.warmup,
            exec_model: config.exec_model,
            seed: 0,
            ..Default::default()
        },
    );
    Ok(sim
        .run()?
        .metrics
        .max_disparity(task)
        .unwrap_or(Duration::ZERO))
}

/// Coordinate descent over the *source* offsets of `graph`, minimizing the
/// observed maximum disparity of `task`.
///
/// Each round sweeps every source; for each, `candidates_per_task` offsets
/// evenly spaced over the source's period are evaluated by simulation and
/// the best is kept. The search is greedy and deterministic.
///
/// # Errors
///
/// Propagates simulator configuration errors.
///
/// # Examples
///
/// ```
/// use time_disparity::model::prelude::*;
/// use time_disparity::offset_tuning::{tune_offsets, OffsetTuningConfig};
///
/// let mut b = SystemBuilder::new();
/// let ecu = b.add_ecu("e");
/// let ms = Duration::from_millis;
/// let s1 = b.add_task(TaskSpec::periodic("s1", ms(10)));
/// let s2 = b.add_task(TaskSpec::periodic("s2", ms(30)).offset(ms(17)));
/// let fuse = b.add_task(TaskSpec::periodic("fuse", ms(30)).execution(ms(2), ms(2)).on_ecu(ecu));
/// b.connect(s1, fuse);
/// b.connect(s2, fuse);
/// let graph = b.build()?;
///
/// let tuned = tune_offsets(&graph, fuse, &OffsetTuningConfig::default())?;
/// assert!(tuned.after <= tuned.before);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn tune_offsets(
    graph: &CauseEffectGraph,
    task: TaskId,
    config: &OffsetTuningConfig,
) -> Result<TunedOffsets, SimError> {
    let mut current = graph.clone();
    let before = evaluate(&current, task, config)?;
    let mut best = before;
    let sources = current.sources();

    for _ in 0..config.rounds.max(1) {
        for &source in &sources {
            let period = current.task(source).period();
            let incumbent = current.task(source).offset();
            let mut best_offset = incumbent;
            for k in 0..config.candidates_per_task.max(1) {
                let offset = period * (k as i64) / (config.candidates_per_task.max(1) as i64);
                if offset == incumbent {
                    continue;
                }
                let mut candidate = current.clone();
                candidate
                    .set_task_offset(source, offset)
                    .expect("offset in [0, T) is valid");
                let value = evaluate(&candidate, task, config)?;
                if value < best {
                    best = value;
                    best_offset = offset;
                }
            }
            if best_offset != incumbent {
                current
                    .set_task_offset(source, best_offset)
                    .expect("offset in [0, T) is valid");
            }
        }
    }

    Ok(TunedOffsets {
        graph: current,
        before,
        after: best,
        tuned_tasks: sources,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use disparity_model::builder::SystemBuilder;
    use disparity_model::task::TaskSpec;

    fn ms(v: i64) -> Duration {
        Duration::from_millis(v)
    }

    /// Two same-period sensors with a deliberately bad phase: tuning must
    /// recover (close to) zero disparity.
    #[test]
    fn tuning_fixes_a_bad_phase() {
        let mut b = SystemBuilder::new();
        let e = b.add_ecu("e");
        let s1 = b.add_task(TaskSpec::periodic("s1", ms(20)));
        let s2 = b.add_task(TaskSpec::periodic("s2", ms(20)).offset(ms(9)));
        let fuse = b.add_task(
            TaskSpec::periodic("fuse", ms(20))
                .execution(ms(1), ms(1))
                .on_ecu(e),
        );
        b.connect(s1, fuse);
        b.connect(s2, fuse);
        let g = b.build().unwrap();
        let tuned = tune_offsets(&g, fuse, &OffsetTuningConfig::default()).unwrap();
        assert!(tuned.before >= ms(9), "bad phase shows up before tuning");
        assert_eq!(
            tuned.after,
            Duration::ZERO,
            "same periods can be aligned exactly"
        );
        assert_eq!(tuned.improvement(), tuned.before);
        assert_eq!(tuned.tuned_tasks, vec![s1, s2]);
    }

    #[test]
    fn tuning_never_regresses() {
        let mut b = SystemBuilder::new();
        let e = b.add_ecu("e");
        let s1 = b.add_task(TaskSpec::periodic("s1", ms(10)));
        let s2 = b.add_task(TaskSpec::periodic("s2", ms(30)).offset(ms(7)));
        let s3 = b.add_task(TaskSpec::periodic("s3", ms(50)).offset(ms(23)));
        let fuse = b.add_task(
            TaskSpec::periodic("fuse", ms(50))
                .execution(ms(2), ms(2))
                .on_ecu(e),
        );
        b.connect(s1, fuse);
        b.connect(s2, fuse);
        b.connect(s3, fuse);
        let g = b.build().unwrap();
        let tuned = tune_offsets(&g, fuse, &OffsetTuningConfig::default()).unwrap();
        assert!(tuned.after <= tuned.before);
        // The returned graph reproduces the reported value.
        let check = evaluate(&tuned.graph, fuse, &OffsetTuningConfig::default()).unwrap();
        assert_eq!(check, tuned.after);
    }

    #[test]
    fn structure_is_preserved() {
        let mut b = SystemBuilder::new();
        let e = b.add_ecu("e");
        let s = b.add_task(TaskSpec::periodic("s", ms(10)));
        let t = b.add_task(
            TaskSpec::periodic("t", ms(10))
                .execution(ms(1), ms(1))
                .on_ecu(e),
        );
        b.connect(s, t);
        let g = b.build().unwrap();
        let tuned = tune_offsets(&g, t, &OffsetTuningConfig::default()).unwrap();
        assert_eq!(tuned.graph.task_count(), g.task_count());
        assert_eq!(tuned.graph.channel_count(), g.channel_count());
        for (a, b) in g.tasks().iter().zip(tuned.graph.tasks()) {
            assert_eq!(a.period(), b.period());
            assert_eq!(a.wcet(), b.wcet());
        }
    }
}
