//! # time-disparity
//!
//! A reproduction of *"Analysis and Optimization of Worst-Case Time
//! Disparity in Cause-Effect Chains"* (DATE 2023) as a Rust workspace.
//!
//! In automotive cause-effect graphs, a fusion task consumes data that
//! originated at several sensors; the **time disparity** of an output is
//! the maximum difference among the timestamps of the raw sensor data it
//! was computed from. This crate re-exports the workspace members:
//!
//! * [`model`] — the system model: tasks `(W, B, T)`, ECUs/buses, FIFO
//!   channels, cause-effect graphs and chains;
//! * [`sched`] — non-preemptive fixed-priority response-time analysis;
//! * [`core`] — the paper's analysis (backward-time bounds, P-diff/S-diff
//!   disparity bounds) and the buffer-size optimization (Algorithm 1);
//! * [`sim`] — a deterministic discrete-event simulator with provenance
//!   tracking (the paper's "Sim" series);
//! * [`workload`] — WATERS-2015-style synthetic workload generation.
//!
//! # Quickstart
//!
//! ```
//! use time_disparity::model::prelude::*;
//! use time_disparity::core::prelude::*;
//!
//! // camera --> preproc --> fuse <-- lidar
//! let mut b = SystemBuilder::new();
//! let ecu = b.add_ecu("ecu0");
//! let ms = Duration::from_millis;
//! let camera = b.add_task(TaskSpec::periodic("camera", ms(33)));
//! let lidar = b.add_task(TaskSpec::periodic("lidar", ms(100)));
//! let pre = b.add_task(TaskSpec::periodic("pre", ms(33)).execution(ms(2), ms(5)).on_ecu(ecu));
//! let fuse = b.add_task(TaskSpec::periodic("fuse", ms(100)).execution(ms(4), ms(9)).on_ecu(ecu));
//! b.connect(camera, pre);
//! b.connect(pre, fuse);
//! b.connect(lidar, fuse);
//! let graph = b.build()?;
//!
//! // Bound the worst-case time disparity of the fusion task …
//! let report = analyze_task(&graph, fuse, AnalysisConfig::default())?;
//! // … and shrink it by sizing a sensor-output buffer (Algorithm 1).
//! let optimized = optimize_task(&graph, fuse, AnalysisConfig::default(), 4)?;
//! assert!(optimized.final_bound() <= report.bound);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and
//! `crates/experiments` for the reproduction of every figure in the paper.

#![warn(missing_docs)]

pub mod offset_tuning;
pub mod verify;

pub use disparity_core as core;
pub use disparity_model as model;
pub use disparity_sched as sched;
pub use disparity_sim as sim;
pub use disparity_workload as workload;
