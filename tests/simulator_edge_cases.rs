//! Edge-case behavior of the simulator that the analysis relies on.

use time_disparity::core::prelude::*;
use time_disparity::model::prelude::*;
use time_disparity::sched::prelude::*;
use time_disparity::sim::prelude::*;
use time_disparity::workload::prelude::*;

fn ms(v: i64) -> Duration {
    Duration::from_millis(v)
}

/// An overloaded-but-bounded system (a deadline miss without utilization
/// overload): the simulator must keep running, queue backlogged jobs in
/// activation order, and report response times beyond the period.
#[test]
fn deadline_misses_simulate_without_panicking() {
    let mut b = SystemBuilder::new();
    let e = b.add_ecu("e");
    let s = b.add_task(TaskSpec::periodic("s", ms(10)));
    let hi = b.add_task(
        TaskSpec::periodic("hi", ms(10))
            .execution(ms(6), ms(6))
            .on_ecu(e),
    );
    let lo = b.add_task(
        TaskSpec::periodic("lo", ms(30))
            .execution(ms(9), ms(9))
            .on_ecu(e),
    );
    b.connect(s, hi);
    b.connect(s, lo);
    let g = b.build().unwrap();
    let report = analyze(&g).unwrap();
    assert!(!report.all_schedulable(), "fixture must be unschedulable");

    let sim = Simulator::new(
        &g,
        SimConfig {
            horizon: ms(1000),
            record_trace: true,
            ..Default::default()
        },
    );
    let out = sim.run().unwrap();
    // hi misses its deadline (blocked by lo's 9ms job): observed R > T.
    assert!(out.metrics.max_response(hi) > ms(10));
    // Jobs of one task still complete in activation order (Trace::push
    // debug-asserts this; verify finish monotonicity explicitly).
    let trace = out.trace.unwrap();
    let finishes: Vec<_> = trace.jobs_of(hi).iter().map(|j| j.finish).collect();
    assert!(finishes.windows(2).all(|w| w[0] < w[1]));
}

/// A chain of zero-cost tasks releasing at the same instant propagates the
/// token through the whole cascade within that instant (topological
/// release ordering).
#[test]
fn zero_cost_cascade_propagates_instantaneously() {
    let mut b = SystemBuilder::new();
    let e = b.add_ecu("e");
    let s = b.add_task(TaskSpec::periodic("s", ms(10)));
    let f1 = b.add_task(TaskSpec::periodic("f1", ms(10)));
    let f2 = b.add_task(TaskSpec::periodic("f2", ms(10)));
    let t = b.add_task(
        TaskSpec::periodic("t", ms(10))
            .execution(ms(1), ms(1))
            .on_ecu(e),
    );
    b.connect(s, f1);
    b.connect(f1, f2);
    b.connect(f2, t);
    let g = b.build().unwrap();
    let chain = Chain::new(&g, vec![s, f1, f2, t]).unwrap();
    let mut sim = Simulator::new(
        &g,
        SimConfig {
            horizon: ms(100),
            exec_model: ExecutionTimeModel::WorstCase,
            ..Default::default()
        },
    );
    sim.monitor_chain(chain);
    let out = sim.run().unwrap();
    let obs = out.metrics.chain(0);
    // Token written by s at k*10 passes f1, f2 within the same instant and
    // t starts at k*10: backward time is exactly zero.
    assert_eq!(obs.min_backward, Some(Duration::ZERO));
    assert_eq!(obs.max_backward, Some(Duration::ZERO));
    assert_eq!(obs.missing_reads, 0);
}

/// Tokens cross ECUs through explicit bus-message tasks; the backward-time
/// bounds hold hop by hop across the bus.
#[test]
fn bus_hops_respect_bounds() {
    let mut b = SystemBuilder::new();
    let e0 = b.add_ecu("e0");
    let e1 = b.add_ecu("e1");
    let bus = b.add_bus("can");
    let s = b.add_task(TaskSpec::periodic("s", ms(10)));
    let a = b.add_task(
        TaskSpec::periodic("a", ms(10))
            .execution(ms(1), ms(3))
            .on_ecu(e0),
    );
    let m = b.add_task(
        TaskSpec::periodic("m", ms(10))
            .execution(ms(1), ms(1))
            .on_ecu(bus),
    );
    let t = b.add_task(
        TaskSpec::periodic("t", ms(20))
            .execution(ms(2), ms(5))
            .on_ecu(e1),
    );
    b.connect(s, a);
    b.connect(a, m);
    b.connect(m, t);
    let g = b.build().unwrap();
    let chain = Chain::new(&g, vec![s, a, m, t]).unwrap();
    let rt = analyze(&g).unwrap().into_response_times();
    let bounds = backward_bounds(&g, &chain, &rt);

    let mut sim = Simulator::new(
        &g,
        SimConfig {
            horizon: Duration::from_secs(5),
            seed: 13,
            ..Default::default()
        },
    );
    sim.monitor_chain(chain);
    let out = sim.run().unwrap();
    let obs = out.metrics.chain(0);
    let (lo, hi) = (obs.min_backward.unwrap(), obs.max_backward.unwrap());
    assert!(
        bounds.bcbt <= lo && hi <= bounds.wcbt,
        "[{lo}, {hi}] ⊄ [{}, {}]",
        bounds.bcbt,
        bounds.wcbt
    );
}

/// Funnel workloads: bounds hold and S-diff is strictly tighter than
/// P-diff at the task level (the structured-topology regime).
#[test]
fn funnel_systems_show_forkjoin_advantage() {
    let mut rng = disparity_rng::rngs::StdRng::seed_from_u64(21);
    let mut s_strictly_tighter = 0;
    // Deep funnels (long shared suffixes) are where truncation pays off.
    let cfg = FunnelConfig::with_approximate_size(15);
    for _ in 0..4 {
        let g = schedulable_funnel_system(&cfg, &mut rng, 100).expect("generated");
        let sink = g.sinks()[0];
        let rt = analyze(&g).unwrap().into_response_times();
        let p = worst_case_disparity(
            &g,
            sink,
            &rt,
            AnalysisConfig {
                method: Method::Independent,
                ..Default::default()
            },
        )
        .unwrap()
        .bound;
        let s = worst_case_disparity(&g, sink, &rt, AnalysisConfig::default())
            .unwrap()
            .bound;
        if s < p {
            s_strictly_tighter += 1;
        }
        let sim = Simulator::new(
            &g,
            SimConfig {
                horizon: Duration::from_secs(2),
                seed: 3,
                ..Default::default()
            },
        );
        if let Some(observed) = sim.run().unwrap().metrics.max_disparity(sink) {
            assert!(observed <= s, "S-diff violated: {observed} > {s}");
            assert!(observed <= p, "P-diff violated: {observed} > {p}");
        }
    }
    assert!(
        s_strictly_tighter >= 3,
        "fork-join analysis should win on most funnels, won {s_strictly_tighter}/4"
    );
}

/// The very first jobs may read empty channels; the engine counts them as
/// missing reads instead of fabricating data.
#[test]
fn cold_start_counts_missing_reads() {
    let mut b = SystemBuilder::new();
    let e = b.add_ecu("e");
    // Sink fires at t=0 with offset 0 while its producer (offset 5ms)
    // has produced nothing yet.
    let s = b.add_task(TaskSpec::periodic("s", ms(10)).offset(ms(5)));
    let t = b.add_task(
        TaskSpec::periodic("t", ms(10))
            .execution(ms(1), ms(1))
            .on_ecu(e),
    );
    b.connect(s, t);
    let g = b.build().unwrap();
    let chain = Chain::new(&g, vec![s, t]).unwrap();
    let mut sim = Simulator::new(
        &g,
        SimConfig {
            horizon: ms(100),
            ..Default::default()
        },
    );
    sim.monitor_chain(chain);
    let out = sim.run().unwrap();
    let obs = out.metrics.chain(0);
    assert!(obs.missing_reads >= 1, "the t=0 job reads an empty channel");
    assert!(obs.samples >= 1, "later jobs do observe the chain");
}
