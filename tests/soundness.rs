//! The central correctness claim of the reproduction: on randomized
//! workloads, every analytical bound dominates every simulated
//! observation.
//!
//! For each seeded random system this exercises the whole stack —
//! workload generation → response-time analysis → backward-time bounds →
//! disparity bounds → simulation — and checks:
//!
//! * observed response times ≤ `R(τ)` and start delays ≤ `R(τ) − W(τ)`;
//! * observed backward times of every chain within `[B(π), W(π)]`;
//! * the scheduler-agnostic baseline WCBT dominates Lemma 4's;
//! * observed sink disparity ≤ P-diff, S-diff and Combined bounds.

use disparity_rng::rngs::StdRng;
use disparity_rng::Rng as _;
use time_disparity::core::prelude::*;
use time_disparity::model::prelude::*;
use time_disparity::sched::prelude::*;
use time_disparity::sim::prelude::*;
use time_disparity::workload::prelude::*;

/// One full soundness audit of a random system.
fn audit_system(seed: u64, n_tasks: usize, target_utilization: Option<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let graph = schedulable_random_system(
        GraphGenConfig {
            n_tasks,
            target_utilization,
            max_sources: Some(3),
            ..Default::default()
        },
        &mut rng,
        200,
    )
    .expect("generator finds a schedulable system");
    let report = analyze(&graph).expect("schedulable by construction");
    assert!(report.all_schedulable());
    let rt = report.into_response_times();

    let sink = graph.sinks()[0];
    let chains = match graph.chains_to(sink, 512) {
        Ok(c) => c,
        Err(_) => return, // path explosion: nothing to check on this draw
    };

    let mut bounds = Vec::new();
    for chain in &chains {
        let b = backward_bounds(&graph, chain, &rt);
        assert!(b.bcbt <= b.wcbt, "bounds ordered for {chain}");
        assert!(
            baseline_wcbt(&graph, chain, &rt) >= b.wcbt,
            "Dürr-style baseline must dominate Lemma 4 on {chain}"
        );
        bounds.push(b);
    }

    let methods = [Method::Independent, Method::ForkJoin, Method::Combined];
    let disparity_bounds: Vec<Duration> = methods
        .iter()
        .map(|&method| {
            worst_case_disparity(
                &graph,
                sink,
                &rt,
                AnalysisConfig {
                    method,
                    chain_limit: 512,
                },
            )
            .expect("analysis succeeds")
            .bound
        })
        .collect();

    // Three offset assignments, three seeds each.
    for _ in 0..3 {
        let instance = randomize_offsets(&graph, &mut rng);
        let mut sim = Simulator::new(
            &instance,
            SimConfig {
                horizon: Duration::from_secs(2),
                exec_model: ExecutionTimeModel::Uniform,
                seed: rng.gen(),
                ..Default::default()
            },
        );
        sim.monitor_chains(chains.iter().cloned());
        let outcome = sim.run().expect("valid simulation");

        for task in graph.tasks() {
            assert!(
                outcome.metrics.max_response(task.id()) <= rt.wcrt(task.id()),
                "response time of {} exceeded R (seed {seed})",
                task.name()
            );
            assert!(
                outcome.metrics.max_start_delay(task.id()) <= rt.max_start_delay(task.id()),
                "start delay of {} exceeded R − W (seed {seed})",
                task.name()
            );
        }
        for (i, chain) in chains.iter().enumerate() {
            let obs = outcome.metrics.chain(i);
            if let (Some(lo), Some(hi)) = (obs.min_backward, obs.max_backward) {
                assert!(
                    bounds[i].bcbt <= lo,
                    "BCBT {} > observed {lo} on {chain} (seed {seed})",
                    bounds[i].bcbt
                );
                assert!(
                    hi <= bounds[i].wcbt,
                    "observed {hi} > WCBT {} on {chain} (seed {seed})",
                    bounds[i].wcbt
                );
            }
        }
        if let Some(observed) = outcome.metrics.max_disparity(sink) {
            for (&method, &bound) in methods.iter().zip(&disparity_bounds) {
                assert!(
                    observed <= bound,
                    "observed disparity {observed} exceeds {method:?} bound {bound} (seed {seed})"
                );
            }
        }
    }
}

#[test]
fn bounds_dominate_observations_on_light_workloads() {
    for seed in 0..6 {
        audit_system(seed, 10, None);
    }
}

#[test]
fn bounds_dominate_observations_on_loaded_workloads() {
    for seed in 100..106 {
        audit_system(seed, 12, Some(0.45));
    }
}

#[test]
fn bounds_dominate_observations_on_larger_graphs() {
    for seed in 200..203 {
        audit_system(seed, 20, Some(0.3));
    }
}

#[test]
fn bounds_dominate_observations_on_two_chain_systems() {
    for seed in 300..306 {
        let mut rng = StdRng::seed_from_u64(seed);
        let len = rng.gen_range(3..10);
        let sys = schedulable_two_chain_system(len, 4, &mut rng, 100)
            .expect("generator finds a schedulable system");
        let rt = analyze(&sys.graph)
            .expect("schedulable")
            .into_response_times();
        let s_diff = theorem2_bound(&sys.graph, &sys.lambda, &sys.nu, &rt)
            .expect("pairwise analysis succeeds");
        let p_diff = theorem1_bound(&sys.graph, &sys.lambda, &sys.nu, &rt)
            .expect("pairwise analysis succeeds");
        for _ in 0..2 {
            let instance = randomize_offsets(&sys.graph, &mut rng);
            let sim = Simulator::new(
                &instance,
                SimConfig {
                    horizon: Duration::from_secs(3),
                    seed: rng.gen(),
                    ..Default::default()
                },
            );
            let outcome = sim.run().expect("valid simulation");
            if let Some(observed) = outcome.metrics.max_disparity(sys.sink()) {
                assert!(observed <= s_diff, "S-diff violated (seed {seed})");
                assert!(observed <= p_diff, "P-diff violated (seed {seed})");
            }
        }
    }
}
