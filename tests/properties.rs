//! Property-based tests over the core data structures and invariants.

use proptest::prelude::*;
use time_disparity::core::prelude::*;
use time_disparity::model::prelude::*;
use time_disparity::model::time::{div_ceil, div_floor};
use time_disparity::sched::prelude::*;

proptest! {
    /// Exact signed floor/ceiling division agrees with the f64 reference
    /// (away from precision limits) and brackets the rational quotient.
    #[test]
    fn floor_ceil_division_properties(a in -1_000_000_000i64..1_000_000_000, b in 1i64..1_000_000) {
        let f = div_floor(a, b);
        let c = div_ceil(a, b);
        prop_assert!(f * b <= a, "floor too high");
        prop_assert!((f + 1) * b > a, "floor too low");
        prop_assert!(c * b >= a, "ceil too low");
        prop_assert!((c - 1) * b < a, "ceil too high");
        prop_assert!(c - f <= 1);
        prop_assert_eq!(c == f, a % b == 0);
        prop_assert_eq!(div_floor(-a, b), -div_ceil(a, b));
    }

    /// Duration arithmetic is a commutative group under addition.
    #[test]
    fn duration_group_laws(a in -1_000_000i64..1_000_000, b in -1_000_000i64..1_000_000) {
        let da = Duration::from_nanos(a);
        let db = Duration::from_nanos(b);
        prop_assert_eq!(da + db, db + da);
        prop_assert_eq!((da + db) - db, da);
        prop_assert_eq!(da + Duration::ZERO, da);
        prop_assert_eq!(da + (-da), Duration::ZERO);
    }

    /// Instant/Duration affine laws.
    #[test]
    fn instant_affine_laws(t in -1_000_000i64..1_000_000, d in -1_000_000i64..1_000_000) {
        let at = Instant::from_nanos(t);
        let dd = Duration::from_nanos(d);
        prop_assert_eq!((at + dd) - at, dd);
        prop_assert_eq!((at + dd) - dd, at);
        prop_assert_eq!(at.elapsed_since(at + dd), -dd);
    }

    /// Sampling-window algebra: shifting preserves width; separation is
    /// symmetric and at least the midpoint distance.
    #[test]
    fn window_algebra(
        a1 in -1_000_000i64..1_000_000,
        w1 in 0i64..1_000_000,
        a2 in -1_000_000i64..1_000_000,
        w2 in 0i64..1_000_000,
        shift in -1_000_000i64..1_000_000,
    ) {
        let x = SamplingWindow::new(Duration::from_nanos(a1), Duration::from_nanos(a1 + w1));
        let y = SamplingWindow::new(Duration::from_nanos(a2), Duration::from_nanos(a2 + w2));
        let s = Duration::from_nanos(shift);
        prop_assert_eq!(x.shifted(s).width(), x.width());
        prop_assert_eq!(x.max_separation(y), y.max_separation(x));
        let mid_gap = (x.midpoint() - y.midpoint()).abs();
        prop_assert!(x.max_separation(y) >= mid_gap);
        // Shifting both windows together preserves separation.
        prop_assert_eq!(x.shifted(s).max_separation(y.shifted(s)), x.max_separation(y));
    }
}

/// Strategy: a random small pipeline-with-forks graph plus its parameters.
fn arbitrary_line_graph() -> impl Strategy<Value = (CauseEffectGraph, TaskId)> {
    // (#stages, period selector seeds, wcet per stage in 100µs units)
    (
        2usize..7,
        proptest::collection::vec((0usize..4, 1i64..20, 1i64..10), 2..7),
    )
        .prop_map(|(_, stages)| {
            let periods = [10i64, 20, 50, 100];
            let mut b = SystemBuilder::new();
            let e = b.add_ecu("e");
            let src = b.add_task(TaskSpec::periodic("src", Duration::from_millis(10)));
            let mut prev = src;
            let mut last = src;
            for (i, &(p, wc, bc)) in stages.iter().enumerate() {
                let period = Duration::from_millis(periods[p]);
                let wcet = Duration::from_micros(wc * 100);
                let bcet = Duration::from_micros((bc * 100).min(wc * 100));
                let t = b.add_task(
                    TaskSpec::periodic(format!("s{i}"), period)
                        .execution(bcet, wcet)
                        .on_ecu(e),
                );
                b.connect(prev, t);
                prev = t;
                last = t;
            }
            (b.build().expect("valid line graph"), last)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// On arbitrary pipelines: WCBT ≥ BCBT, the baseline dominates
    /// Lemma 4, and chain enumeration finds exactly one chain per task of
    /// a line.
    #[test]
    fn backward_bounds_invariants((graph, tail) in arbitrary_line_graph()) {
        let report = analyze(&graph).expect("analysis runs");
        prop_assume!(report.all_schedulable());
        let rt = report.into_response_times();
        let chains = graph.chains_to(tail, 64).expect("line graph has one chain");
        prop_assert_eq!(chains.len(), 1);
        let chain = &chains[0];
        let b = backward_bounds(&graph, chain, &rt);
        prop_assert!(b.bcbt <= b.wcbt);
        prop_assert!(baseline_wcbt(&graph, chain, &rt) >= b.wcbt);
        // Each hop contributes at most T + R (the scheduler-agnostic hop).
        let loose: Duration = chain
            .edges()
            .map(|(a, _)| graph.task(a).period() + rt.wcrt(a))
            .sum();
        prop_assert!(b.wcbt <= loose);
    }

    /// Chain splitting reassembles: `split_at` at any cut set covers the
    /// chain with overlapping endpoints.
    #[test]
    fn chain_split_reassembles((graph, tail) in arbitrary_line_graph()) {
        let chain = &graph.chains_to(tail, 8).expect("one chain")[0];
        prop_assume!(chain.len() >= 3);
        let cuts: Vec<TaskId> =
            vec![chain.get(chain.len() / 2).expect("mid"), chain.tail()];
        let parts = chain.split_at(&cuts);
        prop_assert_eq!(parts.len(), 2);
        prop_assert_eq!(parts[0].head(), chain.head());
        prop_assert_eq!(parts[0].tail(), parts[1].head());
        prop_assert_eq!(parts[1].tail(), chain.tail());
        let total: usize = parts.iter().map(Chain::len).sum();
        prop_assert_eq!(total, chain.len() + 1); // cut task counted twice
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The backward-time bounds hold on arbitrary pipelines under
    /// arbitrary seeds — a randomized end-to-end soundness property
    /// spanning workload, scheduling analysis, core bounds and simulator.
    #[test]
    fn simulated_backward_times_within_bounds(
        (graph, tail) in arbitrary_line_graph(),
        seed in 0u64..1_000,
    ) {
        use time_disparity::sim::prelude::*;
        let report = analyze(&graph).expect("analysis runs");
        prop_assume!(report.all_schedulable());
        let rt = report.into_response_times();
        let chain = graph.chains_to(tail, 8).expect("line graph")[0].clone();
        let bounds = backward_bounds(&graph, &chain, &rt);
        let mut sim = Simulator::new(
            &graph,
            SimConfig {
                horizon: Duration::from_millis(800),
                seed,
                ..Default::default()
            },
        );
        sim.monitor_chain(chain);
        let out = sim.run().expect("valid simulation");
        let obs = out.metrics.chain(0);
        if let (Some(lo), Some(hi)) = (obs.min_backward, obs.max_backward) {
            prop_assert!(bounds.bcbt <= lo, "BCBT {} > {lo}", bounds.bcbt);
            prop_assert!(hi <= bounds.wcbt, "{hi} > WCBT {}", bounds.wcbt);
        }
    }

    /// Response times are monotone in WCET: growing one task's WCET never
    /// shrinks anybody's response time.
    #[test]
    fn wcrt_monotone_in_wcet(
        w1 in 1i64..5, w2 in 1i64..5, w3 in 1i64..5, grow in 1i64..5,
    ) {
        let build = |w1: i64, w2: i64, w3: i64| {
            let ms = Duration::from_millis;
            let mut b = SystemBuilder::new();
            let e = b.add_ecu("e");
            b.add_task(TaskSpec::periodic("a", ms(20)).wcet(ms(w1)).on_ecu(e));
            b.add_task(TaskSpec::periodic("b", ms(50)).wcet(ms(w2)).on_ecu(e));
            b.add_task(TaskSpec::periodic("c", ms(100)).wcet(ms(w3)).on_ecu(e));
            b.build().expect("valid")
        };
        let base = response_times(&build(w1, w2, w3)).expect("light load");
        let grown = response_times(&build(w1 + grow, w2, w3)).expect("light load");
        for i in 0..3 {
            let id = TaskId::from_index(i);
            prop_assert!(grown.wcrt(id) >= base.wcrt(id));
        }
    }
}
