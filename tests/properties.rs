//! Randomized property tests over the core data structures and invariants.
//!
//! These used to run under `proptest`; to keep the workspace building with
//! no external dependencies they are now seeded exhaustive/randomized
//! loops driven by the in-tree [`disparity_rng`] PRNG. Failures print the
//! offending inputs, so a reported case can be replayed by pinning the
//! loop to that draw.

use disparity_rng::{Rng, StdRng};
use time_disparity::core::prelude::*;
use time_disparity::model::prelude::*;
use time_disparity::model::time::{div_ceil, div_floor};
use time_disparity::sched::prelude::*;

const CASES: u64 = 256;

#[test]
fn floor_ceil_division_properties() {
    let mut rng = StdRng::seed_from_u64(0xD1F0);
    for _ in 0..CASES {
        let a = rng.gen_range(-1_000_000_000i64..1_000_000_000);
        let b = rng.gen_range(1i64..1_000_000);
        let f = div_floor(a, b);
        let c = div_ceil(a, b);
        assert!(f * b <= a, "floor too high: {a}/{b}");
        assert!((f + 1) * b > a, "floor too low: {a}/{b}");
        assert!(c * b >= a, "ceil too low: {a}/{b}");
        assert!((c - 1) * b < a, "ceil too high: {a}/{b}");
        assert!(c - f <= 1, "{a}/{b}");
        assert_eq!(c == f, a % b == 0, "{a}/{b}");
        assert_eq!(div_floor(-a, b), -div_ceil(a, b), "{a}/{b}");
    }
}

#[test]
fn duration_group_laws() {
    let mut rng = StdRng::seed_from_u64(0xD1F1);
    for _ in 0..CASES {
        let a = rng.gen_range(-1_000_000i64..1_000_000);
        let b = rng.gen_range(-1_000_000i64..1_000_000);
        let da = Duration::from_nanos(a);
        let db = Duration::from_nanos(b);
        assert_eq!(da + db, db + da);
        assert_eq!((da + db) - db, da);
        assert_eq!(da + Duration::ZERO, da);
        assert_eq!(da + (-da), Duration::ZERO);
    }
}

#[test]
fn instant_affine_laws() {
    let mut rng = StdRng::seed_from_u64(0xD1F2);
    for _ in 0..CASES {
        let t = rng.gen_range(-1_000_000i64..1_000_000);
        let d = rng.gen_range(-1_000_000i64..1_000_000);
        let at = Instant::from_nanos(t);
        let dd = Duration::from_nanos(d);
        assert_eq!((at + dd) - at, dd);
        assert_eq!((at + dd) - dd, at);
        assert_eq!(at.elapsed_since(at + dd), -dd);
    }
}

#[test]
fn window_algebra() {
    let mut rng = StdRng::seed_from_u64(0xD1F3);
    for _ in 0..CASES {
        let a1 = rng.gen_range(-1_000_000i64..1_000_000);
        let w1 = rng.gen_range(0i64..1_000_000);
        let a2 = rng.gen_range(-1_000_000i64..1_000_000);
        let w2 = rng.gen_range(0i64..1_000_000);
        let shift = rng.gen_range(-1_000_000i64..1_000_000);
        let x = SamplingWindow::new(Duration::from_nanos(a1), Duration::from_nanos(a1 + w1));
        let y = SamplingWindow::new(Duration::from_nanos(a2), Duration::from_nanos(a2 + w2));
        let s = Duration::from_nanos(shift);
        assert_eq!(x.shifted(s).width(), x.width());
        assert_eq!(x.max_separation(y), y.max_separation(x));
        let mid_gap = (x.midpoint() - y.midpoint()).abs();
        assert!(x.max_separation(y) >= mid_gap);
        // Shifting both windows together preserves separation.
        assert_eq!(x.shifted(s).max_separation(y.shifted(s)), x.max_separation(y));
    }
}

/// A random small pipeline graph plus the id of its last stage.
fn random_line_graph(rng: &mut StdRng) -> (CauseEffectGraph, TaskId) {
    let periods = [10i64, 20, 50, 100];
    let n_stages = rng.gen_range(2usize..7);
    let mut b = SystemBuilder::new();
    let e = b.add_ecu("e");
    let src = b.add_task(TaskSpec::periodic("src", Duration::from_millis(10)));
    let mut prev = src;
    let mut last = src;
    for i in 0..n_stages {
        let period = Duration::from_millis(periods[rng.gen_range(0usize..4)]);
        let wc = rng.gen_range(1i64..20);
        let bc = rng.gen_range(1i64..10);
        let wcet = Duration::from_micros(wc * 100);
        let bcet = Duration::from_micros((bc * 100).min(wc * 100));
        let t = b.add_task(
            TaskSpec::periodic(format!("s{i}"), period)
                .execution(bcet, wcet)
                .on_ecu(e),
        );
        b.connect(prev, t);
        prev = t;
        last = t;
    }
    (b.build().expect("valid line graph"), last)
}

#[test]
fn backward_bounds_invariants() {
    let mut rng = StdRng::seed_from_u64(0xD1F4);
    for case in 0..64 {
        let (graph, tail) = random_line_graph(&mut rng);
        let report = analyze(&graph).expect("analysis runs");
        if !report.all_schedulable() {
            continue;
        }
        let rt = report.into_response_times();
        let chains = graph.chains_to(tail, 64).expect("line graph has one chain");
        assert_eq!(chains.len(), 1, "case {case}");
        let chain = &chains[0];
        let b = backward_bounds(&graph, chain, &rt);
        assert!(b.bcbt <= b.wcbt, "case {case}");
        assert!(baseline_wcbt(&graph, chain, &rt) >= b.wcbt, "case {case}");
        // Each hop contributes at most T + R (the scheduler-agnostic hop).
        let loose: Duration = chain
            .edges()
            .map(|(a, _)| graph.task(a).period() + rt.wcrt(a))
            .sum();
        assert!(b.wcbt <= loose, "case {case}");
    }
}

#[test]
fn chain_split_reassembles() {
    let mut rng = StdRng::seed_from_u64(0xD1F5);
    for case in 0..64 {
        let (graph, tail) = random_line_graph(&mut rng);
        let chain = &graph.chains_to(tail, 8).expect("one chain")[0];
        if chain.len() < 3 {
            continue;
        }
        let cuts: Vec<TaskId> = vec![chain.get(chain.len() / 2).expect("mid"), chain.tail()];
        let parts = chain.split_at(&cuts);
        assert_eq!(parts.len(), 2, "case {case}");
        assert_eq!(parts[0].head(), chain.head(), "case {case}");
        assert_eq!(parts[0].tail(), parts[1].head(), "case {case}");
        assert_eq!(parts[1].tail(), chain.tail(), "case {case}");
        let total: usize = parts.iter().map(Chain::len).sum();
        assert_eq!(total, chain.len() + 1, "case {case}"); // cut task counted twice
    }
}

/// The backward-time bounds hold on arbitrary pipelines under arbitrary
/// seeds — a randomized end-to-end soundness property spanning workload,
/// scheduling analysis, core bounds and simulator.
#[test]
fn simulated_backward_times_within_bounds() {
    use time_disparity::sim::prelude::*;
    let mut rng = StdRng::seed_from_u64(0xD1F6);
    for case in 0..16 {
        let (graph, tail) = random_line_graph(&mut rng);
        let seed = rng.gen_range(0u64..1_000);
        let report = analyze(&graph).expect("analysis runs");
        if !report.all_schedulable() {
            continue;
        }
        let rt = report.into_response_times();
        let chain = graph.chains_to(tail, 8).expect("line graph")[0].clone();
        let bounds = backward_bounds(&graph, &chain, &rt);
        let mut sim = Simulator::new(
            &graph,
            SimConfig {
                horizon: Duration::from_millis(800),
                seed,
                ..Default::default()
            },
        );
        sim.monitor_chain(chain);
        let out = sim.run().expect("valid simulation");
        let obs = out.metrics.chain(0);
        if let (Some(lo), Some(hi)) = (obs.min_backward, obs.max_backward) {
            assert!(bounds.bcbt <= lo, "case {case}: BCBT {} > {lo}", bounds.bcbt);
            assert!(hi <= bounds.wcbt, "case {case}: {hi} > WCBT {}", bounds.wcbt);
        }
    }
}

/// Response times are monotone in WCET: growing one task's WCET never
/// shrinks anybody's response time.
#[test]
fn wcrt_monotone_in_wcet() {
    let build = |w1: i64, w2: i64, w3: i64| {
        let ms = Duration::from_millis;
        let mut b = SystemBuilder::new();
        let e = b.add_ecu("e");
        b.add_task(TaskSpec::periodic("a", ms(20)).wcet(ms(w1)).on_ecu(e));
        b.add_task(TaskSpec::periodic("b", ms(50)).wcet(ms(w2)).on_ecu(e));
        b.add_task(TaskSpec::periodic("c", ms(100)).wcet(ms(w3)).on_ecu(e));
        b.build().expect("valid")
    };
    // Small enough to sweep exhaustively instead of sampling.
    for w1 in 1i64..5 {
        for w2 in 1i64..5 {
            for w3 in 1i64..5 {
                for grow in 1i64..5 {
                    let base = response_times(&build(w1, w2, w3)).expect("light load");
                    let grown = response_times(&build(w1 + grow, w2, w3)).expect("light load");
                    for i in 0..3 {
                        let id = TaskId::from_index(i);
                        assert!(
                            grown.wcrt(id) >= base.wcrt(id),
                            "w=({w1},{w2},{w3}) grow={grow} task {i}"
                        );
                    }
                }
            }
        }
    }
}
