//! End-to-end validation of the §IV buffer optimization: Algorithm 1,
//! Lemma 6 and Theorem 3 against the simulator.

use disparity_rng::rngs::StdRng;
use disparity_rng::Rng as _;
use time_disparity::core::prelude::*;
use time_disparity::model::prelude::*;
use time_disparity::sched::prelude::*;
use time_disparity::sim::prelude::*;
use time_disparity::workload::prelude::*;

/// Lemma 6: a FIFO of capacity `n` on the source channel shifts both
/// backward-time bounds by `(n−1)·T(source)` — and the simulator's
/// steady-state observations respect the shifted bounds.
#[test]
fn lemma6_shift_is_respected_by_simulation() {
    for seed in 0..4 {
        let mut rng = StdRng::seed_from_u64(seed);
        let sys = schedulable_two_chain_system(4, 2, &mut rng, 100).expect("generated");
        let rt = analyze(&sys.graph)
            .expect("schedulable")
            .into_response_times();
        let base = backward_bounds(&sys.graph, &sys.lambda, &rt);

        for capacity in [2usize, 3, 5] {
            let mut buffered = sys.graph.clone();
            let head = sys.lambda.head();
            let second = sys.lambda.get(1).expect("chain length ≥ 2");
            let ch = buffered
                .channel_between(head, second)
                .expect("edge exists")
                .id();
            buffered
                .set_channel_capacity(ch, capacity)
                .expect("valid capacity");

            let shifted = backward_bounds(&buffered, &sys.lambda, &rt);
            let shift = sys.graph.task(head).period() * (capacity as i64 - 1);
            assert_eq!(shifted.wcbt, base.wcbt + shift);
            assert_eq!(shifted.bcbt, base.bcbt + shift);

            // Warm up long enough for the FIFO to fill.
            let warmup =
                sys.graph.task(head).period() * (capacity as i64) * 2 + Duration::from_millis(400);
            let mut sim = Simulator::new(
                &buffered,
                SimConfig {
                    horizon: warmup * 4,
                    warmup,
                    seed: rng.gen(),
                    ..Default::default()
                },
            );
            sim.monitor_chain(sys.lambda.clone());
            let outcome = sim.run().expect("valid simulation");
            let obs = outcome.metrics.chain(0);
            if let (Some(lo), Some(hi)) = (obs.min_backward, obs.max_backward) {
                assert!(
                    shifted.bcbt <= lo && hi <= shifted.wcbt,
                    "capacity {capacity}: observed [{lo}, {hi}] outside [{}, {}] (seed {seed})",
                    shifted.bcbt,
                    shifted.wcbt
                );
            }
        }
    }
}

/// Theorem 3: the designed buffer lowers the pairwise bound by exactly the
/// window shift `L`, and the buffered simulation stays within it.
#[test]
fn theorem3_bound_is_safe_in_simulation() {
    let mut checked = 0;
    for seed in 10..20 {
        let mut rng = StdRng::seed_from_u64(seed);
        let sys = schedulable_two_chain_system(5, 4, &mut rng, 100).expect("generated");
        let rt = analyze(&sys.graph)
            .expect("schedulable")
            .into_response_times();
        let plan = design_buffer(&sys.graph, &sys.lambda, &sys.nu, &rt).expect("plan");
        if plan.shift.is_zero() {
            continue; // windows already aligned; nothing to validate
        }
        checked += 1;
        assert_eq!(plan.bound_after, plan.bound_before - plan.shift);
        assert!(plan.capacity > 1);

        let mut buffered = sys.graph.clone();
        plan.apply(&mut buffered).expect("apply succeeds");
        let warmup = plan.shift * 3 + Duration::from_millis(500);
        for _ in 0..2 {
            let instance = randomize_offsets(&buffered, &mut rng);
            let sim = Simulator::new(
                &instance,
                SimConfig {
                    horizon: warmup * 3,
                    warmup,
                    seed: rng.gen(),
                    ..Default::default()
                },
            );
            let outcome = sim.run().expect("valid simulation");
            if let Some(observed) = outcome.metrics.max_disparity(sys.sink()) {
                assert!(
                    observed <= plan.bound_after,
                    "Theorem 3 bound {} violated by {observed} (seed {seed})",
                    plan.bound_after
                );
            }
        }
    }
    assert!(
        checked >= 3,
        "need a meaningful number of non-trivial plans, got {checked}"
    );
}

/// The greedy multi-pair optimizer never loosens the bound and its steps
/// are strictly improving.
#[test]
fn greedy_optimizer_monotonicity() {
    for seed in 30..36 {
        let mut rng = StdRng::seed_from_u64(seed);
        let graph = schedulable_random_system(
            GraphGenConfig {
                n_tasks: 10,
                max_sources: Some(3),
                target_utilization: Some(0.35),
                ..Default::default()
            },
            &mut rng,
            200,
        )
        .expect("generated");
        let sink = graph.sinks()[0];
        let Ok(outcome) = optimize_task(&graph, sink, AnalysisConfig::default(), 6) else {
            continue; // chain-limit explosion on rare draws
        };
        assert!(outcome.final_bound() <= outcome.initial_bound);
        let mut previous = outcome.initial_bound;
        for step in &outcome.steps {
            assert!(
                step.bound_after_step < previous,
                "greedy step must strictly improve"
            );
            previous = step.bound_after_step;
        }
        assert_eq!(
            outcome.improvement(),
            (outcome.initial_bound - outcome.final_bound()).max_zero()
        );
    }
}

/// Applying a plan only changes the planned channel's capacity — nothing
/// else about the graph.
#[test]
fn plans_touch_only_their_channel() {
    let mut rng = StdRng::seed_from_u64(99);
    let sys = schedulable_two_chain_system(6, 4, &mut rng, 100).expect("generated");
    let rt = analyze(&sys.graph)
        .expect("schedulable")
        .into_response_times();
    let plan = design_buffer(&sys.graph, &sys.lambda, &sys.nu, &rt).expect("plan");
    let mut buffered = sys.graph.clone();
    plan.apply(&mut buffered).expect("apply succeeds");
    for (before, after) in sys.graph.channels().iter().zip(buffered.channels()) {
        if before.id() == plan.channel {
            assert_eq!(after.capacity(), plan.capacity);
        } else {
            assert_eq!(before.capacity(), after.capacity());
        }
    }
    for (before, after) in sys.graph.tasks().iter().zip(buffered.tasks()) {
        assert_eq!(before, after);
    }
}
