//! Validates the end-to-end latency bounds (data age, reaction time)
//! against trace-based observations on randomized pipelines.

use disparity_rng::rngs::StdRng;
use disparity_rng::Rng as _;
use time_disparity::core::prelude::*;
use time_disparity::model::prelude::*;
use time_disparity::sched::prelude::*;
use time_disparity::sim::prelude::*;
use time_disparity::workload::prelude::*;

#[test]
fn latency_bounds_dominate_trace_observations() {
    for seed in 0..6 {
        let mut rng = StdRng::seed_from_u64(seed);
        let sys = schedulable_two_chain_system_scaled(4, 2, Some(0.4), &mut rng, 200)
            .expect("generator finds a schedulable system");
        let rt = analyze(&sys.graph)
            .expect("schedulable")
            .into_response_times();
        for _ in 0..2 {
            let instance = randomize_offsets(&sys.graph, &mut rng);
            let sim = Simulator::new(
                &instance,
                SimConfig {
                    horizon: Duration::from_secs(3),
                    record_trace: true,
                    seed: rng.gen(),
                    ..Default::default()
                },
            );
            let trace = sim
                .run()
                .expect("valid simulation")
                .trace
                .expect("recorded");
            for chain in [&sys.lambda, &sys.nu] {
                let age_bound = data_age_bound(&sys.graph, chain, &rt);
                let reaction_bound = reaction_time_bound(&sys.graph, chain, &rt);
                if let Some(age) = max_data_age(&trace, &sys.graph, chain) {
                    assert!(
                        age <= age_bound,
                        "data age {age} exceeds bound {age_bound} on {chain} (seed {seed})"
                    );
                }
                if let Some(reaction) = max_reaction_time(&trace, &sys.graph, chain) {
                    assert!(
                        reaction <= reaction_bound,
                        "reaction {reaction} exceeds bound {reaction_bound} on {chain} \
                         (seed {seed})"
                    );
                }
            }
        }
    }
}

#[test]
fn data_age_exceeds_backward_time_pointwise() {
    let mut rng = StdRng::seed_from_u64(7);
    let sys = schedulable_two_chain_system(5, 2, &mut rng, 200).expect("generated");
    let sim = Simulator::new(
        &sys.graph,
        SimConfig {
            horizon: Duration::from_secs(2),
            record_trace: true,
            ..Default::default()
        },
    );
    let trace = sim
        .run()
        .expect("valid simulation")
        .trace
        .expect("recorded");
    let chain = &sys.lambda;
    let mut compared = 0;
    for k in 0..trace.jobs_of(chain.tail()).len() as u64 {
        let (Some(age), Some(len)) = (
            data_age_from_trace(&trace, &sys.graph, chain, k),
            backward_time_from_trace(&trace, &sys.graph, chain, k),
        ) else {
            continue;
        };
        assert!(age >= len, "age {age} < backward time {len} at job {k}");
        compared += 1;
    }
    assert!(
        compared > 0,
        "the trace must contain complete backward chains"
    );
}
