//! End-to-end validation of the Logical Execution Time extension: the
//! LET simulator against the LET analytical bounds, and the determinism /
//! latency trade-off against implicit communication.

use disparity_rng::rngs::StdRng;
use disparity_rng::Rng as _;
use time_disparity::core::letmodel::{let_backward_bounds, let_worst_case_disparity};
use time_disparity::core::prelude::*;
use time_disparity::model::prelude::*;
use time_disparity::sim::prelude::*;
use time_disparity::workload::prelude::*;

fn let_config(horizon_ms: i64, seed: u64) -> SimConfig {
    SimConfig {
        horizon: Duration::from_millis(horizon_ms),
        semantics: CommunicationSemantics::LogicalExecutionTime,
        seed,
        warmup: Duration::from_millis(500),
        ..Default::default()
    }
}

#[test]
fn let_observations_stay_within_let_bounds() {
    for seed in 0..6 {
        let mut rng = StdRng::seed_from_u64(seed);
        let sys = schedulable_two_chain_system(4, 2, &mut rng, 200).expect("generated");
        let lam_bounds = let_backward_bounds(&sys.graph, &sys.lambda);
        let nu_bounds = let_backward_bounds(&sys.graph, &sys.nu);
        let disparity_bound =
            let_worst_case_disparity(&sys.graph, sys.sink(), Method::ForkJoin, 64)
                .expect("analyzable");

        for _ in 0..2 {
            let instance = randomize_offsets(&sys.graph, &mut rng);
            let mut sim = Simulator::new(&instance, let_config(4000, rng.gen()));
            sim.monitor_chain(sys.lambda.clone());
            sim.monitor_chain(sys.nu.clone());
            let out = sim.run().expect("valid simulation");
            for (i, bounds) in [lam_bounds, nu_bounds].iter().enumerate() {
                let obs = out.metrics.chain(i);
                if let (Some(lo), Some(hi)) = (obs.min_backward, obs.max_backward) {
                    assert!(
                        bounds.bcbt <= lo && hi <= bounds.wcbt,
                        "LET chain {i}: [{lo}, {hi}] outside [{}, {}] (seed {seed})",
                        bounds.bcbt,
                        bounds.wcbt
                    );
                }
            }
            if let Some(observed) = out.metrics.max_disparity(sys.sink()) {
                assert!(
                    observed <= disparity_bound,
                    "LET disparity {observed} exceeds bound {disparity_bound} (seed {seed})"
                );
            }
        }
    }
}

/// LET dataflow is execution-time independent: two runs with different
/// execution-time models observe identical disparity and backward times.
#[test]
fn let_dataflow_ignores_execution_times() {
    let mut rng = StdRng::seed_from_u64(42);
    let sys = schedulable_two_chain_system(5, 2, &mut rng, 200).expect("generated");
    let run = |model: ExecutionTimeModel| {
        let mut cfg = let_config(3000, 9);
        cfg.exec_model = model;
        let mut sim = Simulator::new(&sys.graph, cfg);
        sim.monitor_chain(sys.lambda.clone());
        let out = sim.run().expect("valid simulation");
        (out.metrics.max_disparity(sys.sink()), out.metrics.chain(0))
    };
    let worst = run(ExecutionTimeModel::WorstCase);
    let best = run(ExecutionTimeModel::BestCase);
    let uniform = run(ExecutionTimeModel::Uniform);
    assert_eq!(worst, best);
    assert_eq!(worst, uniform);
}

/// The determinism/latency trade-off: LET backward times are never smaller
/// than one period per hop, while implicit communication can be much
/// fresher — but LET's observed range is far narrower.
#[test]
fn let_trades_latency_for_determinism() {
    let mut b = SystemBuilder::new();
    let e = b.add_ecu("e");
    let ms = Duration::from_millis;
    let s = b.add_task(TaskSpec::periodic("s", ms(10)));
    let a = b.add_task(
        TaskSpec::periodic("a", ms(10))
            .execution(ms(1), ms(4))
            .on_ecu(e),
    );
    let t = b.add_task(
        TaskSpec::periodic("t", ms(10))
            .execution(ms(1), ms(4))
            .on_ecu(e),
    );
    b.connect(s, a);
    b.connect(a, t);
    let g = b.build().unwrap();
    let chain = Chain::new(&g, vec![s, a, t]).unwrap();

    let run = |semantics: CommunicationSemantics| {
        let mut sim = Simulator::new(
            &g,
            SimConfig {
                horizon: Duration::from_secs(5),
                semantics,
                warmup: ms(200),
                seed: 3,
                ..Default::default()
            },
        );
        sim.monitor_chain(chain.clone());
        sim.run().expect("valid simulation").metrics.chain(0)
    };
    let implicit = run(CommunicationSemantics::Implicit);
    let let_obs = run(CommunicationSemantics::LogicalExecutionTime);

    // LET pays at least one period per hop …
    assert!(let_obs.min_backward.unwrap() >= ms(20));
    // … while implicit can sample fresher data.
    assert!(implicit.min_backward.unwrap() < let_obs.min_backward.unwrap());
    // LET's observed range fits the deterministic [ΣT, Σ2T) window.
    assert!(let_obs.max_backward.unwrap() < ms(40));
}

/// Under LET, the paper's Fig. 4 frequency intuition actually works the
/// way designers expect for the *latency floor*: the per-hop cost is the
/// period, so raising a frequency lowers the LET backward bounds.
#[test]
fn let_bounds_scale_with_periods() {
    let build = |t3: i64| {
        let ms = Duration::from_millis;
        let mut b = SystemBuilder::new();
        let e = b.add_ecu("e");
        let s = b.add_task(TaskSpec::periodic("s", ms(10)));
        let m = b.add_task(
            TaskSpec::periodic("m", ms(t3))
                .execution(ms(1), ms(2))
                .on_ecu(e),
        );
        let t = b.add_task(
            TaskSpec::periodic("t", ms(30))
                .execution(ms(1), ms(2))
                .on_ecu(e),
        );
        b.connect(s, m);
        b.connect(m, t);
        let g = b.build().unwrap();
        let c = Chain::new(&g, vec![s, m, t]).unwrap();
        let_backward_bounds(&g, &c)
    };
    let slow = build(30);
    let fast = build(10);
    assert!(fast.wcbt < slow.wcbt);
    assert!(fast.bcbt < slow.bcbt);
}
