//! The paper's Fig. 2/3 running example with hand-derived expectations.
//!
//! Parameters (ours — the paper's figure labels are not fully legible in
//! text form, so we fix a representative set and derive every expected
//! number by hand):
//!
//! | task | W | B | T  | ECU  |
//! |------|---|---|----|------|
//! | τ1   | 0 | 0 | 10 | —    |
//! | τ2   | 0 | 0 | 20 | —    |
//! | τ3   | 2 | 1 | 10 | ecu1 |
//! | τ4   | 4 | 2 | 20 | ecu1 |
//! | τ5   | 5 | 2 | 30 | ecu2 |
//! | τ6   | 6 | 3 | 30 | ecu2 |
//!
//! Rate-monotonic: τ3 ≻ τ4 on ecu1; τ5 ≻ τ6 on ecu2 (tie broken by id).
//! Response times: R(τ3) = 4+2 = 6, R(τ4) = 2+4 = 6, R(τ5) = 6+5 = 11,
//! R(τ6) = 5+6 = 11.

use time_disparity::core::prelude::*;
use time_disparity::model::prelude::*;
use time_disparity::sched::prelude::*;

fn ms(v: i64) -> Duration {
    Duration::from_millis(v)
}

fn fig2() -> (CauseEffectGraph, [TaskId; 6]) {
    let mut b = SystemBuilder::new();
    let e1 = b.add_ecu("ecu1");
    let e2 = b.add_ecu("ecu2");
    let t1 = b.add_task(TaskSpec::periodic("tau1", ms(10)));
    let t2 = b.add_task(TaskSpec::periodic("tau2", ms(20)));
    let t3 = b.add_task(
        TaskSpec::periodic("tau3", ms(10))
            .execution(ms(1), ms(2))
            .on_ecu(e1),
    );
    let t4 = b.add_task(
        TaskSpec::periodic("tau4", ms(20))
            .execution(ms(2), ms(4))
            .on_ecu(e1),
    );
    let t5 = b.add_task(
        TaskSpec::periodic("tau5", ms(30))
            .execution(ms(2), ms(5))
            .on_ecu(e2),
    );
    let t6 = b.add_task(
        TaskSpec::periodic("tau6", ms(30))
            .execution(ms(3), ms(6))
            .on_ecu(e2),
    );
    b.connect(t1, t3);
    b.connect(t2, t3);
    b.connect(t3, t4);
    b.connect(t3, t5);
    b.connect(t4, t6);
    b.connect(t5, t6);
    (b.build().unwrap(), [t1, t2, t3, t4, t5, t6])
}

#[test]
fn response_times_match_hand_computation() {
    let (g, [t1, t2, t3, t4, t5, t6]) = fig2();
    let rt = response_times(&g).unwrap();
    assert_eq!(rt.wcrt(t1), ms(0));
    assert_eq!(rt.wcrt(t2), ms(0));
    assert_eq!(rt.wcrt(t3), ms(6)); // blocked once by τ4
    assert_eq!(rt.wcrt(t4), ms(6)); // one τ3 job then own WCET
    assert_eq!(rt.wcrt(t5), ms(11)); // blocked once by τ6
    assert_eq!(rt.wcrt(t6), ms(11)); // one τ5 job then own WCET
}

#[test]
fn backward_bounds_match_hand_computation() {
    let (g, [t1, t2, t3, t4, t5, t6]) = fig2();
    let rt = response_times(&g).unwrap();
    // λ = τ1→τ3→τ4→τ6:
    //   θ(τ1→τ3) = T+R = 10 (τ1 off-CPU), θ(τ3→τ4) = T(τ3) = 10 (hp),
    //   θ(τ4→τ6) = T+R = 20+6 = 26 (cross-ECU). W = 46.
    //   B = (0+1+2+3) − R(τ6) = 6 − 11 = −5.
    let lam = Chain::new(&g, vec![t1, t3, t4, t6]).unwrap();
    let b = backward_bounds(&g, &lam, &rt);
    assert_eq!(b.wcbt, ms(46));
    assert_eq!(b.bcbt, ms(-5));
    // ν = τ2→τ3→τ5→τ6:
    //   θ(τ2→τ3) = 20, θ(τ3→τ5) = 10+R(τ3) = 16 (cross-ECU),
    //   θ(τ5→τ6) = T(τ5) = 30 (hp). W = 66. B = −5.
    let nu = Chain::new(&g, vec![t2, t3, t5, t6]).unwrap();
    let b = backward_bounds(&g, &nu, &rt);
    assert_eq!(b.wcbt, ms(66));
    assert_eq!(b.bcbt, ms(-5));
}

#[test]
fn pairwise_bounds_match_hand_computation() {
    let (g, [t1, t2, t3, t4, t5, t6]) = fig2();
    let rt = response_times(&g).unwrap();
    let lam = Chain::new(&g, vec![t1, t3, t4, t6]).unwrap();
    let nu = Chain::new(&g, vec![t2, t3, t5, t6]).unwrap();
    // P-diff: O = max(|46−(−5)|, |66−(−5)|) = 71.
    assert_eq!(theorem1_bound(&g, &lam, &nu, &rt).unwrap(), ms(71));
    // S-diff: commons {τ3, τ6}; α2 = τ3→τ4→τ6 (W=36, B=−5),
    // β2 = τ3→τ5→τ6 (W=46, B=−5); x1 = ⌈(−5−46)/10⌉ = −5,
    // y1 = ⌊(36+5)/10⌋ = 4; α1 = τ1→τ3 (W=10, B=−5), β1 = τ2→τ3 (W=20,
    // B=−5); O = max(|20+5+50|, |−5−10−40|) = 75.
    assert_eq!(theorem2_bound(&g, &lam, &nu, &rt).unwrap(), ms(75));
    // Combined takes the min.
    assert_eq!(
        pairwise_bound(&g, &lam, &nu, &rt, Method::Combined).unwrap(),
        ms(71)
    );
}

#[test]
fn decomposition_matches_paper_splitting() {
    let (g, [t1, t2, t3, t4, t5, t6]) = fig2();
    let rt = response_times(&g).unwrap();
    let lam = Chain::new(&g, vec![t1, t3, t4, t6]).unwrap();
    let nu = Chain::new(&g, vec![t2, t3, t5, t6]).unwrap();
    let d = decompose(&g, &lam, &nu, &rt).unwrap();
    // §III: "we can divide them into sub-chains {τ1,τ3}, {τ3,τ4,τ6} and
    // {τ2,τ3}, {τ3,τ5,τ6}".
    assert_eq!(d.commons, vec![t3, t6]);
    assert_eq!(d.alphas[0].tasks(), &[t1, t3]);
    assert_eq!(d.alphas[1].tasks(), &[t3, t4, t6]);
    assert_eq!(d.betas[0].tasks(), &[t2, t3]);
    assert_eq!(d.betas[1].tasks(), &[t3, t5, t6]);
    assert_eq!((d.x[1], d.y[1]), (0, 0));
    assert_eq!((d.x[0], d.y[0]), (-5, 4));
}

#[test]
fn sink_disparity_enumeration() {
    let (g, [.., t6]) = fig2();
    let report = analyze_task(&g, t6, AnalysisConfig::default()).unwrap();
    assert_eq!(report.chains.len(), 4);
    assert_eq!(report.pairs.len(), 6);
    // The same-source chain pairs stay period-aligned: their bounds are
    // multiples of the shared source's period.
    for pair in &report.pairs {
        let lam = &report.chains[pair.lambda];
        let nu = &report.chains[pair.nu];
        if lam.head() == nu.head() {
            let t = g.task(lam.head()).period();
            assert!(pair.bound % t == Duration::ZERO);
        }
    }
}
