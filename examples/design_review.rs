//! A full design review of a fusion system using every tool in the box:
//! rate-mismatch lints, WCET slack, disparity bounds, offset tuning, and
//! bound-vs-observation verification.
//!
//! Run with: `cargo run --example design_review`

use time_disparity::core::prelude::*;
use time_disparity::model::lints::lint_graph;
use time_disparity::model::metrics::profile;
use time_disparity::model::prelude::*;
use time_disparity::offset_tuning::{tune_offsets, OffsetTuningConfig};
use time_disparity::sched::prelude::*;
use time_disparity::sim::prelude::*;
use time_disparity::verify::verify_run;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ms = Duration::from_millis;

    // A deliberately imperfect design: mismatched rates, a badly phased
    // sensor, one ECU close to its blocking limit.
    let mut b = SystemBuilder::new();
    let ecu = b.add_ecu("ecu0");
    let camera = b.add_task(TaskSpec::periodic("camera", ms(10)));
    let radar = b.add_task(TaskSpec::periodic("radar", ms(30)).offset(ms(13)));
    let filter = b.add_task(
        TaskSpec::periodic("filter", ms(10))
            .execution(ms(1), ms(2))
            .on_ecu(ecu),
    );
    let fuse = b.add_task(
        TaskSpec::periodic("fuse", ms(30))
            .execution(ms(2), ms(5))
            .on_ecu(ecu),
    );
    b.connect(camera, filter);
    b.connect(filter, fuse);
    b.connect(radar, fuse);
    let graph = b.build()?;

    // --- 1. structure ------------------------------------------------------
    let p = profile(&graph);
    println!("== structure ==");
    println!(
        "{} tasks, {} channels, {} sources, depth {}, {} chains into the sink\n",
        p.tasks, p.channels, p.sources, p.depth, p.max_chain_count
    );

    // --- 2. rate-mismatch lints --------------------------------------------
    println!("== design lints ==");
    let lints = lint_graph(&graph);
    if lints.is_empty() {
        println!("(none)");
    }
    for lint in &lints {
        println!("warning: {lint}");
    }

    // --- 3. schedulability and slack -----------------------------------------
    println!("\n== schedulability & WCET slack ==");
    let report = analyze(&graph)?;
    assert!(report.all_schedulable());
    for task in graph.tasks() {
        if task.is_zero_cost() {
            continue;
        }
        let slack = wcet_slack(&graph, task.id())?;
        println!(
            "{:<8} R = {:<6} slack = {}",
            task.name(),
            report.response_times().wcrt(task.id()).to_string(),
            slack.slack
        );
    }

    // --- 4. disparity bounds -------------------------------------------------
    println!("\n== worst-case time disparity at `fuse` ==");
    let analysis = analyze_task(&graph, fuse, AnalysisConfig::default())?;
    println!("S-diff bound: {}", analysis.bound);

    // --- 5. offset tuning ----------------------------------------------------
    println!("\n== offset tuning (deployment-level, bounds unchanged) ==");
    let tuned = tune_offsets(&graph, fuse, &OffsetTuningConfig::default())?;
    println!("observed disparity: {} -> {}", tuned.before, tuned.after);
    for &s in &tuned.tuned_tasks {
        println!(
            "  {} offset {} -> {}",
            graph.task(s).name(),
            graph.task(s).offset(),
            tuned.graph.task(s).offset()
        );
    }

    // --- 6. verification ------------------------------------------------------
    println!("\n== verification of the tuned deployment ==");
    let chains = tuned.graph.chains_to(fuse, 64)?;
    let mut sim = Simulator::new(
        &tuned.graph,
        SimConfig {
            horizon: Duration::from_secs(10),
            ..Default::default()
        },
    );
    sim.monitor_chains(chains.iter().cloned());
    let outcome = sim.run()?;
    let verification = verify_run(&tuned.graph, &chains, &outcome.metrics)?;
    print!("{verification}");
    assert!(verification.all_passed());
    Ok(())
}
