//! Quickstart: the paper's Fig. 2 running example, end to end.
//!
//! Builds the six-task fork-join graph, enumerates the chains reaching the
//! sink, bounds their backward times (Lemmas 4/5), bounds the sink's
//! worst-case time disparity (Theorems 1/2), and cross-checks everything
//! against the discrete-event simulator.
//!
//! Run with: `cargo run --example quickstart`

use time_disparity::core::prelude::*;
use time_disparity::model::prelude::*;
use time_disparity::sched::prelude::*;
use time_disparity::sim::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ms = Duration::from_millis;

    // --- The Fig. 2 cause-effect graph -----------------------------------
    let mut b = SystemBuilder::new();
    let ecu1 = b.add_ecu("ecu1");
    let ecu2 = b.add_ecu("ecu2");
    let t1 = b.add_task(TaskSpec::periodic("tau1", ms(10)));
    let t2 = b.add_task(TaskSpec::periodic("tau2", ms(20)));
    let t3 = b.add_task(
        TaskSpec::periodic("tau3", ms(10))
            .execution(ms(1), ms(2))
            .on_ecu(ecu1),
    );
    let t4 = b.add_task(
        TaskSpec::periodic("tau4", ms(20))
            .execution(ms(2), ms(4))
            .on_ecu(ecu1),
    );
    let t5 = b.add_task(
        TaskSpec::periodic("tau5", ms(30))
            .execution(ms(2), ms(5))
            .on_ecu(ecu2),
    );
    let t6 = b.add_task(
        TaskSpec::periodic("tau6", ms(30))
            .execution(ms(3), ms(6))
            .on_ecu(ecu2),
    );
    b.connect(t1, t3);
    b.connect(t2, t3);
    b.connect(t3, t4);
    b.connect(t3, t5);
    b.connect(t4, t6);
    b.connect(t5, t6);
    let graph = b.build()?;

    // --- Schedulability (the paper's standing assumption) ----------------
    let report = analyze(&graph)?;
    println!("schedulable: {}", report.all_schedulable());
    for v in report.verdicts() {
        println!(
            "  {:<6} R = {:<6} T = {}",
            graph.task(v.task).name(),
            v.wcrt.to_string(),
            v.period
        );
    }
    let rt = report.into_response_times();

    // --- Backward-time bounds per chain (Lemmas 4 and 5) -----------------
    println!("\nchains into tau6:");
    for chain in graph.chains_to(t6, 64)? {
        let bounds = backward_bounds(&graph, &chain, &rt);
        let names: Vec<&str> = chain
            .tasks()
            .iter()
            .map(|&t| graph.task(t).name())
            .collect();
        println!(
            "  {:<30} WCBT = {:<6} BCBT = {}",
            names.join(" -> "),
            bounds.wcbt.to_string(),
            bounds.bcbt
        );
    }

    // --- Worst-case time disparity of the sink (Theorems 1 and 2) --------
    let p_diff = worst_case_disparity(
        &graph,
        t6,
        &rt,
        AnalysisConfig {
            method: Method::Independent,
            ..Default::default()
        },
    )?;
    let s_diff = worst_case_disparity(&graph, t6, &rt, AnalysisConfig::default())?;
    println!("\nP-diff(tau6) = {}", p_diff.bound);
    println!("S-diff(tau6) = {}", s_diff.bound);

    // --- Simulate and verify the bounds are safe -------------------------
    let mut sim = Simulator::new(
        &graph,
        SimConfig {
            horizon: Duration::from_secs(30),
            seed: 42,
            ..Default::default()
        },
    );
    for chain in graph.chains_to(t6, 64)? {
        sim.monitor_chain(chain);
    }
    let outcome = sim.run()?;
    let observed = outcome.metrics.max_disparity(t6).unwrap_or(Duration::ZERO);
    println!("\nsimulated max disparity(tau6) = {observed}");
    assert!(
        observed <= p_diff.bound,
        "P-diff must dominate the observation"
    );
    assert!(
        observed <= s_diff.bound,
        "S-diff must dominate the observation"
    );

    for (i, chain) in graph.chains_to(t6, 64)?.iter().enumerate() {
        let obs = outcome.metrics.chain(i);
        let bounds = backward_bounds(&graph, chain, &rt);
        if let (Some(lo), Some(hi)) = (obs.min_backward, obs.max_backward) {
            assert!(
                bounds.bcbt <= lo && hi <= bounds.wcbt,
                "backward bounds hold"
            );
            println!(
                "  chain {i}: observed backward time in [{lo}, {hi}] ⊆ [{}, {}]",
                bounds.bcbt, bounds.wcbt
            );
        }
    }
    println!("\nall observations within the analytical bounds ✓");
    Ok(())
}
