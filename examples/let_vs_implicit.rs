//! Implicit vs. Logical Execution Time communication on the same system.
//!
//! LET is the standard industry answer to timing nondeterminism: read at
//! release, publish exactly one period later. This example quantifies the
//! trade-off on a two-sensor fusion pipeline:
//!
//! * under LET the time disparity (and every backward time) is confined
//!   to a scheduling-independent window — no response-time analysis
//!   needed, no dependence on execution-time luck;
//! * the price is latency: every hop costs at least a full period.
//!
//! Run with: `cargo run --example let_vs_implicit`

use time_disparity::core::letmodel::{let_backward_bounds, let_worst_case_disparity};
use time_disparity::core::prelude::*;
use time_disparity::model::prelude::*;
use time_disparity::sched::prelude::*;
use time_disparity::sim::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ms = Duration::from_millis;

    let mut b = SystemBuilder::new();
    let ecu = b.add_ecu("ecu0");
    let camera = b.add_task(TaskSpec::periodic("camera", ms(20)));
    let radar = b.add_task(TaskSpec::periodic("radar", ms(50)));
    let vision = b.add_task(
        TaskSpec::periodic("vision", ms(20))
            .execution(ms(2), ms(7))
            .on_ecu(ecu),
    );
    let tracker = b.add_task(
        TaskSpec::periodic("tracker", ms(50))
            .execution(ms(3), ms(10))
            .on_ecu(ecu),
    );
    let fuse = b.add_task(
        TaskSpec::periodic("fuse", ms(50))
            .execution(ms(2), ms(6))
            .on_ecu(ecu),
    );
    b.connect(camera, vision);
    b.connect(radar, tracker);
    b.connect(vision, fuse);
    b.connect(tracker, fuse);
    let graph = b.build()?;
    let rt = analyze(&graph)?.into_response_times();

    let cam_chain = Chain::new(&graph, vec![camera, vision, fuse])?;
    let radar_chain = Chain::new(&graph, vec![radar, tracker, fuse])?;

    println!("== analytical bounds ==\n");
    println!("{:<28} {:>22} {:>22}", "", "implicit [B, W]", "LET [B, W]");
    for chain in [&cam_chain, &radar_chain] {
        let imp = backward_bounds(&graph, chain, &rt);
        let lt = let_backward_bounds(&graph, chain);
        let names: Vec<&str> = chain
            .tasks()
            .iter()
            .map(|&t| graph.task(t).name())
            .collect();
        println!(
            "{:<28} [{:>7}, {:>7}] [{:>7}, {:>7}]",
            names.join("->"),
            imp.bcbt.to_string(),
            imp.wcbt.to_string(),
            lt.bcbt.to_string(),
            lt.wcbt.to_string()
        );
    }
    let imp_disparity = analyze_task(&graph, fuse, AnalysisConfig::default())?.bound;
    let let_disparity = let_worst_case_disparity(&graph, fuse, Method::Combined, 64)?;
    println!("\nworst-case disparity: implicit {imp_disparity}, LET {let_disparity}");

    println!("\n== simulated (5s, uniform execution times) ==\n");
    let run = |semantics: CommunicationSemantics| -> Result<_, SimError> {
        let mut sim = Simulator::new(
            &graph,
            SimConfig {
                horizon: Duration::from_secs(5),
                warmup: ms(300),
                semantics,
                seed: 11,
                ..Default::default()
            },
        );
        sim.monitor_chain(cam_chain.clone());
        sim.monitor_chain(radar_chain.clone());
        sim.run()
    };
    for (label, semantics) in [
        ("implicit", CommunicationSemantics::Implicit),
        ("LET", CommunicationSemantics::LogicalExecutionTime),
    ] {
        let out = run(semantics)?;
        let cam = out.metrics.chain(0);
        let disparity = out.metrics.max_disparity(fuse).unwrap_or(Duration::ZERO);
        println!(
            "{label:<9} camera backward in [{}, {}], max disparity {disparity}",
            cam.min_backward.unwrap_or(Duration::ZERO),
            cam.max_backward.unwrap_or(Duration::ZERO),
        );
    }

    println!("\nLET narrows the observable window (determinism) at the cost of");
    println!("one extra period of staleness per hop (latency).");
    Ok(())
}
