//! The paper's Fig. 4 "frequency trap" and its repair (§IV).
//!
//! Intuition says: to reduce the time disparity at a fusion task, sample
//! the fast sensor more often. The paper shows this is ineffective — the
//! worst case is governed by the worst-case backward time of one chain
//! against the best-case of the other, which the sampling frequency barely
//! moves. What works is *delaying* the fresher chain with a FIFO whose
//! size Algorithm 1 derives from the sampling-window midpoints.
//!
//! Run with: `cargo run --example buffer_tuning`

use time_disparity::core::prelude::*;
use time_disparity::model::prelude::*;
use time_disparity::sched::prelude::*;
use time_disparity::sim::prelude::*;

/// Builds the Fig. 4 topology with a configurable period for the middle
/// task of the camera chain.
fn build(t3_period: Duration) -> Result<(CauseEffectGraph, [TaskId; 5]), ModelError> {
    let ms = Duration::from_millis;
    let mut b = SystemBuilder::new();
    let ecu = b.add_ecu("ecu1");
    let cam = b.add_task(TaskSpec::periodic("camera", ms(10)));
    let radar = b.add_task(TaskSpec::periodic("radar", ms(30)));
    let prep = b.add_task(
        TaskSpec::periodic("prep", t3_period)
            .execution(ms(1), ms(2))
            .on_ecu(ecu),
    );
    let track = b.add_task(
        TaskSpec::periodic("track", ms(30))
            .execution(ms(2), ms(4))
            .on_ecu(ecu),
    );
    let fuse = b.add_task(
        TaskSpec::periodic("fuse", ms(30))
            .execution(ms(2), ms(3))
            .on_ecu(ecu),
    );
    b.connect(cam, prep);
    b.connect(radar, track);
    b.connect(prep, fuse);
    b.connect(track, fuse);
    Ok((b.build()?, [cam, radar, prep, track, fuse]))
}

fn observed_disparity(graph: &CauseEffectGraph, fuse: TaskId, warmup: Duration) -> Duration {
    use time_disparity::workload::offsets::randomize_offsets;
    let mut rng = disparity_rng::rngs::StdRng::seed_from_u64(3);
    let mut worst = Duration::ZERO;
    for seed in 0..8 {
        let instance = randomize_offsets(graph, &mut rng);
        let sim = Simulator::new(
            &instance,
            SimConfig {
                horizon: Duration::from_secs(20),
                seed,
                warmup,
                ..Default::default()
            },
        );
        let outcome = sim.run().expect("valid simulation config");
        if let Some(d) = outcome.metrics.max_disparity(fuse) {
            worst = worst.max(d);
        }
    }
    worst
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ms = Duration::from_millis;

    println!("== step 1: try raising the sampling frequency ==\n");
    let mut results = Vec::new();
    for period in [ms(30), ms(10)] {
        let (graph, [cam, radar, prep, track, fuse]) = build(period)?;
        let rt = analyze(&graph)?.into_response_times();
        let lam = Chain::new(&graph, vec![cam, prep, fuse])?;
        let nu = Chain::new(&graph, vec![radar, track, fuse])?;
        let bound = theorem2_bound(&graph, &lam, &nu, &rt)?;
        let sim = observed_disparity(&graph, fuse, Duration::ZERO);
        println!("  T(prep) = {period}:  S-diff = {bound},  simulated max = {sim}");
        results.push((graph, lam, nu, rt, fuse, bound));
    }
    let slow_bound = results[0].5;
    let fast_bound = results[1].5;
    println!(
        "\n  tripling the frequency changed the bound by {} — the trap.\n",
        fast_bound - slow_bound
    );

    println!("== step 2: size a buffer with Algorithm 1 instead ==\n");
    let (graph, lam, nu, rt, fuse, bound) = results.swap_remove(0);
    let plan = design_buffer(&graph, &lam, &nu, &rt)?;
    println!(
        "  plan: FIFO({}) on channel {}",
        plan.capacity, plan.channel
    );
    println!("  window shift L = {}", plan.shift);
    println!("  Theorem 2 bound before: {bound}");
    println!("  Theorem 3 bound after:  {}", plan.bound_after);

    let mut buffered = graph.clone();
    plan.apply(&mut buffered)?;
    let sim_before = observed_disparity(&graph, fuse, ms(500));
    let sim_after = observed_disparity(&buffered, fuse, ms(500));
    println!("\n  simulated max disparity: {sim_before} -> {sim_after}");
    assert!(plan.bound_after <= bound);
    assert!(
        sim_after <= plan.bound_after,
        "optimized bound must stay safe"
    );
    println!(
        "\nbuffering reduced the worst-case guarantee by {} ✓",
        bound - plan.bound_after
    );
    Ok(())
}
