//! Generate and audit a WATERS-2015-style random automotive system.
//!
//! Samples a random single-sink cause-effect graph with benchmark task
//! parameters, prints a utilization/schedulability audit, bounds the
//! sink's worst-case time disparity with every method, validates against
//! simulation, and emits a Graphviz rendering.
//!
//! Run with: `cargo run --example waters_workload [n_tasks] [seed]`

use time_disparity::core::prelude::*;
use time_disparity::model::dot::to_dot;
use time_disparity::model::prelude::*;
use time_disparity::sched::prelude::*;
use time_disparity::sim::prelude::*;
use time_disparity::workload::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let n_tasks: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(15);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(2024);

    let mut rng = disparity_rng::rngs::StdRng::seed_from_u64(seed);
    let graph = schedulable_random_system(
        GraphGenConfig {
            n_tasks,
            target_utilization: Some(0.4),
            max_sources: Some(3),
            ..Default::default()
        },
        &mut rng,
        200,
    )?;

    println!(
        "generated {} tasks, {} channels",
        graph.task_count(),
        graph.channel_count()
    );
    println!("sources: {:?}", graph.sources().len());

    // --- Audit ------------------------------------------------------------
    let report = analyze(&graph)?;
    println!("\nschedulability:");
    for ecu in graph.ecus() {
        println!(
            "  {:<6} utilization {:>5.1}%",
            ecu.name(),
            ecu_utilization(&graph, ecu.id()) * 100.0
        );
    }
    println!("  all deadlines met: {}", report.all_schedulable());
    let rt = report.into_response_times();

    // --- Disparity at the sink, all methods -------------------------------
    let sink = graph.sinks()[0];
    println!(
        "\nworst-case time disparity at the sink ({}):",
        graph.task(sink).name()
    );
    let mut bounds = Vec::new();
    for method in [Method::Independent, Method::ForkJoin, Method::Combined] {
        let r = worst_case_disparity(
            &graph,
            sink,
            &rt,
            AnalysisConfig {
                method,
                ..Default::default()
            },
        )?;
        println!(
            "  {:<12} {:>10}   ({} chains, {} pairs)",
            format!("{method:?}"),
            r.bound.to_string(),
            r.chains.len(),
            r.pairs.len()
        );
        bounds.push(r.bound);
    }

    // --- Validate against simulation --------------------------------------
    let mut worst = Duration::ZERO;
    for run in 0..5u64 {
        let instance = randomize_offsets(&graph, &mut rng);
        let sim = Simulator::new(
            &instance,
            SimConfig {
                horizon: Duration::from_secs(20),
                seed: run,
                ..Default::default()
            },
        );
        if let Some(d) = sim.run()?.metrics.max_disparity(sink) {
            worst = worst.max(d);
        }
    }
    println!("\nsimulated max disparity over 5 offset assignments: {worst}");
    for b in &bounds {
        assert!(worst <= *b, "bound {b} violated by observation {worst}");
    }
    println!("all bounds dominate the observation ✓");

    // --- Export -----------------------------------------------------------
    let dot_path = std::env::temp_dir().join("waters_workload.dot");
    std::fs::write(&dot_path, to_dot(&graph))?;
    println!("\nGraphviz rendering written to {}", dot_path.display());
    Ok(())
}
