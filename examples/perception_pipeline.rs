//! The paper's Fig. 1 scenario: an autonomous-driving perception pipeline
//! spanning several ECUs and a CAN-like bus.
//!
//! Camera frames, LiDAR sweeps and GNSS fixes are fused by a perception
//! task whose output feeds planning and control. The fusion is only
//! meaningful if the sensor samples it combines were taken close together
//! — the time-disparity requirement the paper formalizes. This example
//! checks a disparity budget analytically, confirms it in simulation, and
//! repairs a violation with the Algorithm 1 buffer design.
//!
//! Run with: `cargo run --example perception_pipeline`

use time_disparity::core::prelude::*;
use time_disparity::model::prelude::*;
use time_disparity::sched::prelude::*;
use time_disparity::sim::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ms = Duration::from_millis;

    // --- Platform: two compute ECUs and a CAN bus ------------------------
    let mut b = SystemBuilder::new();
    let sensing_ecu = b.add_ecu("sensing");
    let fusion_ecu = b.add_ecu("fusion");
    let actuation_ecu = b.add_ecu("actuation");
    let can = b.add_bus("can0");

    // --- Sensors (external stimuli, zero cost) ---------------------------
    let camera = b.add_task(TaskSpec::periodic("camera", ms(33)));
    let lidar = b.add_task(TaskSpec::periodic("lidar", ms(100)));
    let gnss = b.add_task(TaskSpec::periodic("gnss", ms(100)));

    // --- Sensing-side processing -----------------------------------------
    let detect = b.add_task(
        TaskSpec::periodic("detect", ms(33))
            .execution(ms(6), ms(12))
            .on_ecu(sensing_ecu),
    );
    let cloud = b.add_task(
        TaskSpec::periodic("cloud", ms(100))
            .execution(ms(10), ms(18))
            .on_ecu(sensing_ecu),
    );
    b.connect(camera, detect);
    b.connect(lidar, cloud);

    // --- Messages on the bus (periodic CAN frames) -----------------------
    let msg_detect = b.add_task(
        TaskSpec::periodic("msg_detect", ms(33))
            .execution(ms(1), ms(2))
            .on_ecu(can),
    );
    let msg_cloud = b.add_task(
        TaskSpec::periodic("msg_cloud", ms(100))
            .execution(ms(2), ms(4))
            .on_ecu(can),
    );
    b.connect(detect, msg_detect);
    b.connect(cloud, msg_cloud);

    // --- Fusion, planning, control ---------------------------------------
    let fuse = b.add_task(
        TaskSpec::periodic("fuse", ms(100))
            .execution(ms(8), ms(18))
            .on_ecu(fusion_ecu),
    );
    let plan = b.add_task(
        TaskSpec::periodic("plan", ms(100))
            .execution(ms(10), ms(22))
            .on_ecu(fusion_ecu),
    );
    // Control runs on its own actuation ECU: under *non-preemptive*
    // scheduling a 10ms task cannot share a core with 20ms-long jobs.
    let control = b.add_task(
        TaskSpec::periodic("control", ms(10))
            .execution(ms(1), ms(2))
            .on_ecu(actuation_ecu),
    );
    b.connect(msg_detect, fuse);
    b.connect(msg_cloud, fuse);
    b.connect(gnss, fuse);
    b.connect(fuse, plan);
    b.connect(plan, control);
    let graph = b.build()?;

    // --- Schedulability ----------------------------------------------------
    let report = analyze(&graph)?;
    assert!(report.all_schedulable(), "pipeline must be schedulable");
    println!("pipeline schedulable on {} resources", graph.ecus().len());
    for ecu in graph.ecus() {
        println!(
            "  {:<8} ({})  utilization {:.1}%",
            ecu.name(),
            ecu.kind(),
            ecu_utilization(&graph, ecu.id()) * 100.0
        );
    }

    // --- Disparity budget check at the fusion task -----------------------
    let budget = ms(260);
    let analysis = analyze_task(&graph, fuse, AnalysisConfig::default())?;
    println!("\nworst-case time disparity at `fuse`: {}", analysis.bound);
    println!("disparity budget:                    {budget}");
    println!(
        "verdict: {}",
        if analysis.bound <= budget {
            "GUARANTEED within budget"
        } else {
            "may exceed budget"
        }
    );

    // Show which sensor pair decides the worst case.
    if let Some(critical) = analysis.critical_pair() {
        let lam = &analysis.chains[critical.lambda];
        let nu = &analysis.chains[critical.nu];
        println!(
            "critical sensor pair: {} vs {}",
            graph.task(lam.head()).name(),
            graph.task(nu.head()).name()
        );
    }

    // --- Confirm in simulation -------------------------------------------
    let sim = Simulator::new(
        &graph,
        SimConfig {
            horizon: Duration::from_secs(60),
            seed: 7,
            ..Default::default()
        },
    );
    let outcome = sim.run()?;
    let observed = outcome
        .metrics
        .max_disparity(fuse)
        .unwrap_or(Duration::ZERO);
    println!("\nsimulated max disparity at `fuse` over 60s: {observed}");
    assert!(observed <= analysis.bound, "analysis must be safe");

    // --- Tighten with Algorithm 1 ------------------------------------------
    let optimized = optimize_task(&graph, fuse, AnalysisConfig::default(), 4)?;
    println!("\nafter buffer optimization:");
    println!(
        "  bound {} -> {}",
        optimized.initial_bound,
        optimized.final_bound()
    );
    for step in &optimized.steps {
        let ch = optimized.graph.channel(step.plan.channel);
        println!(
            "  FIFO({}) on {} -> {}  (shift {})",
            step.plan.capacity,
            optimized.graph.task(ch.src()).name(),
            optimized.graph.task(ch.dst()).name(),
            step.plan.shift
        );
    }
    let sim_b = Simulator::new(
        &optimized.graph,
        SimConfig {
            horizon: Duration::from_secs(60),
            seed: 7,
            warmup: Duration::from_secs(2),
            ..Default::default()
        },
    );
    let outcome_b = sim_b.run()?;
    let observed_b = outcome_b
        .metrics
        .max_disparity(fuse)
        .unwrap_or(Duration::ZERO);
    println!("  simulated max disparity with buffers: {observed_b}");
    assert!(
        observed_b <= optimized.final_bound(),
        "optimized analysis must be safe"
    );
    Ok(())
}
