//! Property tests: the incremental re-analysis engine ([`reanalyze`] via
//! [`AnalyzedSystem::apply`]) is observationally identical to the cold
//! pipeline after **every** step of a randomized edit sequence.
//!
//! Each sequence starts from a seeded schedulable workload, then draws
//! edits uniformly across every [`SpecEdit`] kind — WCET/BCET/period
//! changes, priority swaps, buffer resizes, channel adds and removes —
//! and after each step compares the incrementally-derived
//! [`AnalyzedSystem`] field by field (spec, subsystem hashes, graph,
//! response times, skipped set, and every pairwise bound of every
//! report) against `AnalyzedSystem::analyze_with` on the edited spec.
//! All arithmetic is integer nanoseconds, so the comparison is exact
//! equality, not a tolerance. Sequences run once with a serial engine
//! (`workers = 1`) and once with the parallel pair loop pinned on
//! (`workers = 8`), because the delta path re-enters the engine with a
//! pre-seeded hop cache and both loops must agree with it.
//!
//! Edits that make the system invalid (an unschedulable period cut, a
//! channel add that closes a cycle) are kept in the sequence: the
//! property there is *error agreement* — the incremental path must fail
//! exactly when the cold path fails, never diverge into a stale answer.
//!
//! [`reanalyze`]: disparity_core::delta::reanalyze
//! [`AnalyzedSystem`]: disparity_core::delta::AnalyzedSystem
//! [`AnalyzedSystem::apply`]: disparity_core::delta::AnalyzedSystem::apply
//! [`SpecEdit`]: disparity_model::edit::SpecEdit

use disparity_core::delta::AnalyzedSystem;
use disparity_core::disparity::AnalysisConfig;
use disparity_model::edit::SpecEdit;
use disparity_model::spec::SystemSpec;
use disparity_model::time::Duration;
use disparity_rng::rngs::StdRng;
use disparity_rng::Rng;
use disparity_workload::funnel::{schedulable_funnel_system, FunnelConfig};
use disparity_workload::graphgen::{schedulable_random_system, GraphGenConfig};

/// Steps per sequence: enough for edits to compound (a resize on top of
/// a swap on top of a WCET cut), small enough to keep the cold oracle
/// cheap.
const STEPS: usize = 10;

fn waters_spec(n_tasks: usize, seed: u64) -> Option<SystemSpec> {
    let mut rng = StdRng::seed_from_u64(seed);
    let graph = schedulable_random_system(
        GraphGenConfig {
            n_tasks,
            n_ecus: 4,
            n_edges: Some((n_tasks as f64 * 2.5) as usize),
            max_sources: Some(3),
            target_utilization: Some(0.45),
        },
        &mut rng,
        100,
    )
    .ok()?;
    Some(SystemSpec::from_graph(&graph))
}

fn funnel_spec(n_tasks: usize, seed: u64) -> Option<SystemSpec> {
    let mut rng = StdRng::seed_from_u64(seed);
    let graph =
        schedulable_funnel_system(&FunnelConfig::with_approximate_size(n_tasks), &mut rng, 100)
            .ok()?;
    Some(SystemSpec::from_graph(&graph))
}

fn pick(rng: &mut StdRng, n: usize) -> usize {
    usize::try_from(rng.gen_range(0..n as u64)).expect("index fits usize")
}

fn nanos_between(rng: &mut StdRng, lo: i64, hi: i64) -> Duration {
    let lo = u64::try_from(lo.max(0)).unwrap_or(0);
    let hi = u64::try_from(hi.max(0)).unwrap_or(0).max(lo);
    Duration::from_nanos(i64::try_from(rng.gen_range(lo..=hi)).expect("nanos fit i64"))
}

/// Draws one spec-level-valid edit: the candidate is pre-checked with
/// [`SpecEdit::apply`] on a scratch clone, so the sequence never stalls
/// on a name-level rejection (duplicate channel, unknown task). System-
/// level invalidity (unschedulable, cyclic) is deliberately let through.
fn random_edit(spec: &SystemSpec, rng: &mut StdRng) -> Option<(SpecEdit, SystemSpec)> {
    for _ in 0..32 {
        let t = &spec.tasks[pick(rng, spec.tasks.len())];
        let candidate = match rng.gen_range(0..7u64) {
            0 => SpecEdit::SetWcet {
                task: t.name.clone(),
                // Mostly shrinks (always schedulable); the top of the
                // range grows 25%, occasionally tipping a system over.
                wcet: nanos_between(
                    rng,
                    t.bcet.as_nanos(),
                    (t.wcet.as_nanos() * 5 / 4).max(t.bcet.as_nanos()),
                ),
            },
            1 => SpecEdit::SetBcet {
                task: t.name.clone(),
                bcet: nanos_between(rng, 0, t.wcet.as_nanos()),
            },
            2 => SpecEdit::SetPeriod {
                task: t.name.clone(),
                period: nanos_between(
                    rng,
                    (t.period.as_nanos() / 2).max(1),
                    t.period.as_nanos() * 2,
                ),
            },
            3 => {
                let u = &spec.tasks[pick(rng, spec.tasks.len())];
                SpecEdit::SwapPriority {
                    a: t.name.clone(),
                    b: u.name.clone(),
                }
            }
            4 => {
                if spec.channels.is_empty() {
                    continue;
                }
                let c = &spec.channels[pick(rng, spec.channels.len())];
                SpecEdit::ResizeBuffer {
                    from: c.from.clone(),
                    to: c.to.clone(),
                    capacity: pick(rng, 4) + 1,
                }
            }
            5 => {
                let u = &spec.tasks[pick(rng, spec.tasks.len())];
                SpecEdit::AddChannel {
                    from: t.name.clone(),
                    to: u.name.clone(),
                    capacity: pick(rng, 2) + 1,
                }
            }
            _ => {
                if spec.channels.is_empty() {
                    continue;
                }
                let c = &spec.channels[pick(rng, spec.channels.len())];
                SpecEdit::RemoveChannel {
                    from: c.from.clone(),
                    to: c.to.clone(),
                }
            }
        };
        let mut edited = spec.clone();
        if candidate.apply(&mut edited).is_ok() {
            return Some((candidate, edited));
        }
    }
    None
}

/// Field-by-field equality of the derived and the cold system. Exact:
/// any divergence, down to a single pairwise bound, is a failure.
fn assert_systems_identical(derived: &AnalyzedSystem, cold: &AnalyzedSystem, what: &str) {
    assert_eq!(derived.spec(), cold.spec(), "{what}: spec");
    assert_eq!(derived.hashes(), cold.hashes(), "{what}: subsystem hashes");
    assert_eq!(derived.graph(), cold.graph(), "{what}: graph");
    assert_eq!(
        derived.response_times(),
        cold.response_times(),
        "{what}: response times"
    );
    assert_eq!(derived.skipped(), cold.skipped(), "{what}: skipped set");
    assert_eq!(
        derived.reports().len(),
        cold.reports().len(),
        "{what}: report count"
    );
    for (ra, rb) in derived.reports().iter().zip(cold.reports()) {
        assert_eq!(ra.task, rb.task, "{what}: report task");
        assert_eq!(ra.method, rb.method, "{what}: method");
        assert_eq!(ra.bound, rb.bound, "{what}: bound for {}", ra.task);
        assert_eq!(ra.chains, rb.chains, "{what}: chain set for {}", ra.task);
        assert_eq!(
            ra.pairs.len(),
            rb.pairs.len(),
            "{what}: pair count for {}",
            ra.task
        );
        for (pa, pb) in ra.pairs.iter().zip(&rb.pairs) {
            assert_eq!(
                (pa.lambda, pa.nu, pa.analyzed_at, pa.bound),
                (pb.lambda, pb.nu, pb.analyzed_at, pb.bound),
                "{what}: pair ({}, {}) for {}",
                pa.lambda,
                pa.nu,
                ra.task,
            );
        }
    }
}

/// Runs one randomized edit sequence, comparing incremental against cold
/// after every step, under a fixed engine worker count.
fn run_sequence(spec: SystemSpec, seq_seed: u64, workers: usize, what: &str) {
    let config = AnalysisConfig::default();
    let mut rng = StdRng::seed_from_u64(seq_seed);
    let mut current = AnalyzedSystem::analyze_with(&spec, config, Some(workers))
        .expect("seed workload analyzes cold");
    let mut applied = 0usize;
    for step in 0..STEPS {
        let Some((edit, edited_spec)) = random_edit(current.spec(), &mut rng) else {
            continue;
        };
        let label = format!("{what}: step {step} ({})", edit.kind());
        let incremental = current.apply(&edit);
        let cold = AnalyzedSystem::analyze_with(&edited_spec, config, Some(workers));
        match (incremental, cold) {
            (Ok((derived, _stats)), Ok(cold)) => {
                assert_systems_identical(&derived, &cold, &label);
                current = derived;
                applied += 1;
            }
            (Err(_), Err(_)) => {
                // Error agreement: both paths reject; the sequence keeps
                // its last valid state.
            }
            (Ok(_), Err(e)) => {
                panic!("{label}: incremental accepted an edit the cold pipeline rejects: {e}")
            }
            (Err(e), Ok(_)) => {
                panic!("{label}: incremental rejected an edit the cold pipeline accepts: {e}")
            }
        }
    }
    assert!(
        applied >= STEPS / 2,
        "{what}: only {applied} of {STEPS} edits applied — generator too narrow to be a property test"
    );
}

#[test]
fn random_edit_sequences_match_cold_on_waters_graphs_serial() {
    for seed in [11, 12, 13] {
        let Some(spec) = waters_spec(16, seed) else {
            continue;
        };
        run_sequence(spec, seed ^ 0xA5A5, 1, &format!("waters seed {seed} serial"));
    }
}

#[test]
fn random_edit_sequences_match_cold_on_waters_graphs_parallel() {
    for seed in [11, 12, 13] {
        let Some(spec) = waters_spec(16, seed) else {
            continue;
        };
        run_sequence(spec, seed ^ 0xA5A5, 8, &format!("waters seed {seed} parallel"));
    }
}

#[test]
fn random_edit_sequences_match_cold_on_funnel_graphs_serial() {
    for seed in [21, 22] {
        let Some(spec) = funnel_spec(24, seed) else {
            continue;
        };
        run_sequence(spec, seed ^ 0x5A5A, 1, &format!("funnel seed {seed} serial"));
    }
}

#[test]
fn random_edit_sequences_match_cold_on_funnel_graphs_parallel() {
    for seed in [21, 22] {
        let Some(spec) = funnel_spec(24, seed) else {
            continue;
        };
        run_sequence(spec, seed ^ 0x5A5A, 8, &format!("funnel seed {seed} parallel"));
    }
}
