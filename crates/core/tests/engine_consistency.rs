//! Property tests: the memoized [`AnalysisEngine`] is observationally
//! identical to the direct per-pair theorem evaluation.
//!
//! The engine reimplements Theorems 1 and 2 on top of prefix tables and a
//! per-edge hop-bound cache, so nothing but these cross-checks guarantees
//! that the fast path and the textbook path stay in lock-step. Every
//! comparison here is an exact `Duration` equality: all arithmetic is
//! integer nanoseconds, so the two paths must agree bit-for-bit, not
//! merely within a tolerance.

use disparity_core::disparity::{
    worst_case_disparity, worst_case_disparity_direct, AnalysisConfig, DisparityReport,
};
use disparity_core::engine::AnalysisEngine;
use disparity_core::pairwise::{pairwise_bound, theorem1_bound, theorem2_bound, Method};
use disparity_core::sentinel::{self, ChainEvidence, RunEvidence, TaskEvidence};
use disparity_model::graph::CauseEffectGraph;
use disparity_model::time::Duration;
use disparity_rng::rngs::StdRng;
use disparity_sched::schedulability::analyze;
use disparity_sched::wcrt::ResponseTimes;
use disparity_sim::engine::{SimConfig, Simulator};
use disparity_workload::funnel::{schedulable_funnel_system, FunnelConfig};
use disparity_workload::graphgen::{schedulable_random_system, GraphGenConfig};

const METHODS: [Method; 3] = [Method::Independent, Method::ForkJoin, Method::Combined];
const CHAIN_LIMIT: usize = 4096;

fn waters_graph(n_tasks: usize, seed: u64) -> Option<CauseEffectGraph> {
    let mut rng = StdRng::seed_from_u64(seed);
    schedulable_random_system(
        GraphGenConfig {
            n_tasks,
            n_ecus: 4,
            n_edges: Some((n_tasks as f64 * 2.5) as usize),
            max_sources: Some(3),
            target_utilization: Some(0.45),
        },
        &mut rng,
        100,
    )
    .ok()
}

fn funnel_graph(n_tasks: usize, seed: u64) -> Option<CauseEffectGraph> {
    let mut rng = StdRng::seed_from_u64(seed);
    schedulable_funnel_system(&FunnelConfig::with_approximate_size(n_tasks), &mut rng, 100).ok()
}

fn assert_reports_identical(a: &DisparityReport, b: &DisparityReport, what: &str) {
    assert_eq!(a.task, b.task, "{what}: task");
    assert_eq!(a.method, b.method, "{what}: method");
    assert_eq!(a.bound, b.bound, "{what}: bound");
    assert_eq!(a.chains, b.chains, "{what}: chain set");
    assert_eq!(a.pairs.len(), b.pairs.len(), "{what}: pair count");
    for (pa, pb) in a.pairs.iter().zip(&b.pairs) {
        assert_eq!(
            (pa.lambda, pa.nu, pa.analyzed_at, pa.bound),
            (pb.lambda, pb.nu, pb.analyzed_at, pb.bound),
            "{what}: pair ({}, {})",
            pa.lambda,
            pa.nu,
        );
    }
}

/// Cross-checks every pairwise bound of the engine's report against a raw
/// `theorem1_bound` / `theorem2_bound` / `pairwise_bound` call, then the
/// whole report against the direct (uncached) analysis path.
fn check_graph(graph: &CauseEffectGraph, rt: &ResponseTimes, what: &str) {
    let Some(&sink) = graph.sinks().first() else {
        panic!("{what}: generated graph has no sink");
    };
    let chains = graph.chains_to(sink, CHAIN_LIMIT).expect("chain budget");

    for method in METHODS {
        let config = AnalysisConfig {
            method,
            chain_limit: CHAIN_LIMIT,
        };
        let engine = AnalysisEngine::new(graph, rt).with_workers(1);
        let report = engine
            .worst_case_disparity(sink, config)
            .expect("engine analysis");
        let direct = worst_case_disparity_direct(graph, sink, rt, config)
            .expect("direct analysis");
        assert_reports_identical(&report, &direct, &format!("{what}/{method:?} vs direct"));

        // The free function must route through the same engine logic.
        let via_free = worst_case_disparity(graph, sink, rt, config).expect("free function");
        assert_reports_identical(&report, &via_free, &format!("{what}/{method:?} vs free fn"));

        // Parallel reduction must be bit-identical to serial regardless of
        // whether the pair count crosses the spawn threshold.
        let par = AnalysisEngine::new(graph, rt)
            .with_workers(4)
            .worst_case_disparity(sink, config)
            .expect("parallel engine analysis");
        assert_reports_identical(&report, &par, &format!("{what}/{method:?} serial vs par"));

        // Per-pair: the engine's tabulated bounds must equal the textbook
        // theorem evaluated on the same (truncated) chains.
        for pair in &report.pairs {
            let lam = &chains[pair.lambda];
            let nu = &chains[pair.nu];
            let expected = match method {
                Method::Independent => theorem1_bound(graph, lam, nu, rt).unwrap(),
                Method::ForkJoin => {
                    let (l, n) = lam.truncate_to_last_joint(nu).expect("common suffix");
                    theorem2_bound(graph, &l, &n, rt).unwrap()
                }
                Method::Combined => {
                    let p = theorem1_bound(graph, lam, nu, rt).unwrap();
                    let (l, n) = lam.truncate_to_last_joint(nu).expect("common suffix");
                    p.min(theorem2_bound(graph, &l, &n, rt).unwrap())
                }
            };
            assert_eq!(
                pair.bound, expected,
                "{what}/{method:?}: engine pair ({}, {}) disagrees with raw theorem",
                pair.lambda, pair.nu,
            );
            // And `pairwise_bound` (the public dispatcher) agrees too. The
            // analysis loop truncates to the last joint task before the
            // S-diff theorem, so ForkJoin (and the S-diff half of
            // Combined) takes the pre-truncated chains here.
            let dispatched = match method {
                Method::Independent => pairwise_bound(graph, lam, nu, rt, method).unwrap(),
                Method::ForkJoin => {
                    let (l, n) = lam.truncate_to_last_joint(nu).expect("common suffix");
                    pairwise_bound(graph, &l, &n, rt, method).unwrap()
                }
                Method::Combined => {
                    let p = pairwise_bound(graph, lam, nu, rt, Method::Independent).unwrap();
                    let (l, n) = lam.truncate_to_last_joint(nu).expect("common suffix");
                    p.min(pairwise_bound(graph, &l, &n, rt, Method::ForkJoin).unwrap())
                }
            };
            assert_eq!(
                pair.bound, dispatched,
                "{what}/{method:?}: engine pair ({}, {}) disagrees with pairwise_bound",
                pair.lambda, pair.nu,
            );
        }
    }
}

#[test]
fn engine_matches_direct_theorems_on_random_waters_graphs() {
    let mut checked = 0usize;
    for n_tasks in [12, 18] {
        for seed in 1..=5u64 {
            let Some(graph) = waters_graph(n_tasks, seed) else {
                continue; // Unschedulable draw: nothing to compare.
            };
            let rt = analyze(&graph).expect("schedulable").into_response_times();
            check_graph(&graph, &rt, &format!("waters(n={n_tasks}, seed={seed})"));
            checked += 1;
        }
    }
    assert!(checked >= 5, "too few schedulable WATERS draws ({checked})");
}

#[test]
fn engine_matches_direct_theorems_on_funnel_graphs() {
    let mut checked = 0usize;
    for n_tasks in [9, 15] {
        for seed in 1..=4u64 {
            let Some(graph) = funnel_graph(n_tasks, seed) else {
                continue;
            };
            let rt = analyze(&graph).expect("schedulable").into_response_times();
            check_graph(&graph, &rt, &format!("funnel(n={n_tasks}, seed={seed})"));
            checked += 1;
        }
    }
    assert!(checked >= 4, "too few schedulable funnel draws ({checked})");
}

/// Replays a simulated run through the sentinel twice — once with the
/// stock per-chain fold and once with the engine's memoized
/// `backward_bounds` as the provider — and demands identical verdicts.
/// The provider feeds the chain checks *and* both pairwise theorems, so
/// this exercises the engine on truncated sub-chains the report path
/// never constructs explicitly.
#[test]
fn sentinel_replay_through_engine_matches_direct_provider() {
    let mut replayed = 0usize;
    for seed in 1..=4u64 {
        let Some(graph) = waters_graph(15, seed) else {
            continue;
        };
        let rt = analyze(&graph).expect("schedulable").into_response_times();
        let Some(&sink) = graph.sinks().first() else {
            panic!("generated graph has no sink");
        };
        let chains = graph.chains_to(sink, CHAIN_LIMIT).expect("chain budget");

        let mut sim = Simulator::new(
            &graph,
            SimConfig {
                horizon: Duration::from_millis(2_000),
                warmup: Duration::from_millis(400),
                seed,
                ..SimConfig::default()
            },
        );
        sim.monitor_chains(chains.iter().cloned());
        let out = sim.run().expect("simulation");

        let evidence = RunEvidence {
            graph: &graph,
            seed,
            fault_plan: "none".to_string(),
            model_preserving: true,
            faults_fired: false,
            chains: chains
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    let o = out.metrics.chain(i);
                    ChainEvidence {
                        chain: c.clone(),
                        min_backward: o.min_backward,
                        max_backward: o.max_backward,
                        samples: o.samples,
                    }
                })
                .collect(),
            tasks: vec![TaskEvidence {
                task: sink,
                max_disparity: out.metrics.max_disparity(sink),
                max_response: Some(out.metrics.max_response(sink)),
            }],
        };

        let stock = sentinel::check_run(&evidence).expect("stock sentinel");
        let engine = AnalysisEngine::new(&graph, &rt);
        let replay = sentinel::check_run_with(&evidence, &rt, false, &|c| {
            engine
                .backward_bounds(c)
                .expect("sentinel chains are valid graph paths")
        })
        .expect("engine-backed sentinel");

        assert_eq!(stock.enforced, replay.enforced, "seed {seed}: enforced");
        assert_eq!(stock.degraded, replay.degraded, "seed {seed}: degraded");
        assert_eq!(stock.checks, replay.checks, "seed {seed}: check count");
        assert_eq!(
            stock.violations.len(),
            replay.violations.len(),
            "seed {seed}: violation count",
        );
        assert!(stock.is_sound(), "seed {seed}: simulated run must be in-bound");
        assert!(replay.is_sound(), "seed {seed}: engine replay must be in-bound");
        replayed += 1;
    }
    assert!(replayed >= 2, "too few sentinel replays ({replayed})");
}
