//! Worst-case time disparity of a task (Definition 2 + the enumeration of
//! §III).
//!
//! The time disparity `Δ(J)` of a job is the maximum timestamp difference
//! among all its sources; the worst-case disparity of a task `τ` is the
//! maximum over its jobs. With `P` the set of chains from a source to `τ`:
//!
//! `Δ(J) = max_{λ≠ν ∈ P} |t(λ̄¹) − t(ν̄¹)|`
//!
//! so a safe bound is the maximum of the pairwise bounds (Theorem 1 or 2)
//! over all chain pairs. Following the paper's remark, each pair is first
//! truncated at its *last joint task*: on a shared suffix the immediate
//! backward job chain is unique, so the disparity is decided where the two
//! chains actually diverge.

use disparity_model::chain::Chain;
use disparity_model::graph::CauseEffectGraph;
use disparity_model::ids::TaskId;
use disparity_model::time::Duration;
use disparity_sched::schedulability::analyze;
use disparity_sched::wcrt::ResponseTimes;

use crate::engine::AnalysisEngine;
use crate::error::AnalysisError;
use crate::pairwise::{pairwise_bound, Method};

/// Tuning knobs for the disparity analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnalysisConfig {
    /// Which pairwise theorem to use.
    pub method: Method,
    /// Budget for chain enumeration (paths can be exponential in a DAG).
    pub chain_limit: usize,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig {
            method: Method::ForkJoin,
            chain_limit: 4096,
        }
    }
}

/// The bound contributed by one pair of chains.
#[derive(Debug, Clone)]
pub struct PairBound {
    /// Index into [`DisparityReport::chains`] of the pair's first chain.
    pub lambda: usize,
    /// Index into [`DisparityReport::chains`] of the pair's second chain.
    pub nu: usize,
    /// The last joint task at which the pair was truncated and analyzed.
    pub analyzed_at: TaskId,
    /// The pairwise disparity bound.
    pub bound: Duration,
}

/// Result of analyzing the worst-case time disparity of one task.
#[derive(Debug, Clone)]
pub struct DisparityReport {
    /// The analyzed task.
    pub task: TaskId,
    /// The method that produced the bound.
    pub method: Method,
    /// Safe upper bound on the worst-case time disparity.
    pub bound: Duration,
    /// The enumerated chain set `P` (sources → task).
    pub chains: Vec<Chain>,
    /// Per-pair contributions, one entry per unordered chain pair.
    pub pairs: Vec<PairBound>,
}

impl DisparityReport {
    /// The pair attaining the overall bound, if any pair exists.
    #[must_use]
    pub fn critical_pair(&self) -> Option<&PairBound> {
        self.pairs.iter().max_by_key(|p| p.bound)
    }
}

impl core::fmt::Display for DisparityReport {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(
            f,
            "worst-case time disparity of {} ({:?}): {}",
            self.task, self.method, self.bound
        )?;
        writeln!(f, "  {} chains, {} pairs", self.chains.len(), self.pairs.len())?;
        if let Some(critical) = self.critical_pair() {
            writeln!(
                f,
                "  critical pair: ({}) vs ({}) analyzed at {} -> {}",
                self.chains[critical.lambda],
                self.chains[critical.nu],
                critical.analyzed_at,
                critical.bound
            )?;
        }
        Ok(())
    }
}

/// Bounds the worst-case time disparity of `task` using precomputed
/// response times.
///
/// A task reached by fewer than two chains has disparity 0 (there is no
/// pair of sources to disagree).
///
/// # Errors
///
/// * [`AnalysisError::Model`] wrapping
///   [`ChainLimitExceeded`](disparity_model::error::ModelError::ChainLimitExceeded)
///   if the DAG holds more than `config.chain_limit` chains to `task`, and
///   other model errors for foreign ids.
/// * Errors from the pairwise analysis (see
///   [`theorem1_bound`](crate::pairwise::theorem1_bound)).
///
/// # Examples
///
/// ```
/// use disparity_model::prelude::*;
/// use disparity_sched::wcrt::response_times;
/// use disparity_core::disparity::{worst_case_disparity, AnalysisConfig};
///
/// let mut b = SystemBuilder::new();
/// let ecu = b.add_ecu("e");
/// let ms = Duration::from_millis;
/// let cam = b.add_task(TaskSpec::periodic("camera", ms(33)));
/// let lidar = b.add_task(TaskSpec::periodic("lidar", ms(100)));
/// let fuse = b.add_task(
///     TaskSpec::periodic("fuse", ms(33)).execution(ms(2), ms(5)).on_ecu(ecu),
/// );
/// b.connect(cam, fuse);
/// b.connect(lidar, fuse);
/// let g = b.build()?;
/// let rt = response_times(&g)?;
/// let report = worst_case_disparity(&g, fuse, &rt, AnalysisConfig::default())?;
/// assert!(report.bound > Duration::ZERO);
/// assert_eq!(report.chains.len(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn worst_case_disparity(
    graph: &CauseEffectGraph,
    task: TaskId,
    rt: &ResponseTimes,
    config: AnalysisConfig,
) -> Result<DisparityReport, AnalysisError> {
    AnalysisEngine::new(graph, rt).worst_case_disparity(task, config)
}

/// The uncached reference path of [`worst_case_disparity`]: every pair
/// recomputes its backward bounds from scratch via
/// [`pairwise_bound`].
///
/// The memoized [`AnalysisEngine`] is bit-identical to this function (the
/// `engine_consistency` test suite pins that); it exists as the oracle
/// for those tests and as the "uncached" side of the `pairwise_engine`
/// bench.
///
/// # Errors
///
/// Same conditions as [`worst_case_disparity`].
pub fn worst_case_disparity_direct(
    graph: &CauseEffectGraph,
    task: TaskId,
    rt: &ResponseTimes,
    config: AnalysisConfig,
) -> Result<DisparityReport, AnalysisError> {
    let chains = graph.chains_to(task, config.chain_limit)?;
    let mut span = disparity_obs::span("disparity.worst_case_direct");
    span.attr("chains", chains.len());
    let mut pairs = Vec::new();
    let mut bound = Duration::ZERO;
    for i in 0..chains.len() {
        for j in (i + 1)..chains.len() {
            let (pair_bound, analyzed_at) =
                pair_bound_for_method(graph, &chains[i], &chains[j], rt, config.method)?;
            bound = bound.max(pair_bound);
            pairs.push(PairBound {
                lambda: i,
                nu: j,
                analyzed_at,
                bound: pair_bound,
            });
        }
    }
    span.attr("pairs", pairs.len());
    span.attr("bound_ns", bound);
    Ok(DisparityReport {
        task,
        method: config.method,
        bound,
        chains,
        pairs,
    })
}

/// Applies one method to a full chain pair.
///
/// **P-diff** treats the chains as fully independent: the whole chains (up
/// to the analyzed task) feed Theorem 1. **S-diff** first truncates the
/// pair at its *last joint task* — on the shared suffix the immediate
/// backward job chain is unique, so the disparity is decided where the
/// chains diverge — and then applies Theorem 2 to the truncated pair.
/// **Combined** takes the minimum of both (each is a safe upper bound).
fn pair_bound_for_method(
    graph: &CauseEffectGraph,
    lambda: &Chain,
    nu: &Chain,
    rt: &ResponseTimes,
    method: Method,
) -> Result<(Duration, TaskId), AnalysisError> {
    match method {
        Method::Independent => Ok((
            pairwise_bound(graph, lambda, nu, rt, method)?,
            lambda.tail(),
        )),
        Method::ForkJoin => {
            // Both chains end at the same task, so a common suffix exists.
            let (lam, nu_t) =
                lambda
                    .truncate_to_last_joint(nu)
                    .ok_or(AnalysisError::TailMismatch {
                        lambda_tail: lambda.tail(),
                        nu_tail: nu.tail(),
                    })?;
            Ok((pairwise_bound(graph, &lam, &nu_t, rt, method)?, lam.tail()))
        }
        Method::Combined => {
            let (p, _) = pair_bound_for_method(graph, lambda, nu, rt, Method::Independent)?;
            let (s, at) = pair_bound_for_method(graph, lambda, nu, rt, Method::ForkJoin)?;
            if disparity_obs::is_enabled() {
                // Attribute which theorem wins and by how much: the gap
                // between P-diff and S-diff is the pessimism one theorem
                // carries over the other for this pair.
                let winner = match s.cmp(&p) {
                    core::cmp::Ordering::Less => "pairwise.sdiff_tighter",
                    core::cmp::Ordering::Greater => "pairwise.pdiff_tighter",
                    core::cmp::Ordering::Equal => "pairwise.tie",
                };
                disparity_obs::counter_add(winner, 1);
                disparity_obs::observe("pairwise.gap_ns", (p - s).abs().as_nanos());
            }
            Ok((p.min(s), at))
        }
    }
}

/// Convenience wrapper: runs the schedulability analysis, insists on
/// `R(τ) ≤ T(τ)` for every task (the paper's standing assumption), then
/// bounds the disparity of `task`.
///
/// # Errors
///
/// * [`AnalysisError::Sched`] if response times cannot be computed.
/// * [`AnalysisError::Unschedulable`] if any task misses its deadline.
/// * Everything [`worst_case_disparity`] can return.
pub fn analyze_task(
    graph: &CauseEffectGraph,
    task: TaskId,
    config: AnalysisConfig,
) -> Result<DisparityReport, AnalysisError> {
    let report = analyze(graph)?;
    if !report.all_schedulable() {
        return Err(AnalysisError::Unschedulable {
            violations: report.violations(),
        });
    }
    AnalysisEngine::new(graph, report.response_times()).worst_case_disparity(task, config)
}

/// Bounds the worst-case time disparity of **every** task with at least
/// two incoming chains (the only tasks where disparity is non-trivial).
///
/// Tasks whose chain enumeration exceeds the budget are skipped rather
/// than failing the whole audit; they are reported in the second return
/// value.
///
/// # Errors
///
/// Propagates pairwise-analysis errors; enumeration-budget overruns are
/// collected, not raised.
pub fn analyze_all_tasks(
    graph: &CauseEffectGraph,
    rt: &ResponseTimes,
    config: AnalysisConfig,
) -> Result<(Vec<DisparityReport>, Vec<TaskId>), AnalysisError> {
    // One engine for the whole audit: the hop-bound cache is shared
    // across every analyzed task of the graph.
    AnalysisEngine::new(graph, rt).analyze_all_tasks(config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use disparity_model::builder::SystemBuilder;
    use disparity_model::task::TaskSpec;
    use disparity_sched::wcrt::response_times;

    fn ms(v: i64) -> Duration {
        Duration::from_millis(v)
    }

    fn fig2() -> (CauseEffectGraph, TaskId) {
        let mut b = SystemBuilder::new();
        let e1 = b.add_ecu("ecu1");
        let e2 = b.add_ecu("ecu2");
        let t1 = b.add_task(TaskSpec::periodic("t1", ms(10)));
        let t2 = b.add_task(TaskSpec::periodic("t2", ms(20)));
        let t3 = b.add_task(
            TaskSpec::periodic("t3", ms(10))
                .execution(ms(1), ms(2))
                .on_ecu(e1),
        );
        let t4 = b.add_task(
            TaskSpec::periodic("t4", ms(20))
                .execution(ms(2), ms(4))
                .on_ecu(e1),
        );
        let t5 = b.add_task(
            TaskSpec::periodic("t5", ms(30))
                .execution(ms(2), ms(5))
                .on_ecu(e2),
        );
        let t6 = b.add_task(
            TaskSpec::periodic("t6", ms(30))
                .execution(ms(3), ms(6))
                .on_ecu(e2),
        );
        b.connect(t1, t3);
        b.connect(t2, t3);
        b.connect(t3, t4);
        b.connect(t3, t5);
        b.connect(t4, t6);
        b.connect(t5, t6);
        (b.build().unwrap(), t6)
    }

    #[test]
    fn fig2_sink_has_six_pairs() {
        let (g, t6) = fig2();
        let r = analyze_task(&g, t6, AnalysisConfig::default()).unwrap();
        assert_eq!(r.chains.len(), 4);
        assert_eq!(r.pairs.len(), 6);
        assert!(r.bound > Duration::ZERO);
        let critical = r.critical_pair().unwrap();
        assert_eq!(critical.bound, r.bound);
    }

    #[test]
    fn combined_method_is_tightest_overall() {
        let (g, t6) = fig2();
        let rt = response_times(&g).unwrap();
        let mut bounds = std::collections::BTreeMap::new();
        for method in [Method::Independent, Method::ForkJoin, Method::Combined] {
            let r = worst_case_disparity(
                &g,
                t6,
                &rt,
                AnalysisConfig {
                    method,
                    ..Default::default()
                },
            )
            .unwrap();
            bounds.insert(format!("{method:?}"), r.bound);
        }
        let combined = bounds["Combined"];
        assert!(combined <= bounds["Independent"]);
        assert!(combined <= bounds["ForkJoin"]);
    }

    #[test]
    fn single_chain_task_has_zero_disparity() {
        let mut b = SystemBuilder::new();
        let e = b.add_ecu("e");
        let s = b.add_task(TaskSpec::periodic("s", ms(10)));
        let t = b.add_task(
            TaskSpec::periodic("t", ms(10))
                .execution(ms(1), ms(2))
                .on_ecu(e),
        );
        b.connect(s, t);
        let g = b.build().unwrap();
        let r = analyze_task(&g, t, AnalysisConfig::default()).unwrap();
        assert_eq!(r.bound, Duration::ZERO);
        assert!(r.pairs.is_empty());
        assert!(r.critical_pair().is_none());
    }

    #[test]
    fn source_task_has_zero_disparity() {
        let (g, _) = fig2();
        let t1 = g.find_task("t1").unwrap();
        let r = analyze_task(&g, t1, AnalysisConfig::default()).unwrap();
        assert_eq!(r.bound, Duration::ZERO);
    }

    #[test]
    fn unschedulable_system_is_rejected() {
        let mut b = SystemBuilder::new();
        let e = b.add_ecu("e");
        let s = b.add_task(TaskSpec::periodic("s", ms(10)));
        // hi is blocked by lo's 9ms job: R(hi) = 9 + 6 = 15 > T(hi) = 10.
        let hi = b.add_task(TaskSpec::periodic("hi", ms(10)).wcet(ms(6)).on_ecu(e));
        let lo = b.add_task(TaskSpec::periodic("lo", ms(30)).wcet(ms(9)).on_ecu(e));
        b.connect(s, hi);
        b.connect(s, lo);
        let g = b.build().unwrap();
        let err = analyze_task(&g, lo, AnalysisConfig::default()).unwrap_err();
        assert!(matches!(err, AnalysisError::Unschedulable { .. }), "{err}");
    }

    #[test]
    fn chain_limit_propagates() {
        let (g, t6) = fig2();
        let rt = response_times(&g).unwrap();
        let err = worst_case_disparity(
            &g,
            t6,
            &rt,
            AnalysisConfig {
                chain_limit: 2,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, AnalysisError::Model(_)));
    }

    #[test]
    fn analyze_all_covers_fusion_tasks_only() {
        let (g, t6) = fig2();
        let rt = response_times(&g).unwrap();
        let (reports, skipped) = analyze_all_tasks(&g, &rt, AnalysisConfig::default()).unwrap();
        assert!(skipped.is_empty());
        // Fusion points of Fig. 2: τ3 (2 chains), τ4/τ5 (2 each via τ3's
        // two sources), τ6 (4 chains). Sources have a single trivial chain.
        let analyzed: Vec<TaskId> = reports.iter().map(|r| r.task).collect();
        assert!(analyzed.contains(&t6));
        assert!(analyzed.contains(&g.find_task("t3").unwrap()));
        assert!(!analyzed.contains(&g.find_task("t1").unwrap()));
        for r in &reports {
            assert!(r.chains.len() >= 2);
        }
    }

    #[test]
    fn analyze_all_reports_chain_explosions_as_skips() {
        let (g, t6) = fig2();
        let rt = response_times(&g).unwrap();
        let (reports, skipped) = analyze_all_tasks(
            &g,
            &rt,
            AnalysisConfig {
                chain_limit: 2,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(skipped.contains(&t6));
        assert!(reports.iter().all(|r| r.task != t6));
    }

    #[test]
    fn report_display_is_informative() {
        let (g, t6) = fig2();
        let r = analyze_task(&g, t6, AnalysisConfig::default()).unwrap();
        let text = r.to_string();
        assert!(text.contains("worst-case time disparity"));
        assert!(text.contains("4 chains, 6 pairs"));
        assert!(text.contains("critical pair"));
        let _ = g; // keep binding used on all paths
    }

    #[test]
    fn intermediate_task_analysis_works() {
        // t3 fuses t1 and t2 directly.
        let (g, _) = fig2();
        let t3 = g.find_task("t3").unwrap();
        let r = analyze_task(&g, t3, AnalysisConfig::default()).unwrap();
        assert_eq!(r.chains.len(), 2);
        assert_eq!(r.pairs.len(), 1);
        assert!(r.bound > Duration::ZERO);
    }
}
