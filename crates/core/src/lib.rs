//! Worst-case time disparity analysis for cause-effect chains.
//!
//! This crate implements the primary contribution of *"Analysis and
//! Optimization of Worst-Case Time Disparity in Cause-Effect Chains"*
//! (DATE 2023):
//!
//! * [`backward`] — backward-time bounds of a chain under non-preemptive
//!   fixed-priority scheduling (Lemmas 4–6);
//! * [`baseline`] — the scheduler-agnostic Dürr-et-al.-style bound the
//!   paper compares against;
//! * [`window`] — sampling-window arithmetic (Lemmas 1–2);
//! * [`pairwise`] — Theorem 1 (**P-diff**) and Theorem 2 (**S-diff**);
//! * [`disparity`] — per-task worst-case disparity via pair enumeration;
//! * [`engine`] — the memoized (and optionally parallel) form of that
//!   enumeration: per-graph hop-bound cache + per-chain prefix tables;
//! * [`buffering`] — Algorithm 1 buffer design, Theorem 3, and a greedy
//!   multi-pair extension;
//! * [`delta`] — incremental (delta) re-analysis: apply a
//!   [`SpecEdit`](disparity_model::edit::SpecEdit) to an analyzed system
//!   and recompute only the invalidated slice, byte-identical to a cold
//!   re-run.
//!
//! # Examples
//!
//! Bound the disparity of a two-sensor fusion task and shrink it with a
//! designed buffer:
//!
//! ```
//! use disparity_model::prelude::*;
//! use disparity_core::prelude::*;
//!
//! let mut b = SystemBuilder::new();
//! let ecu = b.add_ecu("ecu0");
//! let ms = Duration::from_millis;
//! let cam = b.add_task(TaskSpec::periodic("camera", ms(10)));
//! let lidar = b.add_task(TaskSpec::periodic("lidar", ms(100)));
//! let pre = b.add_task(TaskSpec::periodic("pre", ms(10)).execution(ms(1), ms(2)).on_ecu(ecu));
//! let fuse = b.add_task(TaskSpec::periodic("fuse", ms(100)).execution(ms(3), ms(8)).on_ecu(ecu));
//! b.connect(cam, pre);
//! b.connect(pre, fuse);
//! b.connect(lidar, fuse);
//! let graph = b.build()?;
//!
//! let report = analyze_task(&graph, fuse, AnalysisConfig::default())?;
//! let optimized = optimize_task(&graph, fuse, AnalysisConfig::default(), 4)?;
//! assert!(optimized.final_bound() <= report.bound);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod backward;
pub mod baseline;
pub mod buffering;
pub mod delta;
pub mod disparity;
pub mod engine;
pub mod error;
pub mod latency;
pub mod letmodel;
pub mod pairwise;
pub mod sentinel;
pub mod window;

/// Convenient glob-import of the most used items.
pub mod prelude {
    pub use crate::backward::{
        backward_bounds, bcbt, try_backward_bounds, try_bcbt, try_wcbt, wcbt, BackwardBounds,
    };
    pub use crate::baseline::{
        baseline_bounds, baseline_wcbt, try_baseline_bounds, try_baseline_wcbt,
    };
    pub use crate::buffering::{
        design_buffer, optimize_task, BufferPlan, BufferedSide, OptimizationOutcome,
    };
    pub use crate::delta::{
        reanalyze, AnalyzedSystem, DeltaBasis, DeltaError, DependencyMap, ReanalyzeStats,
    };
    pub use crate::disparity::{
        analyze_all_tasks, analyze_task, worst_case_disparity, worst_case_disparity_direct,
        AnalysisConfig, DisparityReport, PairBound,
    };
    pub use crate::engine::{AnalysisEngine, HopCache};
    pub use crate::error::AnalysisError;
    pub use crate::latency::{data_age_bound, reaction_time_bound};
    pub use crate::letmodel::{let_backward_bounds, let_pairwise_bound, let_worst_case_disparity};
    pub use crate::pairwise::{
        decompose, pairwise_bound, theorem1_bound, theorem2_bound, ForkJoinDecomposition, Method,
    };
    pub use crate::sentinel::{
        check_run, ChainEvidence, CheckKind, RunEvidence, SentinelReport, TaskEvidence, Violation,
    };
    pub use crate::window::SamplingWindow;
}
