//! Memoized, parallel pairwise-disparity engine.
//!
//! [`worst_case_disparity`](crate::disparity::worst_case_disparity)
//! evaluates Theorem 1/2 over all `O(k²)` chain pairs at a sink; the
//! direct path recomputes the same per-hop Lemma 4/5 terms and the same
//! sub-chain WCBT/BCBT folds for every pair. [`AnalysisEngine`] computes
//! each shared sub-result exactly once:
//!
//! * a **per-graph hop-bound cache** keyed by `(from, to)` channel — the
//!   Lemma 4 `θ_i` term plus the Lemma 6 buffer shift of every edge,
//!   computed lazily on first touch and reused across chains, pairs,
//!   methods and sinks;
//! * **prefix WCBT/BCBT tables per enumerated chain** — hop-bound, BCET
//!   and buffer-shift prefix sums, so the backward bounds of *any*
//!   sub-chain (the `α_j`/`β_j` of Theorem 2, or a truncated prefix) are
//!   two table lookups instead of a refold;
//! * a **per-task-set [`ResponseTimes`] handle** — WCRT analysis runs
//!   once per engine, not once per analyzed task.
//!
//! The chain-pair loop optionally fans out across a scoped-thread worker
//! pool (std only; the workspace is offline and zero-dep). Pairs are
//! partitioned into contiguous index ranges and merged back in range
//! order, so the resulting [`DisparityReport`] is **byte-identical** to
//! the serial path regardless of worker count or scheduling — the
//! arithmetic itself is the exact same `i64` arithmetic as the direct
//! [`theorem1_bound`](crate::pairwise::theorem1_bound) /
//! [`theorem2_bound`](crate::pairwise::theorem2_bound) path, just with
//! every shared term looked up instead of recomputed (a property pinned
//! by `tests/engine_consistency.rs`).

use core::fmt;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use disparity_model::chain::Chain;
use disparity_model::error::ModelError;
use disparity_model::graph::CauseEffectGraph;
use disparity_model::ids::TaskId;
use disparity_model::time::{div_ceil, div_floor, Duration};
use disparity_sched::wcrt::ResponseTimes;

use crate::backward::{buffer_shift, try_hop_bound, BackwardBounds};
use crate::disparity::{AnalysisConfig, DisparityReport, PairBound};
use crate::error::AnalysisError;
use crate::pairwise::Method;

/// Minimum number of chain pairs before the engine spawns worker
/// threads; below this the scoped-thread setup costs more than the loop.
const PAR_THRESHOLD: usize = 64;

/// Cached per-edge terms: the Lemma 4 hop bound `θ` (already including
/// the Lemma 6 buffer shift) and the bare buffer shift (needed separately
/// by the Lemma 5 lower bound).
#[derive(Debug, Clone, Copy)]
struct EdgeBounds {
    hop: Duration,
    shift: Duration,
}

/// A shareable, thread-safe hop-bound cache: the memoized Lemma 4/6
/// per-edge terms of **one graph under one response-time assignment**.
///
/// [`AnalysisEngine::new`] creates a fresh private cache; long-lived
/// callers (the analysis service keeps one engine's worth of state per
/// cached graph) can instead keep a `HopCache` alongside the graph and
/// hand clones of it to every engine built over that graph via
/// [`AnalysisEngine::with_hop_cache`], so the per-edge terms amortize
/// across engines, requests and threads. Clones share storage.
///
/// **Invariant:** a cache must only ever be attached to engines over the
/// same graph and the same [`ResponseTimes`]. Task ids are per-graph
/// indices, so feeding one graph's cache to another graph would silently
/// return stale bounds. The engine cannot check this; the owner of the
/// cache must key it by graph identity (the service keys caches by a
/// canonical content hash of the spec).
#[derive(Clone, Default)]
pub struct HopCache {
    inner: Arc<Mutex<HashMap<(TaskId, TaskId), EdgeBounds>>>,
}

impl HopCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        HopCache::default()
    }

    /// Number of memoized edges.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// `true` when no edge has been memoized yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// A new cache holding deep copies of the entries `keep` accepts.
    ///
    /// This is the delta engine's invalidation primitive: deriving a
    /// system from an edited spec starts from the previous system's cache
    /// with the dirty edges dropped, so every clean hop bound is reused
    /// and every dirty one recomputes lazily on first touch. The result
    /// shares no storage with `self`.
    #[must_use]
    pub fn filtered(&self, keep: impl Fn(TaskId, TaskId) -> bool) -> HopCache {
        let retained: HashMap<(TaskId, TaskId), EdgeBounds> = self
            .lock()
            .iter()
            .filter(|&(&(a, b), _)| keep(a, b))
            .map(|(&k, &v)| (k, v))
            .collect();
        HopCache {
            inner: Arc::new(Mutex::new(retained)),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<(TaskId, TaskId), EdgeBounds>> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl fmt::Debug for HopCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HopCache")
            .field("entries", &self.len())
            .finish()
    }
}

/// Prefix tables of one enumerated chain: every sub-chain's backward
/// bounds in O(1).
///
/// For the sub-chain spanning positions `start..=end`:
///
/// * `W = hop_prefix[end] − hop_prefix[start]` (Lemma 4 + Lemma 6);
/// * `B = bcet_prefix[end+1] − bcet_prefix[start] − R(tasks[end])
///   + shift_prefix[end] − shift_prefix[start]` (Lemma 5 + Lemma 6).
///
/// Tables are handed around in `Arc`s: a table depends only on the
/// chain's tasks, their BCETs, the response times, and the hop/shift
/// terms of its edges, so the delta engine shares a clean chain's table
/// across derived systems instead of rebuilding it (see
/// `worst_case_disparity_partial`).
#[derive(Debug)]
pub(crate) struct ChainTable {
    /// `hop_prefix[k]` = sum of the first `k` edge hop bounds.
    hop_prefix: Vec<Duration>,
    /// `bcet_prefix[k]` = sum of the first `k` tasks' BCETs.
    bcet_prefix: Vec<Duration>,
    /// `shift_prefix[k]` = sum of the first `k` edges' buffer shifts.
    shift_prefix: Vec<Duration>,
    /// Position of each task on the chain (chains are simple paths).
    pos: HashMap<TaskId, usize>,
}

impl ChainTable {
    /// Backward bounds of the sub-chain `tasks[start..=end]`.
    fn bounds(&self, rt: &ResponseTimes, tail: TaskId, start: usize, end: usize) -> BackwardBounds {
        BackwardBounds {
            wcbt: self.hop_prefix[end] - self.hop_prefix[start],
            bcbt: self.bcet_prefix[end + 1] - self.bcet_prefix[start] - rt.wcrt(tail)
                + self.shift_prefix[end]
                - self.shift_prefix[start],
        }
    }
}

/// Memoized pairwise-disparity engine over one graph and one task set.
///
/// Construction is cheap (the hop-bound cache fills lazily); the engine
/// is then reusable across every analyzed task of the graph, sharing the
/// [`ResponseTimes`] handle and every cached hop bound.
///
/// # Examples
///
/// ```
/// use disparity_model::prelude::*;
/// use disparity_sched::wcrt::response_times;
/// use disparity_core::engine::AnalysisEngine;
/// use disparity_core::disparity::AnalysisConfig;
///
/// let mut b = SystemBuilder::new();
/// let ecu = b.add_ecu("e");
/// let ms = Duration::from_millis;
/// let cam = b.add_task(TaskSpec::periodic("camera", ms(33)));
/// let lidar = b.add_task(TaskSpec::periodic("lidar", ms(100)));
/// let fuse = b.add_task(
///     TaskSpec::periodic("fuse", ms(33)).execution(ms(2), ms(5)).on_ecu(ecu),
/// );
/// b.connect(cam, fuse);
/// b.connect(lidar, fuse);
/// let g = b.build()?;
/// let rt = response_times(&g)?;
/// let engine = AnalysisEngine::new(&g, &rt);
/// let report = engine.worst_case_disparity(fuse, AnalysisConfig::default())?;
/// assert!(report.bound > Duration::ZERO);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct AnalysisEngine<'a> {
    graph: &'a CauseEffectGraph,
    rt: &'a ResponseTimes,
    /// Lazily filled hop-bound cache keyed by `(from, to)` channel. A
    /// `Mutex` (not `RefCell`) so the engine stays `Sync` for the scoped
    /// worker pool; the pair loop itself only reads the prefix tables, so
    /// the lock is never contended. Shareable across engines over the
    /// same graph via [`with_hop_cache`](Self::with_hop_cache).
    edges: HopCache,
    workers: usize,
    /// Optional cooperative budget hook (`true` = keep going). Checked
    /// between chains and every [`BUDGET_STRIDE`] pairs; when it returns
    /// `false` the analysis stops with
    /// [`AnalysisError::BudgetExhausted`]. Long-running callers use this
    /// to enforce soft deadlines without tearing down worker threads.
    budget: Option<&'a (dyn Fn() -> bool + Sync)>,
}

impl fmt::Debug for AnalysisEngine<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AnalysisEngine")
            .field("tasks", &self.graph.task_count())
            .field("edges", &self.edges)
            .field("workers", &self.workers)
            .field("budget_hook", &self.budget.is_some())
            .finish()
    }
}

/// How many pairs the pair loops process between budget-hook checks.
const BUDGET_STRIDE: usize = 64;

impl<'a> AnalysisEngine<'a> {
    /// Creates an engine over `graph` with response times `rt`.
    ///
    /// The worker count defaults to the machine's available parallelism
    /// (capped at 8); see [`with_workers`](Self::with_workers).
    #[must_use]
    pub fn new(graph: &'a CauseEffectGraph, rt: &'a ResponseTimes) -> Self {
        let workers = std::thread::available_parallelism().map_or(1, |n| n.get().min(8));
        AnalysisEngine {
            graph,
            rt,
            edges: HopCache::new(),
            workers,
            budget: None,
        }
    }

    /// Sets the worker-pool size for the pair loop. `1` keeps the loop
    /// serial — useful when the caller already parallelizes at a coarser
    /// granularity (the fig6 sweeps parallelize per graph). Any value
    /// produces the same report bit for bit.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Attaches a shared hop-bound cache, replacing the engine's private
    /// one. See [`HopCache`] for the graph-identity invariant the caller
    /// must uphold.
    #[must_use]
    pub fn with_hop_cache(mut self, cache: HopCache) -> Self {
        self.edges = cache;
        self
    }

    /// A handle to this engine's hop-bound cache (clones share storage),
    /// for reuse by a later engine over the same graph.
    #[must_use]
    pub fn hop_cache(&self) -> HopCache {
        self.edges.clone()
    }

    /// Installs a cooperative budget hook. The hook is polled between
    /// chain-table builds and every 64 analyzed pairs; returning `false`
    /// aborts the analysis with [`AnalysisError::BudgetExhausted`]. The
    /// hook must be cheap (an atomic load or a deadline comparison) and
    /// is called from worker threads, hence `Sync`.
    #[must_use]
    pub fn with_budget_hook(mut self, hook: &'a (dyn Fn() -> bool + Sync)) -> Self {
        self.budget = Some(hook);
        self
    }

    /// Errors with [`AnalysisError::BudgetExhausted`] once the budget
    /// hook (if any) reports exhaustion.
    fn check_budget(&self) -> Result<(), AnalysisError> {
        match self.budget {
            Some(hook) if !hook() => {
                disparity_obs::counter_add("engine.budget_stops", 1);
                Err(AnalysisError::BudgetExhausted)
            }
            _ => Ok(()),
        }
    }

    /// The graph this engine analyzes.
    #[must_use]
    pub fn graph(&self) -> &'a CauseEffectGraph {
        self.graph
    }

    /// The response-time handle shared by every analysis on this engine.
    #[must_use]
    pub fn response_times(&self) -> &'a ResponseTimes {
        self.rt
    }

    /// The cached per-edge terms, computing them on first touch.
    ///
    /// # Errors
    ///
    /// [`AnalysisError::Model`] when `(from, to)` is not an edge.
    fn edge_bounds(&self, from: TaskId, to: TaskId) -> Result<EdgeBounds, AnalysisError> {
        if let Some(&e) = self.edges.lock().get(&(from, to)) {
            disparity_obs::counter_add("engine.hop_cache.hits", 1);
            return Ok(e);
        }
        disparity_obs::counter_add("engine.hop_cache.misses", 1);
        let hop = try_hop_bound(self.graph, from, to, self.rt)?;
        let channel = self
            .graph
            .channel_between(from, to)
            .ok_or(AnalysisError::Model(ModelError::NotAChain { from, to }))?;
        let shift = buffer_shift(channel.capacity(), self.graph.task(from).period());
        let e = EdgeBounds { hop, shift };
        self.edges.lock().insert((from, to), e);
        Ok(e)
    }

    /// Backward bounds of an arbitrary chain through the cached hop
    /// bounds. Produces exactly the values of
    /// [`backward_bounds`](crate::backward::backward_bounds); feeding the
    /// soundness sentinel through this path replays a run against the
    /// memoized engine.
    ///
    /// # Errors
    ///
    /// [`AnalysisError::Model`] when `chain` is not a path of the graph.
    pub fn backward_bounds(&self, chain: &Chain) -> Result<BackwardBounds, AnalysisError> {
        let mut wcbt = Duration::ZERO;
        let mut shift = Duration::ZERO;
        for (a, b) in chain.edges() {
            let e = self.edge_bounds(a, b)?;
            wcbt += e.hop;
            shift += e.shift;
        }
        let mut bcet = Duration::ZERO;
        for &t in chain.tasks() {
            bcet += self
                .graph
                .get_task(t)
                .ok_or(AnalysisError::Model(ModelError::UnknownTask(t)))?
                .bcet();
        }
        Ok(BackwardBounds {
            wcbt,
            bcbt: bcet - self.rt.wcrt(chain.tail()) + shift,
        })
    }

    /// Builds the prefix tables of one enumerated chain.
    fn table(&self, chain: &Chain) -> Result<ChainTable, AnalysisError> {
        let tasks = chain.tasks();
        let mut hop_prefix = Vec::with_capacity(tasks.len());
        let mut shift_prefix = Vec::with_capacity(tasks.len());
        let mut bcet_prefix = Vec::with_capacity(tasks.len() + 1);
        hop_prefix.push(Duration::ZERO);
        shift_prefix.push(Duration::ZERO);
        bcet_prefix.push(Duration::ZERO);
        let mut pos = HashMap::with_capacity(tasks.len());
        let mut bcet_total = Duration::ZERO;
        let mut hop_total = Duration::ZERO;
        let mut shift_total = Duration::ZERO;
        for (i, &t) in tasks.iter().enumerate() {
            let bcet = self
                .graph
                .get_task(t)
                .ok_or(AnalysisError::Model(ModelError::UnknownTask(t)))?
                .bcet();
            bcet_total += bcet;
            bcet_prefix.push(bcet_total);
            pos.insert(t, i);
            if let Some(&next) = tasks.get(i + 1) {
                let e = self.edge_bounds(t, next)?;
                hop_total += e.hop;
                hop_prefix.push(hop_total);
                shift_total += e.shift;
                shift_prefix.push(shift_total);
            }
        }
        Ok(ChainTable {
            hop_prefix,
            bcet_prefix,
            shift_prefix,
            pos,
        })
    }

    /// Bounds the worst-case time disparity of `task`, memoized and
    /// (above `PAR_THRESHOLD` = 64 pairs) parallel.
    ///
    /// The report is bit-identical to
    /// [`worst_case_disparity_direct`](crate::disparity::worst_case_disparity_direct)
    /// for any worker count.
    ///
    /// # Errors
    ///
    /// Same conditions as
    /// [`worst_case_disparity`](crate::disparity::worst_case_disparity).
    pub fn worst_case_disparity(
        &self,
        task: TaskId,
        config: AnalysisConfig,
    ) -> Result<DisparityReport, AnalysisError> {
        self.worst_case_disparity_with_tables(task, config)
            .map(|(report, _)| report)
    }

    /// [`Self::worst_case_disparity`] returning the built chain tables
    /// alongside the report, so the delta engine can carry clean tables
    /// into derived systems.
    pub(crate) fn worst_case_disparity_with_tables(
        &self,
        task: TaskId,
        config: AnalysisConfig,
    ) -> Result<(DisparityReport, Vec<Arc<ChainTable>>), AnalysisError> {
        self.check_budget()?;
        let chains = self.graph.chains_to(task, config.chain_limit)?;
        let mut span = disparity_obs::span("disparity.worst_case");
        span.attr("chains", chains.len());
        span.attr("engine", 1usize);
        let tables: Vec<Arc<ChainTable>> = chains
            .iter()
            .map(|c| {
                self.check_budget()?;
                self.table(c).map(Arc::new)
            })
            .collect::<Result<_, _>>()?;
        disparity_obs::counter_add("engine.chain_tables", tables.len() as u64);
        let n = chains.len();
        let n_pairs = n * (n - 1) / 2;
        let pairs = if self.workers > 1 && n_pairs >= PAR_THRESHOLD {
            self.pairs_parallel(&chains, &tables, config.method, n_pairs)?
        } else {
            let mut pairs = Vec::with_capacity(n_pairs);
            for i in 0..n {
                for j in (i + 1)..n {
                    if pairs.len() % BUDGET_STRIDE == 0 {
                        self.check_budget()?;
                    }
                    pairs.push(self.pair_bound(&chains, &tables, i, j, config.method));
                }
            }
            pairs
        };
        disparity_obs::counter_add("engine.pairs", pairs.len() as u64);
        let bound = pairs
            .iter()
            .map(|p| p.bound)
            .max()
            .unwrap_or(Duration::ZERO);
        span.attr("pairs", pairs.len());
        span.attr("bound_ns", bound);
        Ok((
            DisparityReport {
                task,
                method: config.method,
                bound,
                chains,
                pairs,
            },
            tables,
        ))
    }

    /// Re-sweeps only the pairs that touch a dirty chain, copying every
    /// clean pair from `prev_pairs` and every clean chain's prefix table
    /// from `prev_tables`. Returns the report and the (partially shared)
    /// tables of the derived system.
    ///
    /// Caller contract (upheld by the delta engine in `delta.rs`): the
    /// `chains` are exactly what [`CauseEffectGraph::chains_to`] would
    /// enumerate for `task` under `config`, `prev_pairs` is the pair list
    /// of a report over those same chains in the same `(i, j)` order,
    /// `prev_tables` are that report's chain tables in chain order, and
    /// `dirty[i]` is `true` for every chain whose bounds may have changed.
    /// Under that contract the result is byte-identical to a full
    /// [`Self::worst_case_disparity`] run: clean pairs and clean tables
    /// were computed from unchanged inputs by identical arithmetic, dirty
    /// ones are recomputed here through the (pre-invalidated) hop cache.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::worst_case_disparity`].
    pub(crate) fn worst_case_disparity_partial(
        &self,
        task: TaskId,
        config: AnalysisConfig,
        chains: Vec<Chain>,
        prev_pairs: &[PairBound],
        prev_tables: &[Arc<ChainTable>],
        dirty: &[bool],
    ) -> Result<(DisparityReport, Vec<Arc<ChainTable>>), AnalysisError> {
        self.check_budget()?;
        let n = chains.len();
        debug_assert_eq!(prev_tables.len(), n, "one table per chain");
        // Only dirty chains rebuild their table; a clean chain's prefix
        // sums depend on unchanged inputs, so its previous table is
        // shared as-is (dirty pairs read the clean partner through it).
        let tables: Vec<Arc<ChainTable>> = chains
            .iter()
            .zip(prev_tables)
            .zip(dirty)
            .map(|((c, prev), &d)| {
                if d {
                    self.check_budget()?;
                    self.table(c).map(Arc::new)
                } else {
                    Ok(Arc::clone(prev))
                }
            })
            .collect::<Result<_, _>>()?;
        let mut pairs = Vec::with_capacity(prev_pairs.len());
        let mut flat = 0usize;
        let mut recomputed = 0usize;
        for i in 0..n {
            for j in (i + 1)..n {
                if dirty[i] || dirty[j] {
                    if recomputed.is_multiple_of(BUDGET_STRIDE) {
                        self.check_budget()?;
                    }
                    recomputed += 1;
                    pairs.push(self.pair_bound(&chains, &tables, i, j, config.method));
                } else {
                    pairs.push(prev_pairs[flat].clone());
                }
                flat += 1;
            }
        }
        disparity_obs::counter_add("engine.delta.pairs_recomputed", recomputed as u64);
        disparity_obs::counter_add(
            "engine.delta.pairs_reused",
            (pairs.len() - recomputed) as u64,
        );
        let bound = pairs
            .iter()
            .map(|p| p.bound)
            .max()
            .unwrap_or(Duration::ZERO);
        Ok((
            DisparityReport {
                task,
                method: config.method,
                bound,
                chains,
                pairs,
            },
            tables,
        ))
    }

    /// The pair loop over a scoped-thread worker pool. Pairs are chunked
    /// into contiguous index ranges, one batch per worker, and merged
    /// back in batch order — the output `Vec` is identical to the serial
    /// loop's.
    fn pairs_parallel(
        &self,
        chains: &[Chain],
        tables: &[Arc<ChainTable>],
        method: Method,
        n_pairs: usize,
    ) -> Result<Vec<PairBound>, AnalysisError> {
        let mut index: Vec<(usize, usize)> = Vec::with_capacity(n_pairs);
        for i in 0..chains.len() {
            for j in (i + 1)..chains.len() {
                index.push((i, j));
            }
        }
        // The caches are read-only during the pair loop: warm every edge
        // up front so workers never touch the RefCell.
        let chunk = index.len().div_ceil(self.workers);
        let mut pairs = Vec::with_capacity(index.len());
        let mut exhausted = false;
        // Scoped workers are fresh threads: carry the caller's request
        // trace context across the spawn so batch spans stay attributable
        // to the request that triggered the sweep.
        let trace = disparity_obs::current_trace();
        std::thread::scope(|scope| {
            let handles: Vec<_> = index
                .chunks(chunk)
                .enumerate()
                .map(|(batch, slice)| {
                    scope.spawn(move || {
                        let _trace = disparity_obs::trace_scope(trace);
                        let mut span = disparity_obs::span("engine.pair_batch");
                        span.attr("batch", batch);
                        span.attr("pairs", slice.len());
                        let mut out = Vec::with_capacity(slice.len());
                        for (k, &(i, j)) in slice.iter().enumerate() {
                            if k % BUDGET_STRIDE == 0 && self.check_budget().is_err() {
                                return Err(AnalysisError::BudgetExhausted);
                            }
                            out.push(self.pair_bound(chains, tables, i, j, method));
                        }
                        Ok(out)
                    })
                })
                .collect();
            for handle in handles {
                match handle.join() {
                    Ok(Ok(chunk)) => pairs.extend(chunk),
                    Ok(Err(_)) => exhausted = true,
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        });
        if exhausted {
            return Err(AnalysisError::BudgetExhausted);
        }
        disparity_obs::counter_add("engine.par_batches", self.workers as u64);
        Ok(pairs)
    }

    /// One pair's bound, from the prefix tables. Mirrors
    /// `pair_bound_for_method` in `disparity.rs` term for term.
    fn pair_bound(
        &self,
        chains: &[Chain],
        tables: &[Arc<ChainTable>],
        i: usize,
        j: usize,
        method: Method,
    ) -> PairBound {
        let (bound, analyzed_at) = match method {
            Method::Independent => (self.theorem1_full(chains, tables, i, j), chains[i].tail()),
            Method::ForkJoin => self.theorem2_truncated(chains, tables, i, j),
            Method::Combined => {
                let p = self.theorem1_full(chains, tables, i, j);
                let (s, at) = self.theorem2_truncated(chains, tables, i, j);
                if disparity_obs::is_enabled() {
                    let winner = match s.cmp(&p) {
                        core::cmp::Ordering::Less => "pairwise.sdiff_tighter",
                        core::cmp::Ordering::Greater => "pairwise.pdiff_tighter",
                        core::cmp::Ordering::Equal => "pairwise.tie",
                    };
                    disparity_obs::counter_add(winner, 1);
                    disparity_obs::observe("pairwise.gap_ns", (p - s).abs().as_nanos());
                }
                (p.min(s), at)
            }
        };
        PairBound {
            lambda: i,
            nu: j,
            analyzed_at,
            bound,
        }
    }

    /// Theorem 1 over the *full* chain pair (the **P-diff** leg).
    fn theorem1_full(&self, chains: &[Chain], tables: &[Arc<ChainTable>], i: usize, j: usize) -> Duration {
        let li = chains[i].len() - 1;
        let lj = chains[j].len() - 1;
        let bl = tables[i].bounds(self.rt, chains[i].tail(), 0, li);
        let bn = tables[j].bounds(self.rt, chains[j].tail(), 0, lj);
        let o = (bl.wcbt - bn.bcbt).abs().max((bn.wcbt - bl.bcbt).abs());
        self.round_same_source(chains[i].head(), chains[j].head(), o)
    }

    /// Theorem 2 over the pair truncated at its last joint task (the
    /// **S-diff** leg). Returns the bound and the analyzed task.
    fn theorem2_truncated(
        &self,
        chains: &[Chain],
        tables: &[Arc<ChainTable>],
        i: usize,
        j: usize,
    ) -> (Duration, TaskId) {
        let ti = chains[i].tasks();
        let tj = chains[j].tasks();
        // Last joint task: both chains end at the analyzed task, so the
        // longest common suffix is non-empty and the truncated tails are
        // its first element.
        let k = ti
            .iter()
            .rev()
            .zip(tj.iter().rev())
            .take_while(|(a, b)| a == b)
            .count();
        debug_assert!(k >= 1, "chains ending at the same task share a suffix");
        let lam_end = ti.len() - k;
        let nu_end = tj.len() - k;
        let analyzed_at = ti[lam_end];

        // Common tasks of the truncated pair (graph sources excluded),
        // with their positions on each chain.
        let mut commons: Vec<(usize, usize)> = Vec::new();
        for (p, &t) in ti.iter().enumerate().take(lam_end + 1) {
            if self.graph.is_source(t) {
                continue;
            }
            if let Some(&q) = tables[j].pos.get(&t) {
                if q <= nu_end {
                    commons.push((p, q));
                }
            }
        }
        debug_assert!(
            commons.last().map(|&(p, _)| ti[p]) == Some(analyzed_at),
            "the shared tail must be the last common task"
        );

        let c = commons.len();
        // Backward bounds of the sub-chains α_j / β_j between consecutive
        // common tasks — two prefix-table lookups each.
        let sub = |table: &ChainTable, tasks: &[TaskId], start: usize, end: usize| {
            table.bounds(self.rt, tasks[end], start, end)
        };
        let mut alpha = Vec::with_capacity(c);
        let mut beta = Vec::with_capacity(c);
        for (idx, &(p, q)) in commons.iter().enumerate() {
            let (a_start, b_start) = if idx == 0 {
                (0, 0)
            } else {
                (commons[idx - 1].0, commons[idx - 1].1)
            };
            alpha.push(sub(&tables[i], ti, a_start, p));
            beta.push(sub(&tables[j], tj, b_start, q));
        }

        // The x/y job-index recursion of Theorem 2 (`decompose`).
        let mut x = vec![0i64; c];
        let mut y = vec![0i64; c];
        for idx in (0..c.saturating_sub(1)).rev() {
            let t_j = self.graph.task(ti[commons[idx].0]).period();
            let t_next = self.graph.task(ti[commons[idx + 1].0]).period();
            let num_x = alpha[idx + 1].bcbt - beta[idx + 1].wcbt + t_next * x[idx + 1];
            let num_y = alpha[idx + 1].wcbt - beta[idx + 1].bcbt + t_next * y[idx + 1];
            x[idx] = div_ceil(num_x.as_nanos(), t_j.as_nanos());
            y[idx] = div_floor(num_y.as_nanos(), t_j.as_nanos());
        }

        if disparity_obs::is_enabled() {
            disparity_obs::counter_add("sdiff.decompositions", 1);
            disparity_obs::counter_add("sdiff.recursion_steps", c.saturating_sub(1) as u64);
            disparity_obs::observe("sdiff.common_tasks", i64::try_from(c).unwrap_or(i64::MAX));
            for idx in 0..c {
                disparity_obs::observe("sdiff.window_span", y[idx].saturating_sub(x[idx]));
            }
        }

        // Lemma 3 at o_1 with the window [x_1, y_1] (`offset_bound`).
        let t1 = self.graph.task(ti[commons[0].0]).period();
        let (a, b) = (alpha[0], beta[0]);
        let o = (b.wcbt - a.bcbt - t1 * x[0])
            .abs()
            .max((b.bcbt - a.wcbt - t1 * y[0]).abs());
        (self.round_same_source(ti[0], tj[0], o), analyzed_at)
    }

    /// Same-source rounding (second case of Theorems 1 and 2).
    fn round_same_source(&self, head_a: TaskId, head_b: TaskId, o: Duration) -> Duration {
        if head_a == head_b {
            let t = self.graph.task(head_a).period();
            t * o.div_floor(t)
        } else {
            o
        }
    }

    /// Bounds the worst-case disparity of **every** task with at least
    /// two incoming chains, sharing the hop-bound cache and response
    /// times across sinks. Mirrors
    /// [`analyze_all_tasks`](crate::disparity::analyze_all_tasks).
    ///
    /// # Errors
    ///
    /// Propagates pairwise-analysis errors; enumeration-budget overruns
    /// are collected into the second return value, not raised.
    pub fn analyze_all_tasks(
        &self,
        config: AnalysisConfig,
    ) -> Result<(Vec<DisparityReport>, Vec<TaskId>), AnalysisError> {
        self.analyze_all_tasks_with_tables(config)
            .map(|(reports, _, skipped)| (reports, skipped))
    }

    /// [`Self::analyze_all_tasks`] returning each report's chain tables
    /// (in report order), so the delta engine can seed its table
    /// carry-over from a cold run.
    #[allow(clippy::type_complexity)]
    pub(crate) fn analyze_all_tasks_with_tables(
        &self,
        config: AnalysisConfig,
    ) -> Result<(Vec<DisparityReport>, Vec<Vec<Arc<ChainTable>>>, Vec<TaskId>), AnalysisError> {
        let mut reports = Vec::new();
        let mut tables = Vec::new();
        let mut skipped = Vec::new();
        for task in self.graph.tasks() {
            match self.worst_case_disparity_with_tables(task.id(), config) {
                Ok((report, t)) => {
                    if report.chains.len() >= 2 {
                        reports.push(report);
                        tables.push(t);
                    }
                }
                Err(AnalysisError::Model(ModelError::ChainLimitExceeded { .. })) => {
                    skipped.push(task.id());
                }
                Err(e) => return Err(e),
            }
        }
        Ok((reports, tables, skipped))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backward::backward_bounds;
    use crate::disparity::worst_case_disparity_direct;
    use disparity_model::builder::SystemBuilder;
    use disparity_model::task::TaskSpec;
    use disparity_sched::wcrt::response_times;

    fn ms(v: i64) -> Duration {
        Duration::from_millis(v)
    }

    /// The paper's Fig. 2 topology.
    fn fig2() -> (CauseEffectGraph, TaskId) {
        let mut b = SystemBuilder::new();
        let e1 = b.add_ecu("ecu1");
        let e2 = b.add_ecu("ecu2");
        let t1 = b.add_task(TaskSpec::periodic("t1", ms(10)));
        let t2 = b.add_task(TaskSpec::periodic("t2", ms(20)));
        let t3 = b.add_task(
            TaskSpec::periodic("t3", ms(10))
                .execution(ms(1), ms(2))
                .on_ecu(e1),
        );
        let t4 = b.add_task(
            TaskSpec::periodic("t4", ms(20))
                .execution(ms(2), ms(4))
                .on_ecu(e1),
        );
        let t5 = b.add_task(
            TaskSpec::periodic("t5", ms(30))
                .execution(ms(2), ms(5))
                .on_ecu(e2),
        );
        let t6 = b.add_task(
            TaskSpec::periodic("t6", ms(30))
                .execution(ms(3), ms(6))
                .on_ecu(e2),
        );
        b.connect(t1, t3);
        b.connect(t2, t3);
        b.connect(t3, t4);
        b.connect(t3, t5);
        b.connect(t4, t6);
        b.connect(t5, t6);
        (b.build().unwrap(), t6)
    }

    /// A wide fan-in (8 sources through 8 relays into one sink): 8 chains,
    /// 28 pairs — not enough to cross [`PAR_THRESHOLD`], so parallel runs
    /// are forced with a tiny threshold via many chains below.
    fn wide(n_sources: usize) -> (CauseEffectGraph, TaskId) {
        let mut b = SystemBuilder::new();
        let e = b.add_ecu("e");
        let sink = b.add_task(
            TaskSpec::periodic("sink", ms(40))
                .execution(ms(1), ms(1))
                .on_ecu(e),
        );
        for i in 0..n_sources {
            let s = b.add_task(TaskSpec::periodic(
                format!("s{i}"),
                ms(10 + 10 * (i as i64 % 4)),
            ));
            let relay = b.add_task(
                TaskSpec::periodic(format!("r{i}"), ms(20))
                    .execution(ms(1), ms(1))
                    .on_ecu(e),
            );
            b.connect(s, relay);
            b.connect(relay, sink);
        }
        (b.build().unwrap(), sink)
    }

    fn assert_reports_identical(a: &DisparityReport, b: &DisparityReport) {
        assert_eq!(a.task, b.task);
        assert_eq!(a.method, b.method);
        assert_eq!(a.bound, b.bound);
        assert_eq!(a.chains, b.chains);
        assert_eq!(a.pairs.len(), b.pairs.len());
        for (x, y) in a.pairs.iter().zip(&b.pairs) {
            assert_eq!(x.lambda, y.lambda);
            assert_eq!(x.nu, y.nu);
            assert_eq!(x.analyzed_at, y.analyzed_at);
            assert_eq!(x.bound, y.bound, "pair ({}, {})", x.lambda, x.nu);
        }
    }

    #[test]
    fn engine_matches_direct_path_on_fig2() {
        let (g, t6) = fig2();
        let rt = response_times(&g).unwrap();
        let engine = AnalysisEngine::new(&g, &rt);
        for method in [Method::Independent, Method::ForkJoin, Method::Combined] {
            let config = AnalysisConfig {
                method,
                ..Default::default()
            };
            let direct = worst_case_disparity_direct(&g, t6, &rt, config).unwrap();
            let cached = engine.worst_case_disparity(t6, config).unwrap();
            assert_reports_identical(&direct, &cached);
        }
    }

    #[test]
    fn parallel_reduction_is_bit_identical_to_serial() {
        // 13 sources -> 78 pairs, above PAR_THRESHOLD.
        let (g, sink) = wide(13);
        let rt = response_times(&g).unwrap();
        for method in [Method::Independent, Method::ForkJoin, Method::Combined] {
            let config = AnalysisConfig {
                method,
                ..Default::default()
            };
            let serial = AnalysisEngine::new(&g, &rt)
                .with_workers(1)
                .worst_case_disparity(sink, config)
                .unwrap();
            for workers in [2, 3, 8] {
                let parallel = AnalysisEngine::new(&g, &rt)
                    .with_workers(workers)
                    .worst_case_disparity(sink, config)
                    .unwrap();
                assert_reports_identical(&serial, &parallel);
            }
            let direct = worst_case_disparity_direct(&g, sink, &rt, config).unwrap();
            assert_reports_identical(&direct, &serial);
        }
    }

    #[test]
    fn engine_backward_bounds_match_direct_fold() {
        let (g, t6) = fig2();
        let rt = response_times(&g).unwrap();
        let engine = AnalysisEngine::new(&g, &rt);
        for chain in g.chains_to(t6, 64).unwrap() {
            assert_eq!(
                engine.backward_bounds(&chain).unwrap(),
                backward_bounds(&g, &chain, &rt)
            );
        }
    }

    #[test]
    fn engine_backward_bounds_reject_foreign_chains() {
        let (g, _) = fig2();
        let (g2, sink2) = wide(3);
        let rt = response_times(&g).unwrap();
        let engine = AnalysisEngine::new(&g, &rt);
        let foreign = g2.chains_to(sink2, 16).unwrap().remove(0);
        assert!(matches!(
            engine.backward_bounds(&foreign),
            Err(AnalysisError::Model(_))
        ));
    }

    #[test]
    fn analyze_all_tasks_matches_free_function() {
        let (g, _) = fig2();
        let rt = response_times(&g).unwrap();
        let engine = AnalysisEngine::new(&g, &rt);
        let config = AnalysisConfig::default();
        let (reports, skipped) = engine.analyze_all_tasks(config).unwrap();
        let (free_reports, free_skipped) =
            crate::disparity::analyze_all_tasks(&g, &rt, config).unwrap();
        assert_eq!(skipped, free_skipped);
        assert_eq!(reports.len(), free_reports.len());
        for (a, b) in reports.iter().zip(&free_reports) {
            assert_reports_identical(a, b);
        }
    }

    #[test]
    fn shared_hop_cache_amortizes_across_engines() {
        let (g, t6) = fig2();
        let rt = response_times(&g).unwrap();
        let cache = HopCache::new();
        assert!(cache.is_empty());
        let first = AnalysisEngine::new(&g, &rt)
            .with_hop_cache(cache.clone())
            .worst_case_disparity(t6, AnalysisConfig::default())
            .unwrap();
        let warmed = cache.len();
        assert!(warmed > 0, "the first engine fills the shared cache");
        // A second engine over the same graph reuses the warmed cache and
        // produces the identical report.
        let second = AnalysisEngine::new(&g, &rt)
            .with_hop_cache(cache.clone())
            .worst_case_disparity(t6, AnalysisConfig::default())
            .unwrap();
        assert_eq!(cache.len(), warmed, "no new edges on the warm path");
        assert_reports_identical(&first, &second);
        let direct = worst_case_disparity_direct(&g, t6, &rt, AnalysisConfig::default()).unwrap();
        assert_reports_identical(&direct, &second);
    }

    #[test]
    fn hop_cache_handle_shares_storage() {
        let (g, t6) = fig2();
        let rt = response_times(&g).unwrap();
        let engine = AnalysisEngine::new(&g, &rt);
        let handle = engine.hop_cache();
        engine
            .worst_case_disparity(t6, AnalysisConfig::default())
            .unwrap();
        assert!(!handle.is_empty(), "handle observes the engine's fills");
        assert!(format!("{handle:?}").contains("entries"));
    }

    #[test]
    fn budget_hook_stops_serial_and_parallel_loops() {
        let (g, sink) = wide(13); // 78 pairs: the parallel path engages
        let rt = response_times(&g).unwrap();
        let stop = || false;
        for workers in [1, 4] {
            let err = AnalysisEngine::new(&g, &rt)
                .with_workers(workers)
                .with_budget_hook(&stop)
                .worst_case_disparity(sink, AnalysisConfig::default())
                .unwrap_err();
            assert!(
                matches!(err, AnalysisError::BudgetExhausted),
                "workers={workers}: {err}"
            );
        }
    }

    #[test]
    fn generous_budget_hook_changes_nothing() {
        let (g, sink) = wide(13);
        let rt = response_times(&g).unwrap();
        let keep_going = || true;
        let config = AnalysisConfig::default();
        let plain = AnalysisEngine::new(&g, &rt)
            .worst_case_disparity(sink, config)
            .unwrap();
        let hooked = AnalysisEngine::new(&g, &rt)
            .with_budget_hook(&keep_going)
            .worst_case_disparity(sink, config)
            .unwrap();
        assert_reports_identical(&plain, &hooked);
    }

    #[test]
    fn budget_hook_can_fire_mid_analysis() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let (g, sink) = wide(13);
        let rt = response_times(&g).unwrap();
        // Allow a few checks, then cut the budget: exercises the
        // mid-loop stride checks rather than the entry check.
        let calls = AtomicUsize::new(0);
        let hook = move || calls.fetch_add(1, Ordering::Relaxed) < 3;
        let err = AnalysisEngine::new(&g, &rt)
            .with_workers(1)
            .with_budget_hook(&hook)
            .worst_case_disparity(sink, AnalysisConfig::default())
            .unwrap_err();
        assert!(matches!(err, AnalysisError::BudgetExhausted));
    }

    #[test]
    fn hop_cache_hits_accumulate() {
        let (g, t6) = fig2();
        let rt = response_times(&g).unwrap();
        disparity_obs::reset();
        disparity_obs::enable();
        let engine = AnalysisEngine::new(&g, &rt);
        engine
            .worst_case_disparity(t6, AnalysisConfig::default())
            .unwrap();
        let snap = disparity_obs::snapshot();
        disparity_obs::disable();
        disparity_obs::reset();
        let counter = |name: &str| {
            snap.counters
                .iter()
                .find(|(n, _)| n == name)
                .map_or(0, |&(_, v)| v)
        };
        // Other tests may record concurrently while obs is enabled, so
        // only monotone lower bounds are safe to assert. 6 edges shared
        // by 4 chains guarantee both misses (first touch) and hits
        // (every re-use).
        assert!(counter("engine.hop_cache.misses") >= 1);
        assert!(counter("engine.hop_cache.hits") >= 1);
        assert!(counter("engine.chain_tables") >= 4);
        assert!(counter("engine.pairs") >= 6);
    }
}
