//! Pairwise disparity bounds: Theorem 1 (independent chains) and Theorem 2
//! (fork-join aware).
//!
//! Both theorems bound `|t(λ̄¹) − t(ν̄¹)|` — the timestamp difference of
//! the two sources an output traces back to along chains `λ` and `ν` that
//! end at the same task.
//!
//! * **Theorem 1** treats the chains as independent: with
//!   `O_{λ,ν} = max(|W(λ) − B(ν)|, |W(ν) − B(λ)|)` the difference is at
//!   most `O_{λ,ν}`, rounded down to a whole multiple of `T(λ¹)` when the
//!   two chains sample the *same* source.
//! * **Theorem 2** exploits every common task `o_1 … o_c`: the jobs of
//!   `o_j` appearing in `λ̄` and `ν̄` can only be `x_j…y_j` releases apart,
//!   a range computed by a backward recursion over the sub-chain pairs
//!   `(α_j, β_j)`; the final bound applies Lemma 3 at `o_1` with the window
//!   `[x_1, y_1]`.

use disparity_model::chain::Chain;
use disparity_model::graph::CauseEffectGraph;
use disparity_model::ids::TaskId;
use disparity_model::time::{div_ceil, div_floor, Duration};
use disparity_sched::wcrt::ResponseTimes;

use crate::backward::{backward_bounds, BackwardBounds};
use crate::error::AnalysisError;
use crate::window::SamplingWindow;

/// Which pairwise bound to apply.
///
/// Theorem 2 is *usually* tighter than Theorem 1 but not provably so: the
/// sub-chain windows it composes can, in corner cases, be looser than the
/// direct whole-chain bound (the crate's test suite contains such an
/// instance). Both are sound upper bounds, so their minimum is too —
/// that is [`Method::Combined`], an extension over the paper.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum Method {
    /// Theorem 1: chains treated as independent (the paper's **P-diff**).
    Independent,
    /// Theorem 2: fork-join structure exploited (the paper's **S-diff**).
    #[default]
    ForkJoin,
    /// `min(P-diff, S-diff)`: dominates both (extension, not in the paper).
    Combined,
}

/// Validates that two chains form an analyzable pair: distinct, same tail,
/// heads that are source tasks.
fn validate_pair(
    graph: &CauseEffectGraph,
    lambda: &Chain,
    nu: &Chain,
) -> Result<(), AnalysisError> {
    if lambda == nu {
        return Err(AnalysisError::IdenticalChains);
    }
    if lambda.tail() != nu.tail() {
        return Err(AnalysisError::TailMismatch {
            lambda_tail: lambda.tail(),
            nu_tail: nu.tail(),
        });
    }
    for c in [lambda, nu] {
        if !graph.is_source(c.head()) {
            return Err(AnalysisError::HeadNotSource { head: c.head() });
        }
    }
    Ok(())
}

/// Theorem 1 (**P-diff**): bound on `|t(λ̄¹) − t(ν̄¹)|` assuming the two
/// chains are independent.
///
/// # Errors
///
/// * [`AnalysisError::IdenticalChains`] when `λ = ν`.
/// * [`AnalysisError::TailMismatch`] when the chains end at different tasks.
/// * [`AnalysisError::HeadNotSource`] when a head is not a source task.
///
/// # Examples
///
/// ```
/// use disparity_model::prelude::*;
/// use disparity_sched::wcrt::response_times;
/// use disparity_core::pairwise::theorem1_bound;
///
/// // s1 -> t <- s2 : a two-sensor fusion task.
/// let mut b = SystemBuilder::new();
/// let ecu = b.add_ecu("e");
/// let ms = Duration::from_millis;
/// let s1 = b.add_task(TaskSpec::periodic("s1", ms(10)));
/// let s2 = b.add_task(TaskSpec::periodic("s2", ms(30)));
/// let t = b.add_task(TaskSpec::periodic("t", ms(30)).execution(ms(1), ms(2)).on_ecu(ecu));
/// b.connect(s1, t);
/// b.connect(s2, t);
/// let g = b.build()?;
/// let rt = response_times(&g)?;
/// let lam = Chain::new(&g, vec![s1, t])?;
/// let nu = Chain::new(&g, vec![s2, t])?;
/// let bound = theorem1_bound(&g, &lam, &nu, &rt)?;
/// assert!(bound >= ms(0));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn theorem1_bound(
    graph: &CauseEffectGraph,
    lambda: &Chain,
    nu: &Chain,
    rt: &ResponseTimes,
) -> Result<Duration, AnalysisError> {
    theorem1_bound_with(graph, lambda, nu, &|c| backward_bounds(graph, c, rt))
}

/// [`theorem1_bound`] over an arbitrary per-chain bounds provider.
///
/// # Errors
///
/// Same conditions as [`theorem1_bound`].
pub fn theorem1_bound_with(
    graph: &CauseEffectGraph,
    lambda: &Chain,
    nu: &Chain,
    bounds_of: &dyn Fn(&Chain) -> BackwardBounds,
) -> Result<Duration, AnalysisError> {
    validate_pair(graph, lambda, nu)?;
    let bl = bounds_of(lambda);
    let bn = bounds_of(nu);
    let o = (bl.wcbt - bn.bcbt).abs().max((bn.wcbt - bl.bcbt).abs());
    Ok(round_same_source(graph, lambda, nu, o))
}

/// When both chains start at the same source task, the two traced
/// timestamps are releases of the same task, so their difference is a whole
/// multiple of the source period: round the bound down accordingly
/// (second case of Theorems 1 and 2).
fn round_same_source(
    graph: &CauseEffectGraph,
    lambda: &Chain,
    nu: &Chain,
    o: Duration,
) -> Duration {
    if lambda.head() == nu.head() {
        let t = graph.task(lambda.head()).period();
        t * o.div_floor(t)
    } else {
        o
    }
}

/// The fork-join decomposition of a chain pair: everything Theorem 2 and
/// Algorithm 1 need.
#[derive(Debug, Clone)]
pub struct ForkJoinDecomposition {
    /// The common tasks `o_1 … o_c` (graph sources excluded); `o_c` is the
    /// pair's shared tail.
    pub commons: Vec<TaskId>,
    /// Sub-chains `α_1 … α_c` of `λ`.
    pub alphas: Vec<Chain>,
    /// Sub-chains `β_1 … β_c` of `ν`.
    pub betas: Vec<Chain>,
    /// Backward bounds of each `α_j`.
    pub alpha_bounds: Vec<BackwardBounds>,
    /// Backward bounds of each `β_j`.
    pub beta_bounds: Vec<BackwardBounds>,
    /// `x_1 … x_c`: lower job-index offsets at each common task.
    pub x: Vec<i64>,
    /// `y_1 … y_c`: upper job-index offsets at each common task.
    pub y: Vec<i64>,
}

impl ForkJoinDecomposition {
    /// Number of common tasks `c`.
    #[must_use]
    pub fn common_count(&self) -> usize {
        self.commons.len()
    }

    /// The sampling window of `λ`'s source relative to the `o_1` job of
    /// `λ̄` (Lemma 1 applied to `α_1`): `[−W(α_1), −B(α_1)]`.
    #[must_use]
    pub fn lambda_source_window(&self) -> SamplingWindow {
        SamplingWindow::from_backward_bounds(self.alpha_bounds[0])
    }

    /// The sampling window of `ν`'s source relative to the `o_1` job of
    /// `λ̄` (Lemma 2 applied to `β_1` with the job-index window
    /// `[x_1, y_1]`): `[x_1·T(o_1) − W(β_1), y_1·T(o_1) − B(β_1)]`.
    ///
    /// # Panics
    ///
    /// Panics if `graph` does not contain `o_1`.
    #[must_use]
    pub fn nu_source_window(&self, graph: &CauseEffectGraph) -> SamplingWindow {
        let t = graph.task(self.commons[0]).period();
        SamplingWindow::new(
            t * self.x[0] - self.beta_bounds[0].wcbt,
            t * self.y[0] - self.beta_bounds[0].bcbt,
        )
    }

    /// Lemma 3's `O^{x_1,y_1}_{α_1,β_1}` for this decomposition.
    ///
    /// # Panics
    ///
    /// Panics if `graph` does not contain `o_1`.
    #[must_use]
    pub fn offset_bound(&self, graph: &CauseEffectGraph) -> Duration {
        let t1 = graph.task(self.commons[0]).period();
        let a = self.alpha_bounds[0];
        let b = self.beta_bounds[0];
        (b.wcbt - a.bcbt - t1 * self.x[0])
            .abs()
            .max((b.bcbt - a.wcbt - t1 * self.y[0]).abs())
    }
}

/// Computes the Theorem 2 decomposition of a chain pair.
///
/// # Errors
///
/// Same conditions as [`theorem1_bound`].
pub fn decompose(
    graph: &CauseEffectGraph,
    lambda: &Chain,
    nu: &Chain,
    rt: &ResponseTimes,
) -> Result<ForkJoinDecomposition, AnalysisError> {
    decompose_with(graph, lambda, nu, &|c| backward_bounds(graph, c, rt))
}

/// [`decompose`] over an arbitrary per-chain bounds provider. The theorem
/// machinery is sound for *any* sound `(W, B)` backward-time bounds — this
/// is what lets the LET communication model reuse it.
pub fn decompose_with(
    graph: &CauseEffectGraph,
    lambda: &Chain,
    nu: &Chain,
    bounds_of: &dyn Fn(&Chain) -> BackwardBounds,
) -> Result<ForkJoinDecomposition, AnalysisError> {
    validate_pair(graph, lambda, nu)?;
    let commons = lambda.common_tasks(nu, graph);
    debug_assert!(
        commons.last() == Some(&lambda.tail()),
        "the shared tail must be the last common task"
    );
    let alphas = lambda.split_at(&commons);
    let betas = nu.split_at(&commons);
    let alpha_bounds: Vec<BackwardBounds> = alphas.iter().map(bounds_of).collect();
    let beta_bounds: Vec<BackwardBounds> = betas.iter().map(bounds_of).collect();

    let c = commons.len();
    let mut x = vec![0i64; c];
    let mut y = vec![0i64; c];
    // x_c = y_c = 0 (the analyzed job is shared); recurse downwards.
    for j in (0..c.saturating_sub(1)).rev() {
        let t_j = graph.task(commons[j]).period();
        let t_next = graph.task(commons[j + 1]).period();
        let num_x = alpha_bounds[j + 1].bcbt - beta_bounds[j + 1].wcbt + t_next * x[j + 1];
        let num_y = alpha_bounds[j + 1].wcbt - beta_bounds[j + 1].bcbt + t_next * y[j + 1];
        x[j] = div_ceil(num_x.as_nanos(), t_j.as_nanos());
        y[j] = div_floor(num_y.as_nanos(), t_j.as_nanos());
    }

    if disparity_obs::is_enabled() {
        disparity_obs::counter_add("sdiff.decompositions", 1);
        disparity_obs::counter_add("sdiff.recursion_steps", c.saturating_sub(1) as u64);
        disparity_obs::observe("sdiff.common_tasks", i64::try_from(c).unwrap_or(i64::MAX));
        for j in 0..c {
            // The paper's job-index window width `y_j − x_j` (Theorem 2).
            disparity_obs::observe("sdiff.window_span", y[j].saturating_sub(x[j]));
        }
    }

    Ok(ForkJoinDecomposition {
        commons,
        alphas,
        betas,
        alpha_bounds,
        beta_bounds,
        x,
        y,
    })
}

/// Theorem 2 (**S-diff**): fork-join-aware bound on `|t(λ̄¹) − t(ν̄¹)|`.
///
/// Always applicable when [`theorem1_bound`] is; when the only common task
/// is the shared tail the two bounds coincide.
///
/// # Errors
///
/// Same conditions as [`theorem1_bound`].
///
/// # Examples
///
/// ```
/// use disparity_model::prelude::*;
/// use disparity_sched::wcrt::response_times;
/// use disparity_core::pairwise::{theorem1_bound, theorem2_bound};
///
/// // fork-join: s -> a -> t, s -> b -> t sharing the source s.
/// let mut bld = SystemBuilder::new();
/// let ecu = bld.add_ecu("e");
/// let ms = Duration::from_millis;
/// let s = bld.add_task(TaskSpec::periodic("s", ms(10)));
/// let a = bld.add_task(TaskSpec::periodic("a", ms(10)).execution(ms(1), ms(1)).on_ecu(ecu));
/// let b = bld.add_task(TaskSpec::periodic("b", ms(20)).execution(ms(1), ms(2)).on_ecu(ecu));
/// let t = bld.add_task(TaskSpec::periodic("t", ms(20)).execution(ms(1), ms(3)).on_ecu(ecu));
/// bld.connect(s, a);
/// bld.connect(s, b);
/// bld.connect(a, t);
/// bld.connect(b, t);
/// let g = bld.build()?;
/// let rt = response_times(&g)?;
/// let lam = Chain::new(&g, vec![s, a, t])?;
/// let nu = Chain::new(&g, vec![s, b, t])?;
/// let s_diff = theorem2_bound(&g, &lam, &nu, &rt)?;
/// let p_diff = theorem1_bound(&g, &lam, &nu, &rt)?;
/// assert!(s_diff <= p_diff);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn theorem2_bound(
    graph: &CauseEffectGraph,
    lambda: &Chain,
    nu: &Chain,
    rt: &ResponseTimes,
) -> Result<Duration, AnalysisError> {
    theorem2_bound_with(graph, lambda, nu, &|c| backward_bounds(graph, c, rt))
}

/// [`theorem2_bound`] over an arbitrary per-chain bounds provider.
///
/// # Errors
///
/// Same conditions as [`theorem1_bound`].
pub fn theorem2_bound_with(
    graph: &CauseEffectGraph,
    lambda: &Chain,
    nu: &Chain,
    bounds_of: &dyn Fn(&Chain) -> BackwardBounds,
) -> Result<Duration, AnalysisError> {
    let d = decompose_with(graph, lambda, nu, bounds_of)?;
    let o = d.offset_bound(graph);
    Ok(round_same_source(graph, lambda, nu, o))
}

/// Dispatches on [`Method`].
///
/// # Errors
///
/// Same conditions as [`theorem1_bound`].
pub fn pairwise_bound(
    graph: &CauseEffectGraph,
    lambda: &Chain,
    nu: &Chain,
    rt: &ResponseTimes,
    method: Method,
) -> Result<Duration, AnalysisError> {
    match method {
        Method::Independent => theorem1_bound(graph, lambda, nu, rt),
        Method::ForkJoin => theorem2_bound(graph, lambda, nu, rt),
        Method::Combined => {
            Ok(theorem1_bound(graph, lambda, nu, rt)?.min(theorem2_bound(graph, lambda, nu, rt)?))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disparity_model::builder::SystemBuilder;
    use disparity_model::task::TaskSpec;
    use disparity_sched::wcrt::response_times;

    fn ms(v: i64) -> Duration {
        Duration::from_millis(v)
    }

    /// The paper's Fig. 2 topology with plausible parameters.
    fn fig2() -> (CauseEffectGraph, ResponseTimes, [TaskId; 6]) {
        let mut b = SystemBuilder::new();
        let e1 = b.add_ecu("ecu1");
        let e2 = b.add_ecu("ecu2");
        let t1 = b.add_task(TaskSpec::periodic("t1", ms(10)));
        let t2 = b.add_task(TaskSpec::periodic("t2", ms(20)));
        let t3 = b.add_task(
            TaskSpec::periodic("t3", ms(10))
                .execution(ms(1), ms(2))
                .on_ecu(e1),
        );
        let t4 = b.add_task(
            TaskSpec::periodic("t4", ms(20))
                .execution(ms(2), ms(4))
                .on_ecu(e1),
        );
        let t5 = b.add_task(
            TaskSpec::periodic("t5", ms(30))
                .execution(ms(2), ms(5))
                .on_ecu(e2),
        );
        let t6 = b.add_task(
            TaskSpec::periodic("t6", ms(30))
                .execution(ms(3), ms(6))
                .on_ecu(e2),
        );
        b.connect(t1, t3);
        b.connect(t2, t3);
        b.connect(t3, t4);
        b.connect(t3, t5);
        b.connect(t4, t6);
        b.connect(t5, t6);
        let g = b.build().unwrap();
        let rt = response_times(&g).unwrap();
        (g, rt, [t1, t2, t3, t4, t5, t6])
    }

    #[test]
    fn validation_rejects_bad_pairs() {
        let (g, rt, [t1, t2, t3, t4, t5, t6]) = fig2();
        let lam = Chain::new(&g, vec![t1, t3, t4, t6]).unwrap();
        assert!(matches!(
            theorem1_bound(&g, &lam, &lam, &rt),
            Err(AnalysisError::IdenticalChains)
        ));
        let short = Chain::new(&g, vec![t2, t3, t5]).unwrap();
        assert!(matches!(
            theorem1_bound(&g, &lam, &short, &rt),
            Err(AnalysisError::TailMismatch { .. })
        ));
        let not_source = Chain::new(&g, vec![t3, t4, t6]).unwrap();
        assert!(matches!(
            theorem2_bound(&g, &lam, &not_source, &rt),
            Err(AnalysisError::HeadNotSource { head }) if head == t3
        ));
    }

    #[test]
    fn decomposition_matches_paper_example() {
        let (g, rt, [t1, t2, t3, _, t5, t6]) = fig2();
        let lam = Chain::new(&g, vec![t1, t3, g.find_task("t4").unwrap(), t6]).unwrap();
        let nu = Chain::new(&g, vec![t2, t3, t5, t6]).unwrap();
        let d = decompose(&g, &lam, &nu, &rt).unwrap();
        assert_eq!(d.commons, vec![t3, t6]);
        assert_eq!(d.common_count(), 2);
        assert_eq!(d.x[1], 0);
        assert_eq!(d.y[1], 0);
        assert_eq!(d.alphas[0].tasks(), &[t1, t3]);
        assert_eq!(d.betas[0].tasks(), &[t2, t3]);
        // x_1 <= y_1 must describe a non-empty index window here.
        assert!(d.x[0] <= d.y[0], "x={} y={}", d.x[0], d.y[0]);
    }

    #[test]
    fn combined_method_dominates_both_theorems() {
        let (g, rt, [_, _, _, _, _, t6]) = fig2();
        let chains = g.chains_to(t6, 64).unwrap();
        assert_eq!(chains.len(), 4);
        for i in 0..chains.len() {
            for j in (i + 1)..chains.len() {
                let p = theorem1_bound(&g, &chains[i], &chains[j], &rt).unwrap();
                let s = theorem2_bound(&g, &chains[i], &chains[j], &rt).unwrap();
                let c = pairwise_bound(&g, &chains[i], &chains[j], &rt, Method::Combined).unwrap();
                assert_eq!(c, p.min(s));
                assert!(!s.is_negative());
                assert!(!p.is_negative());
            }
        }
    }

    /// Theorem 2 is *not* provably tighter than Theorem 1: on the paper's
    /// own Fig. 2 topology (with our parameters) the pair
    /// `{τ1,τ3,τ4,τ6}` vs `{τ2,τ3,τ5,τ6}` has S-diff 75ms > P-diff 71ms.
    /// Hand-derivation: W(λ)=46, W(ν)=66, B=−5 for both, so P-diff
    /// = |66−(−5)| = 71; the recursion gives x₁=−5, y₁=4, hence
    /// S-diff = |W(β₁)−B(α₁)−x₁T(τ3)| = |20+5+50| = 75.
    #[test]
    fn theorem2_can_exceed_theorem1() {
        let (g, rt, [t1, t2, t3, t4, t5, t6]) = fig2();
        let lam = Chain::new(&g, vec![t1, t3, t4, t6]).unwrap();
        let nu = Chain::new(&g, vec![t2, t3, t5, t6]).unwrap();
        let p = theorem1_bound(&g, &lam, &nu, &rt).unwrap();
        let s = theorem2_bound(&g, &lam, &nu, &rt).unwrap();
        assert_eq!(p, ms(71));
        assert_eq!(s, ms(75));
    }

    #[test]
    fn same_source_rounds_to_period_multiple() {
        let (g, rt, [t1, _, t3, t4, t5, t6]) = fig2();
        let lam = Chain::new(&g, vec![t1, t3, t4, t6]).unwrap();
        let nu = Chain::new(&g, vec![t1, t3, t5, t6]).unwrap();
        let t = g.task(t1).period();
        for bound in [
            theorem1_bound(&g, &lam, &nu, &rt).unwrap(),
            theorem2_bound(&g, &lam, &nu, &rt).unwrap(),
        ] {
            assert_eq!(bound % t, Duration::ZERO, "{bound} not a multiple of {t}");
        }
    }

    #[test]
    fn single_common_task_makes_theorems_agree() {
        // Two disjoint chains meeting only at the sink: Theorem 2's
        // recursion is empty (c = 1, x = y = 0) and O^{0,0} = O.
        let mut b = SystemBuilder::new();
        let e = b.add_ecu("e");
        let s1 = b.add_task(TaskSpec::periodic("s1", ms(10)));
        let s2 = b.add_task(TaskSpec::periodic("s2", ms(30)));
        let a = b.add_task(
            TaskSpec::periodic("a", ms(10))
                .execution(ms(1), ms(1))
                .on_ecu(e),
        );
        let c = b.add_task(
            TaskSpec::periodic("c", ms(30))
                .execution(ms(1), ms(2))
                .on_ecu(e),
        );
        let t = b.add_task(
            TaskSpec::periodic("t", ms(30))
                .execution(ms(1), ms(3))
                .on_ecu(e),
        );
        b.connect(s1, a);
        b.connect(s2, c);
        b.connect(a, t);
        b.connect(c, t);
        let g = b.build().unwrap();
        let rt = response_times(&g).unwrap();
        let lam = Chain::new(&g, vec![s1, a, t]).unwrap();
        let nu = Chain::new(&g, vec![s2, c, t]).unwrap();
        let p = theorem1_bound(&g, &lam, &nu, &rt).unwrap();
        let s = theorem2_bound(&g, &lam, &nu, &rt).unwrap();
        assert_eq!(p, s);
        assert_eq!(
            pairwise_bound(&g, &lam, &nu, &rt, Method::ForkJoin).unwrap(),
            s
        );
        assert_eq!(
            pairwise_bound(&g, &lam, &nu, &rt, Method::Independent).unwrap(),
            p
        );
    }

    #[test]
    fn windows_are_consistent_with_offset_bound() {
        let (g, rt, [t1, t2, t3, t4, t5, t6]) = fig2();
        let lam = Chain::new(&g, vec![t1, t3, t4, t6]).unwrap();
        let nu = Chain::new(&g, vec![t2, t3, t5, t6]).unwrap();
        let d = decompose(&g, &lam, &nu, &rt).unwrap();
        let wl = d.lambda_source_window();
        let wn = d.nu_source_window(&g);
        assert_eq!(wl.max_separation(wn), d.offset_bound(&g));
    }
}
