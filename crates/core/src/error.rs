//! Error types for the disparity analysis.

use core::fmt;

use disparity_model::error::ModelError;
use disparity_model::ids::TaskId;
use disparity_sched::error::SchedError;

/// Errors produced by the disparity analysis and buffer optimization.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AnalysisError {
    /// A model-level problem (invalid chain, unknown task, ...).
    Model(ModelError),
    /// A scheduling-level problem (overload, non-convergence).
    Sched(SchedError),
    /// The analysis requires `R(τ) ≤ T(τ)` for every task (paper §II.B),
    /// but at least one task misses its deadline.
    Unschedulable {
        /// The tasks whose worst-case response time exceeds their period.
        violations: Vec<TaskId>,
    },
    /// Buffer design needs a chain with at least two tasks (a `π²` whose
    /// input channel can be resized).
    ChainTooShort {
        /// Tail task of the offending chain.
        chain_tail: TaskId,
    },
    /// The two chains handed to a pairwise analysis do not end at the same
    /// task.
    TailMismatch {
        /// Tail of the first chain.
        lambda_tail: TaskId,
        /// Tail of the second chain.
        nu_tail: TaskId,
    },
    /// A pairwise analysis was asked about two identical chains.
    IdenticalChains,
    /// A chain handed to the analysis does not start at a source task.
    HeadNotSource {
        /// The offending head task.
        head: TaskId,
    },
    /// The engine's cooperative budget hook requested a stop before the
    /// analysis completed (a soft deadline or work budget ran out). The
    /// partial results are discarded; re-run with a larger budget.
    BudgetExhausted,
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::Model(e) => write!(f, "model error: {e}"),
            AnalysisError::Sched(e) => write!(f, "scheduling error: {e}"),
            AnalysisError::Unschedulable { violations } => {
                write!(f, "{} task(s) miss their deadline", violations.len())
            }
            AnalysisError::ChainTooShort { chain_tail } => {
                write!(
                    f,
                    "chain ending at {chain_tail} is too short for buffer design"
                )
            }
            AnalysisError::TailMismatch {
                lambda_tail,
                nu_tail,
            } => {
                write!(
                    f,
                    "chains end at different tasks ({lambda_tail} vs {nu_tail})"
                )
            }
            AnalysisError::IdenticalChains => {
                write!(f, "pairwise disparity of a chain with itself is undefined")
            }
            AnalysisError::HeadNotSource { head } => {
                write!(f, "chain head {head} is not a source task")
            }
            AnalysisError::BudgetExhausted => {
                write!(f, "analysis budget exhausted before completion")
            }
        }
    }
}

impl std::error::Error for AnalysisError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AnalysisError::Model(e) => Some(e),
            AnalysisError::Sched(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for AnalysisError {
    fn from(e: ModelError) -> Self {
        AnalysisError::Model(e)
    }
}

impl From<SchedError> for AnalysisError {
    fn from(e: SchedError) -> Self {
        AnalysisError::Sched(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source_chain() {
        use std::error::Error as _;
        let e = AnalysisError::from(ModelError::EmptyChain);
        assert!(e.to_string().contains("model error"));
        assert!(e.source().is_some());
        let e = AnalysisError::IdenticalChains;
        assert!(e.source().is_none());
        assert!(!e.to_string().is_empty());
    }
}
