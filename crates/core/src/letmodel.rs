//! Time-disparity analysis under **Logical Execution Time** communication.
//!
//! The paper's related work (reference \[4\], Kordon & Tang, ECRTS 2020) analyzes
//! cause-effect latencies under the LET paradigm: a job logically reads
//! its inputs at its *release* and its output becomes visible exactly one
//! period after the release, independent of when (or where) the job
//! actually executes. LET trades latency for *determinism* — which makes
//! its backward-time bounds scheduling-free:
//!
//! For a hop `π^i → π^{i+1}` with a register channel, the consumer job's
//! release `t` satisfies `p ≤ t < p + T_i` where `p = r(π̄^i) + T_i` is
//! the producer's publish instant (an earlier `t` would read the previous
//! token, a later one the next). Hence per hop
//!
//! `T_i  ≤  r(π̄^{i+1}) − r(π̄^i)  <  2·T_i`
//!
//! and over a chain `Σ T_i ≤ len(π̄) ≤ Σ 2·T_i`. FIFO capacities shift
//! both bounds by `(n−1)·T_i` exactly as the paper's Lemma 6.
//!
//! Because Theorems 1 and 2 only consume *some* sound backward-time
//! bounds, the whole disparity machinery applies unchanged — this module
//! wires the LET bounds through
//! [`crate::pairwise::theorem1_bound_with`] /
//! [`crate::pairwise::theorem2_bound_with`].
//! Everything here is an extension over the paper, clearly separated in
//! its own module.

use disparity_model::chain::Chain;
use disparity_model::graph::CauseEffectGraph;
use disparity_model::ids::TaskId;
use disparity_model::time::Duration;

use crate::backward::{buffer_shift, BackwardBounds};
use crate::error::AnalysisError;
use crate::pairwise::{theorem1_bound_with, theorem2_bound_with, Method};

/// Backward-time bounds of a chain under LET communication:
/// `[Σ (T_i + shift_i), Σ (2·T_i + shift_i)]` over the chain's hops.
///
/// Scheduling-independent: no response times are needed (that is LET's
/// selling point) — the system does not even need to be schedulable for
/// the *dataflow* bounds to hold.
///
/// # Panics
///
/// Panics if `chain` is not a path of `graph`.
///
/// # Examples
///
/// ```
/// use disparity_model::prelude::*;
/// use disparity_core::letmodel::let_backward_bounds;
///
/// let mut b = SystemBuilder::new();
/// let ecu = b.add_ecu("e");
/// let ms = Duration::from_millis;
/// let s = b.add_task(TaskSpec::periodic("s", ms(10)));
/// let t = b.add_task(TaskSpec::periodic("t", ms(20)).execution(ms(1), ms(2)).on_ecu(ecu));
/// b.connect(s, t);
/// let g = b.build()?;
/// let chain = Chain::new(&g, vec![s, t])?;
/// let bounds = let_backward_bounds(&g, &chain);
/// assert_eq!(bounds.bcbt, ms(10));
/// assert_eq!(bounds.wcbt, ms(20));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[must_use]
pub fn let_backward_bounds(graph: &CauseEffectGraph, chain: &Chain) -> BackwardBounds {
    let mut wcbt = Duration::ZERO;
    let mut bcbt = Duration::ZERO;
    for (a, b) in chain.edges() {
        let period = graph.task(a).period();
        let channel = graph
            .channel_between(a, b)
            .unwrap_or_else(|| panic!("{a} -> {b} is not an edge"));
        let shift = buffer_shift(channel.capacity(), period);
        bcbt += period + shift;
        wcbt += period * 2 + shift;
    }
    BackwardBounds { wcbt, bcbt }
}

/// Pairwise disparity bound under LET, using Theorem 1 or 2 with the LET
/// backward-time bounds.
///
/// # Errors
///
/// Same validation errors as the implicit-communication pairwise analysis
/// (identical chains / tail mismatch / non-source head).
pub fn let_pairwise_bound(
    graph: &CauseEffectGraph,
    lambda: &Chain,
    nu: &Chain,
    method: Method,
) -> Result<Duration, AnalysisError> {
    let bounds = |c: &Chain| let_backward_bounds(graph, c);
    match method {
        Method::Independent => theorem1_bound_with(graph, lambda, nu, &bounds),
        Method::ForkJoin => theorem2_bound_with(graph, lambda, nu, &bounds),
        Method::Combined => Ok(theorem1_bound_with(graph, lambda, nu, &bounds)?
            .min(theorem2_bound_with(graph, lambda, nu, &bounds)?)),
    }
}

/// Worst-case time disparity of `task` under LET: the maximum pairwise
/// bound over all chain pairs, with the S-diff pairs truncated at their
/// last joint task (as in the implicit-communication analyzer).
///
/// # Errors
///
/// * Chain-enumeration errors (budget exceeded, foreign task).
/// * Pairwise validation errors.
pub fn let_worst_case_disparity(
    graph: &CauseEffectGraph,
    task: TaskId,
    method: Method,
    chain_limit: usize,
) -> Result<Duration, AnalysisError> {
    let chains = graph.chains_to(task, chain_limit)?;
    let mut bound = Duration::ZERO;
    for i in 0..chains.len() {
        for j in (i + 1)..chains.len() {
            let pair = match method {
                Method::Independent => let_pairwise_bound(graph, &chains[i], &chains[j], method)?,
                Method::ForkJoin | Method::Combined => {
                    let Some((lam, nu)) = chains[i].truncate_to_last_joint(&chains[j]) else {
                        continue; // disjoint suffixes: nothing to compare
                    };
                    let s = let_pairwise_bound(graph, &lam, &nu, Method::ForkJoin)?;
                    if method == Method::Combined {
                        s.min(let_pairwise_bound(
                            graph,
                            &chains[i],
                            &chains[j],
                            Method::Independent,
                        )?)
                    } else {
                        s
                    }
                }
            };
            bound = bound.max(pair);
        }
    }
    Ok(bound)
}

#[cfg(test)]
mod tests {
    use super::*;
    use disparity_model::builder::SystemBuilder;
    use disparity_model::task::TaskSpec;

    fn ms(v: i64) -> Duration {
        Duration::from_millis(v)
    }

    fn fork_join() -> (CauseEffectGraph, [TaskId; 5]) {
        let mut b = SystemBuilder::new();
        let e = b.add_ecu("e");
        let s1 = b.add_task(TaskSpec::periodic("s1", ms(10)));
        let s2 = b.add_task(TaskSpec::periodic("s2", ms(30)));
        let a = b.add_task(
            TaskSpec::periodic("a", ms(10))
                .execution(ms(1), ms(2))
                .on_ecu(e),
        );
        let c = b.add_task(
            TaskSpec::periodic("c", ms(30))
                .execution(ms(1), ms(4))
                .on_ecu(e),
        );
        let t = b.add_task(
            TaskSpec::periodic("t", ms(30))
                .execution(ms(1), ms(3))
                .on_ecu(e),
        );
        b.connect(s1, a);
        b.connect(s2, c);
        b.connect(a, t);
        b.connect(c, t);
        (b.build().unwrap(), [s1, s2, a, c, t])
    }

    #[test]
    fn hop_bounds_are_period_sums() {
        let (g, [s1, _, a, _, t]) = fork_join();
        let chain = Chain::new(&g, vec![s1, a, t]).unwrap();
        let b = let_backward_bounds(&g, &chain);
        assert_eq!(b.bcbt, ms(10 + 10));
        assert_eq!(b.wcbt, ms(20 + 20));
    }

    #[test]
    fn buffered_channels_shift_let_bounds() {
        let (mut g, [s1, _, a, _, t]) = fork_join();
        let ch = g.channel_between(s1, a).unwrap().id();
        g.set_channel_capacity(ch, 3).unwrap();
        let chain = Chain::new(&g, vec![s1, a, t]).unwrap();
        let b = let_backward_bounds(&g, &chain);
        assert_eq!(b.bcbt, ms(20 + 20)); // +2 source periods
        assert_eq!(b.wcbt, ms(40 + 20));
    }

    #[test]
    fn pairwise_methods_agree_with_manual_o() {
        let (g, [s1, s2, a, c, t]) = fork_join();
        let lam = Chain::new(&g, vec![s1, a, t]).unwrap();
        let nu = Chain::new(&g, vec![s2, c, t]).unwrap();
        // W(λ)=40, B(λ)=20; W(ν)=120, B(ν)=60.
        // O = max(|40−60|, |120−20|) = 100.
        let p = let_pairwise_bound(&g, &lam, &nu, Method::Independent).unwrap();
        assert_eq!(p, ms(100));
        let s = let_pairwise_bound(&g, &lam, &nu, Method::ForkJoin).unwrap();
        assert!(s <= p);
        assert_eq!(
            let_pairwise_bound(&g, &lam, &nu, Method::Combined).unwrap(),
            p.min(s)
        );
    }

    #[test]
    fn task_level_bound_enumerates_pairs() {
        let (g, [.., t]) = fork_join();
        let p = let_worst_case_disparity(&g, t, Method::Independent, 64).unwrap();
        let s = let_worst_case_disparity(&g, t, Method::ForkJoin, 64).unwrap();
        let c = let_worst_case_disparity(&g, t, Method::Combined, 64).unwrap();
        assert!(c <= p && c <= s);
        assert!(p > Duration::ZERO);
    }
}
