//! Analytical end-to-end latency bounds (data age, reaction time).
//!
//! The paper's backward-time machinery yields the two classic end-to-end
//! latencies almost for free; a downstream user auditing a chain wants all
//! three numbers (disparity, age, reaction) from one API.
//!
//! * **Data age** (footnote 2 of the paper): the age of an output is its
//!   backward time plus the tail job's response,
//!   `age ≤ W(π) + R(π^{|π|})`.
//! * **Maximum reaction time**: every tail job's traced source lies at
//!   most `W(π)` before its release (Lemma 4), so the first tail job
//!   released at or after `r(stimulus) + W(π)` — at most `T(π^{|π|})`
//!   later — reacts to it, finishing within its response time:
//!   `reaction ≤ W(π) + T(π^{|π|}) + R(π^{|π|})`.
//!
//! Both bounds inherit Lemma 4's standing assumptions (schedulable system,
//! steady state: the pipeline has filled so immediate backward job chains
//! exist).

use disparity_model::chain::Chain;
use disparity_model::graph::CauseEffectGraph;
use disparity_model::time::Duration;
use disparity_sched::wcrt::ResponseTimes;

use crate::backward::wcbt;

/// Upper bound on the data age of `chain`'s outputs:
/// `W(π) + R(π^{|π|})`.
///
/// # Panics
///
/// Panics if `chain` is not a path of `graph`.
///
/// # Examples
///
/// ```
/// use disparity_model::prelude::*;
/// use disparity_sched::wcrt::response_times;
/// use disparity_core::latency::data_age_bound;
///
/// let mut b = SystemBuilder::new();
/// let ecu = b.add_ecu("e");
/// let ms = Duration::from_millis;
/// let s = b.add_task(TaskSpec::periodic("s", ms(10)));
/// let t = b.add_task(TaskSpec::periodic("t", ms(10)).execution(ms(1), ms(2)).on_ecu(ecu));
/// b.connect(s, t);
/// let g = b.build()?;
/// let rt = response_times(&g)?;
/// let chain = Chain::new(&g, vec![s, t])?;
/// // W(π) = 10ms (one sensor period), R(t) = 2ms.
/// assert_eq!(data_age_bound(&g, &chain, &rt), ms(12));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[must_use]
pub fn data_age_bound(graph: &CauseEffectGraph, chain: &Chain, rt: &ResponseTimes) -> Duration {
    wcbt(graph, chain, rt) + rt.wcrt(chain.tail())
}

/// Upper bound on the maximum reaction time of `chain`:
/// `W(π) + T(π^{|π|}) + R(π^{|π|})`.
///
/// # Panics
///
/// Panics if `chain` is not a path of `graph`.
#[must_use]
pub fn reaction_time_bound(
    graph: &CauseEffectGraph,
    chain: &Chain,
    rt: &ResponseTimes,
) -> Duration {
    wcbt(graph, chain, rt) + graph.task(chain.tail()).period() + rt.wcrt(chain.tail())
}

#[cfg(test)]
mod tests {
    use super::*;
    use disparity_model::builder::SystemBuilder;
    use disparity_model::task::TaskSpec;
    use disparity_sched::wcrt::response_times;

    fn ms(v: i64) -> Duration {
        Duration::from_millis(v)
    }

    fn pipeline() -> (CauseEffectGraph, Chain, ResponseTimes) {
        let mut b = SystemBuilder::new();
        let e = b.add_ecu("e");
        let s = b.add_task(TaskSpec::periodic("s", ms(10)));
        let a = b.add_task(
            TaskSpec::periodic("a", ms(10))
                .execution(ms(1), ms(2))
                .on_ecu(e),
        );
        let t = b.add_task(
            TaskSpec::periodic("t", ms(20))
                .execution(ms(1), ms(3))
                .on_ecu(e),
        );
        b.connect(s, a);
        b.connect(a, t);
        let g = b.build().unwrap();
        let rt = response_times(&g).unwrap();
        let c = Chain::new(&g, vec![s, a, t]).unwrap();
        (g, c, rt)
    }

    #[test]
    fn age_bound_adds_tail_response() {
        let (g, c, rt) = pipeline();
        assert_eq!(
            data_age_bound(&g, &c, &rt),
            wcbt(&g, &c, &rt) + rt.wcrt(c.tail())
        );
    }

    #[test]
    fn reaction_bound_dominates_age_bound() {
        let (g, c, rt) = pipeline();
        assert!(reaction_time_bound(&g, &c, &rt) > data_age_bound(&g, &c, &rt));
        assert_eq!(
            reaction_time_bound(&g, &c, &rt) - data_age_bound(&g, &c, &rt),
            g.task(c.tail()).period()
        );
    }
}
