//! Backward-time bounds of a chain (Lemmas 4, 5 and 6 of the paper).
//!
//! The *backward time* of the immediate backward job chain `π̄` ending at a
//! job of the tail task is `len(π̄) = r(π̄^{|π|}) − r(π̄^1)` — how far back
//! in time the output's source was sampled. This module bounds it under
//! non-preemptive fixed-priority scheduling:
//!
//! * **Lemma 4** (upper bound, WCBT): `W(π) = Σ_{i<|π|} θ_i` where
//!   `θ_i = T(π^i) + R(π^i)` across ECUs,
//!   `θ_i = T(π^i)` on the same ECU if `π^i ∈ hp(π^{i+1})`, and
//!   `θ_i = T(π^i) + R(π^i) − (W(π^i) + B(π^{i+1}))` otherwise.
//! * **Lemma 5** (lower bound, BCBT): `B(π) = Σ_i B(π^i) − R(π^{|π|})`,
//!   which may legitimately be negative.
//! * **Lemma 6** (FIFO buffers): a channel of capacity `n` kept full in the
//!   long term delays the consumed token by `(n−1)` producer periods, so
//!   both bounds shift by `+(n−1)·T(producer)`.
//!
//! Lemma 6 in the paper is stated for the input channel of `π²`; the same
//! peek-the-oldest argument applies verbatim to any edge of the chain, so
//! [`backward_bounds`] applies the shift for *every* buffered channel it
//! crosses (a register, capacity 1, contributes nothing).

use disparity_model::chain::Chain;
use disparity_model::error::ModelError;
use disparity_model::graph::CauseEffectGraph;
use disparity_model::ids::TaskId;
use disparity_model::time::Duration;
use disparity_sched::wcrt::ResponseTimes;

use crate::error::AnalysisError;

/// Looks up the channel of an edge, reporting a structured error instead
/// of panicking when the pair is not connected.
fn edge_channel(
    graph: &CauseEffectGraph,
    from: TaskId,
    to: TaskId,
) -> Result<&disparity_model::channel::Channel, AnalysisError> {
    graph
        .channel_between(from, to)
        .ok_or(AnalysisError::Model(ModelError::NotAChain { from, to }))
}

/// Upper and lower bounds on the backward time of one chain.
///
/// # Examples
///
/// ```
/// use disparity_model::prelude::*;
/// use disparity_sched::wcrt::response_times;
/// use disparity_core::backward::backward_bounds;
///
/// let mut b = SystemBuilder::new();
/// let ecu = b.add_ecu("e");
/// let ms = Duration::from_millis;
/// let s = b.add_task(TaskSpec::periodic("s", ms(10)));
/// let t = b.add_task(TaskSpec::periodic("t", ms(10)).execution(ms(1), ms(2)).on_ecu(ecu));
/// b.connect(s, t);
/// let g = b.build()?;
/// let rt = response_times(&g)?;
/// let chain = Chain::new(&g, vec![s, t])?;
/// let bounds = backward_bounds(&g, &chain, &rt);
/// // Cross-"ECU" (s is an off-CPU stimulus): θ = T(s) + R(s) = 10ms.
/// assert_eq!(bounds.wcbt, ms(10));
/// // B = 0 + 1 − R(t) = 1 − 2 = −1ms.
/// assert_eq!(bounds.bcbt, ms(-1));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BackwardBounds {
    /// Upper bound `W(π)` on the worst-case backward time.
    pub wcbt: Duration,
    /// Lower bound `B(π)` on the best-case backward time (may be negative).
    pub bcbt: Duration,
}

impl BackwardBounds {
    /// Bounds of a trivial (single-task) chain: the backward job chain is
    /// the job itself, except that Lemma 5 still subtracts the tail's
    /// response time.
    #[must_use]
    pub fn trivial() -> Self {
        BackwardBounds {
            wcbt: Duration::ZERO,
            bcbt: Duration::ZERO,
        }
    }

    /// Shifts both bounds by the same amount (the Lemma 6 buffer shift).
    #[must_use]
    pub fn shifted(self, by: Duration) -> Self {
        BackwardBounds {
            wcbt: self.wcbt + by,
            bcbt: self.bcbt + by,
        }
    }

    /// Width `W(π) − B(π)` of the backward-time interval.
    #[must_use]
    pub fn width(self) -> Duration {
        self.wcbt - self.bcbt
    }
}

/// The per-hop bound `θ_i` of Lemma 4 for the edge `π^i → π^{i+1}`,
/// including the Lemma 6 shift `(n−1)·T(π^i)` when the connecting channel
/// is a FIFO of capacity `n > 1`.
///
/// # Panics
///
/// Panics if `(from, to)` is not an edge of `graph`.
#[must_use]
pub fn hop_bound(graph: &CauseEffectGraph, from: TaskId, to: TaskId, rt: &ResponseTimes) -> Duration {
    try_hop_bound(graph, from, to, rt).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible form of [`hop_bound`].
///
/// # Errors
///
/// [`AnalysisError::Model`] wrapping
/// [`NotAChain`](disparity_model::error::ModelError::NotAChain) when
/// `(from, to)` is not an edge of `graph`.
pub fn try_hop_bound(
    graph: &CauseEffectGraph,
    from: TaskId,
    to: TaskId,
    rt: &ResponseTimes,
) -> Result<Duration, AnalysisError> {
    let producer = graph.get_task(from).ok_or(ModelError::UnknownTask(from))?;
    let consumer = graph.get_task(to).ok_or(ModelError::UnknownTask(to))?;
    let channel = edge_channel(graph, from, to)?;
    let base = if !graph.same_ecu(from, to) {
        producer.period() + rt.wcrt(from)
    } else if graph.in_hp(from, to) {
        producer.period()
    } else {
        producer.period() + rt.wcrt(from) - (producer.wcet() + consumer.bcet())
    };
    Ok(base + buffer_shift(channel.capacity(), producer.period()))
}

/// Upper bound on the worst-case backward time of `chain` (Lemma 4 + the
/// Lemma 6 buffer shift on every buffered channel).
///
/// # Panics
///
/// Panics if `chain` is not a path of `graph` or `rt` was computed for a
/// different graph.
#[must_use]
pub fn wcbt(graph: &CauseEffectGraph, chain: &Chain, rt: &ResponseTimes) -> Duration {
    try_wcbt(graph, chain, rt).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible form of [`wcbt`].
///
/// # Errors
///
/// [`AnalysisError::Model`] when an edge of `chain` is not an edge of
/// `graph` (the chain belongs to a different graph).
pub fn try_wcbt(
    graph: &CauseEffectGraph,
    chain: &Chain,
    rt: &ResponseTimes,
) -> Result<Duration, AnalysisError> {
    let mut sum = Duration::ZERO;
    for (a, b) in chain.edges() {
        sum += try_hop_bound(graph, a, b, rt)?;
    }
    Ok(sum)
}

/// Lower bound on the best-case backward time of `chain` (Lemma 5 + the
/// Lemma 6 buffer shift on every buffered channel).
///
/// May be negative: the source job of an immediate backward job chain can
/// be released *after* the output job when response times are large.
///
/// # Panics
///
/// Panics if `chain` is not a path of `graph` or `rt` was computed for a
/// different graph.
#[must_use]
pub fn bcbt(graph: &CauseEffectGraph, chain: &Chain, rt: &ResponseTimes) -> Duration {
    try_bcbt(graph, chain, rt).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible form of [`bcbt`].
///
/// # Errors
///
/// [`AnalysisError::Model`] when a task or edge of `chain` is foreign to
/// `graph`.
pub fn try_bcbt(
    graph: &CauseEffectGraph,
    chain: &Chain,
    rt: &ResponseTimes,
) -> Result<Duration, AnalysisError> {
    let mut exec_sum = Duration::ZERO;
    for &t in chain.tasks() {
        exec_sum += graph.get_task(t).ok_or(ModelError::UnknownTask(t))?.bcet();
    }
    let mut shift = Duration::ZERO;
    for (a, b) in chain.edges() {
        let ch = edge_channel(graph, a, b)?;
        shift += buffer_shift(ch.capacity(), graph.task(a).period());
    }
    Ok(exec_sum - rt.wcrt(chain.tail()) + shift)
}

/// Both backward-time bounds of a chain.
///
/// # Panics
///
/// Panics if `chain` is not a path of `graph` or `rt` was computed for a
/// different graph.
#[must_use]
pub fn backward_bounds(
    graph: &CauseEffectGraph,
    chain: &Chain,
    rt: &ResponseTimes,
) -> BackwardBounds {
    try_backward_bounds(graph, chain, rt).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible form of [`backward_bounds`].
///
/// # Errors
///
/// [`AnalysisError::Model`] when `chain` is not a path of `graph`.
pub fn try_backward_bounds(
    graph: &CauseEffectGraph,
    chain: &Chain,
    rt: &ResponseTimes,
) -> Result<BackwardBounds, AnalysisError> {
    Ok(BackwardBounds {
        wcbt: try_wcbt(graph, chain, rt)?,
        bcbt: try_bcbt(graph, chain, rt)?,
    })
}

/// The Lemma 6 shift contributed by a channel of the given capacity whose
/// producer has period `producer_period`: `(n−1)·T`.
#[must_use]
pub fn buffer_shift(capacity: usize, producer_period: Duration) -> Duration {
    debug_assert!(capacity >= 1);
    producer_period * (i64::try_from(capacity).unwrap_or(i64::MAX) - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use disparity_model::builder::SystemBuilder;
    use disparity_model::ids::Priority;
    use disparity_model::task::TaskSpec;
    use disparity_sched::wcrt::response_times;

    fn ms(v: i64) -> Duration {
        Duration::from_millis(v)
    }

    /// s -> a -> b with a, b on the same ECU.
    fn line(prio_a: u32, prio_b: u32) -> (CauseEffectGraph, ResponseTimes, Chain) {
        let mut b = SystemBuilder::new();
        let e = b.add_ecu("e");
        let s = b.add_task(TaskSpec::periodic("s", ms(10)));
        let a = b.add_task(
            TaskSpec::periodic("a", ms(10))
                .execution(ms(1), ms(2))
                .on_ecu(e)
                .priority(Priority::new(prio_a)),
        );
        let t = b.add_task(
            TaskSpec::periodic("t", ms(20))
                .execution(ms(3), ms(4))
                .on_ecu(e)
                .priority(Priority::new(prio_b)),
        );
        b.connect(s, a);
        b.connect(a, t);
        let g = b.build().unwrap();
        let rt = response_times(&g).unwrap();
        let chain = Chain::new(&g, vec![s, a, t]).unwrap();
        (g, rt, chain)
    }

    use disparity_model::graph::CauseEffectGraph;

    #[test]
    fn wcbt_same_ecu_hp_case() {
        // a ∈ hp(t): θ(a→t) = T(a) = 10.
        let (g, rt, chain) = line(0, 1);
        // θ(s→a): different "ECU" (s unmapped): T(s) + R(s) = 10 + 0.
        assert_eq!(wcbt(&g, &chain, &rt), ms(10) + ms(10));
    }

    #[test]
    fn wcbt_same_ecu_lp_case() {
        // a ∉ hp(t): θ(a→t) = T(a) + R(a) − (W(a) + B(t)).
        let (g, rt, chain) = line(1, 0);
        let r_a = rt.wcrt(g.find_task("a").unwrap());
        let expected = ms(10) + (ms(10) + r_a - (ms(2) + ms(3)));
        assert_eq!(wcbt(&g, &chain, &rt), expected);
    }

    #[test]
    fn bcbt_subtracts_tail_response() {
        let (g, rt, chain) = line(0, 1);
        let r_t = rt.wcrt(g.find_task("t").unwrap());
        assert_eq!(bcbt(&g, &chain, &rt), ms(0) + ms(1) + ms(3) - r_t);
    }

    #[test]
    fn bounds_are_ordered() {
        for (pa, pb) in [(0, 1), (1, 0)] {
            let (g, rt, chain) = line(pa, pb);
            let b = backward_bounds(&g, &chain, &rt);
            assert!(b.bcbt <= b.wcbt, "{:?}", b);
            assert!(!b.width().is_negative());
        }
    }

    #[test]
    fn trivial_chain_has_zero_wcbt() {
        let (g, rt, _) = line(0, 1);
        let s = g.find_task("s").unwrap();
        let c = Chain::new(&g, vec![s]).unwrap();
        assert_eq!(wcbt(&g, &c, &rt), Duration::ZERO);
        assert_eq!(BackwardBounds::trivial().wcbt, Duration::ZERO);
    }

    #[test]
    fn buffer_shift_applies_lemma6() {
        let mut b = SystemBuilder::new();
        let e = b.add_ecu("e");
        let s = b.add_task(TaskSpec::periodic("s", ms(10)));
        let t = b.add_task(
            TaskSpec::periodic("t", ms(10))
                .execution(ms(1), ms(2))
                .on_ecu(e),
        );
        b.connect_with_capacity(s, t, 3); // n = 3 -> shift 2 * 10ms
        let g = b.build().unwrap();
        let rt = response_times(&g).unwrap();
        let c = Chain::new(&g, vec![s, t]).unwrap();
        let bounds = backward_bounds(&g, &c, &rt);
        assert_eq!(bounds.wcbt, ms(10) + ms(20));
        assert_eq!(bounds.bcbt, ms(1) - ms(2) + ms(20));
    }

    #[test]
    fn shifted_moves_both_bounds() {
        let b = BackwardBounds {
            wcbt: ms(5),
            bcbt: ms(-1),
        };
        let s = b.shifted(ms(10));
        assert_eq!(s.wcbt, ms(15));
        assert_eq!(s.bcbt, ms(9));
        assert_eq!(s.width(), b.width());
    }

    #[test]
    fn try_variants_report_foreign_chains() {
        use disparity_model::error::ModelError;

        let (g, rt, _) = line(0, 1);
        // A chain from a structurally different graph: s -> t edge that g
        // does not have.
        let mut b2 = SystemBuilder::new();
        let e = b2.add_ecu("e");
        let s = b2.add_task(TaskSpec::periodic("s", ms(10)));
        let a = b2.add_task(
            TaskSpec::periodic("a", ms(10))
                .execution(ms(1), ms(2))
                .on_ecu(e),
        );
        let t = b2.add_task(
            TaskSpec::periodic("t", ms(20))
                .execution(ms(3), ms(4))
                .on_ecu(e),
        );
        b2.connect(s, t); // g has s->a->t, not s->t
        b2.connect(a, t);
        let g2 = b2.build().unwrap();
        let foreign = Chain::new(&g2, vec![s, t]).unwrap();
        for result in [
            try_wcbt(&g, &foreign, &rt),
            try_bcbt(&g, &foreign, &rt),
            try_backward_bounds(&g, &foreign, &rt).map(|b| b.wcbt),
        ] {
            assert!(matches!(
                result,
                Err(AnalysisError::Model(ModelError::NotAChain { .. }))
            ));
        }
        // The happy path agrees with the panicking API.
        let native = Chain::new(&g, g.topological_order().to_vec()).unwrap();
        assert_eq!(try_wcbt(&g, &native, &rt).unwrap(), wcbt(&g, &native, &rt));
        assert_eq!(try_bcbt(&g, &native, &rt).unwrap(), bcbt(&g, &native, &rt));
    }

    #[test]
    fn cross_ecu_uses_t_plus_r() {
        let mut b = SystemBuilder::new();
        let e0 = b.add_ecu("e0");
        let e1 = b.add_ecu("e1");
        let a = b.add_task(
            TaskSpec::periodic("a", ms(10))
                .execution(ms(1), ms(2))
                .on_ecu(e0),
        );
        let t = b.add_task(
            TaskSpec::periodic("t", ms(20))
                .execution(ms(3), ms(4))
                .on_ecu(e1),
        );
        b.connect(a, t);
        let g = b.build().unwrap();
        let rt = response_times(&g).unwrap();
        let c = Chain::new(&g, vec![a, t]).unwrap();
        assert_eq!(wcbt(&g, &c, &rt), ms(10) + rt.wcrt(a));
    }
}
