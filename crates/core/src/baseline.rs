//! Scheduler-agnostic baseline backward-time bounds (Dürr et al. style).
//!
//! The paper compares its Lemma 4 against the sporadic cause-effect-chain
//! bounds of Dürr et al. (TECS 2019), which hold *regardless of the applied
//! scheduling algorithm*: between consecutive jobs of an immediate backward
//! job chain at most one period plus one response time of the producer can
//! elapse, so
//!
//! `W_base(π) = Σ_{i<|π|} (T(π^i) + R(π^i))`.
//!
//! Lemma 4 refines the same-ECU hops; the difference is what the
//! `ablation_backward_bounds` bench measures. For the lower bound the
//! baseline keeps Lemma 5 (the paper applies Dürr et al. "with a slight
//! modification" and gives no separate best case).

use disparity_model::chain::Chain;
use disparity_model::graph::CauseEffectGraph;
use disparity_model::time::Duration;
use disparity_sched::wcrt::ResponseTimes;

use disparity_model::error::ModelError;

use crate::backward::{bcbt, buffer_shift, try_bcbt, BackwardBounds};
use crate::error::AnalysisError;

/// Scheduler-agnostic upper bound on the worst-case backward time:
/// `Σ (T(π^i) + R(π^i))` over the chain's producers, plus the Lemma 6
/// shift for buffered channels.
///
/// Always at least as large as [`crate::backward::wcbt`].
///
/// # Panics
///
/// Panics if `chain` is not a path of `graph`.
#[must_use]
pub fn baseline_wcbt(graph: &CauseEffectGraph, chain: &Chain, rt: &ResponseTimes) -> Duration {
    try_baseline_wcbt(graph, chain, rt).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible form of [`baseline_wcbt`].
///
/// # Errors
///
/// [`AnalysisError::Model`] when an edge of `chain` is not an edge of
/// `graph`.
pub fn try_baseline_wcbt(
    graph: &CauseEffectGraph,
    chain: &Chain,
    rt: &ResponseTimes,
) -> Result<Duration, AnalysisError> {
    let mut sum = Duration::ZERO;
    for (a, b) in chain.edges() {
        let producer = graph.get_task(a).ok_or(ModelError::UnknownTask(a))?;
        let ch = graph
            .channel_between(a, b)
            .ok_or(AnalysisError::Model(ModelError::NotAChain { from: a, to: b }))?;
        sum = sum + producer.period() + rt.wcrt(a) + buffer_shift(ch.capacity(), producer.period());
    }
    Ok(sum)
}

/// Baseline bounds pair: scheduler-agnostic WCBT, Lemma 5 BCBT.
///
/// # Panics
///
/// Panics if `chain` is not a path of `graph`.
#[must_use]
pub fn baseline_bounds(
    graph: &CauseEffectGraph,
    chain: &Chain,
    rt: &ResponseTimes,
) -> BackwardBounds {
    BackwardBounds {
        wcbt: baseline_wcbt(graph, chain, rt),
        bcbt: bcbt(graph, chain, rt),
    }
}

/// Fallible form of [`baseline_bounds`].
///
/// # Errors
///
/// [`AnalysisError::Model`] when `chain` is not a path of `graph`.
pub fn try_baseline_bounds(
    graph: &CauseEffectGraph,
    chain: &Chain,
    rt: &ResponseTimes,
) -> Result<BackwardBounds, AnalysisError> {
    Ok(BackwardBounds {
        wcbt: try_baseline_wcbt(graph, chain, rt)?,
        bcbt: try_bcbt(graph, chain, rt)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backward::wcbt;
    use disparity_model::builder::SystemBuilder;
    use disparity_model::ids::Priority;
    use disparity_model::task::TaskSpec;
    use disparity_sched::wcrt::response_times;

    fn ms(v: i64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn baseline_dominates_lemma4_on_same_ecu_chains() {
        let mut b = SystemBuilder::new();
        let e = b.add_ecu("e");
        let s = b.add_task(TaskSpec::periodic("s", ms(10)));
        let a = b.add_task(
            TaskSpec::periodic("a", ms(10))
                .execution(ms(1), ms(2))
                .on_ecu(e)
                .priority(Priority::new(0)),
        );
        let t = b.add_task(
            TaskSpec::periodic("t", ms(20))
                .execution(ms(2), ms(5))
                .on_ecu(e)
                .priority(Priority::new(1)),
        );
        b.connect(s, a);
        b.connect(a, t);
        let g = b.build().unwrap();
        let rt = response_times(&g).unwrap();
        let chain = Chain::new(&g, vec![s, a, t]).unwrap();
        let tight = wcbt(&g, &chain, &rt);
        let loose = baseline_wcbt(&g, &chain, &rt);
        assert!(
            loose > tight,
            "baseline {loose} should exceed Lemma 4 {tight}"
        );
        // Baseline: (T(s)+R(s)) + (T(a)+R(a)) = 10 + (10 + 7) = 27ms
        // (R(a) = 2 + blocking 5 = 7).
        assert_eq!(loose, ms(27));
        // Lemma 4: 10 + T(a) = 20ms (a ∈ hp(t)).
        assert_eq!(tight, ms(20));
    }

    #[test]
    fn baseline_equals_lemma4_on_cross_ecu_chains() {
        let mut b = SystemBuilder::new();
        let e0 = b.add_ecu("e0");
        let e1 = b.add_ecu("e1");
        let a = b.add_task(
            TaskSpec::periodic("a", ms(10))
                .execution(ms(1), ms(2))
                .on_ecu(e0),
        );
        let t = b.add_task(
            TaskSpec::periodic("t", ms(20))
                .execution(ms(2), ms(5))
                .on_ecu(e1),
        );
        b.connect(a, t);
        let g = b.build().unwrap();
        let rt = response_times(&g).unwrap();
        let chain = Chain::new(&g, vec![a, t]).unwrap();
        assert_eq!(baseline_wcbt(&g, &chain, &rt), wcbt(&g, &chain, &rt));
    }

    #[test]
    fn baseline_bounds_share_the_lower_bound() {
        let mut b = SystemBuilder::new();
        let e = b.add_ecu("e");
        let s = b.add_task(TaskSpec::periodic("s", ms(10)));
        let t = b.add_task(
            TaskSpec::periodic("t", ms(10))
                .execution(ms(1), ms(2))
                .on_ecu(e),
        );
        b.connect(s, t);
        let g = b.build().unwrap();
        let rt = response_times(&g).unwrap();
        let chain = Chain::new(&g, vec![s, t]).unwrap();
        let base = baseline_bounds(&g, &chain, &rt);
        assert_eq!(base.bcbt, crate::backward::bcbt(&g, &chain, &rt));
    }
}
