//! Buffer-size optimization (§IV: Algorithm 1, Lemma 6, Theorem 3).
//!
//! Raising a task's frequency does **not** reduce time disparity — the
//! worst case is governed by the WCBT of one chain against the BCBT of the
//! other (the paper's Fig. 4 counterexample). What does work is *delaying*
//! the fresher chain: giving the source's output channel a FIFO of capacity
//! `n` shifts that chain's sampling window left by `L = (n−1)·T(source)`
//! (Lemma 6), moving the two windows closer together.
//!
//! Algorithm 1 picks `n` so the window *midpoints* align as well as whole
//! source periods allow; Theorem 3 then lowers the pairwise disparity bound
//! by exactly `L`.

use disparity_model::chain::Chain;
use disparity_model::graph::CauseEffectGraph;
use disparity_model::ids::{ChannelId, TaskId};
use disparity_model::time::Duration;
use disparity_sched::schedulability::analyze;
use disparity_sched::wcrt::ResponseTimes;

use crate::disparity::{worst_case_disparity, AnalysisConfig, DisparityReport};
use crate::error::AnalysisError;
use crate::pairwise::{decompose, theorem2_bound};

/// Which chain of the analyzed pair receives the buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BufferedSide {
    /// The buffer goes on `λ²`'s input channel.
    Lambda,
    /// The buffer goes on `ν²`'s input channel.
    Nu,
}

/// The outcome of Algorithm 1 for one pair of chains.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BufferPlan {
    /// Which chain is delayed.
    pub side: BufferedSide,
    /// The channel to resize: from the chosen chain's source to its second
    /// task.
    pub channel: ChannelId,
    /// The designed FIFO capacity `⌊(M_hi − M_lo)/T⌋ + 1`.
    pub capacity: usize,
    /// The window shift `L = (capacity − 1)·T(source)`.
    pub shift: Duration,
    /// The Theorem 2 bound before buffering.
    pub bound_before: Duration,
    /// The bound after buffering: Theorem 2 re-run on the buffered
    /// graph. Theorem 3 predicts `bound_before − L`; when the
    /// prediction overshoots what re-analysis certifies (possible on
    /// multi-joint pairs, where the `x/y` recursion's floors absorb
    /// part of the shift), the re-analyzed value wins and the
    /// divergence is counted (`buffering.theorem3_divergence`).
    pub bound_after: Duration,
}

impl BufferPlan {
    /// Applies the plan to a graph by resizing the planned channel.
    ///
    /// Idempotent: applying twice sets the same capacity.
    ///
    /// # Errors
    ///
    /// Propagates [`disparity_model::error::ModelError`] if the channel id
    /// is foreign to `graph`.
    pub fn apply(&self, graph: &mut CauseEffectGraph) -> Result<(), AnalysisError> {
        graph.set_channel_capacity(self.channel, self.capacity)?;
        Ok(())
    }
}

/// Algorithm 1: designs the buffer size aligning the sampling windows of
/// two chains that end at the same task, and states the Theorem 3 bound.
///
/// # Errors
///
/// * Validation errors of the pairwise analysis
///   (identical chains / tail mismatch / non-source head).
/// * [`AnalysisError::ChainTooShort`] if the chosen chain has no second
///   task whose input channel could be buffered. The paper implicitly
///   assumes `|π| ≥ 2`; a trivial chain's "source" is the analyzed task
///   itself.
///
/// # Examples
///
/// ```
/// use disparity_model::prelude::*;
/// use disparity_sched::wcrt::response_times;
/// use disparity_core::buffering::design_buffer;
///
/// // A fast camera chain and a slow lidar chain joined at a fusion task.
/// let mut b = SystemBuilder::new();
/// let ecu = b.add_ecu("e");
/// let ms = Duration::from_millis;
/// let cam = b.add_task(TaskSpec::periodic("cam", ms(10)));
/// let lidar = b.add_task(TaskSpec::periodic("lidar", ms(100)));
/// let f1 = b.add_task(TaskSpec::periodic("f1", ms(10)).execution(ms(1), ms(1)).on_ecu(ecu));
/// let f2 = b.add_task(TaskSpec::periodic("f2", ms(100)).execution(ms(2), ms(4)).on_ecu(ecu));
/// let fuse = b.add_task(TaskSpec::periodic("fuse", ms(100)).execution(ms(1), ms(2)).on_ecu(ecu));
/// b.connect(cam, f1);
/// b.connect(lidar, f2);
/// b.connect(f1, fuse);
/// b.connect(f2, fuse);
/// let g = b.build()?;
/// let rt = response_times(&g)?;
/// let lam = Chain::new(&g, vec![cam, f1, fuse])?;
/// let nu = Chain::new(&g, vec![lidar, f2, fuse])?;
/// let plan = design_buffer(&g, &lam, &nu, &rt)?;
/// assert!(plan.bound_after <= plan.bound_before);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn design_buffer(
    graph: &CauseEffectGraph,
    lambda: &Chain,
    nu: &Chain,
    rt: &ResponseTimes,
) -> Result<BufferPlan, AnalysisError> {
    let d = decompose(graph, lambda, nu, rt)?;
    let w_lambda = d.lambda_source_window();
    let w_nu = d.nu_source_window(graph);
    let (side, chain, gap) = if w_lambda.midpoint() >= w_nu.midpoint() {
        (
            BufferedSide::Lambda,
            lambda,
            w_lambda.midpoint() - w_nu.midpoint(),
        )
    } else {
        (BufferedSide::Nu, nu, w_nu.midpoint() - w_lambda.midpoint())
    };
    let second = chain.get(1).ok_or(AnalysisError::ChainTooShort {
        chain_tail: chain.tail(),
    })?;
    let source_period = graph.task(chain.head()).period();
    let steps = gap.div_floor(source_period);
    debug_assert!(steps >= 0, "midpoint gap is non-negative by construction");
    let shift = source_period * steps;
    let channel = match graph.channel_between(chain.head(), second) {
        Some(ch) => ch.id(),
        // Chain construction validates every consecutive edge.
        None => unreachable!("consecutive chain tasks are connected"),
    };
    let bound_before = theorem2_bound(graph, lambda, nu, rt)?;
    // Theorem 3 predicts `bound_before − L`, but the prediction is only a
    // statement about the sampling-window shift; certify the buffered
    // bound by re-running Theorem 2 on the buffered graph instead of
    // extrapolating. The two agree on single-joint pairs; on deeper
    // pairs the recursion's floor terms can absorb part of the shift.
    let bound_after = if shift.is_zero() {
        bound_before
    } else {
        let mut buffered = graph.clone();
        buffered.set_channel_capacity(channel, steps as usize + 1)?;
        let certified = theorem2_bound(&buffered, lambda, nu, rt)?;
        if certified != bound_before - shift {
            disparity_obs::counter_add("buffering.theorem3_divergence", 1);
        }
        certified
    };
    Ok(BufferPlan {
        side,
        channel,
        capacity: steps as usize + 1,
        shift,
        bound_before,
        bound_after,
    })
}

/// One round of the greedy multi-pair optimization.
#[derive(Debug, Clone)]
pub struct OptimizationStep {
    /// The plan applied in this round.
    pub plan: BufferPlan,
    /// The task's overall disparity bound after applying it.
    pub bound_after_step: Duration,
}

/// Result of [`optimize_task`].
#[derive(Debug, Clone)]
pub struct OptimizationOutcome {
    /// The graph with all designed buffers applied.
    pub graph: CauseEffectGraph,
    /// The disparity bound before any buffering.
    pub initial_bound: Duration,
    /// The per-round plans, in application order.
    pub steps: Vec<OptimizationStep>,
    /// The final disparity report on the buffered graph.
    pub final_report: DisparityReport,
}

impl OptimizationOutcome {
    /// The final overall bound.
    #[must_use]
    pub fn final_bound(&self) -> Duration {
        self.final_report.bound
    }

    /// Total improvement `initial − final` (never negative).
    #[must_use]
    pub fn improvement(&self) -> Duration {
        (self.initial_bound - self.final_report.bound).max_zero()
    }
}

/// Greedy extension of Algorithm 1 to tasks fused from **more than two**
/// chains (the paper's evaluation only buffers a single pair, §V).
///
/// Each round re-analyzes the task, picks the critical pair, designs its
/// buffer, and applies it if it strictly improves the overall bound; stops
/// after `max_rounds` rounds or at a fixpoint.
///
/// Buffering changes no task parameter, so response times stay valid across
/// rounds; they are still recomputed per round for clarity of invariants.
///
/// # Errors
///
/// Propagates analysis and scheduling errors; `Unschedulable` if the system
/// violates the paper's standing assumption.
pub fn optimize_task(
    graph: &CauseEffectGraph,
    task: TaskId,
    config: AnalysisConfig,
    max_rounds: usize,
) -> Result<OptimizationOutcome, AnalysisError> {
    let mut current = graph.clone();
    let sched = analyze(&current)?;
    if !sched.all_schedulable() {
        return Err(AnalysisError::Unschedulable {
            violations: sched.violations(),
        });
    }
    let rt = sched.into_response_times();
    let mut report = worst_case_disparity(&current, task, &rt, config)?;
    let initial_bound = report.bound;
    let mut steps = Vec::new();

    for _ in 0..max_rounds {
        let Some(critical) = report.critical_pair() else {
            break;
        };
        if critical.bound.is_zero() {
            break;
        }
        let lambda = &report.chains[critical.lambda];
        let nu = &report.chains[critical.nu];
        let Some((lam_t, nu_t)) = lambda.truncate_to_last_joint(nu) else {
            break; // chains with disjoint suffixes cannot be buffered against each other
        };
        let plan = match design_buffer(&current, &lam_t, &nu_t, &rt) {
            Ok(p) => p,
            // A trivial critical chain cannot be buffered; stop greedily.
            Err(AnalysisError::ChainTooShort { .. }) => break,
            Err(e) => return Err(e),
        };
        if plan.shift.is_zero() {
            break; // windows already aligned within one source period
        }
        let mut candidate = current.clone();
        plan.apply(&mut candidate)?;
        let candidate_report = worst_case_disparity(&candidate, task, &rt, config)?;
        if candidate_report.bound >= report.bound {
            break; // no strict improvement; greedy fixpoint
        }
        current = candidate;
        report = candidate_report;
        steps.push(OptimizationStep {
            plan,
            bound_after_step: report.bound,
        });
    }

    Ok(OptimizationOutcome {
        graph: current,
        initial_bound,
        steps,
        final_report: report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use disparity_model::builder::SystemBuilder;
    use disparity_model::task::TaskSpec;
    use disparity_sched::wcrt::response_times;

    fn ms(v: i64) -> Duration {
        Duration::from_millis(v)
    }

    /// Fig. 4-style system: a fast camera path and a slow path fused at τ5.
    fn fig4() -> (CauseEffectGraph, [TaskId; 5]) {
        let mut b = SystemBuilder::new();
        let e = b.add_ecu("e");
        let t1 = b.add_task(TaskSpec::periodic("t1", ms(10)));
        let t2 = b.add_task(TaskSpec::periodic("t2", ms(30)));
        let t3 = b.add_task(
            TaskSpec::periodic("t3", ms(10))
                .execution(ms(1), ms(2))
                .on_ecu(e),
        );
        let t4 = b.add_task(
            TaskSpec::periodic("t4", ms(30))
                .execution(ms(2), ms(5))
                .on_ecu(e),
        );
        let t5 = b.add_task(
            TaskSpec::periodic("t5", ms(30))
                .execution(ms(2), ms(4))
                .on_ecu(e),
        );
        b.connect(t1, t3);
        b.connect(t2, t4);
        b.connect(t3, t5);
        b.connect(t4, t5);
        (b.build().unwrap(), [t1, t2, t3, t4, t5])
    }

    #[test]
    fn plan_reduces_theorem_bound() {
        let (g, [t1, t2, t3, t4, t5]) = fig4();
        let rt = response_times(&g).unwrap();
        let lam = Chain::new(&g, vec![t1, t3, t5]).unwrap();
        let nu = Chain::new(&g, vec![t2, t4, t5]).unwrap();
        let plan = design_buffer(&g, &lam, &nu, &rt).unwrap();
        assert!(plan.capacity >= 1);
        assert_eq!(
            plan.shift,
            graphs_period(&g, &plan) * (plan.capacity as i64 - 1)
        );
        assert_eq!(plan.bound_after, plan.bound_before - plan.shift);
        // The fast chain (through 10ms t1) is the fresher one -> buffered.
        assert_eq!(plan.side, BufferedSide::Lambda);
        assert!(plan.capacity > 1, "the 10ms chain should need delaying");
    }

    fn graphs_period(g: &CauseEffectGraph, plan: &BufferPlan) -> Duration {
        g.task(g.channel(plan.channel).src()).period()
    }

    #[test]
    fn theorem3_matches_reanalysis_of_buffered_graph() {
        // With the generalized Lemma 6 in `backward_bounds`, re-running
        // Theorem 2 on the buffered graph must agree with Theorem 3's
        // `bound − L` whenever the buffered window does not overshoot.
        let (g, [t1, t2, t3, t4, t5]) = fig4();
        let rt = response_times(&g).unwrap();
        let lam = Chain::new(&g, vec![t1, t3, t5]).unwrap();
        let nu = Chain::new(&g, vec![t2, t4, t5]).unwrap();
        let plan = design_buffer(&g, &lam, &nu, &rt).unwrap();
        let mut buffered = g.clone();
        plan.apply(&mut buffered).unwrap();
        let reanalyzed = theorem2_bound(&buffered, &lam, &nu, &rt).unwrap();
        assert!(
            reanalyzed <= plan.bound_before,
            "buffering must not loosen the bound: {reanalyzed} > {}",
            plan.bound_before
        );
        assert_eq!(reanalyzed, plan.bound_after);
    }

    #[test]
    fn apply_is_idempotent() {
        let (g, [t1, t2, t3, t4, t5]) = fig4();
        let rt = response_times(&g).unwrap();
        let lam = Chain::new(&g, vec![t1, t3, t5]).unwrap();
        let nu = Chain::new(&g, vec![t2, t4, t5]).unwrap();
        let plan = design_buffer(&g, &lam, &nu, &rt).unwrap();
        let mut buffered = g.clone();
        plan.apply(&mut buffered).unwrap();
        plan.apply(&mut buffered).unwrap();
        assert_eq!(buffered.channel(plan.channel).capacity(), plan.capacity);
    }

    #[test]
    fn greedy_optimization_improves_or_stalls() {
        let (g, [.., t5]) = fig4();
        let out = optimize_task(&g, t5, AnalysisConfig::default(), 8).unwrap();
        assert!(out.final_bound() <= out.initial_bound);
        assert_eq!(out.improvement(), out.initial_bound - out.final_bound());
        if !out.steps.is_empty() {
            // each step strictly improved
            let mut last = out.initial_bound;
            for s in &out.steps {
                assert!(s.bound_after_step < last);
                last = s.bound_after_step;
            }
        }
    }

    #[test]
    fn trivial_chain_cannot_be_buffered() {
        // s1 -> t <- s2 where both chains have length 2 is fine, but make
        // one chain trivial by analyzing a source-fused task directly:
        // s -> t and s2 -> t; chains are length 2, so buffering works.
        // Instead check the error path with a chain of length 1 ... which
        // can only be the tail itself; construct via a direct source pair.
        let mut b = SystemBuilder::new();
        let e = b.add_ecu("e");
        let s1 = b.add_task(TaskSpec::periodic("s1", ms(10)));
        let s2 = b.add_task(TaskSpec::periodic("s2", ms(30)));
        let t = b.add_task(
            TaskSpec::periodic("t", ms(30))
                .execution(ms(1), ms(2))
                .on_ecu(e),
        );
        b.connect(s1, t);
        b.connect(s2, t);
        let g = b.build().unwrap();
        let rt = response_times(&g).unwrap();
        let lam = Chain::new(&g, vec![s1, t]).unwrap();
        let nu = Chain::new(&g, vec![s2, t]).unwrap();
        // Both chains have a second task (t itself); design must succeed.
        let plan = design_buffer(&g, &lam, &nu, &rt).unwrap();
        assert!(plan.capacity >= 1);
    }

    #[test]
    fn aligned_windows_get_a_noop_plan() {
        // Perfectly symmetric chains: identical periods and execution
        // times on both sides, so the sampling windows coincide and
        // Algorithm 1 has nothing to shift.
        let mut b = SystemBuilder::new();
        let e1 = b.add_ecu("e1");
        let e2 = b.add_ecu("e2");
        let s1 = b.add_task(TaskSpec::periodic("s1", ms(10)));
        let s2 = b.add_task(TaskSpec::periodic("s2", ms(10)));
        let a = b.add_task(
            TaskSpec::periodic("a", ms(10))
                .execution(ms(1), ms(2))
                .on_ecu(e1),
        );
        let c = b.add_task(
            TaskSpec::periodic("c", ms(10))
                .execution(ms(1), ms(2))
                .on_ecu(e2),
        );
        let t = b.add_task(
            TaskSpec::periodic("t", ms(10))
                .execution(ms(1), ms(2))
                .on_ecu(e1),
        );
        b.connect(s1, a);
        b.connect(s2, c);
        b.connect(a, t);
        b.connect(c, t);
        let g = b.build().unwrap();
        let rt = response_times(&g).unwrap();
        let lam = Chain::new(&g, vec![s1, a, t]).unwrap();
        let nu = Chain::new(&g, vec![s2, c, t]).unwrap();
        let plan = design_buffer(&g, &lam, &nu, &rt).unwrap();
        assert_eq!(plan.capacity, 1, "no shift needed");
        assert_eq!(plan.shift, Duration::ZERO);
        assert_eq!(plan.bound_after, plan.bound_before);
        // Applying the no-op plan changes nothing.
        let mut g2 = g.clone();
        plan.apply(&mut g2).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn plan_buffers_the_later_window_side() {
        // ν is much slower (bigger periods), so its sampling window lies
        // further in the past; the *fresher* λ side must be delayed.
        let mut b = SystemBuilder::new();
        let e = b.add_ecu("e");
        let s1 = b.add_task(TaskSpec::periodic("s1", ms(10)));
        let s2 = b.add_task(TaskSpec::periodic("s2", ms(100)));
        let a = b.add_task(
            TaskSpec::periodic("a", ms(10))
                .execution(ms(1), ms(1))
                .on_ecu(e),
        );
        let c = b.add_task(
            TaskSpec::periodic("c", ms(100))
                .execution(ms(1), ms(2))
                .on_ecu(e),
        );
        let t = b.add_task(
            TaskSpec::periodic("t", ms(100))
                .execution(ms(1), ms(2))
                .on_ecu(e),
        );
        b.connect(s1, a);
        b.connect(s2, c);
        b.connect(a, t);
        b.connect(c, t);
        let g = b.build().unwrap();
        let rt = response_times(&g).unwrap();
        let lam = Chain::new(&g, vec![s1, a, t]).unwrap();
        let nu = Chain::new(&g, vec![s2, c, t]).unwrap();
        let plan = design_buffer(&g, &lam, &nu, &rt).unwrap();
        assert_eq!(plan.side, BufferedSide::Lambda);
        // The buffered channel is λ's source output.
        assert_eq!(g.channel(plan.channel).src(), s1);
        assert!(plan.capacity > 1);
        // Shift is a whole multiple of the buffered source's period.
        assert_eq!(plan.shift % g.task(s1).period(), Duration::ZERO);
    }

    #[test]
    fn overshooting_theorem3_prediction_is_corrected_by_reanalysis() {
        // Regression for the old `bound_after = bound_before − shift`
        // extrapolation. On the default funnel at seed 0 at least one
        // multi-joint pair's midpoint gap overlaps recursion floors that
        // absorb the whole shift: Theorem 3 predicts an improvement the
        // re-run of Theorem 2 does not certify. `design_buffer` must
        // return the certified bound, never the optimistic prediction.
        use disparity_rng::SplitMix64;
        use disparity_workload::funnel::{schedulable_funnel_system, FunnelConfig};

        let mut rng = SplitMix64::new(0);
        let g = schedulable_funnel_system(&FunnelConfig::default(), &mut rng, 64).unwrap();
        let rt = response_times(&g).unwrap();
        let mut overshoot_seen = false;
        for sink in g.sinks() {
            let report =
                worst_case_disparity(&g, sink, &rt, AnalysisConfig::default()).unwrap();
            for pair in &report.pairs {
                let lambda = &report.chains[pair.lambda];
                let nu = &report.chains[pair.nu];
                let Some((lam_t, nu_t)) = lambda.truncate_to_last_joint(nu) else {
                    continue;
                };
                let Ok(plan) = design_buffer(&g, &lam_t, &nu_t, &rt) else {
                    continue;
                };
                if plan.shift.is_zero() {
                    continue;
                }
                let mut buffered = g.clone();
                plan.apply(&mut buffered).unwrap();
                let certified = theorem2_bound(&buffered, &lam_t, &nu_t, &rt).unwrap();
                assert_eq!(
                    plan.bound_after, certified,
                    "bound_after must be the certified re-analysis value"
                );
                if plan.bound_after != plan.bound_before - plan.shift {
                    overshoot_seen = true;
                    assert!(
                        plan.bound_after > plan.bound_before - plan.shift,
                        "divergence can only be an overshoot of the prediction"
                    );
                }
            }
        }
        assert!(
            overshoot_seen,
            "fixture regressed: funnel seed 0 no longer exhibits an overshooting pair"
        );
    }

    #[test]
    fn optimization_rejects_unschedulable_systems() {
        let mut b = SystemBuilder::new();
        let e = b.add_ecu("e");
        let s = b.add_task(TaskSpec::periodic("s", ms(10)));
        // hi is blocked by lo's 9ms job: R(hi) = 9 + 6 = 15 > T(hi) = 10.
        let hi = b.add_task(TaskSpec::periodic("hi", ms(10)).wcet(ms(6)).on_ecu(e));
        let lo = b.add_task(TaskSpec::periodic("lo", ms(30)).wcet(ms(9)).on_ecu(e));
        b.connect(s, hi);
        b.connect(s, lo);
        let g = b.build().unwrap();
        assert!(matches!(
            optimize_task(&g, lo, AnalysisConfig::default(), 4),
            Err(AnalysisError::Unschedulable { .. })
        ));
    }
}
