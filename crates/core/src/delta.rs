//! Incremental (delta) re-analysis of an edited system.
//!
//! A cold analysis ([`AnalyzedSystem::analyze`]) runs the full pipeline:
//! build the graph from the spec, compute every WCRT fixed point, and
//! sweep every chain pair of every fusion task. A field-level edit —
//! a WCET bump, a buffer resize — invalidates only a small slice of that
//! work, and the slice is *provable* from the structure of the analysis:
//!
//! * WCRT under non-preemptive fixed-priority scheduling depends only on
//!   the parameters of same-ECU tasks, so an execution-time or period
//!   change re-runs the fixed points of **one ECU**
//!   ([`response_times_partial`]);
//! * the hop bound over an edge `(u, v)` depends on the parameters of
//!   `u` and `v`, `R(u)`, and the channel's capacity, so only edges
//!   **adjacent to a changed task** (or the resized channel itself) drop
//!   out of the [`HopCache`];
//! * a pair bound changes only when one of its two chains **contains** a
//!   changed task or traverses a changed channel, so clean pairs are
//!   copied verbatim from the previous report.
//!
//! [`reanalyze`] composes those three facts and is byte-identical to a
//! cold re-run of the edited spec — the `delta_consistency` test suite
//! pins that equality against randomized edit sequences, and the
//! `engine_consistency` suite pins the engine against
//! [`worst_case_disparity_direct`](crate::disparity::worst_case_disparity_direct),
//! so the delta path is transitively identical to the uncached oracle.

use std::collections::HashMap;
use std::sync::Arc;

use disparity_model::edit::{EditError, SpecEdit};
use disparity_model::error::ModelError;
use disparity_model::graph::CauseEffectGraph;
use disparity_model::ids::{EcuId, TaskId};
use disparity_model::spec::{SpecError, SubsystemHashes, SystemSpec};
use disparity_sched::error::SchedError;
use disparity_sched::wcrt::{response_times, response_times_partial, ResponseTimes};

use crate::disparity::{AnalysisConfig, DisparityReport};
use crate::engine::{AnalysisEngine, ChainTable, HopCache};
use crate::error::AnalysisError;

/// Why an incremental (or cold) analysis failed.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DeltaError {
    /// The edit itself was invalid for the base spec.
    Edit(EditError),
    /// The edited spec no longer builds (cycle, dangling name, ...).
    Spec(SpecError),
    /// The response-time analysis failed (overload, divergence).
    Sched(SchedError),
    /// The disparity analysis failed.
    Analysis(AnalysisError),
}

impl core::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DeltaError::Edit(e) => write!(f, "edit error: {e}"),
            DeltaError::Spec(e) => write!(f, "spec error: {e}"),
            DeltaError::Sched(e) => write!(f, "scheduling error: {e}"),
            DeltaError::Analysis(e) => write!(f, "analysis error: {e}"),
        }
    }
}

impl std::error::Error for DeltaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DeltaError::Edit(e) => Some(e),
            DeltaError::Spec(e) => Some(e),
            DeltaError::Sched(e) => Some(e),
            DeltaError::Analysis(e) => Some(e),
        }
    }
}

impl From<EditError> for DeltaError {
    fn from(e: EditError) -> Self {
        DeltaError::Edit(e)
    }
}

impl From<SpecError> for DeltaError {
    fn from(e: SpecError) -> Self {
        DeltaError::Spec(e)
    }
}

impl From<SchedError> for DeltaError {
    fn from(e: SchedError) -> Self {
        DeltaError::Sched(e)
    }
}

impl From<AnalysisError> for DeltaError {
    fn from(e: AnalysisError) -> Self {
        DeltaError::Analysis(e)
    }
}

/// The spec-level slice of an analyzed system: the built graph, its
/// response times, and the warmed hop-bound cache — without any
/// disparity reports.
///
/// This is exactly what a serving cache stores per spec, so a server can
/// [`rebase`](Self::rebase) a cached basis under an edit and then analyze
/// only the one task a request names, instead of paying [`reanalyze`]'s
/// every-fusion-task sweep.
///
/// Invariant (relied upon by [`rebase`](Self::rebase)):
/// `graph == spec.build()`, `rt == response_times(&graph)`, and every
/// bound in `hops` was computed from `(graph, rt)`.
#[derive(Debug, Clone)]
pub struct DeltaBasis {
    /// The spec the rest of the basis was derived from.
    pub spec: SystemSpec,
    /// Its built graph (`spec.build()`).
    pub graph: CauseEffectGraph,
    /// Response times of every task of `graph`.
    pub rt: ResponseTimes,
    /// Hop bounds warmed against `(graph, rt)` (clones share storage).
    pub hops: HopCache,
}

impl DeltaBasis {
    /// Runs the cold front half of the pipeline: build and WCRT, with an
    /// empty hop cache.
    ///
    /// # Errors
    ///
    /// * [`DeltaError::Spec`] when the spec does not build;
    /// * [`DeltaError::Sched`] when response times cannot be computed.
    pub fn analyze(spec: &SystemSpec) -> Result<Self, DeltaError> {
        let graph = spec.build()?;
        let rt = response_times(&graph)?;
        Ok(DeltaBasis {
            spec: spec.clone(),
            graph,
            rt,
            hops: HopCache::new(),
        })
    }

    /// Applies `edit` and returns the edited basis, recomputing only the
    /// invalidated slice: the graph is mutated in place where provably
    /// safe, WCRT fixed points re-run on dirty ECUs only, and every hop
    /// bound whose inputs are untouched is carried over (into a fresh
    /// cache — `self` is never mutated). The result is byte-identical to
    /// [`DeltaBasis::analyze`] of the edited spec, modulo the carried hop
    /// bounds, which the engine would recompute to the same values.
    ///
    /// # Errors
    ///
    /// * [`DeltaError::Edit`] when the edit is invalid for this spec;
    /// * [`DeltaError::Spec`] when the edited spec no longer builds;
    /// * [`DeltaError::Sched`] when a dirty ECU overloads or diverges.
    pub fn rebase(&self, edit: &SpecEdit) -> Result<DeltaBasis, DeltaError> {
        rebase_impl(&self.spec, &self.graph, &self.rt, &self.hops, edit).map(|(basis, _)| basis)
    }
}

/// Reverse index from model elements to the analysis artifacts they feed.
///
/// Built once per analyzed system; [`reanalyze`] consults it to translate
/// a dirty task/channel set into the exact `(report, chain)` pairs whose
/// bounds must be re-swept. Everything else is copied.
#[derive(Debug, Clone, Default)]
pub struct DependencyMap {
    /// `chains_of_task[task.index()]` = every `(report_idx, chain_idx)`
    /// whose chain contains the task.
    chains_of_task: Vec<Vec<(usize, usize)>>,
    /// Every `(report_idx, chain_idx)` whose chain traverses the edge.
    chains_of_edge: HashMap<(TaskId, TaskId), Vec<(usize, usize)>>,
}

impl DependencyMap {
    /// Indexes `reports` (their chains and chain edges) by task and edge.
    fn build(task_count: usize, reports: &[DisparityReport]) -> Self {
        let mut chains_of_task: Vec<Vec<(usize, usize)>> = vec![Vec::new(); task_count];
        let mut chains_of_edge: HashMap<(TaskId, TaskId), Vec<(usize, usize)>> = HashMap::new();
        for (r, report) in reports.iter().enumerate() {
            for (c, chain) in report.chains.iter().enumerate() {
                for &task in chain.tasks() {
                    chains_of_task[task.index()].push((r, c));
                }
                for edge in chain.edges() {
                    chains_of_edge.entry(edge).or_default().push((r, c));
                }
            }
        }
        DependencyMap {
            chains_of_task,
            chains_of_edge,
        }
    }

    /// The `(report, chain)` pairs whose chain contains `task`.
    #[must_use]
    pub fn chains_of_task(&self, task: TaskId) -> &[(usize, usize)] {
        self.chains_of_task
            .get(task.index())
            .map_or(&[], Vec::as_slice)
    }

    /// The `(report, chain)` pairs whose chain traverses `(from, to)`.
    #[must_use]
    pub fn chains_of_edge(&self, from: TaskId, to: TaskId) -> &[(usize, usize)] {
        self.chains_of_edge
            .get(&(from, to))
            .map_or(&[], Vec::as_slice)
    }
}

/// A fully analyzed system: the spec, every derived artifact of the cold
/// pipeline, and the reverse index the delta engine re-analyzes through.
///
/// Invariant: `graph == spec.build()`, `rt == response_times(&graph)`,
/// and `reports`/`skipped` are exactly what
/// [`analyze_all_tasks`](crate::disparity::analyze_all_tasks) returns for
/// `(graph, rt, config)`. [`reanalyze`] both relies on and maintains this
/// invariant.
#[derive(Debug, Clone)]
pub struct AnalyzedSystem {
    spec: SystemSpec,
    hashes: SubsystemHashes,
    graph: CauseEffectGraph,
    rt: ResponseTimes,
    hops: HopCache,
    config: AnalysisConfig,
    workers: Option<usize>,
    reports: Vec<DisparityReport>,
    /// `tables[r]` = the prefix tables of `reports[r]`'s chains, in chain
    /// order. Shared (`Arc`) across derived systems: a delta apply clones
    /// handles for every clean chain and rebuilds only dirty ones.
    tables: Vec<Vec<Arc<ChainTable>>>,
    skipped: Vec<TaskId>,
    /// Shared across shape-preserving derives (chain sets are identical).
    deps: Arc<DependencyMap>,
}

impl AnalyzedSystem {
    /// Runs the cold pipeline: build, WCRT, and a disparity report for
    /// every fusion task (mirroring
    /// [`analyze_all_tasks`](crate::disparity::analyze_all_tasks)).
    ///
    /// # Errors
    ///
    /// * [`DeltaError::Spec`] when the spec does not build;
    /// * [`DeltaError::Sched`] when response times cannot be computed;
    /// * [`DeltaError::Analysis`] from the disparity sweep.
    pub fn analyze(spec: &SystemSpec, config: AnalysisConfig) -> Result<Self, DeltaError> {
        Self::analyze_with(spec, config, None)
    }

    /// [`Self::analyze`] with an explicit engine worker count (`None`
    /// keeps the engine default). Any worker count yields bit-identical
    /// reports; the knob exists so tests can pin both the serial and the
    /// parallel pair loop.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::analyze`].
    pub fn analyze_with(
        spec: &SystemSpec,
        config: AnalysisConfig,
        workers: Option<usize>,
    ) -> Result<Self, DeltaError> {
        let graph = spec.build()?;
        let rt = response_times(&graph)?;
        let (reports, tables, skipped, hops) = {
            let mut engine = AnalysisEngine::new(&graph, &rt);
            if let Some(w) = workers {
                engine = engine.with_workers(w);
            }
            let (reports, tables, skipped) = engine.analyze_all_tasks_with_tables(config)?;
            (reports, tables, skipped, engine.hop_cache())
        };
        let deps = Arc::new(DependencyMap::build(graph.task_count(), &reports));
        Ok(AnalyzedSystem {
            spec: spec.clone(),
            hashes: spec.subsystem_hashes(),
            graph,
            rt,
            hops,
            config,
            workers,
            reports,
            tables,
            skipped,
            deps,
        })
    }

    /// Applies `edit` incrementally; shorthand for [`reanalyze`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`reanalyze`].
    pub fn apply(&self, edit: &SpecEdit) -> Result<(AnalyzedSystem, ReanalyzeStats), DeltaError> {
        reanalyze(self, edit)
    }

    /// The analyzed spec.
    #[must_use]
    pub fn spec(&self) -> &SystemSpec {
        &self.spec
    }

    /// Per-subsystem content hashes of [`Self::spec`].
    #[must_use]
    pub fn hashes(&self) -> &SubsystemHashes {
        &self.hashes
    }

    /// The built graph (`spec.build()`).
    #[must_use]
    pub fn graph(&self) -> &CauseEffectGraph {
        &self.graph
    }

    /// Response times of every task.
    #[must_use]
    pub fn response_times(&self) -> &ResponseTimes {
        &self.rt
    }

    /// The hop-bound cache warmed by the analysis (clones share storage).
    #[must_use]
    pub fn hop_cache(&self) -> HopCache {
        self.hops.clone()
    }

    /// The configuration every report was produced under.
    #[must_use]
    pub fn config(&self) -> AnalysisConfig {
        self.config
    }

    /// Disparity reports of every fusion task, in task-id order.
    #[must_use]
    pub fn reports(&self) -> &[DisparityReport] {
        &self.reports
    }

    /// Tasks skipped because their chain enumeration exceeded the budget.
    #[must_use]
    pub fn skipped(&self) -> &[TaskId] {
        &self.skipped
    }

    /// The report of `task`, if it was analyzed.
    #[must_use]
    pub fn report_for(&self, task: TaskId) -> Option<&DisparityReport> {
        self.reports.iter().find(|r| r.task == task)
    }

    /// The reverse dependency index of this system's reports.
    #[must_use]
    pub fn dependency_map(&self) -> &DependencyMap {
        &self.deps
    }
}

/// What [`reanalyze`] recomputed versus reused.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct ReanalyzeStats {
    /// [`SpecEdit::kind`] of the applied edit.
    pub edit_kind: &'static str,
    /// `true` when the graph was rebuilt from the spec instead of being
    /// mutated in place.
    pub graph_rebuilt: bool,
    /// Tasks whose WCRT fixed point was re-run (members of dirty ECUs).
    pub wcrt_recomputed: usize,
    /// Tasks whose response bounds were copied from the previous system.
    pub wcrt_reused: usize,
    /// Hop-cache entries invalidated by the edit.
    pub hops_dropped: usize,
    /// Hop-cache entries carried over to the new system.
    pub hops_retained: usize,
    /// Chain pairs whose bound was re-swept.
    pub pairs_recomputed: usize,
    /// Chain pairs copied verbatim from the previous reports.
    pub pairs_reused: usize,
    /// Reports rebuilt (at least one dirty pair, or a changed chain set).
    pub reports_recomputed: usize,
    /// Reports copied verbatim.
    pub reports_reused: usize,
}

fn find_id(graph: &CauseEffectGraph, name: &str) -> Result<TaskId, DeltaError> {
    graph
        .find_task(name)
        .ok_or_else(|| DeltaError::Edit(EditError::UnknownTask(name.to_string())))
}

/// Task indices reachable from `start` (inclusive) by forward edges.
fn reachable_from(graph: &CauseEffectGraph, start: TaskId) -> Vec<bool> {
    let mut seen = vec![false; graph.task_count()];
    seen[start.index()] = true;
    let mut stack = vec![start];
    while let Some(t) = stack.pop() {
        for s in graph.successors(t) {
            if !seen[s.index()] {
                seen[s.index()] = true;
                stack.push(s);
            }
        }
    }
    seen
}

/// The edited graph: mutated in place for edits whose rebuild is provably
/// identical (execution-time and capacity changes touch one stored field
/// and cannot perturb priorities, ids, or topology), rebuilt from the
/// spec otherwise. Returns the graph and whether it was rebuilt.
fn derive_graph(
    prev_graph: &CauseEffectGraph,
    spec2: &SystemSpec,
    edit: &SpecEdit,
) -> Result<(CauseEffectGraph, bool), DeltaError> {
    let model = |e: ModelError| DeltaError::Spec(SpecError::from(e));
    match edit {
        SpecEdit::SetWcet { task, wcet } => {
            let mut g = prev_graph.clone();
            let id = find_id(&g, task)?;
            g.set_task_wcet(id, *wcet).map_err(model)?;
            Ok((g, false))
        }
        SpecEdit::SetBcet { task, bcet } => {
            let mut g = prev_graph.clone();
            let id = find_id(&g, task)?;
            g.set_task_bcet(id, *bcet).map_err(model)?;
            Ok((g, false))
        }
        SpecEdit::ResizeBuffer { from, to, capacity } => {
            let mut g = prev_graph.clone();
            let f = find_id(&g, from)?;
            let t = find_id(&g, to)?;
            let ch = g
                .channel_between(f, t)
                .ok_or_else(|| {
                    DeltaError::Edit(EditError::UnknownChannel {
                        from: from.clone(),
                        to: to.clone(),
                    })
                })?
                .id();
            g.set_channel_capacity(ch, *capacity).map_err(model)?;
            Ok((g, false))
        }
        // Period and priority edits perturb the per-ECU rate-monotonic
        // assignment; channel edits change topology. Rebuild.
        _ => Ok((spec2.build()?, true)),
    }
}

/// The response times of the edited graph, recomputed only where the
/// edit can reach: BCET and channel edits cannot move any WCRT (the
/// fixed points never read either), everything else re-runs exactly the
/// ECUs whose task sets changed parameters or priorities.
fn derive_response_times(
    prev_rt: &ResponseTimes,
    graph2: &CauseEffectGraph,
    edit: &SpecEdit,
) -> Result<(ResponseTimes, Vec<EcuId>), DeltaError> {
    match edit {
        SpecEdit::SetBcet { .. }
        | SpecEdit::ResizeBuffer { .. }
        | SpecEdit::AddChannel { .. }
        | SpecEdit::RemoveChannel { .. } => Ok((prev_rt.clone(), Vec::new())),
        SpecEdit::SetWcet { task, .. } | SpecEdit::SetPeriod { task, .. } => {
            let id = find_id(graph2, task)?;
            let dirty: Vec<EcuId> = graph2.task(id).ecu().into_iter().collect();
            let rt = response_times_partial(graph2, prev_rt, &dirty)?;
            Ok((rt, dirty))
        }
        SpecEdit::SwapPriority { a, b } => {
            let ia = find_id(graph2, a)?;
            let ib = find_id(graph2, b)?;
            let mut dirty: Vec<EcuId> = [ia, ib]
                .iter()
                .filter_map(|&t| graph2.task(t).ecu())
                .collect();
            dirty.sort_unstable();
            dirty.dedup();
            let rt = response_times_partial(graph2, prev_rt, &dirty)?;
            Ok((rt, dirty))
        }
    }
}

/// What a basis rebase invalidated (feeds [`ReanalyzeStats`] and the
/// report re-sweep).
struct EditImpact {
    graph_rebuilt: bool,
    dirty_ecus: Vec<EcuId>,
    dirty_task: Vec<bool>,
    resized: Option<(TaskId, TaskId)>,
}

/// Shared core of [`DeltaBasis::rebase`] and [`reanalyze`]: the edited
/// spec, graph, response times, and filtered hop cache, plus the dirty
/// sets the report sweep needs.
fn rebase_impl(
    spec: &SystemSpec,
    graph: &CauseEffectGraph,
    rt: &ResponseTimes,
    hops: &HopCache,
    edit: &SpecEdit,
) -> Result<(DeltaBasis, EditImpact), DeltaError> {
    let mut spec2 = spec.clone();
    edit.apply(&mut spec2)?;

    let (graph2, graph_rebuilt) = derive_graph(graph, &spec2, edit)?;
    let (rt2, dirty_ecus) = derive_response_times(rt, &graph2, edit)?;

    // The dirty task set: spec-level parameter or priority changes
    // (including rate-monotonic reassignments after a period change) plus
    // every task whose response bounds moved. Hop bounds and chain
    // bounds can only depend on a task through those fields.
    let mut dirty_task = vec![false; graph2.task_count()];
    for (a, b) in graph.tasks().iter().zip(graph2.tasks()) {
        let i = a.id().index();
        if a != b || rt.as_slice()[i] != rt2.as_slice()[i] {
            dirty_task[i] = true;
        }
    }

    let resized: Option<(TaskId, TaskId)> = match edit {
        SpecEdit::ResizeBuffer { from, to, .. } => {
            Some((find_id(&graph2, from)?, find_id(&graph2, to)?))
        }
        _ => None,
    };

    // Carry over every hop bound whose inputs are untouched: both
    // endpoints clean, capacity unchanged, and the edge still exists.
    let hops2 = hops.filtered(|a, b| {
        !dirty_task[a.index()]
            && !dirty_task[b.index()]
            && resized != Some((a, b))
            && graph2.channel_between(a, b).is_some()
    });

    Ok((
        DeltaBasis {
            spec: spec2,
            graph: graph2,
            rt: rt2,
            hops: hops2,
        },
        EditImpact {
            graph_rebuilt,
            dirty_ecus,
            dirty_task,
            resized,
        },
    ))
}

/// Incrementally re-analyzes `prev` under `edit`.
///
/// The result is **byte-identical** to
/// [`AnalyzedSystem::analyze`] of the edited spec — same graph, same
/// response times, same reports down to every pair bound — while
/// recomputing only the slice the edit actually reaches (see the module
/// docs for the invalidation argument). The returned
/// [`ReanalyzeStats`] quantifies the reuse.
///
/// # Errors
///
/// * [`DeltaError::Edit`] when the edit is invalid for `prev`'s spec;
/// * [`DeltaError::Spec`] when the edited spec no longer builds (e.g. a
///   channel insertion creates a cycle);
/// * [`DeltaError::Sched`] when a dirty ECU overloads or diverges;
/// * [`DeltaError::Analysis`] from the pair re-sweep.
///
/// # Examples
///
/// ```
/// use disparity_model::prelude::*;
/// use disparity_core::delta::{reanalyze, AnalyzedSystem};
/// use disparity_core::disparity::AnalysisConfig;
///
/// let ms = |v| Duration::from_millis(v);
/// let spec = SystemSpec {
///     ecus: vec![EcuSpec::processor("e")],
///     tasks: vec![
///         TaskEntry::stimulus("cam", ms(33)),
///         TaskEntry::stimulus("lidar", ms(100)),
///         TaskEntry::computation("fuse", ms(33), ms(2), ms(5), "e"),
///     ],
///     channels: vec![
///         ChannelSpec::register("cam", "fuse"),
///         ChannelSpec::register("lidar", "fuse"),
///     ],
/// };
/// let base = AnalyzedSystem::analyze(&spec, AnalysisConfig::default())?;
/// let edit = SpecEdit::SetWcet { task: "fuse".into(), wcet: ms(6) };
/// let (derived, stats) = reanalyze(&base, &edit)?;
/// let mut spec2 = spec.clone();
/// edit.apply(&mut spec2)?;
/// let cold = AnalyzedSystem::analyze(&spec2, AnalysisConfig::default())?;
/// assert_eq!(derived.reports()[0].bound, cold.reports()[0].bound);
/// assert_eq!(stats.edit_kind, "set_wcet");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn reanalyze(
    prev: &AnalyzedSystem,
    edit: &SpecEdit,
) -> Result<(AnalyzedSystem, ReanalyzeStats), DeltaError> {
    let mut span = disparity_obs::span("delta.reanalyze");
    span.attr("kind", edit.kind());
    disparity_obs::counter_add("delta.reanalyses", 1);

    let (basis2, impact) = rebase_impl(&prev.spec, &prev.graph, &prev.rt, &prev.hops, edit)?;
    let DeltaBasis {
        spec: spec2,
        graph: graph2,
        rt: rt2,
        hops: hops2,
    } = basis2;
    let EditImpact {
        graph_rebuilt,
        dirty_ecus,
        dirty_task,
        resized,
    } = impact;
    let n = graph2.task_count();
    let hops_retained = hops2.len();
    let hops_dropped = prev.hops.len() - hops_retained;

    // Channel edits reshape the chain sets of every task downstream of
    // the edge's consumer; other tasks keep their enumeration verbatim.
    let downstream: Option<Vec<bool>> = match edit {
        SpecEdit::AddChannel { to, .. } => Some(reachable_from(&graph2, find_id(&graph2, to)?)),
        SpecEdit::RemoveChannel { to, .. } => {
            Some(reachable_from(&prev.graph, find_id(&prev.graph, to)?))
        }
        _ => None,
    };

    let mut stats = ReanalyzeStats {
        edit_kind: edit.kind(),
        graph_rebuilt,
        wcrt_recomputed: graph2
            .tasks()
            .iter()
            .filter(|t| !t.is_zero_cost() && t.ecu().is_some_and(|e| dirty_ecus.contains(&e)))
            .count(),
        hops_dropped,
        hops_retained,
        ..ReanalyzeStats::default()
    };
    stats.wcrt_reused = n - stats.wcrt_recomputed;

    let (reports2, tables2, skipped2) = {
        let mut engine = AnalysisEngine::new(&graph2, &rt2).with_hop_cache(hops2.clone());
        if let Some(w) = prev.workers {
            engine = engine.with_workers(w);
        }
        if let Some(affected) = &downstream {
            resweep_topology(prev, &engine, affected, &mut stats)?
        } else {
            resweep_in_place(prev, &engine, &dirty_task, resized, &mut stats)?
        }
    };

    let deps2 = if downstream.is_some() {
        Arc::new(DependencyMap::build(n, &reports2))
    } else {
        // The chain sets are untouched, so the reverse index is too.
        Arc::clone(&prev.deps)
    };

    span.attr("pairs_recomputed", stats.pairs_recomputed);
    span.attr("pairs_reused", stats.pairs_reused);
    // Shape-preserving edits reach at most two task fragments or one
    // channel fragment; rebasing the hash set recomputes exactly those
    // instead of re-hashing the whole spec.
    let hashes2 = prev.hashes.rebase(&spec2, edit);
    debug_assert_eq!(hashes2, spec2.subsystem_hashes());
    Ok((
        AnalyzedSystem {
            spec: spec2,
            hashes: hashes2,
            graph: graph2,
            rt: rt2,
            hops: hops2,
            config: prev.config,
            workers: prev.workers,
            reports: reports2,
            tables: tables2,
            skipped: skipped2,
            deps: deps2,
        },
        stats,
    ))
}

/// What a re-sweep produces: the derived reports, their chain tables
/// (reused where clean), and the skipped-task list.
type ResweepResult =
    Result<(Vec<DisparityReport>, Vec<Vec<Arc<ChainTable>>>, Vec<TaskId>), DeltaError>;

/// Re-sweep for shape-preserving edits: every report keeps its chain set,
/// so each one either copies verbatim (no dirty chain) or re-sweeps only
/// the pairs touching a dirty chain.
fn resweep_in_place(
    prev: &AnalyzedSystem,
    engine: &AnalysisEngine<'_>,
    dirty_task: &[bool],
    resized: Option<(TaskId, TaskId)>,
    stats: &mut ReanalyzeStats,
) -> ResweepResult {
    let mut dirty_chains: Vec<Vec<bool>> = prev
        .reports
        .iter()
        .map(|r| vec![false; r.chains.len()])
        .collect();
    for (i, &dirty) in dirty_task.iter().enumerate() {
        if dirty {
            for &(r, c) in &prev.deps.chains_of_task[i] {
                dirty_chains[r][c] = true;
            }
        }
    }
    if let Some((from, to)) = resized {
        for &(r, c) in prev.deps.chains_of_edge(from, to) {
            dirty_chains[r][c] = true;
        }
    }

    let mut reports = Vec::with_capacity(prev.reports.len());
    let mut tables = Vec::with_capacity(prev.reports.len());
    for (r, report) in prev.reports.iter().enumerate() {
        let dirty = &dirty_chains[r];
        if dirty.iter().any(|&d| d) {
            let m = dirty.len();
            for i in 0..m {
                for j in (i + 1)..m {
                    if dirty[i] || dirty[j] {
                        stats.pairs_recomputed += 1;
                    } else {
                        stats.pairs_reused += 1;
                    }
                }
            }
            stats.reports_recomputed += 1;
            let (report2, tables2) = engine.worst_case_disparity_partial(
                report.task,
                prev.config,
                report.chains.clone(),
                &report.pairs,
                &prev.tables[r],
                dirty,
            )?;
            reports.push(report2);
            tables.push(tables2);
        } else {
            stats.pairs_reused += report.pairs.len();
            stats.reports_reused += 1;
            reports.push(report.clone());
            tables.push(prev.tables[r].clone());
        }
    }
    Ok((reports, tables, prev.skipped.clone()))
}

/// Re-sweep for channel insertions/removals: tasks downstream of the
/// edge's consumer re-enumerate and re-analyze from scratch (through the
/// carried-over hop cache), everything else copies its previous outcome.
/// The single task-order loop reproduces
/// [`analyze_all_tasks`](AnalysisEngine::analyze_all_tasks) exactly.
fn resweep_topology(
    prev: &AnalyzedSystem,
    engine: &AnalysisEngine<'_>,
    affected: &[bool],
    stats: &mut ReanalyzeStats,
) -> ResweepResult {
    let prev_by_task: HashMap<TaskId, (usize, &DisparityReport)> = prev
        .reports
        .iter()
        .enumerate()
        .map(|(i, r)| (r.task, (i, r)))
        .collect();
    let mut reports = Vec::new();
    let mut tables = Vec::new();
    let mut skipped = Vec::new();
    for task in engine.graph().tasks() {
        let id = task.id();
        if affected[id.index()] {
            match engine.worst_case_disparity_with_tables(id, prev.config) {
                Ok((report, report_tables)) => {
                    stats.pairs_recomputed += report.pairs.len();
                    if report.chains.len() >= 2 {
                        stats.reports_recomputed += 1;
                        reports.push(report);
                        tables.push(report_tables);
                    }
                }
                Err(AnalysisError::Model(ModelError::ChainLimitExceeded { .. })) => {
                    skipped.push(id);
                }
                Err(e) => return Err(e.into()),
            }
        } else if let Some(&(r, report)) = prev_by_task.get(&id) {
            stats.pairs_reused += report.pairs.len();
            stats.reports_reused += 1;
            reports.push(report.clone());
            tables.push(prev.tables[r].clone());
        } else if prev.skipped.contains(&id) {
            skipped.push(id);
        }
    }
    Ok((reports, tables, skipped))
}

#[cfg(test)]
mod tests {
    use super::*;
    use disparity_model::spec::{ChannelSpec, EcuSpec, TaskEntry};
    use disparity_model::time::Duration;

    fn ms(v: i64) -> Duration {
        Duration::from_millis(v)
    }

    /// Fig. 2 of the paper as a spec: two stimuli into a two-ECU diamond.
    fn fig2_spec() -> SystemSpec {
        SystemSpec {
            ecus: vec![EcuSpec::processor("ecu1"), EcuSpec::processor("ecu2")],
            tasks: vec![
                TaskEntry::stimulus("t1", ms(10)),
                TaskEntry::stimulus("t2", ms(20)),
                TaskEntry::computation("t3", ms(10), ms(1), ms(2), "ecu1"),
                TaskEntry::computation("t4", ms(20), ms(2), ms(4), "ecu1"),
                TaskEntry::computation("t5", ms(30), ms(2), ms(5), "ecu2"),
                TaskEntry::computation("t6", ms(30), ms(3), ms(6), "ecu2"),
            ],
            channels: vec![
                ChannelSpec::register("t1", "t3"),
                ChannelSpec::register("t2", "t3"),
                ChannelSpec::register("t3", "t4"),
                ChannelSpec::register("t3", "t5"),
                ChannelSpec::register("t4", "t6"),
                ChannelSpec::register("t5", "t6"),
            ],
        }
    }

    fn assert_systems_identical(a: &AnalyzedSystem, b: &AnalyzedSystem) {
        assert_eq!(a.spec(), b.spec());
        assert_eq!(a.graph(), b.graph());
        assert_eq!(a.response_times(), b.response_times());
        assert_eq!(a.skipped(), b.skipped());
        assert_eq!(a.reports().len(), b.reports().len());
        for (ra, rb) in a.reports().iter().zip(b.reports()) {
            assert_eq!(ra.task, rb.task);
            assert_eq!(ra.method, rb.method);
            assert_eq!(ra.bound, rb.bound, "bound differs for {}", ra.task);
            assert_eq!(ra.chains, rb.chains);
            assert_eq!(ra.pairs.len(), rb.pairs.len());
            for (pa, pb) in ra.pairs.iter().zip(&rb.pairs) {
                assert_eq!((pa.lambda, pa.nu), (pb.lambda, pb.nu));
                assert_eq!(pa.analyzed_at, pb.analyzed_at);
                assert_eq!(pa.bound, pb.bound);
            }
        }
    }

    fn check_edit(edit: SpecEdit) -> ReanalyzeStats {
        let spec = fig2_spec();
        let base = AnalyzedSystem::analyze(&spec, AnalysisConfig::default()).unwrap();
        let (derived, stats) = reanalyze(&base, &edit).unwrap();
        let mut spec2 = spec;
        edit.apply(&mut spec2).unwrap();
        let cold = AnalyzedSystem::analyze(&spec2, AnalysisConfig::default()).unwrap();
        assert_systems_identical(&derived, &cold);
        stats
    }

    #[test]
    fn wcet_edit_recomputes_one_ecu_and_matches_cold() {
        let stats = check_edit(SpecEdit::SetWcet {
            task: "t4".into(),
            wcet: ms(5),
        });
        assert_eq!(stats.edit_kind, "set_wcet");
        assert!(!stats.graph_rebuilt);
        // Only ecu1's two tasks re-run their fixed points.
        assert_eq!(stats.wcrt_recomputed, 2);
        // t4's WCET enters the blocking term of every ecu1 task, so every
        // chain through t3 is dirty — the sweep re-runs, it never stales.
        assert!(stats.pairs_recomputed > 0);
    }

    #[test]
    fn bcet_edit_skips_wcrt_entirely() {
        let stats = check_edit(SpecEdit::SetBcet {
            task: "t5".into(),
            bcet: ms(1),
        });
        assert_eq!(stats.wcrt_recomputed, 0);
        assert!(!stats.graph_rebuilt);
    }

    #[test]
    fn buffer_resize_dirties_only_chains_through_the_edge() {
        let stats = check_edit(SpecEdit::ResizeBuffer {
            from: "t3".into(),
            to: "t5".into(),
            capacity: 3,
        });
        assert_eq!(stats.wcrt_recomputed, 0);
        assert!(stats.pairs_reused > 0);
        assert!(stats.pairs_recomputed > 0);
    }

    #[test]
    fn period_edit_rebuilds_and_matches_cold() {
        let stats = check_edit(SpecEdit::SetPeriod {
            task: "t4".into(),
            period: ms(40),
        });
        assert!(stats.graph_rebuilt);
    }

    #[test]
    fn priority_swap_matches_cold() {
        let stats = check_edit(SpecEdit::SwapPriority {
            a: "t5".into(),
            b: "t6".into(),
        });
        assert!(stats.graph_rebuilt);
        assert_eq!(stats.wcrt_recomputed, 2);
    }

    #[test]
    fn channel_add_and_remove_match_cold() {
        let add = check_edit(SpecEdit::AddChannel {
            from: "t1".into(),
            to: "t4".into(),
            capacity: 1,
        });
        assert!(add.graph_rebuilt);
        assert!(add.reports_recomputed > 0);
        let rm = check_edit(SpecEdit::RemoveChannel {
            from: "t3".into(),
            to: "t5".into(),
        });
        assert!(rm.graph_rebuilt);
    }

    #[test]
    fn upstream_only_edit_reuses_untouched_reports() {
        // t1 feeds everything in fig2, so pick a system with a side chain
        // the edit cannot reach.
        let mut spec = fig2_spec();
        spec.tasks.push(TaskEntry::stimulus("s7", ms(10)));
        spec.tasks
            .push(TaskEntry::computation("t8", ms(20), ms(1), ms(1), "ecu1"));
        spec.channels.push(ChannelSpec::register("s7", "t8"));
        spec.channels.push(ChannelSpec::register("t1", "t8"));
        let base = AnalyzedSystem::analyze(&spec, AnalysisConfig::default()).unwrap();
        let edit = SpecEdit::SetBcet {
            task: "t5".into(),
            bcet: ms(1),
        };
        let (derived, stats) = reanalyze(&base, &edit).unwrap();
        // t8 fuses chains untouched by the t5 edit: its report is reused.
        assert!(stats.reports_reused >= 1, "stats: {stats:?}");
        let mut spec2 = spec;
        edit.apply(&mut spec2).unwrap();
        let cold = AnalyzedSystem::analyze(&spec2, AnalysisConfig::default()).unwrap();
        assert_systems_identical(&derived, &cold);
    }

    #[test]
    fn invalid_edit_is_rejected_before_any_work() {
        let spec = fig2_spec();
        let base = AnalyzedSystem::analyze(&spec, AnalysisConfig::default()).unwrap();
        let err = reanalyze(
            &base,
            &SpecEdit::SetWcet {
                task: "nope".into(),
                wcet: ms(1),
            },
        )
        .unwrap_err();
        assert!(matches!(err, DeltaError::Edit(EditError::UnknownTask(_))), "{err}");
        let err = reanalyze(
            &base,
            &SpecEdit::SetPeriod {
                task: "t3".into(),
                period: ms(0),
            },
        )
        .unwrap_err();
        assert!(matches!(err, DeltaError::Edit(EditError::InvalidValue(_))), "{err}");
    }

    #[test]
    fn overload_on_the_dirty_ecu_is_reported() {
        let spec = fig2_spec();
        let base = AnalyzedSystem::analyze(&spec, AnalysisConfig::default()).unwrap();
        let err = reanalyze(
            &base,
            &SpecEdit::SetWcet {
                task: "t3".into(),
                wcet: ms(10),
            },
        )
        .unwrap_err();
        assert!(matches!(err, DeltaError::Sched(SchedError::Overloaded { .. })), "{err}");
    }

    #[test]
    fn dependency_map_indexes_chains_both_ways() {
        let spec = fig2_spec();
        let base = AnalyzedSystem::analyze(&spec, AnalysisConfig::default()).unwrap();
        let g = base.graph();
        let t3 = g.find_task("t3").unwrap();
        let t6 = g.find_task("t6").unwrap();
        assert!(!base.dependency_map().chains_of_task(t3).is_empty());
        // t3 -> t6 is not an edge; t4 -> t6 is.
        assert!(base.dependency_map().chains_of_edge(t3, t6).is_empty());
        let t4 = g.find_task("t4").unwrap();
        assert!(!base.dependency_map().chains_of_edge(t4, t6).is_empty());
        assert!(base.report_for(t6).is_some());
        assert!(base.report_for(g.find_task("t1").unwrap()).is_none());
    }

    #[test]
    fn rebased_basis_matches_a_cold_basis() {
        let spec = fig2_spec();
        let full = AnalyzedSystem::analyze(&spec, AnalysisConfig::default()).unwrap();
        // Start from a warmed basis, as a serving cache would hold it.
        let basis = DeltaBasis {
            spec: spec.clone(),
            graph: full.graph().clone(),
            rt: full.response_times().clone(),
            hops: full.hop_cache(),
        };
        for edit in [
            SpecEdit::SetWcet {
                task: "t4".into(),
                wcet: ms(5),
            },
            SpecEdit::SetPeriod {
                task: "t4".into(),
                period: ms(40),
            },
            SpecEdit::RemoveChannel {
                from: "t3".into(),
                to: "t5".into(),
            },
        ] {
            let rebased = basis.rebase(&edit).unwrap();
            let mut spec2 = spec.clone();
            edit.apply(&mut spec2).unwrap();
            let cold = DeltaBasis::analyze(&spec2).unwrap();
            assert_eq!(rebased.spec, cold.spec);
            assert_eq!(rebased.graph, cold.graph);
            assert_eq!(rebased.rt, cold.rt);
        }
        // The source basis is never mutated, and carried hop bounds are a
        // subset of the warmed set.
        assert_eq!(basis.spec, spec);
        let rebased = basis
            .rebase(&SpecEdit::SetBcet {
                task: "t5".into(),
                bcet: ms(1),
            })
            .unwrap();
        assert!(rebased.hops.len() < basis.hops.len());
        assert!(!rebased.hops.is_empty());
    }

    #[test]
    fn error_display_and_source() {
        use std::error::Error as _;
        let e = DeltaError::from(EditError::UnknownTask("x".into()));
        assert!(e.to_string().contains("edit error"));
        assert!(e.source().is_some());
    }
}
