//! Sampling windows: the time range in which a traced source timestamp can
//! lie.
//!
//! §III of the paper pins the analyzed job's release at time 0 and calls
//! `[a, b]` a *sampling window* of a source `π̄¹` when `t(π̄¹) ∈ [a, b]`.
//! Lemma 1 gives the basic window `[−W(π), −B(π)]`; Lemma 2 shifts it by
//! whole periods for jobs released around the analyzed one. Algorithm 1
//! reasons about window *midpoints* to choose buffer sizes.

use core::fmt;

use disparity_model::time::Duration;

/// A closed interval `[earliest, latest]` of candidate source timestamps,
/// expressed relative to the analyzed job's release (so usually negative).
///
/// # Examples
///
/// ```
/// use disparity_core::window::SamplingWindow;
/// use disparity_model::time::Duration;
///
/// let ms = Duration::from_millis;
/// let w = SamplingWindow::new(ms(-30), ms(-10));
/// assert_eq!(w.width(), ms(20));
/// assert_eq!(w.midpoint(), ms(-20));
/// assert_eq!(w.shifted(ms(-5)).latest, ms(-15));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SamplingWindow {
    /// Earliest possible timestamp.
    pub earliest: Duration,
    /// Latest possible timestamp.
    pub latest: Duration,
}

impl SamplingWindow {
    /// Creates a window.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earliest > latest`.
    #[must_use]
    pub fn new(earliest: Duration, latest: Duration) -> Self {
        debug_assert!(
            earliest <= latest,
            "window bounds out of order: {earliest} > {latest}"
        );
        SamplingWindow { earliest, latest }
    }

    /// The Lemma 1 window of a chain with backward-time bounds
    /// `[B(π), W(π)]`: the source timestamp lies in `[−W(π), −B(π)]`.
    #[must_use]
    pub fn from_backward_bounds(bounds: crate::backward::BackwardBounds) -> Self {
        SamplingWindow::new(-bounds.wcbt, -bounds.bcbt)
    }

    /// Window width `latest − earliest` (never negative).
    #[must_use]
    pub fn width(self) -> Duration {
        self.latest - self.earliest
    }

    /// The midpoint `(earliest + latest) / 2`, the quantity Algorithm 1
    /// aligns (integer division truncates toward zero by one nanosecond at
    /// worst).
    #[must_use]
    pub fn midpoint(self) -> Duration {
        (self.earliest + self.latest) / 2
    }

    /// The window translated by `by`.
    #[must_use]
    pub fn shifted(self, by: Duration) -> Self {
        SamplingWindow {
            earliest: self.earliest + by,
            latest: self.latest + by,
        }
    }

    /// Largest absolute timestamp difference between a point of `self` and
    /// a point of `other`.
    #[must_use]
    pub fn max_separation(self, other: SamplingWindow) -> Duration {
        (self.latest - other.earliest)
            .abs()
            .max((other.latest - self.earliest).abs())
    }

    /// `true` if the two windows share at least one instant.
    #[must_use]
    pub fn overlaps(self, other: SamplingWindow) -> bool {
        self.earliest <= other.latest && other.earliest <= self.latest
    }
}

impl fmt::Display for SamplingWindow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.earliest, self.latest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backward::BackwardBounds;

    fn ms(v: i64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn lemma1_window_negates_bounds() {
        let w = SamplingWindow::from_backward_bounds(BackwardBounds {
            wcbt: ms(30),
            bcbt: ms(-2),
        });
        assert_eq!(w.earliest, ms(-30));
        assert_eq!(w.latest, ms(2));
        assert_eq!(w.width(), ms(32));
    }

    #[test]
    fn max_separation_is_symmetric_and_covers_extremes() {
        let a = SamplingWindow::new(ms(-30), ms(-10));
        let b = SamplingWindow::new(ms(-8), ms(-2));
        assert_eq!(a.max_separation(b), ms(28)); // -30 vs -2
        assert_eq!(b.max_separation(a), ms(28));
        assert!(!a.overlaps(b));
    }

    #[test]
    fn overlap_detection() {
        let a = SamplingWindow::new(ms(-30), ms(-10));
        let c = SamplingWindow::new(ms(-12), ms(-4));
        assert!(a.overlaps(c));
        assert!(c.overlaps(a));
        let edge = SamplingWindow::new(ms(-10), ms(0));
        assert!(a.overlaps(edge), "closed intervals touch at -10");
    }

    #[test]
    fn midpoint_of_negative_window() {
        let w = SamplingWindow::new(ms(-31), ms(-10));
        // exact midpoint is -20.5ms; integer ns arithmetic keeps it exact.
        assert_eq!(w.midpoint(), Duration::from_micros(-20_500));
    }

    #[test]
    fn display_format() {
        assert_eq!(
            SamplingWindow::new(ms(-5), ms(3)).to_string(),
            "[-5ms, 3ms]"
        );
    }
}
