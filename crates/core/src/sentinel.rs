//! Soundness sentinel: replays observed run statistics against the
//! paper's analytical bounds.
//!
//! The sentinel is the oracle behind the fault-injection soak harness.
//! Given the *evidence* of one simulation run — the graph, the seed, the
//! fault plan that was injected, and the observed extrema — it decides
//! which guarantees apply and checks each of them:
//!
//! * **Model-preserving runs** (no model-violating fault fired, see
//!   `disparity-sim`'s fault classification): every analytical bound must
//!   hold. The sentinel checks the observed backward times of every
//!   monitored chain against WCBT/BCBT (Lemmas 4–5), observed response
//!   times against the WCRT analysis, and observed disparities against
//!   **P-diff** (Theorem 1) and **S-diff** (Theorem 2). Checking a
//!   buffered graph exercises **S-diff-B** (Theorem 3), which is exactly
//!   S-diff over the rewritten channel capacities.
//! * **Model-violating runs** (jitter, beyond-WCET overruns, token loss
//!   or ECU stalls actually fired): the bounds can legitimately fail, so
//!   the run must be *flagged*, never silently analyzed. The sentinel
//!   checks only flag integrity and runs no bound checks.
//! * **Degraded runs**: when the task set is not schedulable under the
//!   paper's standing assumption `R(τ) ≤ T(τ)`, the Lemma 4 hop bounds
//!   are not applicable; the sentinel falls back to the scheduler-agnostic
//!   Dürr-style baseline `Σ (T + R)` and reports itself as degraded.
//!
//! Every violation carries the observed value, the bound it broke and a
//! human-readable message; [`artifact`] renders the full report plus a
//! minimized reproduction (seed, fault plan, graph spec) as JSON.

use disparity_model::chain::Chain;
use disparity_model::graph::CauseEffectGraph;
use disparity_model::ids::TaskId;
use disparity_model::json::{self, Value};
use disparity_model::spec::SystemSpec;
use disparity_model::time::Duration;
use disparity_sched::schedulability::analyze;
use disparity_sched::wcrt::ResponseTimes;

use crate::backward::{backward_bounds, BackwardBounds};
use crate::baseline::baseline_wcbt;
use crate::error::AnalysisError;
use crate::pairwise::{theorem1_bound_with, theorem2_bound_with};

/// Observed backward-time extrema of one monitored chain.
#[derive(Debug, Clone)]
pub struct ChainEvidence {
    /// The monitored chain (a path of the run's graph).
    pub chain: Chain,
    /// Smallest observed backward time, if any sample was taken.
    pub min_backward: Option<Duration>,
    /// Largest observed backward time, if any sample was taken.
    pub max_backward: Option<Duration>,
    /// Number of complete backward chains observed.
    pub samples: u64,
}

/// Observed per-task extrema.
#[derive(Debug, Clone, Copy)]
pub struct TaskEvidence {
    /// The observed task.
    pub task: TaskId,
    /// Largest observed time disparity, if any job traced ≥ 2 sources.
    pub max_disparity: Option<Duration>,
    /// Largest observed response time, if the task ran on an ECU.
    pub max_response: Option<Duration>,
}

/// Everything the sentinel needs to judge one run.
///
/// The fault plan travels as its `Debug` representation: fault plans are
/// plain `Copy + Eq` data, so the string is an exact reproduction recipe
/// without coupling this crate to the simulator.
#[derive(Debug, Clone)]
pub struct RunEvidence<'g> {
    /// The simulated graph.
    pub graph: &'g CauseEffectGraph,
    /// The simulation seed (runs are deterministic per seed).
    pub seed: u64,
    /// `Debug` rendering of the injected fault plan.
    pub fault_plan: String,
    /// Whether the *plan* keeps every job inside the declared model.
    pub model_preserving: bool,
    /// Whether any model-violating fault actually *fired* during the run.
    pub faults_fired: bool,
    /// Observed backward times per monitored chain.
    pub chains: Vec<ChainEvidence>,
    /// Observed disparities and response times per task of interest.
    pub tasks: Vec<TaskEvidence>,
}

/// Which guarantee a violation broke.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CheckKind {
    /// Observed backward time above the Lemma 4 upper bound.
    Wcbt,
    /// Observed backward time below the Lemma 5 lower bound.
    Bcbt,
    /// Observed disparity above the Theorem 1 bound.
    PDiff,
    /// Observed disparity above the Theorem 2 bound (Theorem 3 when the
    /// checked graph carries designed buffers).
    SDiff,
    /// Observed response time above the WCRT analysis.
    Response,
    /// A run whose plan was declared model-preserving reported fired
    /// model-violating faults (bookkeeping corruption).
    FlagIntegrity,
}

impl CheckKind {
    fn name(self) -> &'static str {
        match self {
            CheckKind::Wcbt => "wcbt",
            CheckKind::Bcbt => "bcbt",
            CheckKind::PDiff => "p-diff",
            CheckKind::SDiff => "s-diff",
            CheckKind::Response => "response",
            CheckKind::FlagIntegrity => "flag-integrity",
        }
    }
}

/// One broken guarantee.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The guarantee that failed.
    pub kind: CheckKind,
    /// What was checked (chain or task rendering).
    pub subject: String,
    /// The observed value that broke the bound.
    pub observed: Duration,
    /// The bound it broke.
    pub bound: Duration,
    /// Human-readable description.
    pub message: String,
}

/// The sentinel's verdict over one run.
#[derive(Debug, Clone)]
pub struct SentinelReport {
    /// Whether bound checks ran at all (false for flagged model-violating
    /// runs, whose bounds may legitimately fail).
    pub enforced: bool,
    /// Whether the Dürr-style baseline replaced the Lemma 4 bounds
    /// because the task set is unschedulable.
    pub degraded: bool,
    /// Number of individual checks evaluated.
    pub checks: usize,
    /// Every broken guarantee, in evaluation order.
    pub violations: Vec<Violation>,
}

impl SentinelReport {
    /// Whether every evaluated check held.
    #[must_use]
    pub fn is_sound(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Judges one run: classifies it, picks the applicable bounds and checks
/// every observation against them.
///
/// # Errors
///
/// * [`AnalysisError::Sched`] when response times cannot be computed at
///   all (utilization ≥ 1 divergence) — without them not even the
///   baseline applies.
/// * [`AnalysisError::Model`] when a chain in the evidence is not a path
///   of the graph.
/// * Errors of the pairwise theorems for malformed chain pairs.
pub fn check_run(evidence: &RunEvidence<'_>) -> Result<SentinelReport, AnalysisError> {
    let report = analyze(evidence.graph)?;
    let degraded = !report.all_schedulable();
    let rt = report.into_response_times();
    let graph = evidence.graph;
    check_run_with(evidence, &rt, degraded, &|c| backward_bounds(graph, c, &rt))
}

/// [`check_run`] over an arbitrary backward-bounds provider.
///
/// The provider feeds the chain checks *and* both pairwise theorems, so a
/// deliberately corrupted provider lets tests prove the sentinel notices
/// a broken bound (mutation testing). `degraded` switches chain upper
/// bounds to the Dürr baseline and skips the model-based checks that
/// assume schedulability.
///
/// # Errors
///
/// Same conditions as [`check_run`] minus the schedulability analysis.
pub fn check_run_with(
    evidence: &RunEvidence<'_>,
    rt: &ResponseTimes,
    degraded: bool,
    bounds_of: &dyn Fn(&Chain) -> BackwardBounds,
) -> Result<SentinelReport, AnalysisError> {
    let _span = disparity_obs::span!(
        "sentinel.check_run",
        chains = evidence.chains.len(),
        tasks = evidence.tasks.len(),
    );
    let mut checks = 0usize;
    let mut violations = Vec::new();

    // Flag integrity is checked on every run: a plan declared
    // model-preserving must never report fired model violations.
    checks += 1;
    if evidence.model_preserving && evidence.faults_fired {
        violations.push(Violation {
            kind: CheckKind::FlagIntegrity,
            subject: "run".to_string(),
            observed: Duration::ZERO,
            bound: Duration::ZERO,
            message: "model-preserving plan reported fired model violations".to_string(),
        });
    }

    // Model-violating faults fired: the bounds may legitimately fail, so
    // the only sound move is to flag the run and stop here.
    let enforced = evidence.model_preserving || !evidence.faults_fired;
    if !enforced {
        let report = SentinelReport {
            enforced,
            degraded,
            checks,
            violations,
        };
        record_verdict(&report);
        return Ok(report);
    }

    for ev in &evidence.chains {
        // Re-validate: all chain arithmetic below assumes a graph path.
        let chain = Chain::new(evidence.graph, ev.chain.tasks().to_vec())?;
        let subject = chain.to_string();
        let upper = if degraded {
            baseline_wcbt(evidence.graph, &chain, rt)
        } else {
            bounds_of(&chain).wcbt
        };
        if let Some(hi) = ev.max_backward {
            checks += 1;
            observe_slack(upper - hi);
            if hi > upper {
                violations.push(Violation {
                    kind: CheckKind::Wcbt,
                    subject: subject.clone(),
                    observed: hi,
                    bound: upper,
                    message: format!(
                        "observed backward time {hi} exceeds {} {upper}",
                        if degraded { "baseline WCBT" } else { "WCBT" }
                    ),
                });
            }
        }
        if degraded {
            continue; // Lemma 5 presumes R(τ) ≤ T(τ); skip when broken.
        }
        if let Some(lo) = ev.min_backward {
            let bcbt = bounds_of(&chain).bcbt;
            checks += 1;
            observe_slack(lo - bcbt);
            if lo < bcbt {
                violations.push(Violation {
                    kind: CheckKind::Bcbt,
                    subject,
                    observed: lo,
                    bound: bcbt,
                    message: format!("observed backward time {lo} undercuts BCBT {bcbt}"),
                });
            }
        }
    }

    for ev in &evidence.tasks {
        let subject = format!("{}", ev.task);
        if !degraded {
            if let Some(r) = ev.max_response {
                checks += 1;
                let wcrt = rt.wcrt(ev.task);
                observe_slack(wcrt - r);
                if r > wcrt {
                    violations.push(Violation {
                        kind: CheckKind::Response,
                        subject: subject.clone(),
                        observed: r,
                        bound: wcrt,
                        message: format!("observed response time {r} exceeds WCRT {wcrt}"),
                    });
                }
            }
        }
        let Some(observed) = ev.max_disparity else {
            continue;
        };
        if degraded {
            continue; // Theorems 1–3 presume schedulability.
        }
        let chains = evidence.graph.chains_to(ev.task, DISPARITY_CHAIN_LIMIT)?;
        if chains.len() < 2 {
            continue; // No pair of sources can disagree.
        }
        let p_diff = p_diff_with(evidence.graph, &chains, bounds_of)?;
        checks += 1;
        observe_slack(p_diff - observed);
        if observed > p_diff {
            violations.push(Violation {
                kind: CheckKind::PDiff,
                subject: subject.clone(),
                observed,
                bound: p_diff,
                message: format!("observed disparity {observed} exceeds P-diff {p_diff}"),
            });
        }
        let s_diff = s_diff_with(evidence.graph, &chains, bounds_of)?;
        checks += 1;
        observe_slack(s_diff - observed);
        if observed > s_diff {
            violations.push(Violation {
                kind: CheckKind::SDiff,
                subject,
                observed,
                bound: s_diff,
                message: format!("observed disparity {observed} exceeds S-diff {s_diff}"),
            });
        }
    }

    let report = SentinelReport {
        enforced,
        degraded,
        checks,
        violations,
    };
    record_verdict(&report);
    Ok(report)
}

/// Chain-enumeration budget for the disparity checks; generous for the
/// WATERS-style workloads the soak harness generates.
const DISPARITY_CHAIN_LIMIT: usize = 4096;

/// Feeds the sentinel's verdict counters: runs judged, checks evaluated,
/// violations found, plus flagged (bound checks skipped after fired
/// model-violating faults) and degraded (baseline fallback) runs.
fn record_verdict(report: &SentinelReport) {
    if !disparity_obs::is_enabled() {
        return;
    }
    disparity_obs::counter_add("sentinel.runs", 1);
    disparity_obs::counter_add("sentinel.checks", report.checks as u64);
    disparity_obs::counter_add("sentinel.violations", report.violations.len() as u64);
    if !report.enforced {
        disparity_obs::counter_add("sentinel.flagged", 1);
    }
    if report.degraded {
        disparity_obs::counter_add("sentinel.degraded", 1);
    }
}

/// Records the observed-vs-bound slack (`bound − observed`, negative on a
/// violation) of one passed-or-failed bound check.
fn observe_slack(slack: Duration) {
    if disparity_obs::is_enabled() {
        disparity_obs::observe("sentinel.slack_ns", slack.as_nanos());
    }
}

/// Theorem 1 over every unordered chain pair.
fn p_diff_with(
    graph: &CauseEffectGraph,
    chains: &[Chain],
    bounds_of: &dyn Fn(&Chain) -> BackwardBounds,
) -> Result<Duration, AnalysisError> {
    let mut bound = Duration::ZERO;
    for i in 0..chains.len() {
        for j in (i + 1)..chains.len() {
            bound = bound.max(theorem1_bound_with(graph, &chains[i], &chains[j], bounds_of)?);
        }
    }
    Ok(bound)
}

/// Theorem 2 over every unordered chain pair, each truncated at its last
/// joint task first (the disparity is decided where the chains diverge).
fn s_diff_with(
    graph: &CauseEffectGraph,
    chains: &[Chain],
    bounds_of: &dyn Fn(&Chain) -> BackwardBounds,
) -> Result<Duration, AnalysisError> {
    let mut bound = Duration::ZERO;
    for i in 0..chains.len() {
        for j in (i + 1)..chains.len() {
            let Some((lam, nu)) = chains[i].truncate_to_last_joint(&chains[j]) else {
                continue; // disjoint suffixes: nothing to compare at the sink
            };
            bound = bound.max(theorem2_bound_with(graph, &lam, &nu, bounds_of)?);
        }
    }
    Ok(bound)
}

/// Renders a sentinel verdict plus its minimized reproduction (seed,
/// fault plan, full graph spec) as a structured JSON value.
///
/// The artifact is self-contained: feeding the graph spec back through
/// `SystemSpec::from_json_str` and re-running the recorded seed under the
/// recorded fault plan reproduces the run exactly.
#[must_use]
pub fn artifact(evidence: &RunEvidence<'_>, report: &SentinelReport) -> Value {
    let violations: Vec<Value> = report
        .violations
        .iter()
        .map(|v| {
            json::object(vec![
                ("kind", Value::from(v.kind.name())),
                ("subject", Value::from(v.subject.clone())),
                ("observed_ns", Value::from(v.observed.as_nanos())),
                ("bound_ns", Value::from(v.bound.as_nanos())),
                ("message", Value::from(v.message.clone())),
            ])
        })
        .collect();
    let chains: Vec<Value> = evidence
        .chains
        .iter()
        .map(|c| {
            json::object(vec![
                ("chain", Value::from(c.chain.to_string())),
                (
                    "min_backward_ns",
                    c.min_backward.map_or(Value::Null, |d| Value::from(d.as_nanos())),
                ),
                (
                    "max_backward_ns",
                    c.max_backward.map_or(Value::Null, |d| Value::from(d.as_nanos())),
                ),
                ("samples", Value::from(i64::try_from(c.samples).unwrap_or(i64::MAX))),
            ])
        })
        .collect();
    json::object(vec![
        (
            "verdict",
            Value::from(if report.is_sound() { "sound" } else { "violation" }),
        ),
        ("enforced", Value::from(report.enforced)),
        ("degraded", Value::from(report.degraded)),
        ("checks", Value::from(report.checks)),
        ("violations", Value::Array(violations)),
        ("observed_chains", Value::Array(chains)),
        (
            "repro",
            json::object(vec![
                ("seed", Value::from(i64::try_from(evidence.seed).unwrap_or(i64::MAX))),
                ("fault_plan", Value::from(evidence.fault_plan.clone())),
                ("graph", SystemSpec::from_graph(evidence.graph).to_json()),
            ]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use disparity_model::builder::SystemBuilder;
    use disparity_model::ids::Priority;
    use disparity_model::task::TaskSpec;

    fn ms(v: i64) -> Duration {
        Duration::from_millis(v)
    }

    /// Two sensors fused by one task; returns the graph, the fuse task
    /// and the two source→fuse chains.
    fn fusion() -> (CauseEffectGraph, TaskId, Vec<Chain>) {
        let mut b = SystemBuilder::new();
        let e = b.add_ecu("e");
        let s1 = b.add_task(TaskSpec::periodic("s1", ms(10)));
        let s2 = b.add_task(TaskSpec::periodic("s2", ms(30)));
        let fuse = b.add_task(
            TaskSpec::periodic("fuse", ms(30))
                .execution(ms(1), ms(2))
                .on_ecu(e),
        );
        b.connect(s1, fuse);
        b.connect(s2, fuse);
        let g = b.build().unwrap();
        let chains = vec![
            Chain::new(&g, vec![s1, fuse]).unwrap(),
            Chain::new(&g, vec![s2, fuse]).unwrap(),
        ];
        (g, fuse, chains)
    }

    fn clean_evidence<'g>(
        graph: &'g CauseEffectGraph,
        fuse: TaskId,
        chains: &[Chain],
    ) -> RunEvidence<'g> {
        // Observations comfortably inside the analytical bounds.
        RunEvidence {
            graph,
            seed: 7,
            fault_plan: "FaultPlan::none()".to_string(),
            model_preserving: true,
            faults_fired: false,
            chains: chains
                .iter()
                .map(|c| ChainEvidence {
                    chain: c.clone(),
                    min_backward: Some(ms(1)),
                    max_backward: Some(ms(5)),
                    samples: 16,
                })
                .collect(),
            tasks: vec![TaskEvidence {
                task: fuse,
                max_disparity: Some(ms(20)),
                max_response: Some(ms(2)),
            }],
        }
    }

    #[test]
    fn clean_run_is_sound() {
        let (g, fuse, chains) = fusion();
        let ev = clean_evidence(&g, fuse, &chains);
        let report = check_run(&ev).unwrap();
        assert!(report.is_sound(), "{:?}", report.violations);
        assert!(report.enforced);
        assert!(!report.degraded);
        // flag + 2×(wcbt+bcbt) + response + p-diff + s-diff
        assert_eq!(report.checks, 1 + 4 + 1 + 2);
    }

    #[test]
    fn corrupted_wcbt_is_detected_exactly_once() {
        let (g, fuse, chains) = fusion();
        let mut ev = clean_evidence(&g, fuse, &chains);
        // Restrict to one chain and drop the disparity/bcbt checks so the
        // mutation surfaces in exactly one place.
        ev.chains.truncate(1);
        ev.chains[0].min_backward = None;
        ev.tasks.clear();
        let report = analyze(&g).unwrap();
        let rt = report.into_response_times();
        // Mutation: report a WCBT 1ns below the observation.
        let broken = |c: &Chain| {
            let mut b = backward_bounds(&g, c, &rt);
            b.wcbt = ev.chains[0].max_backward.unwrap() - Duration::from_nanos(1);
            b
        };
        let verdict = check_run_with(&ev, &rt, false, &broken).unwrap();
        assert_eq!(verdict.violations.len(), 1);
        assert_eq!(verdict.violations[0].kind, CheckKind::Wcbt);
        // The same evidence under the true bounds is sound.
        let honest = check_run(&ev).unwrap();
        assert!(honest.is_sound());
    }

    #[test]
    fn corrupted_bounds_poison_the_pairwise_theorems_too() {
        let (g, fuse, chains) = fusion();
        let mut ev = clean_evidence(&g, fuse, &chains);
        // Keep only the disparity observation.
        ev.chains.clear();
        ev.tasks = vec![TaskEvidence {
            task: fuse,
            max_disparity: Some(ms(20)),
            max_response: None,
        }];
        let report = analyze(&g).unwrap();
        let rt = report.into_response_times();
        // Mutation: pretend every backward time is exactly zero, which
        // collapses both theorem bounds below the observed 20ms.
        let broken = |_c: &Chain| BackwardBounds {
            wcbt: Duration::ZERO,
            bcbt: Duration::ZERO,
        };
        let verdict = check_run_with(&ev, &rt, false, &broken).unwrap();
        let kinds: Vec<CheckKind> = verdict.violations.iter().map(|v| v.kind).collect();
        assert_eq!(kinds, vec![CheckKind::PDiff, CheckKind::SDiff]);
    }

    #[test]
    fn violating_runs_are_flagged_not_analyzed() {
        let (g, fuse, chains) = fusion();
        let mut ev = clean_evidence(&g, fuse, &chains);
        ev.model_preserving = false;
        ev.faults_fired = true;
        // Even absurd observations are not judged once faults fired.
        ev.chains[0].max_backward = Some(ms(100_000));
        let report = check_run(&ev).unwrap();
        assert!(!report.enforced);
        assert!(report.is_sound());
        assert_eq!(report.checks, 1, "only flag integrity ran");
    }

    #[test]
    fn inconsistent_flags_are_a_violation() {
        let (g, fuse, chains) = fusion();
        let mut ev = clean_evidence(&g, fuse, &chains);
        ev.model_preserving = true;
        ev.faults_fired = true;
        let report = check_run(&ev).unwrap();
        assert!(!report.is_sound());
        assert_eq!(report.violations[0].kind, CheckKind::FlagIntegrity);
    }

    #[test]
    fn unschedulable_system_degrades_to_baseline() {
        // One ECU, U < 1 but the low-priority task misses its deadline.
        let mut b = SystemBuilder::new();
        let e = b.add_ecu("e");
        let s = b.add_task(TaskSpec::periodic("s", ms(10)));
        let a = b.add_task(
            TaskSpec::periodic("a", ms(10))
                .execution(ms(4), ms(4))
                .on_ecu(e)
                .priority(Priority::new(0)),
        );
        let t = b.add_task(
            TaskSpec::periodic("t", ms(12))
                .execution(ms(7), ms(7))
                .on_ecu(e)
                .priority(Priority::new(1)),
        );
        b.connect(s, a);
        b.connect(a, t);
        let g = b.build().unwrap();
        let sched = analyze(&g).unwrap();
        assert!(!sched.all_schedulable(), "setup must be unschedulable");
        let chain = Chain::new(&g, vec![g.find_task("s").unwrap(), a, t]).unwrap();
        let ev = RunEvidence {
            graph: &g,
            seed: 1,
            fault_plan: String::new(),
            model_preserving: true,
            faults_fired: false,
            chains: vec![ChainEvidence {
                chain,
                min_backward: Some(ms(-40)),
                max_backward: Some(ms(30)),
                samples: 4,
            }],
            tasks: vec![TaskEvidence {
                task: t,
                max_disparity: None,
                max_response: Some(ms(15)),
            }],
        };
        let report = check_run(&ev).unwrap();
        assert!(report.degraded);
        // Only flag integrity + the baseline WCBT check ran: BCBT,
        // response and disparity checks presume schedulability.
        assert_eq!(report.checks, 2);
        assert!(report.is_sound(), "{:?}", report.violations);
    }

    #[test]
    fn artifact_round_trips_the_graph_spec() {
        let (g, fuse, chains) = fusion();
        let mut ev = clean_evidence(&g, fuse, &chains);
        ev.chains[0].max_backward = Some(ms(100_000));
        let report = check_run(&ev).unwrap();
        assert!(!report.is_sound());
        let art = artifact(&ev, &report);
        assert_eq!(art.get("verdict").and_then(Value::as_str), Some("violation"));
        let repro = art.get("repro").unwrap();
        assert_eq!(repro.get("seed").and_then(Value::as_i64), Some(7));
        let spec_json = repro.get("graph").unwrap().to_pretty();
        let rebuilt = SystemSpec::from_json_str(&spec_json).unwrap().build().unwrap();
        assert_eq!(rebuilt.task_count(), g.task_count());
        // And the violation entry names the broken guarantee.
        let v = &art.get("violations").unwrap().as_array().unwrap()[0];
        assert_eq!(v.get("kind").and_then(Value::as_str), Some("wcbt"));
    }
}
