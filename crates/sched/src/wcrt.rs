//! Worst-case response-time analysis for non-preemptive fixed-priority
//! scheduling.
//!
//! This is the classic level-i busy-period analysis (in the style of the
//! CAN analysis by Davis et al. and the non-preemptive uniprocessor results
//! cited by the paper as \[12\], \[13\]):
//!
//! * a job of `τ_i` suffers **blocking** `B_i = max{ C_j : j ∈ lp(i) }`
//!   from at most one already-running lower-priority job;
//! * the `q`-th job in a level-i busy period starts no later than the
//!   smallest fixed point of
//!   `w = B_i + q·C_i + Σ_{j ∈ hp(i)} (⌊w/T_j⌋ + 1)·C_j`;
//! * its response time is `w + C_i − q·T_i`, and the busy period spans
//!   `Q = ⌈L/T_i⌉` jobs where `L` solves
//!   `L = B_i + Σ_{j ∈ hp(i) ∪ {i}} ⌈L/T_j⌉·C_j`.
//!
//! The `⌊w/T⌋ + 1` term is deliberately conservative at integer boundaries:
//! a higher-priority job released exactly at the candidate start instant is
//! assumed to win the processor, matching the simulator's dispatch rule
//! (releases are processed before dispatch at equal timestamps).
//!
//! Zero-cost tasks (the paper's source-task stimuli) are off-CPU: their
//! response time is zero and they induce no interference.

use disparity_model::graph::CauseEffectGraph;
use disparity_model::ids::{EcuId, TaskId};
use disparity_model::time::Duration;

use crate::error::SchedError;
use crate::utilization::ecu_utilization;

/// Iteration budget for the fixed-point loops; generously above anything a
/// sane workload needs, purely a divergence backstop.
const MAX_ITERATIONS: usize = 1_000_000;

/// Response-time bounds of a single task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskResponse {
    /// Worst-case response time `R(τ)`: the longest release-to-finish span.
    pub wcrt: Duration,
    /// Worst-case start delay `R(τ) − W(τ)`: the longest release-to-start
    /// span. Lemma 4 of the paper implicitly relies on this quantity.
    pub max_start_delay: Duration,
}

/// Response times for every task of a graph.
///
/// Produced by [`response_times`]; indexed by [`TaskId`].
///
/// # Examples
///
/// ```
/// use disparity_model::prelude::*;
/// use disparity_sched::wcrt::response_times;
///
/// let mut b = SystemBuilder::new();
/// let ecu = b.add_ecu("e");
/// let ms = Duration::from_millis;
/// let hi = b.add_task(TaskSpec::periodic("hi", ms(10)).wcet(ms(2)).on_ecu(ecu));
/// let lo = b.add_task(TaskSpec::periodic("lo", ms(50)).wcet(ms(5)).on_ecu(ecu));
/// let g = b.build()?;
/// let rt = response_times(&g)?;
/// // `hi` can only be blocked by `lo` once: R = 5 + 2.
/// assert_eq!(rt.wcrt(hi), ms(7));
/// // `lo` waits for one `hi` job: R = 2 + 5.
/// assert_eq!(rt.wcrt(lo), ms(7));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResponseTimes {
    per_task: Vec<TaskResponse>,
}

impl ResponseTimes {
    /// Worst-case response time of `task`.
    ///
    /// # Panics
    ///
    /// Panics if `task` was not part of the analyzed graph.
    #[must_use]
    pub fn wcrt(&self, task: TaskId) -> Duration {
        self.per_task[task.index()].wcrt
    }

    /// Worst-case start delay (`R − W`) of `task`.
    ///
    /// # Panics
    ///
    /// Panics if `task` was not part of the analyzed graph.
    #[must_use]
    pub fn max_start_delay(&self, task: TaskId) -> Duration {
        self.per_task[task.index()].max_start_delay
    }

    /// Full bounds of `task`, or `None` for a foreign id.
    #[must_use]
    pub fn get(&self, task: TaskId) -> Option<TaskResponse> {
        self.per_task.get(task.index()).copied()
    }

    /// Bounds for all tasks, indexed by [`TaskId::index`].
    #[must_use]
    pub fn as_slice(&self) -> &[TaskResponse] {
        &self.per_task
    }
}

/// Computes worst-case response times for every task in the graph.
///
/// # Errors
///
/// * [`SchedError::Overloaded`] if any ECU's utilization is ≥ 1 (the busy
///   period would be unbounded).
/// * [`SchedError::NonConvergence`] if a fixed point is not reached within
///   the iteration budget.
pub fn response_times(graph: &CauseEffectGraph) -> Result<ResponseTimes, SchedError> {
    let _span = disparity_obs::span!("wcrt.response_times", tasks = graph.task_count());
    disparity_obs::counter_add("wcrt.analyses", 1);
    for ecu in graph.ecus() {
        let u = ecu_utilization(graph, ecu.id());
        if u >= 1.0 {
            return Err(SchedError::Overloaded {
                ecu: ecu.id(),
                utilization: u,
            });
        }
    }
    let mut per_task = vec![
        TaskResponse {
            wcrt: Duration::ZERO,
            max_start_delay: Duration::ZERO
        };
        graph.task_count()
    ];
    for task in graph.tasks() {
        if task.is_zero_cost() {
            continue; // off-CPU stimulus: R = 0
        }
        let Some(ecu) = task.ecu() else {
            return Err(SchedError::UnmappedTask(task.id()));
        };
        per_task[task.id().index()] = task_response(graph, task.id(), ecu)?;
    }
    Ok(ResponseTimes { per_task })
}

/// Recomputes response times only for tasks mapped to `dirty_ecus`,
/// copying every other task's bounds from `prev`.
///
/// WCRT under non-preemptive fixed-priority scheduling depends *only* on
/// the parameters of same-ECU tasks, so when an edit is confined to the
/// ECUs in `dirty_ecus` this is exactly equal to a full
/// [`response_times`] run — the incremental re-analysis engine asserts
/// that equality property-style against the cold oracle.
///
/// # Caller contract
///
/// `graph` must have the same task set (count and ids) as the graph that
/// produced `prev`, and differ from it only in parameters of tasks mapped
/// to ECUs in `dirty_ecus`. Violating this silently yields stale bounds
/// for the unlisted ECUs; it is not detectable here.
///
/// # Errors
///
/// Same as [`response_times`], evaluated for the dirty ECUs only:
/// [`SchedError::Overloaded`] when a dirty ECU's utilization reaches 1,
/// [`SchedError::NonConvergence`] on fixed-point divergence, and
/// [`SchedError::UnmappedTask`] for a costly task without an ECU.
pub fn response_times_partial(
    graph: &CauseEffectGraph,
    prev: &ResponseTimes,
    dirty_ecus: &[EcuId],
) -> Result<ResponseTimes, SchedError> {
    let _span = disparity_obs::span!(
        "wcrt.response_times_partial",
        tasks = graph.task_count(),
        dirty_ecus = dirty_ecus.len()
    );
    disparity_obs::counter_add("wcrt.partial_analyses", 1);
    for &ecu in dirty_ecus {
        let u = ecu_utilization(graph, ecu);
        if u >= 1.0 {
            return Err(SchedError::Overloaded { ecu, utilization: u });
        }
    }
    let mut per_task = Vec::with_capacity(graph.task_count());
    for task in graph.tasks() {
        if task.is_zero_cost() {
            per_task.push(TaskResponse {
                wcrt: Duration::ZERO,
                max_start_delay: Duration::ZERO,
            });
            continue;
        }
        let Some(ecu) = task.ecu() else {
            return Err(SchedError::UnmappedTask(task.id()));
        };
        if dirty_ecus.contains(&ecu) {
            per_task.push(task_response(graph, task.id(), ecu)?);
        } else {
            per_task.push(prev.per_task[task.id().index()]);
        }
    }
    Ok(ResponseTimes { per_task })
}

fn task_response(
    graph: &CauseEffectGraph,
    id: TaskId,
    ecu: EcuId,
) -> Result<TaskResponse, SchedError> {
    let task = graph.task(id);
    let c = task.wcet();
    let t = task.period();

    let mut hp: Vec<(Duration, Duration)> = Vec::new(); // (C_j, T_j)
    let mut blocking = Duration::ZERO;
    for other_id in graph.tasks_on_ecu(ecu) {
        if other_id == id {
            continue;
        }
        let other = graph.task(other_id);
        if other.wcet().is_zero() {
            continue;
        }
        if graph.in_hp(other_id, id) {
            hp.push((other.wcet(), other.period()));
        } else {
            blocking = blocking.max(other.wcet());
        }
    }

    // Fixed-point iterations spent on this task, across the busy-period
    // loop and every per-instance loop; fed to the obs layer at the end.
    let mut iterations: u64 = 0;

    // Length of the level-i busy period.
    let mut busy = blocking + c;
    for _ in 0..MAX_ITERATIONS {
        iterations += 1;
        let mut next = blocking + busy.div_ceil(t).max(1) * c;
        for &(cj, tj) in &hp {
            next += busy.div_ceil(tj).max(1) * cj;
        }
        if next == busy {
            break;
        }
        busy = next;
        if busy == Duration::MAX {
            return Err(SchedError::NonConvergence { task: id });
        }
    }
    let instances = busy.div_ceil(t).max(1);

    let mut worst = TaskResponse {
        wcrt: Duration::ZERO,
        max_start_delay: Duration::ZERO,
    };
    for q in 0..instances {
        // Seed from below so the iteration converges to the *least* fixed
        // point (seeding from the previous instance can overshoot).
        let mut w = blocking + c * q;
        let mut converged = false;
        for _ in 0..MAX_ITERATIONS {
            iterations += 1;
            let mut next = blocking + c * q;
            for &(cj, tj) in &hp {
                next += (next_release_count(w, tj)) * cj;
            }
            if next == w {
                converged = true;
                break;
            }
            w = next;
        }
        if !converged {
            return Err(SchedError::NonConvergence { task: id });
        }
        let start_delay = w - t * q;
        let response = start_delay + c;
        if response > worst.wcrt {
            worst = TaskResponse {
                wcrt: response,
                max_start_delay: start_delay,
            };
        }
    }
    if disparity_obs::is_enabled() {
        disparity_obs::counter_add("wcrt.fixed_point_iterations", iterations);
        disparity_obs::observe(
            "wcrt.iterations",
            i64::try_from(iterations).unwrap_or(i64::MAX),
        );
    }
    Ok(worst)
}

/// Number of releases of a period-`t` task in the closed interval `[0, w]`:
/// `⌊w/t⌋ + 1`. A release exactly at the candidate start instant still
/// pre-empts the start decision (matching simulator event ordering).
fn next_release_count(w: Duration, t: Duration) -> i64 {
    w.div_floor(t) + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use disparity_model::builder::SystemBuilder;
    use disparity_model::ids::Priority;
    use disparity_model::task::TaskSpec;
    use disparity_model::time::Duration;

    fn ms(v: i64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn lone_task_has_response_equal_to_wcet() {
        let mut b = SystemBuilder::new();
        let e = b.add_ecu("e");
        let t = b.add_task(
            TaskSpec::periodic("t", ms(10))
                .execution(ms(1), ms(3))
                .on_ecu(e),
        );
        let g = b.build().unwrap();
        let rt = response_times(&g).unwrap();
        assert_eq!(rt.wcrt(t), ms(3));
        assert_eq!(rt.max_start_delay(t), ms(0));
    }

    #[test]
    fn highest_priority_suffers_only_blocking() {
        let mut b = SystemBuilder::new();
        let e = b.add_ecu("e");
        let hi = b.add_task(TaskSpec::periodic("hi", ms(10)).wcet(ms(2)).on_ecu(e));
        let lo1 = b.add_task(TaskSpec::periodic("lo1", ms(100)).wcet(ms(4)).on_ecu(e));
        let _lo2 = b.add_task(TaskSpec::periodic("lo2", ms(100)).wcet(ms(7)).on_ecu(e));
        let g = b.build().unwrap();
        let rt = response_times(&g).unwrap();
        // blocked by the longest lower-priority job only once
        assert_eq!(rt.wcrt(hi), ms(2 + 7));
        assert_eq!(rt.max_start_delay(hi), ms(7));
        // lo1 blocked by lo2 and interfered by hi
        assert_eq!(rt.wcrt(lo1), ms(7 + 2 + 4));
    }

    #[test]
    fn interference_counts_boundary_releases() {
        // hi: C=2, T=4; lo: C=3, T=100. Start delay of lo:
        // w0 = 2 (one hi release at 0); release at 4 lands while waiting?
        // w = (floor(2/4)+1)*2 = 2 -> fixpoint w=2; R = 5.
        let mut b = SystemBuilder::new();
        let e = b.add_ecu("e");
        let _hi = b.add_task(TaskSpec::periodic("hi", ms(4)).wcet(ms(2)).on_ecu(e));
        let lo = b.add_task(TaskSpec::periodic("lo", ms(100)).wcet(ms(3)).on_ecu(e));
        let g = b.build().unwrap();
        let rt = response_times(&g).unwrap();
        assert_eq!(rt.wcrt(lo), ms(5));
    }

    #[test]
    fn boundary_release_is_conservative() {
        // hi: C=4, T=4 would saturate; use C=2, T=4 and mid: C=2, T=4?
        // Instead verify the +1: lo behind hi with w exactly multiple of T.
        // hi: C=1, T=2; lo: C=3, T=100.
        // w iterates: 1, then floor(1/2)+1 =1 -> w=1? then next = 1*1=1 fix.
        // Then releases at 2,4 happen *during* lo's execution (non-preemptive):
        // they do not delay the start. R = 1 + 3 = 4.
        let mut b = SystemBuilder::new();
        let e = b.add_ecu("e");
        let _hi = b.add_task(TaskSpec::periodic("hi", ms(2)).wcet(ms(1)).on_ecu(e));
        let lo = b.add_task(TaskSpec::periodic("lo", ms(100)).wcet(ms(3)).on_ecu(e));
        let g = b.build().unwrap();
        let rt = response_times(&g).unwrap();
        assert_eq!(rt.wcrt(lo), ms(4));
    }

    #[test]
    fn overload_is_reported() {
        let mut b = SystemBuilder::new();
        let e = b.add_ecu("e");
        b.add_task(TaskSpec::periodic("a", ms(10)).wcet(ms(6)).on_ecu(e));
        b.add_task(TaskSpec::periodic("b", ms(10)).wcet(ms(6)).on_ecu(e));
        let g = b.build().unwrap();
        assert!(matches!(
            response_times(&g),
            Err(SchedError::Overloaded { .. })
        ));
    }

    #[test]
    fn zero_cost_stimulus_has_zero_response() {
        let mut b = SystemBuilder::new();
        let s = b.add_task(TaskSpec::periodic("s", ms(5)));
        let g = b.build().unwrap();
        let rt = response_times(&g).unwrap();
        assert_eq!(rt.wcrt(s), Duration::ZERO);
    }

    #[test]
    fn busy_period_extends_past_first_instance() {
        // Non-preemptive self-pushing: hi C=3 T=5, lo C=4 T=100.
        // hi's first job: blocked by lo (4) -> w0=4, R0=7 > T=5.
        // Second hi job (q=1): w = 4+3 + hp(none) = 7, R1 = 7+3-5 = 5.
        let mut b = SystemBuilder::new();
        let e = b.add_ecu("e");
        let hi = b.add_task(TaskSpec::periodic("hi", ms(5)).wcet(ms(3)).on_ecu(e));
        let _lo = b.add_task(TaskSpec::periodic("lo", ms(100)).wcet(ms(4)).on_ecu(e));
        let g = b.build().unwrap();
        let rt = response_times(&g).unwrap();
        assert_eq!(rt.wcrt(hi), ms(7));
    }

    #[test]
    fn explicit_priorities_change_interference() {
        let mut b = SystemBuilder::new();
        let e = b.add_ecu("e");
        // slow task explicitly outranks fast one
        let slow = b.add_task(
            TaskSpec::periodic("slow", ms(100))
                .wcet(ms(5))
                .on_ecu(e)
                .priority(Priority::new(0)),
        );
        let fast = b.add_task(
            TaskSpec::periodic("fast", ms(10))
                .wcet(ms(1))
                .on_ecu(e)
                .priority(Priority::new(1)),
        );
        let g = b.build().unwrap();
        let rt = response_times(&g).unwrap();
        assert_eq!(rt.wcrt(slow), ms(1 + 5)); // blocked once by fast
        assert_eq!(rt.wcrt(fast), ms(5 + 1)); // interfered by slow
    }

    #[test]
    fn partial_recompute_matches_full_run_after_an_edit() {
        let mut b = SystemBuilder::new();
        let e0 = b.add_ecu("e0");
        let e1 = b.add_ecu("e1");
        let a = b.add_task(TaskSpec::periodic("a", ms(10)).wcet(ms(2)).on_ecu(e0));
        let c = b.add_task(TaskSpec::periodic("c", ms(50)).wcet(ms(5)).on_ecu(e0));
        let d = b.add_task(TaskSpec::periodic("d", ms(20)).wcet(ms(4)).on_ecu(e1));
        b.add_task(TaskSpec::periodic("stim", ms(5)));
        let mut g = b.build().unwrap();
        let prev = response_times(&g).unwrap();

        g.set_task_wcet(c, ms(6)).unwrap();
        let partial = response_times_partial(&g, &prev, &[e0]).unwrap();
        let full = response_times(&g).unwrap();
        assert_eq!(partial, full, "dirty-ECU recompute equals the cold run");
        // The other ECU's entry really was copied, not recomputed to a
        // different value.
        assert_eq!(partial.wcrt(d), prev.wcrt(d));
        assert_ne!(partial.wcrt(a), Duration::ZERO);
    }

    #[test]
    fn partial_recompute_reports_dirty_overload() {
        let mut b = SystemBuilder::new();
        let e0 = b.add_ecu("e0");
        let a = b.add_task(TaskSpec::periodic("a", ms(10)).wcet(ms(4)).on_ecu(e0));
        let mut g = b.build().unwrap();
        let prev = response_times(&g).unwrap();
        g.set_task_wcet(a, ms(10)).unwrap();
        assert!(matches!(
            response_times_partial(&g, &prev, &[e0]),
            Err(SchedError::Overloaded { .. })
        ));
    }

    #[test]
    fn cross_ecu_tasks_do_not_interact() {
        let mut b = SystemBuilder::new();
        let e0 = b.add_ecu("e0");
        let e1 = b.add_ecu("e1");
        let a = b.add_task(TaskSpec::periodic("a", ms(10)).wcet(ms(2)).on_ecu(e0));
        let c = b.add_task(TaskSpec::periodic("c", ms(10)).wcet(ms(9)).on_ecu(e1));
        let g = b.build().unwrap();
        let rt = response_times(&g).unwrap();
        assert_eq!(rt.wcrt(a), ms(2));
        assert_eq!(rt.wcrt(c), ms(9));
    }
}
