//! Non-preemptive fixed-priority schedulability analysis.
//!
//! The DATE 2023 time-disparity paper schedules the tasks of each ECU (and
//! each CAN-like bus) with a **non-preemptive fixed-priority** policy and
//! assumes every task is schedulable (`R(τ) ≤ T(τ)`). This crate provides:
//!
//! * [`wcrt`] — level-i busy-period worst-case response-time analysis,
//!   including the worst-case *start delay* `R − W` that Lemma 4 of the
//!   paper implicitly uses;
//! * [`schedulability`] — per-task `R ≤ T` verdicts;
//! * [`utilization`] — per-ECU load accounting.
//!
//! # Examples
//!
//! ```
//! use disparity_model::prelude::*;
//! use disparity_sched::prelude::*;
//!
//! let mut b = SystemBuilder::new();
//! let ecu = b.add_ecu("ecu0");
//! let ms = Duration::from_millis;
//! let ctrl = b.add_task(TaskSpec::periodic("ctrl", ms(10)).wcet(ms(2)).on_ecu(ecu));
//! let log = b.add_task(TaskSpec::periodic("log", ms(100)).wcet(ms(5)).on_ecu(ecu));
//! let g = b.build()?;
//! let report = analyze(&g)?;
//! assert!(report.all_schedulable());
//! assert_eq!(report.response_times().wcrt(ctrl), ms(7)); // blocked once by log
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod error;
pub mod schedulability;
pub mod sensitivity;
pub mod utilization;
pub mod wcrt;

/// Convenient glob-import of the most used items.
pub mod prelude {
    pub use crate::error::SchedError;
    pub use crate::schedulability::{analyze, SchedulabilityReport, TaskVerdict};
    pub use crate::sensitivity::{wcet_slack, WcetSlack};
    pub use crate::utilization::{all_utilizations, ecu_utilization, peak_utilization};
    pub use crate::wcrt::{response_times, ResponseTimes, TaskResponse};
}
