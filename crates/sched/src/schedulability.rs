//! Schedulability verdicts (`R(τ) ≤ T(τ)`).
//!
//! The paper "does not focus on the schedulability of the system, and
//! simply assume\[s\] that each task is schedulable" (§II.B). The disparity
//! analysis therefore demands a [`SchedulabilityReport`] whose verdict is
//! positive; this module computes it.

use disparity_model::graph::CauseEffectGraph;
use disparity_model::ids::TaskId;
use disparity_model::time::Duration;

use crate::error::SchedError;
use crate::wcrt::{response_times, ResponseTimes};

/// Per-task schedulability outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskVerdict {
    /// The task under verdict.
    pub task: TaskId,
    /// Its worst-case response time.
    pub wcrt: Duration,
    /// Its period (implicit deadline).
    pub period: Duration,
    /// `wcrt ≤ period`.
    pub schedulable: bool,
}

/// Result of checking `R(τ) ≤ T(τ)` for every task of a graph.
///
/// # Examples
///
/// ```
/// use disparity_model::prelude::*;
/// use disparity_sched::schedulability::analyze;
///
/// let mut b = SystemBuilder::new();
/// let ecu = b.add_ecu("e");
/// let ms = Duration::from_millis;
/// b.add_task(TaskSpec::periodic("a", ms(10)).wcet(ms(2)).on_ecu(ecu));
/// b.add_task(TaskSpec::periodic("b", ms(20)).wcet(ms(4)).on_ecu(ecu));
/// let g = b.build()?;
/// let report = analyze(&g)?;
/// assert!(report.all_schedulable());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchedulabilityReport {
    response_times: ResponseTimes,
    verdicts: Vec<TaskVerdict>,
}

impl SchedulabilityReport {
    /// The underlying response-time bounds.
    #[must_use]
    pub fn response_times(&self) -> &ResponseTimes {
        &self.response_times
    }

    /// Consumes the report, yielding the response times.
    #[must_use]
    pub fn into_response_times(self) -> ResponseTimes {
        self.response_times
    }

    /// Per-task verdicts, indexed by [`TaskId::index`].
    #[must_use]
    pub fn verdicts(&self) -> &[TaskVerdict] {
        &self.verdicts
    }

    /// `true` if every task meets its implicit deadline.
    #[must_use]
    pub fn all_schedulable(&self) -> bool {
        self.verdicts.iter().all(|v| v.schedulable)
    }

    /// The tasks that miss their deadline, if any.
    #[must_use]
    pub fn violations(&self) -> Vec<TaskId> {
        self.verdicts
            .iter()
            .filter(|v| !v.schedulable)
            .map(|v| v.task)
            .collect()
    }
}

/// Runs the response-time analysis and checks every task against its
/// implicit deadline.
///
/// # Errors
///
/// Propagates [`SchedError`] from the response-time analysis (overload or
/// non-convergence). An unschedulable-but-bounded system is *not* an error;
/// inspect [`SchedulabilityReport::all_schedulable`].
pub fn analyze(graph: &CauseEffectGraph) -> Result<SchedulabilityReport, SchedError> {
    let response_times = response_times(graph)?;
    let verdicts = graph
        .tasks()
        .iter()
        .map(|t| {
            let wcrt = response_times.wcrt(t.id());
            TaskVerdict {
                task: t.id(),
                wcrt,
                period: t.period(),
                schedulable: wcrt <= t.period(),
            }
        })
        .collect();
    Ok(SchedulabilityReport {
        response_times,
        verdicts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use disparity_model::builder::SystemBuilder;
    use disparity_model::task::TaskSpec;

    fn ms(v: i64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn schedulable_system_reports_clean() {
        let mut b = SystemBuilder::new();
        let e = b.add_ecu("e");
        b.add_task(TaskSpec::periodic("a", ms(10)).wcet(ms(1)).on_ecu(e));
        b.add_task(TaskSpec::periodic("b", ms(20)).wcet(ms(2)).on_ecu(e));
        let g = b.build().unwrap();
        let r = analyze(&g).unwrap();
        assert!(r.all_schedulable());
        assert!(r.violations().is_empty());
        assert_eq!(r.verdicts().len(), 2);
    }

    #[test]
    fn deadline_miss_is_flagged_not_an_error() {
        let mut b = SystemBuilder::new();
        let e = b.add_ecu("e");
        // hi alone fits; lo blocked by nothing but interfered heavily.
        let _hi = b.add_task(TaskSpec::periodic("hi", ms(10)).wcet(ms(5)).on_ecu(e));
        let lo = b.add_task(TaskSpec::periodic("lo", ms(12)).wcet(ms(4)).on_ecu(e));
        let g = b.build().unwrap();
        let r = analyze(&g).unwrap();
        // lo: w = 5 (one hi) -> release at 10 lands during lo? w=5: floor(5/10)+1 =1,
        // fix; R = 9 <= 12 -> actually schedulable. Check report consistency instead.
        let v = r.verdicts()[lo.index()];
        assert_eq!(v.schedulable, v.wcrt <= v.period);
        assert_eq!(r.all_schedulable(), r.violations().is_empty());
    }

    #[test]
    fn truly_unschedulable_system_is_flagged() {
        let mut b = SystemBuilder::new();
        let e = b.add_ecu("e");
        let _hi = b.add_task(TaskSpec::periodic("hi", ms(10)).wcet(ms(6)).on_ecu(e));
        let lo = b.add_task(TaskSpec::periodic("lo", ms(30)).wcet(ms(9)).on_ecu(e));
        let g = b.build().unwrap();
        let r = analyze(&g).unwrap();
        // lo start delay: 6; +releases at 10, 20 while waiting:
        // w: 6 -> (floor(6/10)+1)*6=12 -> (floor(12/10)+1)*6=12? floor(12/10)=1 ->
        // 2*6=12 fix. R = 12+9 = 21 <= 30 ok. hi: blocked 9 + 6 = 15 > 10: miss.
        assert!(!r.all_schedulable());
        assert!(!r.violations().contains(&lo));
    }
}
