//! WCET sensitivity analysis.
//!
//! Answers the designer's question "how much execution-time budget is
//! left?": the largest factor by which a task's WCET can grow before some
//! task misses its deadline. Because response times are monotone in every
//! WCET (more demand never finishes earlier), a binary search over the
//! scaled graph is exact to the chosen resolution.

use disparity_model::graph::CauseEffectGraph;
use disparity_model::ids::TaskId;
use disparity_model::time::Duration;

use crate::error::SchedError;
use crate::schedulability::analyze;

/// Result of [`wcet_slack`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WcetSlack {
    /// The analyzed task.
    pub task: TaskId,
    /// Largest additional WCET (at the probe resolution) that keeps the
    /// whole system schedulable.
    pub slack: Duration,
    /// The task's current WCET.
    pub current_wcet: Duration,
}

/// Computes how much `task`'s WCET can grow (keeping `BCET` fixed) before
/// any task in the system misses its deadline, to a 1 µs resolution.
///
/// Returns slack zero if the system is already unschedulable.
///
/// # Errors
///
/// Propagates [`SchedError`] when even the *current* system cannot be
/// analyzed (overload), and [`SchedError::UnknownTask`] for a foreign id.
///
/// # Examples
///
/// ```
/// use disparity_model::prelude::*;
/// use disparity_sched::sensitivity::wcet_slack;
///
/// let mut b = SystemBuilder::new();
/// let ecu = b.add_ecu("e");
/// let ms = Duration::from_millis;
/// let t = b.add_task(TaskSpec::periodic("t", ms(10)).wcet(ms(2)).on_ecu(ecu));
/// let g = b.build()?;
/// let slack = wcet_slack(&g, t)?;
/// // Alone on its ECU with T = 10ms: WCET can grow to (almost) 10ms.
/// assert!(slack.slack >= ms(7));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn wcet_slack(graph: &CauseEffectGraph, task: TaskId) -> Result<WcetSlack, SchedError> {
    let current = graph.get_task(task).ok_or(SchedError::UnknownTask(task))?;
    let current_wcet = current.wcet();
    let period = current.period();

    let schedulable_with = |extra: Duration| -> bool {
        let mut probe = graph.clone();
        if probe.set_task_wcet(task, current_wcet + extra).is_err() {
            return false;
        }
        matches!(analyze(&probe), Ok(r) if r.all_schedulable())
    };

    if !schedulable_with(Duration::ZERO) {
        return Ok(WcetSlack {
            task,
            slack: Duration::ZERO,
            current_wcet,
        });
    }

    // The WCET can never exceed the period (R >= W > T otherwise).
    let mut lo = Duration::ZERO; // known schedulable
    let mut hi = period - current_wcet; // upper probe
    if hi.is_negative() {
        hi = Duration::ZERO;
    }
    if schedulable_with(hi) {
        return Ok(WcetSlack {
            task,
            slack: hi,
            current_wcet,
        });
    }
    let resolution = Duration::from_micros(1);
    while hi - lo > resolution {
        let mid = lo + (hi - lo) / 2;
        if schedulable_with(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(WcetSlack {
        task,
        slack: lo,
        current_wcet,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use disparity_model::builder::SystemBuilder;
    use disparity_model::task::TaskSpec;

    fn ms(v: i64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn lone_task_slack_fills_the_period() {
        let mut b = SystemBuilder::new();
        let e = b.add_ecu("e");
        let t = b.add_task(TaskSpec::periodic("t", ms(10)).wcet(ms(2)).on_ecu(e));
        let g = b.build().unwrap();
        let s = wcet_slack(&g, t).unwrap();
        assert_eq!(s.current_wcet, ms(2));
        // WCET = T hits the utilization-1 guard, so the search converges
        // to the period from below at 1 µs resolution.
        assert!(s.slack <= ms(8));
        assert!(
            s.slack >= ms(8) - Duration::from_micros(2),
            "slack {}",
            s.slack
        );
    }

    #[test]
    fn slack_accounts_for_np_blocking_of_others() {
        let mut b = SystemBuilder::new();
        let e = b.add_ecu("e");
        // hi has T=10, C=2; lo's WCET blocks hi once: R(hi) = C_lo + 2 <= 10
        // forces C_lo <= 8.
        let _hi = b.add_task(TaskSpec::periodic("hi", ms(10)).wcet(ms(2)).on_ecu(e));
        let lo = b.add_task(TaskSpec::periodic("lo", ms(100)).wcet(ms(3)).on_ecu(e));
        let g = b.build().unwrap();
        let s = wcet_slack(&g, lo).unwrap();
        // lo can grow from 3 to ~8 (then R(hi) = 8 + 2 = 10 = T(hi)).
        assert!(
            s.slack >= ms(5) - Duration::from_micros(2),
            "slack {}",
            s.slack
        );
        assert!(s.slack <= ms(5));
    }

    #[test]
    fn unschedulable_system_has_zero_slack() {
        let mut b = SystemBuilder::new();
        let e = b.add_ecu("e");
        let hi = b.add_task(TaskSpec::periodic("hi", ms(10)).wcet(ms(6)).on_ecu(e));
        let _lo = b.add_task(TaskSpec::periodic("lo", ms(30)).wcet(ms(9)).on_ecu(e));
        let g = b.build().unwrap();
        let s = wcet_slack(&g, hi).unwrap();
        assert_eq!(s.slack, Duration::ZERO);
    }

    #[test]
    fn foreign_task_is_an_error() {
        let mut b = SystemBuilder::new();
        b.add_task(TaskSpec::periodic("s", ms(10)));
        let g = b.build().unwrap();
        assert!(matches!(
            wcet_slack(&g, TaskId::from_index(9)),
            Err(SchedError::UnknownTask(_))
        ));
    }
}
