//! Error types for schedulability analysis.

use core::fmt;

use disparity_model::ids::{EcuId, TaskId};

/// Errors produced by the response-time analysis.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SchedError {
    /// The tasks on an ECU demand at least its full capacity, so the
    /// level-i busy period is unbounded.
    Overloaded {
        /// The saturated resource.
        ecu: EcuId,
        /// Its total utilization (≥ 1).
        utilization: f64,
    },
    /// The fixed-point iteration failed to converge within its budget;
    /// indicates utilization extremely close to 1.
    NonConvergence {
        /// The task whose response time was being computed.
        task: TaskId,
    },
    /// A response time was requested for a task id that was not analyzed.
    UnknownTask(TaskId),
    /// A costly task carries no ECU mapping, so no response-time analysis
    /// is possible (the builder normally rejects such systems).
    UnmappedTask(TaskId),
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedError::Overloaded { ecu, utilization } => {
                write!(f, "{ecu} is overloaded (utilization {utilization:.3})")
            }
            SchedError::NonConvergence { task } => {
                write!(f, "response-time iteration for {task} did not converge")
            }
            SchedError::UnknownTask(t) => write!(f, "no response time computed for {t}"),
            SchedError::UnmappedTask(t) => write!(f, "costly task {t} is not mapped to an ECU"),
        }
    }
}

impl std::error::Error for SchedError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty() {
        let e = SchedError::Overloaded {
            ecu: EcuId::from_index(0),
            utilization: 1.2,
        };
        assert!(e.to_string().contains("overloaded"));
        assert!(!SchedError::NonConvergence {
            task: TaskId::from_index(3)
        }
        .to_string()
        .is_empty());
        assert!(!SchedError::UnknownTask(TaskId::from_index(3))
            .to_string()
            .is_empty());
    }
}
