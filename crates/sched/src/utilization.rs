//! Per-ECU utilization accounting.

use disparity_model::graph::CauseEffectGraph;
use disparity_model::ids::EcuId;

/// CPU utilization `Σ W(τ)/T(τ)` of the tasks mapped to `ecu`.
///
/// # Examples
///
/// ```
/// use disparity_model::prelude::*;
/// use disparity_sched::utilization::ecu_utilization;
///
/// let mut b = SystemBuilder::new();
/// let ecu = b.add_ecu("e");
/// let ms = Duration::from_millis;
/// b.add_task(TaskSpec::periodic("a", ms(10)).wcet(ms(2)).on_ecu(ecu));
/// b.add_task(TaskSpec::periodic("b", ms(20)).wcet(ms(5)).on_ecu(ecu));
/// let g = b.build()?;
/// assert!((ecu_utilization(&g, ecu) - 0.45).abs() < 1e-12);
/// # Ok::<(), disparity_model::error::ModelError>(())
/// ```
#[must_use]
pub fn ecu_utilization(graph: &CauseEffectGraph, ecu: EcuId) -> f64 {
    graph
        .tasks_on_ecu(ecu)
        .map(|t| graph.task(t).utilization())
        .sum()
}

/// Utilization of every ECU, indexed like [`CauseEffectGraph::ecus`].
#[must_use]
pub fn all_utilizations(graph: &CauseEffectGraph) -> Vec<f64> {
    graph
        .ecus()
        .iter()
        .map(|e| ecu_utilization(graph, e.id()))
        .collect()
}

/// The most loaded ECU and its utilization, or `None` if the graph has no
/// ECUs.
#[must_use]
pub fn peak_utilization(graph: &CauseEffectGraph) -> Option<(EcuId, f64)> {
    graph
        .ecus()
        .iter()
        .map(|e| (e.id(), ecu_utilization(graph, e.id())))
        .max_by(|a, b| a.1.total_cmp(&b.1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use disparity_model::builder::SystemBuilder;
    use disparity_model::task::TaskSpec;
    use disparity_model::time::Duration;

    #[test]
    fn zero_cost_tasks_do_not_load_an_ecu() {
        let mut b = SystemBuilder::new();
        let e = b.add_ecu("e");
        let ms = Duration::from_millis;
        b.add_task(TaskSpec::periodic("stim", ms(5)));
        b.add_task(TaskSpec::periodic("t", ms(10)).wcet(ms(1)).on_ecu(e));
        let g = b.build().unwrap();
        assert!((ecu_utilization(&g, e) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn peak_picks_heaviest() {
        let mut b = SystemBuilder::new();
        let e0 = b.add_ecu("e0");
        let e1 = b.add_ecu("e1");
        let ms = Duration::from_millis;
        b.add_task(TaskSpec::periodic("a", ms(10)).wcet(ms(1)).on_ecu(e0));
        b.add_task(TaskSpec::periodic("b", ms(10)).wcet(ms(4)).on_ecu(e1));
        let g = b.build().unwrap();
        let (ecu, u) = peak_utilization(&g).unwrap();
        assert_eq!(ecu, e1);
        assert!((u - 0.4).abs() < 1e-12);
        assert_eq!(all_utilizations(&g).len(), 2);
    }
}
