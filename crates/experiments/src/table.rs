//! CSV and markdown emission for experiment results.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// A rectangular result table with named columns.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column names.
    #[must_use]
    pub fn new<I: IntoIterator<Item = S>, S: Into<String>>(header: I) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the header.
    pub fn push_row<I: IntoIterator<Item = S>, S: Into<String>>(&mut self, row: I) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width must match header");
        self.rows.push(row);
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as CSV.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.header.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }

    /// Renders as a GitHub-flavored markdown table.
    #[must_use]
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "| {} |", self.header.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.header
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }

    /// Writes the CSV rendering to `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_csv(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        fs::write(path, self.to_csv())
    }
}

/// Formats a millisecond value with two decimals.
#[must_use]
pub fn fmt_ms(value: f64) -> String {
    format!("{value:.2}")
}

/// Formats a ratio as a percentage with one decimal.
#[must_use]
pub fn fmt_pct(value: Option<f64>) -> String {
    match value {
        Some(v) => format!("{:.1}%", v * 100.0),
        None => "n/a".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_csv_and_markdown() {
        let mut t = Table::new(["n", "value"]);
        t.push_row(["5", "1.25"]);
        t.push_row(["10", "2.50"]);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        let csv = t.to_csv();
        assert!(csv.starts_with("n,value\n"));
        assert!(csv.contains("10,2.50"));
        let md = t.to_markdown();
        assert!(md.contains("| n | value |"));
        assert!(md.contains("|---|---|"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_is_enforced() {
        let mut t = Table::new(["a", "b"]);
        t.push_row(["only one"]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_ms(1.234), "1.23");
        assert_eq!(fmt_pct(Some(0.256)), "25.6%");
        assert_eq!(fmt_pct(None), "n/a");
    }

    #[test]
    fn write_csv_creates_dirs() {
        let dir = std::env::temp_dir().join("disparity_table_test");
        let _ = std::fs::remove_dir_all(&dir);
        let mut t = Table::new(["x"]);
        t.push_row(["1"]);
        let path = dir.join("nested/out.csv");
        t.write_csv(&path).unwrap();
        assert!(path.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
