//! Shared `--deny-lints` / `--lints-out` plumbing for the experiment
//! binaries.
//!
//! The gate runs `disparity-analyzer`'s diagnostic pass over *probe*
//! graphs — representative systems regenerated from the sweep's own seed
//! derivation on fresh RNGs — so enabling it cannot perturb the sweep
//! itself: every sweep attempt reseeds its own RNG from
//! `(seed, point, attempt)`, and the probe pass only reads.
//!
//! * `--lints-out FILE` writes every probe's diagnostics as JSON
//!   (schema [`LINT_GATE_SCHEMA`]).
//! * `--deny-lints` fails the run when any probe reports an
//!   Error-severity diagnostic.

use std::path::PathBuf;

use disparity_analyzer::{analyze_graph, DiagConfig};
use disparity_model::graph::CauseEffectGraph;
use disparity_model::json::{object, Value};

/// Schema tag of the `--lints-out` JSON document.
pub const LINT_GATE_SCHEMA: &str = "disparity-analyzer/lint-gate-v1";

/// Optional diagnostic-gate arguments, parsed from the command line.
#[derive(Debug, Clone, Default)]
pub struct LintArgs {
    /// Fail the run on Error-severity diagnostics (`--deny-lints`).
    pub deny_lints: bool,
    /// Destination of the JSON diagnostics report (`--lints-out`).
    pub lints_out: Option<PathBuf>,
}

impl LintArgs {
    /// Returns `true` when the gate should run at all.
    #[must_use]
    pub fn requested(&self) -> bool {
        self.deny_lints || self.lints_out.is_some()
    }

    /// Tries to consume `arg` as one of the two flags, pulling a value
    /// from `next` where needed. Returns `Ok(true)` when recognized.
    pub fn try_parse(
        &mut self,
        arg: &str,
        next: &mut dyn FnMut() -> Option<String>,
    ) -> Result<bool, String> {
        match arg {
            "--deny-lints" => {
                self.deny_lints = true;
                Ok(true)
            }
            "--lints-out" => {
                self.lints_out = Some(PathBuf::from(next().ok_or("--lints-out needs a value")?));
                Ok(true)
            }
            _ => Ok(false),
        }
    }

    /// Runs the diagnostic pass over the named probe graphs, writes the
    /// JSON report when requested and prints every diagnostic to stderr.
    ///
    /// Returns the number of Error-severity diagnostics found across all
    /// probes.
    ///
    /// # Errors
    ///
    /// Fails only on I/O problems writing `--lints-out`; diagnostics
    /// themselves never error here (the caller decides via
    /// [`LintArgs::deny_lints`] and the returned count).
    pub fn gate(
        &self,
        binary: &str,
        probes: &[(String, CauseEffectGraph)],
    ) -> Result<usize, String> {
        let _span = disparity_obs::span!("lintgate.run", probes = probes.len());
        let config = DiagConfig::default();
        let mut errors = 0usize;
        let mut probe_values = Vec::with_capacity(probes.len());
        for (name, graph) in probes {
            let set = analyze_graph(graph, &config);
            for diag in set.as_slice() {
                eprintln!("{binary}: lint [{name}] {diag}");
            }
            errors += set.error_count();
            probe_values.push(object(vec![
                ("name", Value::Str(name.clone())),
                ("diagnostics", set.to_json()),
            ]));
        }
        disparity_obs::counter_add("lintgate.errors", errors as u64);
        if let Some(path) = &self.lints_out {
            let doc = object(vec![
                ("schema", Value::Str(LINT_GATE_SCHEMA.to_string())),
                ("binary", Value::Str(binary.to_string())),
                ("probes", Value::Array(probe_values)),
            ]);
            std::fs::write(path, doc.to_pretty())
                .map_err(|e| format!("failed to write lints {}: {e}", path.display()))?;
            eprintln!("{binary}: lint report written to {}", path.display());
        }
        eprintln!(
            "{binary}: lint gate: {} probe graph(s), {errors} error(s)",
            probes.len()
        );
        Ok(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disparity_model::builder::SystemBuilder;
    use disparity_model::task::TaskSpec;
    use disparity_model::time::Duration;

    fn clean_graph() -> CauseEffectGraph {
        let mut b = SystemBuilder::new();
        let e = b.add_ecu("e");
        let ms = Duration::from_millis;
        let src = b.add_task(TaskSpec::periodic("src", ms(10)).wcet(ms(1)).on_ecu(e));
        let snk = b.add_task(TaskSpec::periodic("snk", ms(10)).wcet(ms(1)).on_ecu(e));
        b.connect(src, snk);
        b.build().unwrap()
    }

    fn overloaded_graph() -> CauseEffectGraph {
        let mut b = SystemBuilder::new();
        let e = b.add_ecu("e");
        let ms = Duration::from_millis;
        let src = b.add_task(TaskSpec::periodic("src", ms(10)).wcet(ms(9)).on_ecu(e));
        let snk = b.add_task(TaskSpec::periodic("snk", ms(10)).wcet(ms(9)).on_ecu(e));
        b.connect(src, snk);
        b.build().unwrap()
    }

    #[test]
    fn parses_flags_and_ignores_others() {
        let mut args = LintArgs::default();
        let mut vals = vec!["l.json".to_string()].into_iter();
        let mut next = || vals.next();
        assert!(args.try_parse("--deny-lints", &mut next).unwrap());
        assert!(args.try_parse("--lints-out", &mut next).unwrap());
        assert!(!args.try_parse("--seed", &mut next).unwrap());
        assert!(args.deny_lints);
        assert_eq!(args.lints_out.as_deref(), Some(std::path::Path::new("l.json")));
        assert!(args.requested());
        assert!(!LintArgs::default().requested());
    }

    #[test]
    fn missing_value_is_an_error() {
        let mut args = LintArgs::default();
        let mut next = || None;
        assert!(args.try_parse("--lints-out", &mut next).is_err());
    }

    #[test]
    fn gate_counts_errors_and_writes_report() {
        let dir = std::env::temp_dir().join("disparity-lintcli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("lints.json");
        let args = LintArgs {
            deny_lints: true,
            lints_out: Some(path.clone()),
        };
        let probes = vec![
            ("clean".to_string(), clean_graph()),
            ("overloaded".to_string(), overloaded_graph()),
        ];
        let errors = args.gate("test", &probes).unwrap();
        assert!(errors > 0, "the overloaded probe must report D001");
        let text = std::fs::read_to_string(&path).unwrap();
        let doc = Value::parse(&text).unwrap();
        let Value::Object(members) = &doc else {
            panic!("report must be an object")
        };
        assert!(members
            .iter()
            .any(|(k, v)| k == "schema" && *v == Value::Str(LINT_GATE_SCHEMA.to_string())));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn clean_probes_report_zero_errors() {
        let args = LintArgs {
            deny_lints: true,
            lints_out: None,
        };
        let probes = vec![("clean".to_string(), clean_graph())];
        assert_eq!(args.gate("test", &probes).unwrap(), 0);
    }
}
