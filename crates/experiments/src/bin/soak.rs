//! Fault-injection soundness soak runner.
//!
//! Sweeps seeds × fault plans × WATERS workloads and replays every run
//! through the soundness sentinel. Exits non-zero on the first hard
//! violation, printing the violation's JSON artifact (seed, fault plan,
//! graph spec — everything needed to reproduce) to stdout.
//!
//! ```text
//! cargo run -p disparity-experiments --release --bin soak            # full sweep
//! cargo run -p disparity-experiments --release --bin soak -- --quick # CI smoke
//! ```
//!
//! Options:
//!
//! * `--quick` — small sweep for CI smoke tests.
//! * `--systems N` — number of random WATERS DAGs.
//! * `--seeds N` — seeds per (system, plan) combination.
//! * `--horizon-ms N` — simulated horizon per run.
//! * `--base-seed N` — derivation seed for the whole sweep.
//! * `--trace-out FILE` / `--metrics-out FILE` — record the sweep with
//!   `disparity-obs` and write a Chrome trace / metrics report. Both are
//!   flushed even when the sweep fails (see EXPERIMENTS.md,
//!   "Observability").
//! * `--deny-lints` / `--lints-out FILE` — run the `disparity-analyzer`
//!   diagnostic gate over the sweep's systems (minus the deliberately
//!   unschedulable degradation probe) before soaking (see EXPERIMENTS.md,
//!   "Static analysis & diagnostics").

use std::process::ExitCode;

use disparity_experiments::lintcli::LintArgs;
use disparity_experiments::obscli::ObsArgs;
use disparity_experiments::soak::{fault_catalog, probe_graphs, run_soak, SoakConfig};
use disparity_model::time::Duration;

const USAGE: &str = "usage: soak [--quick] [--systems N] [--seeds N] [--horizon-ms N] \
     [--base-seed N] [--trace-out FILE] [--metrics-out FILE] \
     [--deny-lints] [--lints-out FILE]";

/// `Ok(None)` means help was requested (print usage, exit zero).
fn parse_args() -> Result<Option<(SoakConfig, ObsArgs, LintArgs)>, String> {
    let mut config = SoakConfig::default();
    let mut obs = ObsArgs::default();
    let mut lint = LintArgs::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if obs.try_parse(&arg, &mut || args.next())? {
            continue;
        }
        if lint.try_parse(&arg, &mut || args.next())? {
            continue;
        }
        let mut take = |name: &str| -> Result<u64, String> {
            args.next()
                .ok_or_else(|| format!("{name} needs a value"))?
                .parse::<u64>()
                .map_err(|e| format!("bad value for {name}: {e}"))
        };
        match arg.as_str() {
            "--quick" => {
                config = SoakConfig {
                    base_seed: config.base_seed,
                    ..SoakConfig::quick()
                };
            }
            "--systems" => config.random_systems = take("--systems")? as usize,
            "--seeds" => config.seeds_per_combo = take("--seeds")? as usize,
            "--horizon-ms" => {
                config.horizon = Duration::from_millis(take("--horizon-ms")? as i64);
            }
            "--base-seed" => config.base_seed = take("--base-seed")?,
            "--help" | "-h" => return Ok(None),
            other => return Err(format!("unknown option {other} (try --help)")),
        }
    }
    Ok(Some((config, obs, lint)))
}

fn main() -> ExitCode {
    let (config, obs, lint) = match parse_args() {
        Ok(Some(c)) => c,
        Ok(None) => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("{msg}");
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    obs.enable_if_requested();
    if lint.requested() {
        // The probe pass rebuilds the sweep's systems on its own RNG, so
        // gating never perturbs the soak results that follow.
        match lint.gate("soak", &probe_graphs(&config)) {
            Ok(errors) if lint.deny_lints && errors > 0 => {
                eprintln!("soak: --deny-lints: error diagnostics on sweep systems; not soaking");
                return ExitCode::FAILURE;
            }
            Ok(_) => {}
            Err(e) => {
                eprintln!("soak: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    eprintln!(
        "soak: {} fault plans x {} combos planned (horizon {}, base seed {:#x})",
        fault_catalog().len(),
        config.combos(),
        config.horizon,
        config.base_seed,
    );
    let summary = run_soak(&config, &mut |line| eprintln!("soak: {line}"));
    eprintln!(
        "soak: {} runs, {} checks, {} flagged, {} degraded, {} skipped, {} warnings",
        summary.runs,
        summary.checks,
        summary.flagged,
        summary.degraded,
        summary.skipped,
        summary.degraded_warnings,
    );
    // Flush before the exit-code decision so a failing sweep still leaves
    // its trace and metrics behind for diagnosis.
    match obs.flush() {
        Ok(lines) => {
            for line in lines {
                eprintln!("soak: {line}");
            }
        }
        Err(e) => {
            eprintln!("soak: {e}");
            return ExitCode::FAILURE;
        }
    }
    if summary.checks == 0 {
        // Every run was skipped (e.g. a horizon at or below the warm-up):
        // nothing was verified, so a green exit would be vacuous.
        eprintln!("soak: no checks executed — sweep is vacuous, failing");
        ExitCode::FAILURE
    } else if summary.is_sound() {
        eprintln!("soak: no soundness violations");
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "soak: {} soundness violation(s); first artifact follows",
            summary.violations.len()
        );
        println!("{}", summary.violations[0].to_pretty());
        ExitCode::FAILURE
    }
}
