//! Diagnostic: per-pair P-diff vs S-diff statistics on random graphs.
//!
//! For each generated graph, prints how many chain pairs exist, how many
//! share interior structure (common tasks beyond the analyzed one after
//! truncation), and where the two theorems disagree — including which pair
//! attains the overall maximum under each method.

use disparity_core::pairwise::{decompose, theorem1_bound, theorem2_bound};
use disparity_model::time::Duration;
use disparity_sched::schedulability::analyze;
use disparity_workload::graphgen::{schedulable_random_system, GraphGenConfig};
use disparity_rng::rngs::StdRng;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(20);
    let factor: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(2.5);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(1);
    let max_sources: Option<usize> = args.next().and_then(|a| a.parse().ok());
    let mut rng = StdRng::seed_from_u64(seed);
    for g_idx in 0..5 {
        let graph = schedulable_random_system(
            GraphGenConfig {
                n_tasks: n,
                n_ecus: 4,
                n_edges: Some((n as f64 * factor) as usize),
                max_sources,
                target_utilization: Some(0.45),
            },
            &mut rng,
            100,
        )
        .expect("generation succeeds");
        let Some(&sink) = graph.sinks().first() else {
            disparity_obs::counter_add("pair_stats.sink_missing", 1);
            println!("graph {g_idx}: no sink, skipped");
            continue;
        };
        let rt = analyze(&graph).expect("schedulable").into_response_times();
        let chains = match graph.chains_to(sink, 4096) {
            Ok(c) => c,
            Err(_) => {
                println!("graph {g_idx}: chain explosion, skipped");
                continue;
            }
        };
        let mut structured = 0usize;
        let mut s_tighter = 0usize;
        let mut s_looser = 0usize;
        let mut total = 0usize;
        let mut max_p = (Duration::ZERO, 0usize, 0usize);
        let mut max_s = (Duration::ZERO, 0usize, 0usize);
        for i in 0..chains.len() {
            for j in (i + 1)..chains.len() {
                total += 1;
                let p = theorem1_bound(&graph, &chains[i], &chains[j], &rt).unwrap();
                let (lam, nu) = chains[i].truncate_to_last_joint(&chains[j]).unwrap();
                let s = theorem2_bound(&graph, &lam, &nu, &rt).unwrap();
                let d = decompose(&graph, &lam, &nu, &rt).unwrap();
                if d.common_count() > 1 || lam.len() < chains[i].len() {
                    structured += 1;
                }
                if s < p {
                    s_tighter += 1;
                }
                if s > p {
                    s_looser += 1;
                }
                if p > max_p.0 {
                    max_p = (p, i, j);
                }
                if s > max_s.0 {
                    max_s = (s, i, j);
                }
            }
        }
        println!(
            "graph {g_idx}: sources={} chains={} pairs={total} structured={structured} \
             S<P={s_tighter} S>P={s_looser}  maxP={} (pair {},{})  maxS={} (pair {},{})",
            graph.sources().len(),
            chains.len(),
            max_p.0,
            max_p.1,
            max_p.2,
            max_s.0,
            max_s.1,
            max_s.2,
        );
    }
}
