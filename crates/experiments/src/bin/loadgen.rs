//! `loadgen` — replay a spec against a running `serve` daemon and report
//! throughput/latency.
//!
//! ```text
//! loadgen --addr HOST:PORT [--spec FILE] [--task NAME] [--requests N]
//!         [--rps N] [--connections C] [--out FILE]
//!         [--require-cache-hit] [--probe-overload N] [--shutdown]
//! ```
//!
//! Each connection runs a synchronous request/response loop over the
//! NDJSON protocol, paced so the aggregate send rate approximates
//! `--rps` (0 = as fast as possible). The report (one JSON object on
//! stdout, optionally also written to `--out`) carries client-side
//! status counts, latency percentiles, and the server's own `stats`
//! counters, so CI can assert cache hit-rate and overload accounting.
//!
//! Exit is non-zero on protocol errors (unparsable responses, missing
//! ids), on `--require-cache-hit` without a server-side cache hit, and
//! on `--probe-overload N` when a burst of N slow requests down one
//! extra connection fails to exercise the queue-full path.
//!
//! `--shutdown` sends the `shutdown` op once the run (and its stats
//! query) is complete, so a scripted smoke can let the daemon drain and
//! flush its obs artifacts instead of killing it.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use disparity_model::json::{self, Value};
use disparity_model::spec::SystemSpec;
use disparity_obs::Histogram;

struct Args {
    addr: String,
    spec: String,
    task: Option<String>,
    requests: usize,
    rps: u64,
    connections: usize,
    out: Option<String>,
    require_cache_hit: bool,
    probe_overload: usize,
    shutdown: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7414".to_string(),
        spec: "specs/waters_clean.json".to_string(),
        task: None,
        requests: 100,
        rps: 0,
        connections: 4,
        out: None,
        require_cache_hit: false,
        probe_overload: 0,
        shutdown: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--spec" => args.spec = value("--spec")?,
            "--task" => args.task = Some(value("--task")?),
            "--requests" => {
                args.requests = value("--requests")?
                    .parse()
                    .map_err(|e| format!("--requests: {e}"))?;
            }
            "--rps" => args.rps = value("--rps")?.parse().map_err(|e| format!("--rps: {e}"))?,
            "--connections" => {
                args.connections = value("--connections")?
                    .parse()
                    .map_err(|e| format!("--connections: {e}"))?;
            }
            "--out" => args.out = Some(value("--out")?),
            "--require-cache-hit" => args.require_cache_hit = true,
            "--probe-overload" => {
                args.probe_overload = value("--probe-overload")?
                    .parse()
                    .map_err(|e| format!("--probe-overload: {e}"))?;
            }
            "--shutdown" => args.shutdown = true,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

#[derive(Default)]
struct Tally {
    ok: AtomicU64,
    overloaded: AtomicU64,
    timeouts: AtomicU64,
    errors: AtomicU64,
    protocol_errors: AtomicU64,
}

fn bump(c: &AtomicU64) {
    c.fetch_add(1, Ordering::Relaxed);
}

fn load(c: &AtomicU64) -> u64 {
    c.load(Ordering::Relaxed)
}

/// One synchronous request over an open connection; records latency and
/// status. Returns `false` on connection failure.
fn one_request(
    stream: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    line: &str,
    tally: &Tally,
    latency: &Mutex<Histogram>,
) -> bool {
    let started = Instant::now();
    if stream
        .write_all(line.as_bytes())
        .and_then(|()| stream.write_all(b"\n"))
        .and_then(|()| stream.flush())
        .is_err()
    {
        bump(&tally.protocol_errors);
        return false;
    }
    let mut response = String::new();
    match reader.read_line(&mut response) {
        Ok(n) if n > 0 => {}
        _ => {
            bump(&tally.protocol_errors);
            return false;
        }
    }
    let micros = i64::try_from(started.elapsed().as_micros()).unwrap_or(i64::MAX);
    if let Ok(mut hist) = latency.lock() {
        hist.record(micros);
    }
    match Value::parse(response.trim_end()) {
        Ok(v) => match v.get("status").and_then(Value::as_str) {
            Some("ok") => bump(&tally.ok),
            Some("overloaded") => bump(&tally.overloaded),
            Some("timeout") => bump(&tally.timeouts),
            Some("error" | "rejected" | "shutting_down") => bump(&tally.errors),
            _ => bump(&tally.protocol_errors),
        },
        Err(_) => bump(&tally.protocol_errors),
    }
    true
}

fn run_load(args: &Args, request_line: &str) -> Result<(Tally, Histogram, Duration), String> {
    let tally = Tally::default();
    let latency = Mutex::new(Histogram::new());
    let connections = args.connections.max(1);
    let per_conn = args.requests.div_ceil(connections);
    // Pace each connection at its share of the aggregate target rate.
    let pause = if args.rps == 0 {
        Duration::ZERO
    } else {
        Duration::from_micros(1_000_000 * connections as u64 / args.rps.max(1))
    };
    let started = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..connections {
            scope.spawn(|| {
                let Ok(mut stream) = TcpStream::connect(&args.addr) else {
                    bump(&tally.protocol_errors);
                    return;
                };
                let Ok(read_half) = stream.try_clone() else {
                    bump(&tally.protocol_errors);
                    return;
                };
                let mut reader = BufReader::new(read_half);
                for _ in 0..per_conn {
                    if !one_request(&mut stream, &mut reader, request_line, &tally, &latency) {
                        break;
                    }
                    if !pause.is_zero() {
                        std::thread::sleep(pause);
                    }
                }
            });
        }
    });
    let elapsed = started.elapsed();
    let hist = latency
        .into_inner()
        .map_err(|_| "latency histogram poisoned".to_string())?;
    Ok((tally, hist, elapsed))
}

/// Queries the server's own `stats` op.
fn server_stats(addr: &str) -> Result<Value, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    stream
        .write_all(b"{\"id\":\"loadgen-stats\",\"op\":\"stats\"}\n")
        .and_then(|()| stream.flush())
        .map_err(|e| format!("stats write: {e}"))?;
    let mut line = String::new();
    BufReader::new(stream)
        .read_line(&mut line)
        .map_err(|e| format!("stats read: {e}"))?;
    let v = Value::parse(line.trim_end()).map_err(|e| format!("stats parse: {e}"))?;
    v.get("result")
        .cloned()
        .ok_or_else(|| "stats response has no result".to_string())
}

/// Fires `n` slow `sleep` requests down one connection as fast as
/// possible; returns how many were bounced `overloaded`.
fn probe_overload(addr: &str, n: usize) -> Result<u64, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    let read_half = stream.try_clone().map_err(|e| format!("clone: {e}"))?;
    for i in 0..n {
        stream
            .write_all(format!("{{\"id\":\"probe-{i}\",\"op\":\"sleep\",\"millis\":25}}\n").as_bytes())
            .map_err(|e| format!("probe write: {e}"))?;
    }
    stream.flush().map_err(|e| format!("probe flush: {e}"))?;
    let mut overloaded = 0u64;
    let mut seen = 0usize;
    for line in BufReader::new(read_half).lines() {
        let line = line.map_err(|e| format!("probe read: {e}"))?;
        let v = Value::parse(&line).map_err(|e| format!("probe parse: {e}"))?;
        if v.get("status").and_then(Value::as_str) == Some("overloaded") {
            overloaded += 1;
        }
        seen += 1;
        if seen == n {
            break;
        }
    }
    if seen != n {
        return Err(format!("overload probe: sent {n} requests, got {seen} responses"));
    }
    Ok(overloaded)
}

/// Sends the `shutdown` op and waits for its `ok` ack, letting the
/// daemon drain and flush obs artifacts.
fn send_shutdown(addr: &str) -> Result<(), String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    stream
        .write_all(b"{\"id\":\"loadgen-shutdown\",\"op\":\"shutdown\"}\n")
        .and_then(|()| stream.flush())
        .map_err(|e| format!("shutdown write: {e}"))?;
    let mut line = String::new();
    BufReader::new(stream)
        .read_line(&mut line)
        .map_err(|e| format!("shutdown read: {e}"))?;
    let v = Value::parse(line.trim_end()).map_err(|e| format!("shutdown parse: {e}"))?;
    match v.get("status").and_then(Value::as_str) {
        Some("ok") => Ok(()),
        other => Err(format!("shutdown not acknowledged: {other:?}")),
    }
}

fn uint(v: u64) -> Value {
    Value::Int(i64::try_from(v).unwrap_or(i64::MAX))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("loadgen: {msg}");
            return ExitCode::FAILURE;
        }
    };

    // Build the request from the spec file: parse, build the graph, and
    // aim at the requested task (default: the first sink).
    let text = match std::fs::read_to_string(&args.spec) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("loadgen: reading {}: {e}", args.spec);
            return ExitCode::FAILURE;
        }
    };
    let spec = match SystemSpec::from_json_str(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("loadgen: parsing {}: {e}", args.spec);
            return ExitCode::FAILURE;
        }
    };
    let graph = match spec.build() {
        Ok(g) => g,
        Err(e) => {
            eprintln!("loadgen: building {}: {e}", args.spec);
            return ExitCode::FAILURE;
        }
    };
    let task = match &args.task {
        Some(name) => name.clone(),
        None => match graph.sinks().first() {
            Some(&sink) => graph.task(sink).name().to_string(),
            None => {
                eprintln!("loadgen: {} has no sink task", args.spec);
                return ExitCode::FAILURE;
            }
        },
    };
    let request_line = format!(
        "{{\"id\":\"load\",\"op\":\"disparity\",\"task\":{},\"spec\":{}}}",
        Value::from(task.as_str()),
        spec.to_json()
    );

    let (tally, hist, elapsed) = match run_load(&args, &request_line) {
        Ok(r) => r,
        Err(msg) => {
            eprintln!("loadgen: {msg}");
            return ExitCode::FAILURE;
        }
    };

    let probe = if args.probe_overload > 0 {
        match probe_overload(&args.addr, args.probe_overload) {
            Ok(n) => Some(n),
            Err(msg) => {
                eprintln!("loadgen: {msg}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        None
    };

    let stats = match server_stats(&args.addr) {
        Ok(s) => s,
        Err(msg) => {
            eprintln!("loadgen: {msg}");
            return ExitCode::FAILURE;
        }
    };

    if args.shutdown {
        if let Err(msg) = send_shutdown(&args.addr) {
            eprintln!("loadgen: {msg}");
            return ExitCode::FAILURE;
        }
    }

    let elapsed_ms = elapsed.as_millis();
    let ok = load(&tally.ok);
    let throughput = if elapsed_ms == 0 {
        0.0
    } else {
        #[allow(clippy::cast_precision_loss)]
        let rps = ok as f64 * 1000.0 / elapsed_ms as f64;
        rps
    };
    let s = hist.summary();
    let mut report_members = vec![
        ("addr", Value::from(args.addr.as_str())),
        ("spec", Value::from(args.spec.as_str())),
        ("task", Value::from(task.as_str())),
        ("requests", Value::from(args.requests)),
        ("connections", Value::from(args.connections)),
        ("ok", uint(ok)),
        ("overloaded", uint(load(&tally.overloaded))),
        ("timeouts", uint(load(&tally.timeouts))),
        ("errors", uint(load(&tally.errors))),
        ("protocol_errors", uint(load(&tally.protocol_errors))),
        (
            "elapsed_ms",
            Value::Int(i64::try_from(elapsed_ms).unwrap_or(i64::MAX)),
        ),
        ("throughput_rps", Value::Float(throughput)),
        (
            "latency_us",
            json::object(vec![
                ("count", uint(s.count)),
                ("p50", Value::Int(s.p50)),
                ("p95", Value::Int(s.p95)),
                ("p99", Value::Int(s.p99)),
                ("max", Value::Int(s.max)),
            ]),
        ),
        ("server_stats", stats.clone()),
    ];
    if let Some(overloaded) = probe {
        report_members.push((
            "overload_probe",
            json::object(vec![
                ("sent", Value::from(args.probe_overload)),
                ("overloaded", uint(overloaded)),
            ]),
        ));
    }
    let report = json::object(report_members);
    println!("{}", report.to_pretty());
    if let Some(path) = &args.out {
        if let Err(e) = std::fs::write(path, format!("{}\n", report.to_pretty())) {
            eprintln!("loadgen: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
    }

    // Gate the exit code on the contract CI asserts.
    let mut failed = false;
    if load(&tally.protocol_errors) > 0 {
        eprintln!("loadgen: FAIL: protocol errors observed");
        failed = true;
    }
    if ok == 0 {
        eprintln!("loadgen: FAIL: zero successful requests");
        failed = true;
    }
    if args.require_cache_hit {
        let hits = stats
            .get("counters")
            .and_then(|c| c.get("cache_hits"))
            .and_then(Value::as_i64)
            .unwrap_or(0);
        if hits == 0 {
            eprintln!("loadgen: FAIL: --require-cache-hit but server reports zero cache hits");
            failed = true;
        }
    }
    if let Some(overloaded) = probe {
        if overloaded == 0 {
            eprintln!("loadgen: FAIL: overload probe never saw `overloaded`");
            failed = true;
        }
        let reported = stats
            .get("counters")
            .and_then(|c| c.get("overloaded"))
            .and_then(Value::as_i64)
            .unwrap_or(0);
        // The server counted the bounces *before* the probe's stats query.
        if u64::try_from(reported).unwrap_or(0) < overloaded {
            eprintln!(
                "loadgen: FAIL: server reports {reported} overloads, probe saw {overloaded}"
            );
            failed = true;
        }
    }
    if failed {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
