//! `loadgen` — replay a spec against a running `serve` daemon and report
//! throughput/latency.
//!
//! ```text
//! loadgen --addr HOST:PORT [--spec FILE] [--task NAME] [--requests N]
//!         [--rps N] [--connections C] [--out FILE]
//!         [--retries N] [--backoff-ms N] [--seed N]
//!         [--require-cache-hit] [--probe-overload N] [--shutdown]
//!         [--chaos-soak] [--soak-tag TAG] [--direct-addr HOST:PORT]
//!         [--latency-series FILE] [--series-interval-ms N] [--dump]
//!         [--edit-replay] [--optimize-replay]
//! ```
//!
//! Each connection runs a synchronous request/response loop over the
//! NDJSON protocol, paced so the aggregate send rate approximates
//! `--rps` (0 = as fast as possible). The report (one JSON object on
//! stdout, optionally also written to `--out`) carries client-side
//! status counts, latency percentiles, and the server's own `stats`
//! counters, so CI can assert cache hit-rate and overload accounting.
//!
//! # Retry
//!
//! Analysis requests are idempotent (the response is a pure function of
//! the spec), so transport failures are safely retried: `--retries N`
//! gives each request a budget of N extra attempts over fresh
//! connections, spaced by jittered exponential backoff starting at
//! `--backoff-ms` (jitter is seeded by `--seed`; runs are reproducible).
//!
//! # Chaos soak
//!
//! `--chaos-soak` flips loadgen from a throughput tool into a
//! correctness harness for runs behind `chaosproxy`: every request gets
//! a unique id and is only accepted when the response is **byte-identical**
//! to encoding a direct engine run — anything else (garbage, truncation,
//! a mangled request answered `error`, an id mismatch) drops the
//! connection and retries. The soak also runs a quarantine probe — a
//! deliberately panicking spec (derived from `--soak-tag`, so repeated
//! runs against one server use distinct specs) must be quarantined after
//! two processed attempts — concurrently with healthy traffic, then
//! asserts via `--direct-addr` (default `--addr`) that the server ends
//! with every worker alive. The soak fails on any lost, duplicated, or
//! corrupted-and-accepted response.
//!
//! Exit is non-zero on protocol errors (unparsable responses, missing
//! ids, exhausted retry budgets), on `--require-cache-hit` without a
//! server-side cache hit, on `--probe-overload N` when a burst of N slow
//! requests down one extra connection fails to exercise the queue-full
//! path, and on any failed chaos-soak assertion.
//!
//! `--shutdown` sends the `shutdown` op once the run (and its stats
//! query) is complete, so a scripted smoke can let the daemon drain and
//! flush its obs artifacts instead of killing it. `--dump` sends the
//! `dump` op after the run, making the server write its flight-recorder
//! postmortem (requires the server to run with `--postmortem-dir`).
//!
//! # Edit replay
//!
//! `--edit-replay` exercises the incremental (`patch`) path end to end:
//! the full spec is sent once to seat the base graph in the server's
//! cache, then `--requests` patch requests — each a seeded random
//! single-field WCET edit against the base's canonical hash — are
//! replayed, cycling through a small pool of distinct edits so later
//! iterations land on the server's patch memo. Every response must be
//! **byte-identical** to encoding a direct engine run on the locally
//! edited spec; the run also asserts the server's `patched` /
//! `patch_memo_hits` counters moved, so CI can prove both the derive and
//! the warm path were exercised.
//!
//! # Optimize replay
//!
//! `--optimize-replay` exercises the global buffer-plan optimizer end to
//! end: the full spec is sent once to seat the base graph, then
//! `--requests` `optimize` requests — cycling a small sweep of slot
//! budgets against the base's canonical hash, all carrying `--seed` as
//! the plan seed — are replayed. Every response must be
//! **byte-identical** to a local [`disparity_opt`] run plus the pure
//! [`encode_optimize_result`] encoder (replaying the same budget twice
//! must therefore also produce identical bytes), and the run asserts the
//! server's `optimized` / `opt_delta_scored` / `opt_cold_scored`
//! counters moved.
//!
//! # Latency series
//!
//! `--latency-series FILE` samples the server's `metrics` op every
//! `--series-interval-ms` (default 100) for the duration of the run and
//! writes one NDJSON line per sample —
//! `{"t_ms":..,"queue_depth":..,"window":{..}}` — a machine-readable
//! timeline of the sliding-window latency view under load. Works in both
//! throughput and chaos-soak modes.

use std::collections::HashSet;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use disparity_core::delta::AnalyzedSystem;
use disparity_core::disparity::AnalysisConfig;
use disparity_core::engine::AnalysisEngine;
use disparity_model::edit::{apply_all, SpecEdit};
use disparity_model::graph::CauseEffectGraph;
use disparity_model::json::{self, Value};
use disparity_model::spec::SystemSpec;
use disparity_model::time::Duration as SpecDuration;
use disparity_obs::Histogram;
use disparity_rng::rngs::StdRng;
use disparity_rng::{splitmix64_mix, Rng};
use disparity_opt::{optimize_analyzed, BackendChoice, BufferBudget, PlanRequest};
use disparity_sched::wcrt::response_times;
use disparity_service::proto::{
    encode_disparity_result, encode_optimize_result, is_trace_id, response_line, split_trace,
    ResponseBody, Status,
};

struct Args {
    addr: String,
    spec: String,
    task: Option<String>,
    requests: usize,
    rps: u64,
    connections: usize,
    out: Option<String>,
    retries: u32,
    backoff_ms: u64,
    seed: u64,
    require_cache_hit: bool,
    probe_overload: usize,
    shutdown: bool,
    chaos_soak: bool,
    soak_tag: String,
    direct_addr: Option<String>,
    latency_series: Option<String>,
    series_interval_ms: u64,
    dump: bool,
    edit_replay: bool,
    optimize_replay: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7414".to_string(),
        spec: "specs/waters_clean.json".to_string(),
        task: None,
        requests: 100,
        rps: 0,
        connections: 4,
        out: None,
        retries: 0,
        backoff_ms: 10,
        seed: 42,
        require_cache_hit: false,
        probe_overload: 0,
        shutdown: false,
        chaos_soak: false,
        soak_tag: "soak".to_string(),
        direct_addr: None,
        latency_series: None,
        series_interval_ms: 100,
        dump: false,
        edit_replay: false,
        optimize_replay: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--spec" => args.spec = value("--spec")?,
            "--task" => args.task = Some(value("--task")?),
            "--requests" => {
                args.requests = value("--requests")?
                    .parse()
                    .map_err(|e| format!("--requests: {e}"))?;
            }
            "--rps" => args.rps = value("--rps")?.parse().map_err(|e| format!("--rps: {e}"))?,
            "--connections" => {
                args.connections = value("--connections")?
                    .parse()
                    .map_err(|e| format!("--connections: {e}"))?;
            }
            "--out" => args.out = Some(value("--out")?),
            "--retries" => {
                args.retries = value("--retries")?
                    .parse()
                    .map_err(|e| format!("--retries: {e}"))?;
            }
            "--backoff-ms" => {
                args.backoff_ms = value("--backoff-ms")?
                    .parse()
                    .map_err(|e| format!("--backoff-ms: {e}"))?;
            }
            "--seed" => {
                args.seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?;
            }
            "--require-cache-hit" => args.require_cache_hit = true,
            "--probe-overload" => {
                args.probe_overload = value("--probe-overload")?
                    .parse()
                    .map_err(|e| format!("--probe-overload: {e}"))?;
            }
            "--shutdown" => args.shutdown = true,
            "--chaos-soak" => args.chaos_soak = true,
            "--soak-tag" => args.soak_tag = value("--soak-tag")?,
            "--direct-addr" => args.direct_addr = Some(value("--direct-addr")?),
            "--latency-series" => args.latency_series = Some(value("--latency-series")?),
            "--dump" => args.dump = true,
            "--edit-replay" => args.edit_replay = true,
            "--optimize-replay" => args.optimize_replay = true,
            "--series-interval-ms" => {
                args.series_interval_ms = value("--series-interval-ms")?
                    .parse()
                    .map_err(|e| format!("--series-interval-ms: {e}"))?;
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

#[derive(Default)]
struct Tally {
    ok: AtomicU64,
    overloaded: AtomicU64,
    timeouts: AtomicU64,
    errors: AtomicU64,
    protocol_errors: AtomicU64,
    retried: AtomicU64,
}

fn bump(c: &AtomicU64) {
    c.fetch_add(1, Ordering::Relaxed);
}

fn load(c: &AtomicU64) -> u64 {
    c.load(Ordering::Relaxed)
}

/// Jittered exponential backoff: `base * 2^(attempt-1)`, scaled by a
/// random 50–150% factor, capped at ~3.2s worth of doublings.
fn backoff_delay(rng: &mut StdRng, base_ms: u64, attempt: u32) -> Duration {
    let exp = base_ms.saturating_mul(1 << attempt.saturating_sub(1).min(6));
    Duration::from_millis(exp * rng.gen_range(50..=150u64) / 100)
}

/// One synchronous request over an open connection; records latency and
/// status. Returns `false` on transport failure (nothing recorded — the
/// caller decides whether to retry over a fresh connection).
fn one_request(
    stream: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    line: &str,
    tally: &Tally,
    latency: &Mutex<Histogram>,
) -> bool {
    let started = Instant::now();
    if stream
        .write_all(line.as_bytes())
        .and_then(|()| stream.write_all(b"\n"))
        .and_then(|()| stream.flush())
        .is_err()
    {
        return false;
    }
    let mut response = String::new();
    match reader.read_line(&mut response) {
        Ok(n) if n > 0 => {}
        _ => return false,
    }
    let micros = i64::try_from(started.elapsed().as_micros()).unwrap_or(i64::MAX);
    if let Ok(mut hist) = latency.lock() {
        hist.record(micros);
    }
    match Value::parse(response.trim_end()) {
        Ok(v) => match v.get("status").and_then(Value::as_str) {
            Some("ok") => bump(&tally.ok),
            Some("overloaded") => bump(&tally.overloaded),
            Some("timeout") => bump(&tally.timeouts),
            Some("error" | "rejected" | "shutting_down" | "internal_error") => {
                bump(&tally.errors);
            }
            _ => bump(&tally.protocol_errors),
        },
        Err(_) => bump(&tally.protocol_errors),
    }
    true
}

fn open_conn(addr: &str) -> Option<(TcpStream, BufReader<TcpStream>)> {
    let stream = TcpStream::connect(addr).ok()?;
    let read_half = stream.try_clone().ok()?;
    Some((stream, BufReader::new(read_half)))
}

fn run_load(args: &Args, request_line: &str) -> Result<(Tally, Histogram, Duration), String> {
    let tally = Tally::default();
    let latency = Mutex::new(Histogram::new());
    let connections = args.connections.max(1);
    let per_conn = args.requests.div_ceil(connections);
    // Pace each connection at its share of the aggregate target rate.
    let pause = if args.rps == 0 {
        Duration::ZERO
    } else {
        Duration::from_micros(1_000_000 * connections as u64 / args.rps.max(1))
    };
    let started = Instant::now();
    std::thread::scope(|scope| {
        for conn_index in 0..connections {
            let (tally, latency) = (&tally, &latency);
            scope.spawn(move || {
                let mut rng =
                    StdRng::seed_from_u64(splitmix64_mix(args.seed ^ conn_index as u64));
                let mut conn = open_conn(&args.addr);
                for _ in 0..per_conn {
                    let mut attempt = 0u32;
                    loop {
                        if conn.is_none() {
                            conn = open_conn(&args.addr);
                        }
                        let done = match &mut conn {
                            Some((stream, reader)) => {
                                one_request(stream, reader, request_line, tally, latency)
                            }
                            None => false,
                        };
                        if done {
                            break;
                        }
                        // Transport failure: the connection is suspect.
                        conn = None;
                        attempt += 1;
                        if attempt > args.retries {
                            bump(&tally.protocol_errors);
                            break;
                        }
                        bump(&tally.retried);
                        std::thread::sleep(backoff_delay(&mut rng, args.backoff_ms, attempt));
                    }
                    if !pause.is_zero() {
                        std::thread::sleep(pause);
                    }
                }
            });
        }
    });
    let elapsed = started.elapsed();
    let hist = latency
        .into_inner()
        .map_err(|_| "latency histogram poisoned".to_string())?;
    Ok((tally, hist, elapsed))
}

/// Sends one request over `addr` and reads one response line (3s read
/// timeout so a chaos-stalled connection cannot wedge the client).
fn send_and_read(addr: &str, line: &str) -> Option<String> {
    let mut stream = TcpStream::connect(addr).ok()?;
    stream
        .set_read_timeout(Some(Duration::from_secs(3)))
        .ok()?;
    stream
        .write_all(line.as_bytes())
        .and_then(|()| stream.write_all(b"\n"))
        .and_then(|()| stream.flush())
        .ok()?;
    let mut response = String::new();
    let n = BufReader::new(stream).read_line(&mut response).ok()?;
    if n == 0 {
        return None;
    }
    Some(response.trim_end().to_string())
}

/// Queries one server-side op (`stats`/`health`) and returns its result.
fn server_query(addr: &str, op: &str) -> Result<Value, String> {
    let line = format!("{{\"id\":\"loadgen-{op}\",\"op\":\"{op}\"}}");
    let response =
        send_and_read(addr, &line).ok_or_else(|| format!("{op} query got no response"))?;
    let v = Value::parse(&response).map_err(|e| format!("{op} parse: {e}"))?;
    v.get("result")
        .cloned()
        .ok_or_else(|| format!("{op} response has no result"))
}

/// Fires `n` slow `sleep` requests down one connection as fast as
/// possible; returns how many were bounced `overloaded`.
fn probe_overload(addr: &str, n: usize) -> Result<u64, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    let read_half = stream.try_clone().map_err(|e| format!("clone: {e}"))?;
    for i in 0..n {
        stream
            .write_all(format!("{{\"id\":\"probe-{i}\",\"op\":\"sleep\",\"millis\":25}}\n").as_bytes())
            .map_err(|e| format!("probe write: {e}"))?;
    }
    stream.flush().map_err(|e| format!("probe flush: {e}"))?;
    let mut overloaded = 0u64;
    let mut seen = 0usize;
    for line in BufReader::new(read_half).lines() {
        let line = line.map_err(|e| format!("probe read: {e}"))?;
        let v = Value::parse(&line).map_err(|e| format!("probe parse: {e}"))?;
        if v.get("status").and_then(Value::as_str) == Some("overloaded") {
            overloaded += 1;
        }
        seen += 1;
        if seen == n {
            break;
        }
    }
    if seen != n {
        return Err(format!("overload probe: sent {n} requests, got {seen} responses"));
    }
    Ok(overloaded)
}

/// Sends the `shutdown` op and waits for its `ok` ack, letting the
/// daemon drain and flush obs artifacts.
fn send_shutdown(addr: &str) -> Result<(), String> {
    let response = send_and_read(addr, "{\"id\":\"loadgen-shutdown\",\"op\":\"shutdown\"}")
        .ok_or_else(|| "shutdown got no response".to_string())?;
    let v = Value::parse(&response).map_err(|e| format!("shutdown parse: {e}"))?;
    match v.get("status").and_then(Value::as_str) {
        Some("ok") => Ok(()),
        other => Err(format!("shutdown not acknowledged: {other:?}")),
    }
}

fn uint(v: u64) -> Value {
    Value::Int(i64::try_from(v).unwrap_or(i64::MAX))
}

// ---------------------------------------------------------------------------
// Latency series
// ---------------------------------------------------------------------------

/// One `metrics` poll rendered as a series line. `None` when the server
/// is unreachable or the response is malformed — the sampler just skips
/// that tick rather than aborting the run.
fn sample_metrics(addr: &str, started: Instant) -> Option<String> {
    let response = send_and_read(addr, "{\"id\":\"loadgen-series\",\"op\":\"metrics\"}")?;
    let v = Value::parse(&response).ok()?;
    let result = v.get("result")?;
    Some(
        json::object(vec![
            (
                "t_ms",
                Value::Int(i64::try_from(started.elapsed().as_millis()).unwrap_or(i64::MAX)),
            ),
            (
                "queue_depth",
                result.get("queue_depth").cloned().unwrap_or(Value::Int(-1)),
            ),
            (
                "window",
                result
                    .get("window")
                    .cloned()
                    .unwrap_or_else(|| json::object(vec![])),
            ),
        ])
        .to_string(),
    )
}

/// Background sampler for `--latency-series`: polls the `metrics` op on
/// an interval while the load runs, then writes the NDJSON timeline.
struct SeriesSampler {
    stop: Arc<AtomicBool>,
    handle: std::thread::JoinHandle<Vec<String>>,
    path: String,
}

impl SeriesSampler {
    /// Starts the sampler when `--latency-series` was given.
    fn start(args: &Args) -> Option<Self> {
        let path = args.latency_series.clone()?;
        // The series describes the *server*: in chaos-soak runs, sample
        // past the proxy so fault injection cannot garble the timeline.
        let addr = args
            .direct_addr
            .clone()
            .unwrap_or_else(|| args.addr.clone());
        let interval = Duration::from_millis(args.series_interval_ms.max(1));
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            let started = Instant::now();
            let mut lines = Vec::new();
            loop {
                // Observe the flag *before* sampling so a stop request
                // still gets one final sample covering the run's tail.
                let done = stop_flag.load(Ordering::Relaxed);
                if let Some(line) = sample_metrics(&addr, started) {
                    lines.push(line);
                }
                if done {
                    return lines;
                }
                // Sleep in short slices so the final sample is prompt.
                let mut slept = Duration::ZERO;
                while slept < interval && !stop_flag.load(Ordering::Relaxed) {
                    let step = (interval - slept).min(Duration::from_millis(10));
                    std::thread::sleep(step);
                    slept += step;
                }
            }
        });
        Some(Self { stop, handle, path })
    }

    /// Stops the sampler (after one final sample) and writes the series.
    fn finish(self) -> Result<(), String> {
        self.stop.store(true, Ordering::Relaxed);
        let lines = self
            .handle
            .join()
            .map_err(|_| "latency-series sampler panicked".to_string())?;
        let mut text = lines.join("\n");
        if !text.is_empty() {
            text.push('\n');
        }
        std::fs::write(&self.path, text).map_err(|e| format!("writing {}: {e}", self.path))?;
        eprintln!(
            "loadgen: {} latency sample(s) written to {}",
            lines.len(),
            self.path
        );
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Chaos soak
// ---------------------------------------------------------------------------

#[derive(Default)]
struct SoakTally {
    accepted: AtomicU64,
    lost: AtomicU64,
    duplicated: AtomicU64,
    /// Byte-corrupted-but-parseable responses the verifier *caught* (and
    /// retried). Nonzero under garbage injection is the chaos working —
    /// the gate is that none were ever *accepted*.
    corruption_caught: AtomicU64,
    retried_attempts: AtomicU64,
}

/// Sends `line` until the response carries a well-formed `trace_id`
/// stamp and, after peeling it, is byte-identical to `want` — over fresh
/// connections, within the retry budget. A missing or malformed stamp is
/// itself treated as corruption: the server stamps every response, so a
/// bare line can only be chaos damage. Returns attempts used.
fn soak_request(
    addr: &str,
    line: &str,
    want: &str,
    id: &str,
    args: &Args,
    rng: &mut StdRng,
    tally: &SoakTally,
) -> Result<u32, ()> {
    for attempt in 1..=args.retries.max(1) + 1 {
        if attempt > 1 {
            bump(&tally.retried_attempts);
            std::thread::sleep(backoff_delay(rng, args.backoff_ms, attempt - 1));
        }
        if let Some(response) = send_and_read(addr, line) {
            match split_trace(&response) {
                Some((pure, tid)) if is_trace_id(&tid) && pure == want => {
                    return Ok(attempt);
                }
                _ => {
                    // Parsed with our id and status ok but the wrong
                    // bytes? That is a corrupted response caught by
                    // verification.
                    if let Ok(v) = Value::parse(&response) {
                        let id_matches = v.get("id").and_then(Value::as_str) == Some(id);
                        if id_matches && v.get("status").and_then(Value::as_str) == Some("ok") {
                            bump(&tally.corruption_caught);
                        }
                    }
                }
            }
        }
    }
    Err(())
}

/// Replays `count` uniquely-identified healthy requests (split across
/// `--connections` threads), accepting only byte-identical responses.
fn soak_healthy_batch(
    args: &Args,
    phase: &str,
    count: usize,
    request_for: &(dyn Fn(&str) -> String + Sync),
    expected_for: &(dyn Fn(&str) -> String + Sync),
    tally: &SoakTally,
    completed: &Mutex<HashSet<String>>,
) {
    let connections = args.connections.max(1);
    std::thread::scope(|scope| {
        for conn_index in 0..connections {
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(splitmix64_mix(
                    args.seed ^ (0xC0A5 + conn_index as u64),
                ));
                let mut i = conn_index;
                while i < count {
                    let id = format!("{}-{phase}-{i}", args.soak_tag);
                    let line = request_for(&id);
                    let want = expected_for(&id);
                    match soak_request(&args.addr, &line, &want, &id, args, &mut rng, tally) {
                        Ok(_) => {
                            bump(&tally.accepted);
                            if !completed.lock().is_ok_and(|mut s| s.insert(id)) {
                                bump(&tally.duplicated);
                            }
                        }
                        Err(()) => bump(&tally.lost),
                    }
                    i += connections;
                }
            });
        }
    });
}

/// Drives the deliberately panicking spec until the server quarantines
/// it. Each send is one potential strike; `rejected` needs two processed
/// strikes, so it can never appear before the third send.
struct ProbeOutcome {
    sends: u32,
    internal_errors: u32,
    noise: u32,
    rejected: bool,
}

fn quarantine_probe(args: &Args, poison_spec_json: &str, rng: &mut StdRng) -> ProbeOutcome {
    let mut outcome = ProbeOutcome {
        sends: 0,
        internal_errors: 0,
        noise: 0,
        rejected: false,
    };
    // Generous send cap: chaos may eat both a strike's response and a
    // rejection several times over before one gets through intact.
    while outcome.sends < 30 && !outcome.rejected {
        outcome.sends += 1;
        let id = format!("{}-poison-{}", args.soak_tag, outcome.sends);
        let line = format!(
            "{{\"id\":{},\"op\":\"panic\",\"spec\":{poison_spec_json}}}",
            Value::from(id.as_str())
        );
        let status = send_and_read(&args.addr, &line)
            .and_then(|r| Value::parse(&r).ok().filter(|v| {
                v.get("id").and_then(Value::as_str) == Some(id.as_str())
            }))
            .and_then(|v| v.get("status").and_then(Value::as_str).map(str::to_string));
        match status.as_deref() {
            Some("internal_error") => outcome.internal_errors += 1,
            Some("rejected") => outcome.rejected = true,
            _ => outcome.noise += 1,
        }
        if !outcome.rejected {
            std::thread::sleep(backoff_delay(rng, args.backoff_ms, 1));
        }
    }
    outcome
}

/// The full chaos soak: healthy traffic under fault injection, the
/// quarantine probe concurrent with more healthy traffic, then a direct
/// (un-proxied) health check. Returns the report and whether any gate
/// failed.
fn run_chaos_soak(
    args: &Args,
    spec: &SystemSpec,
    graph: &CauseEffectGraph,
    task: &str,
) -> Result<(Value, bool), String> {
    let sink = graph
        .find_task(task)
        .ok_or_else(|| format!("task {task:?} not in spec"))?;
    let rt = response_times(graph).map_err(|e| format!("response times: {e}"))?;
    let report = AnalysisEngine::new(graph, &rt)
        .worst_case_disparity(sink, AnalysisConfig::default())
        .map_err(|e| format!("direct analysis: {e}"))?;
    let result = encode_disparity_result(graph, &report);
    let spec_json = spec.to_json().to_string();
    let task_json = Value::from(task).to_string();
    let request_for = move |id: &str| {
        format!(
            "{{\"id\":{},\"op\":\"disparity\",\"task\":{task_json},\"spec\":{spec_json}}}",
            Value::from(id)
        )
    };
    let expected_for = move |id: &str| {
        response_line(
            &Value::from(id),
            Status::Ok,
            ResponseBody::Result(result.clone()),
        )
    };

    // The poison spec: same shape, but salted by the soak tag (a tweaked
    // first-task offset) so each run quarantines a fresh canonical hash.
    let mut poison = spec.clone();
    let tag_hash = args
        .soak_tag
        .bytes()
        .fold(args.seed, |h, b| splitmix64_mix(h ^ u64::from(b)));
    let first = poison
        .tasks
        .first_mut()
        .ok_or_else(|| "spec has no tasks".to_string())?;
    first.offset = SpecDuration::from_nanos(
        first.offset.as_nanos() + i64::try_from(tag_hash % 1_000_000).unwrap_or(0) + 1,
    );
    let poison_json = poison.to_json().to_string();

    let tally = SoakTally::default();
    let completed = Mutex::new(HashSet::new());

    // Phase 1: healthy traffic under chaos.
    let phase1 = args.requests;
    soak_healthy_batch(args, "p1", phase1, &request_for, &expected_for, &tally, &completed);

    // Phase 2+3: the quarantine probe runs *while* more healthy traffic
    // flows — a poisoned spec must not disturb anyone else's answers.
    let phase3 = (args.requests / 4).max(10);
    let probe = std::thread::scope(|scope| {
        let probe_handle = scope.spawn(|| {
            let mut rng = StdRng::seed_from_u64(splitmix64_mix(args.seed ^ 0x90150));
            quarantine_probe(args, &poison_json, &mut rng)
        });
        soak_healthy_batch(args, "p3", phase3, &request_for, &expected_for, &tally, &completed);
        probe_handle.join().unwrap_or(ProbeOutcome {
            sends: 0,
            internal_errors: 0,
            noise: 0,
            rejected: false,
        })
    });

    // Phase 4: the verdict, asked directly (past the proxy).
    let direct = args.direct_addr.as_deref().unwrap_or(&args.addr);
    let health = server_query(direct, "health")?;

    let accepted = load(&tally.accepted);
    let lost = load(&tally.lost);
    let duplicated = load(&tally.duplicated);
    let expected_total = u64::try_from(phase1 + phase3).unwrap_or(u64::MAX);
    let workers_configured = health
        .get("workers_configured")
        .and_then(Value::as_i64)
        .unwrap_or(-1);
    let workers_alive = health.get("workers_alive").and_then(Value::as_i64).unwrap_or(-2);
    let quarantined_specs = health
        .get("quarantined_specs")
        .and_then(Value::as_i64)
        .unwrap_or(0);

    let mut failed = false;
    let mut fail = |cond: bool, msg: &str| {
        if cond {
            eprintln!("loadgen: FAIL: {msg}");
            failed = true;
        }
    };
    fail(lost > 0, &format!("{lost} response(s) lost (retry budget exhausted)"));
    fail(duplicated > 0, &format!("{duplicated} duplicated response(s)"));
    fail(
        accepted != expected_total,
        &format!("accepted {accepted} of {expected_total} healthy responses"),
    );
    fail(!probe.rejected, "panicking spec was never quarantined");
    fail(
        probe.rejected && probe.sends < 3,
        &format!("quarantine after only {} attempt(s) — needs two strikes first", probe.sends),
    );
    fail(
        probe.internal_errors > 2,
        &format!("{} internal_error responses for one spec — quarantine leak", probe.internal_errors),
    );
    fail(
        workers_alive != workers_configured,
        &format!("{workers_alive} of {workers_configured} workers alive at end of soak"),
    );
    fail(quarantined_specs < 1, "health reports no quarantined specs");

    let report = json::object(vec![
        ("mode", Value::from("chaos-soak")),
        ("addr", Value::from(args.addr.as_str())),
        ("direct_addr", Value::from(direct)),
        ("soak_tag", Value::from(args.soak_tag.as_str())),
        ("seed", uint(args.seed)),
        ("retries", Value::from(args.retries as usize)),
        ("healthy_requests", uint(expected_total)),
        ("accepted", uint(accepted)),
        ("lost", uint(lost)),
        ("duplicated", uint(duplicated)),
        ("corruption_caught", uint(load(&tally.corruption_caught))),
        ("retried_attempts", uint(load(&tally.retried_attempts))),
        (
            "panic_probe",
            json::object(vec![
                ("sends", uint(u64::from(probe.sends))),
                ("internal_errors", uint(u64::from(probe.internal_errors))),
                ("noise", uint(u64::from(probe.noise))),
                ("rejected_seen", Value::Bool(probe.rejected)),
            ]),
        ),
        ("health", health),
        ("passed", Value::Bool(!failed)),
    ]);
    Ok((report, failed))
}

// ---------------------------------------------------------------------------
// Edit replay
// ---------------------------------------------------------------------------

/// The expected `ok` response bytes for a disparity/patch answer on
/// `spec`: the full cold pipeline, run locally.
fn cold_answer(spec: &SystemSpec, task: &str) -> Result<Value, String> {
    let graph = spec.build().map_err(|e| format!("building edited spec: {e}"))?;
    let sink = graph
        .find_task(task)
        .ok_or_else(|| format!("task {task:?} not in edited spec"))?;
    let rt = response_times(&graph).map_err(|e| format!("response times: {e}"))?;
    let report = AnalysisEngine::new(&graph, &rt)
        .worst_case_disparity(sink, AnalysisConfig::default())
        .map_err(|e| format!("direct analysis: {e}"))?;
    Ok(encode_disparity_result(&graph, &report))
}

/// Seeds the base spec into the server's cache, then replays patch
/// requests (seeded random WCET edits against the base canonical hash),
/// accepting only responses byte-identical to the local cold pipeline on
/// the edited spec. Cycling through a small pool of distinct edits makes
/// later iterations exercise the server's patch memo.
fn run_edit_replay(
    args: &Args,
    spec: &SystemSpec,
    task: &str,
) -> Result<(Value, bool), String> {
    let base = spec.canonical_hash();
    let task_json = Value::from(task).to_string();
    let tally = SoakTally::default();
    let mut rng = StdRng::seed_from_u64(splitmix64_mix(args.seed ^ 0xED17));

    // Warm request: the server must hold the base graph before any patch
    // can rebase from it.
    let warm_id = "edit-replay-warm";
    let warm_line = format!(
        "{{\"id\":{},\"op\":\"disparity\",\"task\":{task_json},\"spec\":{}}}",
        Value::from(warm_id),
        spec.to_json()
    );
    let warm_want = response_line(
        &Value::from(warm_id),
        Status::Ok,
        ResponseBody::Result(cold_answer(spec, task)?),
    );
    soak_request(&args.addr, &warm_line, &warm_want, warm_id, args, &mut rng, &tally)
        .map_err(|()| "edit-replay: warm request never matched the cold pipeline".to_string())?;

    // A pool of distinct single-field WCET edits. Shrinking a WCET keeps
    // every schedulability verdict intact, so each edit is admissible.
    let candidates: Vec<&disparity_model::spec::TaskEntry> = spec
        .tasks
        .iter()
        .filter(|t| t.wcet.as_nanos() > t.bcet.as_nanos() && t.wcet.as_nanos() > 1)
        .collect();
    if candidates.is_empty() {
        return Err("edit-replay: no task has wcet > bcet to edit".to_string());
    }
    let distinct = args.requests.clamp(1, 8);
    let mut pool = Vec::with_capacity(distinct);
    for _ in 0..distinct {
        let t = candidates[usize::try_from(rng.gen_range(0..candidates.len() as u64))
            .unwrap_or(0)];
        let lo = u64::try_from(t.bcet.as_nanos()).unwrap_or(0).max(1);
        let hi = u64::try_from(t.wcet.as_nanos()).unwrap_or(1);
        let wcet = SpecDuration::from_nanos(i64::try_from(rng.gen_range(lo..hi)).unwrap_or(1));
        let edit = SpecEdit::SetWcet {
            task: t.name.clone(),
            wcet,
        };
        let mut edited = spec.clone();
        apply_all(&mut edited, std::slice::from_ref(&edit))
            .map_err(|(i, e)| format!("edit-replay: generated bad edit [{i}]: {e}"))?;
        let answer = cold_answer(&edited, task)?;
        pool.push((edit.to_json().to_string(), answer));
    }

    for i in 0..args.requests {
        let (edit_json, answer) = &pool[i % distinct];
        let id = format!("edit-replay-{i}");
        let line = format!(
            "{{\"id\":{},\"op\":\"patch\",\"base\":\"{base:016x}\",\"edits\":[{edit_json}],\"task\":{task_json}}}",
            Value::from(id.as_str())
        );
        let want = response_line(
            &Value::from(id.as_str()),
            Status::Ok,
            ResponseBody::Result(answer.clone()),
        );
        match soak_request(&args.addr, &line, &want, &id, args, &mut rng, &tally) {
            Ok(_) => bump(&tally.accepted),
            Err(()) => bump(&tally.lost),
        }
    }

    let stats = server_query(&args.addr, "stats")?;
    let counter = |name: &str| {
        stats
            .get("counters")
            .and_then(|c| c.get(name))
            .and_then(Value::as_i64)
            .unwrap_or(0)
    };
    let patched = counter("patched");
    let memo_hits = counter("patch_memo_hits");

    let accepted = load(&tally.accepted);
    let lost = load(&tally.lost);
    let mut failed = false;
    let mut fail = |cond: bool, msg: &str| {
        if cond {
            eprintln!("loadgen: FAIL: {msg}");
            failed = true;
        }
    };
    fail(lost > 0, &format!("{lost} patch response(s) never matched the cold pipeline"));
    fail(
        accepted != args.requests as u64,
        &format!("accepted {accepted} of {} patch responses", args.requests),
    );
    fail(patched < 1, "server reports zero derived patch entries");
    fail(
        args.requests > distinct && memo_hits < 1,
        "server reports zero patch memo hits despite repeated edits",
    );

    let report = json::object(vec![
        ("mode", Value::from("edit-replay")),
        ("addr", Value::from(args.addr.as_str())),
        ("spec", Value::from(args.spec.as_str())),
        ("task", Value::from(task)),
        ("base", Value::from(format!("{base:016x}").as_str())),
        ("seed", uint(args.seed)),
        ("requests", Value::from(args.requests)),
        ("distinct_edits", Value::from(distinct)),
        ("accepted", uint(accepted)),
        ("lost", uint(lost)),
        ("retried_attempts", uint(load(&tally.retried_attempts))),
        ("server_patched", Value::Int(patched)),
        ("server_patch_memo_hits", Value::Int(memo_hits)),
        ("passed", Value::Bool(!failed)),
    ]);
    Ok((report, failed))
}

// ---------------------------------------------------------------------------
// Optimize replay
// ---------------------------------------------------------------------------

/// The expected `ok` result bytes for an `optimize` answer on `spec`: a
/// local optimizer run through the same pure encoder the server uses.
fn local_optimize_answer(spec: &SystemSpec, budget: usize, seed: u64) -> Result<Value, String> {
    let base = AnalyzedSystem::analyze(spec, AnalysisConfig::default())
        .map_err(|e| format!("optimize-replay: base analysis: {e}"))?;
    let mut request = PlanRequest::with_budget(BufferBudget::slots(budget));
    request.seed = seed;
    let plan = optimize_analyzed(&base, &request, BackendChoice::Auto)
        .map_err(|e| format!("optimize-replay: planning (budget {budget}): {e}"))?;
    let mut opt_spec = spec.clone();
    apply_all(&mut opt_spec, &plan.edits())
        .map_err(|(i, e)| format!("optimize-replay: plan edit [{i}]: {e}"))?;
    Ok(encode_optimize_result(&plan, opt_spec.canonical_hash(), None))
}

/// Seeds the base spec into the server's cache, then replays `optimize`
/// requests sweeping a small pool of slot budgets against the base
/// canonical hash, accepting only responses byte-identical to a local
/// optimizer run. Each budget recurs across the replay, so the run also
/// proves response bytes are stable across repeated identical requests.
fn run_optimize_replay(
    args: &Args,
    spec: &SystemSpec,
    task: &str,
) -> Result<(Value, bool), String> {
    let base = spec.canonical_hash();
    let tally = SoakTally::default();
    let mut rng = StdRng::seed_from_u64(splitmix64_mix(args.seed ^ 0x0B7A));

    // Warm request: the server must hold the base graph before an
    // optimize can address it by hash.
    let warm_id = "optimize-replay-warm";
    let warm_line = format!(
        "{{\"id\":{},\"op\":\"disparity\",\"task\":{},\"spec\":{}}}",
        Value::from(warm_id),
        Value::from(task),
        spec.to_json()
    );
    let warm_want = response_line(
        &Value::from(warm_id),
        Status::Ok,
        ResponseBody::Result(cold_answer(spec, task)?),
    );
    soak_request(&args.addr, &warm_line, &warm_want, warm_id, args, &mut rng, &tally)
        .map_err(|()| "optimize-replay: warm request never matched the cold pipeline".to_string())?;

    // A small budget sweep; precompute each budget's expected bytes once.
    let distinct = args.requests.clamp(1, 5);
    let mut pool = Vec::with_capacity(distinct);
    for budget in 0..distinct {
        pool.push((budget, local_optimize_answer(spec, budget, args.seed)?));
    }

    for i in 0..args.requests {
        let (budget, answer) = &pool[i % distinct];
        let id = format!("optimize-replay-{i}");
        let line = format!(
            "{{\"id\":{},\"op\":\"optimize\",\"base\":\"{base:016x}\",\"budget_slots\":{budget},\"seed\":{}}}",
            Value::from(id.as_str()),
            args.seed
        );
        let want = response_line(
            &Value::from(id.as_str()),
            Status::Ok,
            ResponseBody::Result(answer.clone()),
        );
        match soak_request(&args.addr, &line, &want, &id, args, &mut rng, &tally) {
            Ok(_) => bump(&tally.accepted),
            Err(()) => bump(&tally.lost),
        }
    }

    let stats = server_query(&args.addr, "stats")?;
    let counter = |name: &str| {
        stats
            .get("counters")
            .and_then(|c| c.get(name))
            .and_then(Value::as_i64)
            .unwrap_or(0)
    };
    let optimized = counter("optimized");
    let delta_scored = counter("opt_delta_scored");
    let cold_scored = counter("opt_cold_scored");

    let accepted = load(&tally.accepted);
    let lost = load(&tally.lost);
    let mut failed = false;
    let mut fail = |cond: bool, msg: &str| {
        if cond {
            eprintln!("loadgen: FAIL: {msg}");
            failed = true;
        }
    };
    fail(
        lost > 0,
        &format!("{lost} optimize response(s) never matched the local optimizer"),
    );
    fail(
        accepted != args.requests as u64,
        &format!("accepted {accepted} of {} optimize responses", args.requests),
    );
    fail(
        optimized < args.requests as i64,
        &format!("server reports {optimized} optimized plans for {} requests", args.requests),
    );
    fail(
        distinct > 1 && delta_scored + cold_scored < 1,
        "server reports zero scored search states despite non-zero budgets",
    );

    let report = json::object(vec![
        ("mode", Value::from("optimize-replay")),
        ("addr", Value::from(args.addr.as_str())),
        ("spec", Value::from(args.spec.as_str())),
        ("base", Value::from(format!("{base:016x}").as_str())),
        ("seed", uint(args.seed)),
        ("requests", Value::from(args.requests)),
        ("distinct_budgets", Value::from(distinct)),
        ("accepted", uint(accepted)),
        ("lost", uint(lost)),
        ("retried_attempts", uint(load(&tally.retried_attempts))),
        ("server_optimized", Value::Int(optimized)),
        ("server_opt_delta_scored", Value::Int(delta_scored)),
        ("server_opt_cold_scored", Value::Int(cold_scored)),
        ("passed", Value::Bool(!failed)),
    ]);
    Ok((report, failed))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("loadgen: {msg}");
            return ExitCode::FAILURE;
        }
    };

    // Build the request from the spec file: parse, build the graph, and
    // aim at the requested task (default: the first sink).
    let text = match std::fs::read_to_string(&args.spec) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("loadgen: reading {}: {e}", args.spec);
            return ExitCode::FAILURE;
        }
    };
    let spec = match SystemSpec::from_json_str(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("loadgen: parsing {}: {e}", args.spec);
            return ExitCode::FAILURE;
        }
    };
    let graph = match spec.build() {
        Ok(g) => g,
        Err(e) => {
            eprintln!("loadgen: building {}: {e}", args.spec);
            return ExitCode::FAILURE;
        }
    };
    let task = match &args.task {
        Some(name) => name.clone(),
        None => match graph.sinks().first() {
            Some(&sink) => graph.task(sink).name().to_string(),
            None => {
                eprintln!("loadgen: {} has no sink task", args.spec);
                return ExitCode::FAILURE;
            }
        },
    };

    let sampler = SeriesSampler::start(&args);

    if args.chaos_soak {
        let (report, failed) = match run_chaos_soak(&args, &spec, &graph, &task) {
            Ok(r) => r,
            Err(msg) => {
                eprintln!("loadgen: {msg}");
                return ExitCode::FAILURE;
            }
        };
        if let Some(sampler) = sampler {
            if let Err(msg) = sampler.finish() {
                eprintln!("loadgen: {msg}");
                return ExitCode::FAILURE;
            }
        }
        println!("{}", report.to_pretty());
        if let Some(path) = &args.out {
            if let Err(e) = std::fs::write(path, format!("{}\n", report.to_pretty())) {
                eprintln!("loadgen: writing {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
        if args.shutdown {
            let direct = args.direct_addr.as_deref().unwrap_or(&args.addr);
            if let Err(msg) = send_shutdown(direct) {
                eprintln!("loadgen: {msg}");
                return ExitCode::FAILURE;
            }
        }
        return if failed { ExitCode::FAILURE } else { ExitCode::SUCCESS };
    }

    if args.edit_replay || args.optimize_replay {
        let run = if args.optimize_replay {
            run_optimize_replay(&args, &spec, &task)
        } else {
            run_edit_replay(&args, &spec, &task)
        };
        let (report, failed) = match run {
            Ok(r) => r,
            Err(msg) => {
                eprintln!("loadgen: {msg}");
                return ExitCode::FAILURE;
            }
        };
        if let Some(sampler) = sampler {
            if let Err(msg) = sampler.finish() {
                eprintln!("loadgen: {msg}");
                return ExitCode::FAILURE;
            }
        }
        println!("{}", report.to_pretty());
        if let Some(path) = &args.out {
            if let Err(e) = std::fs::write(path, format!("{}\n", report.to_pretty())) {
                eprintln!("loadgen: writing {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
        if args.shutdown {
            if let Err(msg) = send_shutdown(&args.addr) {
                eprintln!("loadgen: {msg}");
                return ExitCode::FAILURE;
            }
        }
        return if failed { ExitCode::FAILURE } else { ExitCode::SUCCESS };
    }

    let request_line = format!(
        "{{\"id\":\"load\",\"op\":\"disparity\",\"task\":{},\"spec\":{}}}",
        Value::from(task.as_str()),
        spec.to_json()
    );

    let (tally, hist, elapsed) = match run_load(&args, &request_line) {
        Ok(r) => r,
        Err(msg) => {
            eprintln!("loadgen: {msg}");
            return ExitCode::FAILURE;
        }
    };

    if let Some(sampler) = sampler {
        if let Err(msg) = sampler.finish() {
            eprintln!("loadgen: {msg}");
            return ExitCode::FAILURE;
        }
    }

    let probe = if args.probe_overload > 0 {
        match probe_overload(&args.addr, args.probe_overload) {
            Ok(n) => Some(n),
            Err(msg) => {
                eprintln!("loadgen: {msg}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        None
    };

    let stats = match server_query(&args.addr, "stats") {
        Ok(s) => s,
        Err(msg) => {
            eprintln!("loadgen: {msg}");
            return ExitCode::FAILURE;
        }
    };

    if args.dump {
        match server_query(&args.addr, "dump") {
            Ok(result) => eprintln!("loadgen: dump: {result}"),
            Err(msg) => {
                eprintln!("loadgen: {msg}");
                return ExitCode::FAILURE;
            }
        }
    }

    if args.shutdown {
        if let Err(msg) = send_shutdown(&args.addr) {
            eprintln!("loadgen: {msg}");
            return ExitCode::FAILURE;
        }
    }

    let elapsed_ms = elapsed.as_millis();
    let ok = load(&tally.ok);
    let throughput = if elapsed_ms == 0 {
        0.0
    } else {
        #[allow(clippy::cast_precision_loss)]
        let rps = ok as f64 * 1000.0 / elapsed_ms as f64;
        rps
    };
    let s = hist.summary();
    let mut report_members = vec![
        ("addr", Value::from(args.addr.as_str())),
        ("spec", Value::from(args.spec.as_str())),
        ("task", Value::from(task.as_str())),
        ("requests", Value::from(args.requests)),
        ("connections", Value::from(args.connections)),
        ("ok", uint(ok)),
        ("overloaded", uint(load(&tally.overloaded))),
        ("timeouts", uint(load(&tally.timeouts))),
        ("errors", uint(load(&tally.errors))),
        ("protocol_errors", uint(load(&tally.protocol_errors))),
        ("retried", uint(load(&tally.retried))),
        (
            "elapsed_ms",
            Value::Int(i64::try_from(elapsed_ms).unwrap_or(i64::MAX)),
        ),
        ("throughput_rps", Value::Float(throughput)),
        (
            "latency_us",
            json::object(vec![
                ("count", uint(s.count)),
                ("p50", Value::Int(s.p50)),
                ("p95", Value::Int(s.p95)),
                ("p99", Value::Int(s.p99)),
                ("max", Value::Int(s.max)),
            ]),
        ),
        ("server_stats", stats.clone()),
    ];
    if let Some(overloaded) = probe {
        report_members.push((
            "overload_probe",
            json::object(vec![
                ("sent", Value::from(args.probe_overload)),
                ("overloaded", uint(overloaded)),
            ]),
        ));
    }
    let report = json::object(report_members);
    println!("{}", report.to_pretty());
    if let Some(path) = &args.out {
        if let Err(e) = std::fs::write(path, format!("{}\n", report.to_pretty())) {
            eprintln!("loadgen: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
    }

    // Gate the exit code on the contract CI asserts.
    let mut failed = false;
    if load(&tally.protocol_errors) > 0 {
        eprintln!("loadgen: FAIL: protocol errors observed");
        failed = true;
    }
    if ok == 0 {
        eprintln!("loadgen: FAIL: zero successful requests");
        failed = true;
    }
    if args.require_cache_hit {
        let hits = stats
            .get("counters")
            .and_then(|c| c.get("cache_hits"))
            .and_then(Value::as_i64)
            .unwrap_or(0);
        if hits == 0 {
            eprintln!("loadgen: FAIL: --require-cache-hit but server reports zero cache hits");
            failed = true;
        }
    }
    if let Some(overloaded) = probe {
        if overloaded == 0 {
            eprintln!("loadgen: FAIL: overload probe never saw `overloaded`");
            failed = true;
        }
        let reported = stats
            .get("counters")
            .and_then(|c| c.get("overloaded"))
            .and_then(Value::as_i64)
            .unwrap_or(0);
        // The server counted the bounces *before* the probe's stats query.
        if u64::try_from(reported).unwrap_or(0) < overloaded {
            eprintln!(
                "loadgen: FAIL: server reports {reported} overloads, probe saw {overloaded}"
            );
            failed = true;
        }
    }
    if failed {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
