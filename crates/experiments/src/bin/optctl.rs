//! `optctl` — drive the global buffer-plan optimizer's Pareto sweep.
//!
//! ```text
//! optctl [--budgets CSV] [--systems N] [--seed N] [--backend NAME]
//!        [--beam-width N] [--bytes-per-sample N] [--out DIR]
//!        [--forbid-new-findings]
//!        [--trace-out FILE] [--metrics-out FILE] [--deny-lints] [--lints-out FILE]
//! ```
//!
//! Sweeps slot budgets over a seeded population of fusion workloads
//! (see [`disparity_experiments::pareto`]) and emits the disparity
//! reduction versus buffer-bytes frontier: markdown on stdout, CSV to
//! `--out` (default `results/pareto.csv`). `--backend` picks `auto`
//! (default), `branch_and_bound`, or `beam` (sized by `--beam-width`).
//! `--forbid-new-findings` turns the service's D007 cleanliness guard
//! back on (the sweep admits over-buffering by default — see
//! [`disparity_experiments::pareto::ParetoConfig::allow_overbuffering`]).
//! `--deny-lints` runs the analyzer diagnostic gate over the sweep's
//! own regenerated workloads before sweeping, exactly like `fig6`.

use std::path::PathBuf;
use std::process::ExitCode;

use disparity_experiments::lintcli::LintArgs;
use disparity_experiments::obscli::ObsArgs;
use disparity_experiments::par::attempt_seed;
use disparity_experiments::pareto::{self, ParetoConfig};
use disparity_opt::{BackendChoice, DEFAULT_BEAM_WIDTH};
use disparity_rng::SplitMix64;
use disparity_workload::funnel::{schedulable_funnel_system, FunnelConfig};

#[derive(Debug)]
struct Args {
    budgets: Vec<usize>,
    systems: usize,
    seed: u64,
    backend_name: String,
    beam_width: usize,
    bytes_per_sample: usize,
    allow_overbuffering: bool,
    out: PathBuf,
    obs: ObsArgs,
    lint: LintArgs,
}

fn parse_args() -> Result<Args, String> {
    let defaults = ParetoConfig::default();
    let mut args = Args {
        budgets: defaults.budgets,
        systems: defaults.systems,
        seed: defaults.seed,
        backend_name: "auto".to_string(),
        beam_width: DEFAULT_BEAM_WIDTH,
        bytes_per_sample: defaults.bytes_per_sample,
        allow_overbuffering: defaults.allow_overbuffering,
        out: PathBuf::from("results"),
        obs: ObsArgs::default(),
        lint: LintArgs::default(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        if args.obs.try_parse(&arg, &mut || it.next())? {
            continue;
        }
        if args.lint.try_parse(&arg, &mut || it.next())? {
            continue;
        }
        match arg.as_str() {
            "--budgets" => {
                let v = it.next().ok_or("--budgets needs a value")?;
                args.budgets = v
                    .split(',')
                    .map(|s| s.trim().parse().map_err(|_| format!("bad budget: {s}")))
                    .collect::<Result<_, _>>()?;
                if args.budgets.is_empty() {
                    return Err("--budgets needs at least one value".to_string());
                }
            }
            "--systems" => {
                let v = it.next().ok_or("--systems needs a value")?;
                args.systems = v.parse().map_err(|_| format!("bad count: {v}"))?;
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                args.seed = v.parse().map_err(|_| format!("bad seed: {v}"))?;
            }
            "--backend" => args.backend_name = it.next().ok_or("--backend needs a value")?,
            "--beam-width" => {
                let v = it.next().ok_or("--beam-width needs a value")?;
                args.beam_width = v.parse().map_err(|_| format!("bad width: {v}"))?;
            }
            "--bytes-per-sample" => {
                let v = it.next().ok_or("--bytes-per-sample needs a value")?;
                args.bytes_per_sample = v.parse().map_err(|_| format!("bad size: {v}"))?;
            }
            "--forbid-new-findings" => args.allow_overbuffering = false,
            "--out" => args.out = PathBuf::from(it.next().ok_or("--out needs a value")?),
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(args)
}

fn backend_of(args: &Args) -> Result<BackendChoice, String> {
    match args.backend_name.as_str() {
        "auto" => Ok(BackendChoice::Auto),
        "branch_and_bound" => Ok(BackendChoice::BranchAndBound),
        "beam" => Ok(BackendChoice::Beam {
            width: args.beam_width.max(1),
        }),
        other => Err(format!(
            "--backend must be auto, branch_and_bound or beam, got {other:?}"
        )),
    }
}

fn config_of(args: &Args) -> Result<ParetoConfig, String> {
    Ok(ParetoConfig {
        budgets: args.budgets.clone(),
        systems: args.systems,
        bytes_per_sample: args.bytes_per_sample,
        seed: args.seed,
        backend: backend_of(args)?,
        allow_overbuffering: args.allow_overbuffering,
    })
}

/// Regenerates the sweep's own workload population for the lint gate
/// (fresh RNGs; running the gate cannot change the sweep's output).
fn run_lint_gate(args: &Args, config: &ParetoConfig) -> Result<bool, String> {
    if !args.lint.requested() {
        return Ok(true);
    }
    let mut probes = Vec::new();
    for attempt in 0..config.systems * 20 {
        let mut rng = SplitMix64::new(attempt_seed(config.seed, 0, attempt));
        if let Ok(graph) = schedulable_funnel_system(&FunnelConfig::default(), &mut rng, 64) {
            probes.push((format!("pareto-attempt{attempt}"), graph));
            if probes.len() >= config.systems {
                break;
            }
        }
    }
    let errors = args.lint.gate("optctl", &probes)?;
    Ok(!(args.lint.deny_lints && errors > 0))
}

fn run_sweep(args: &Args, config: &ParetoConfig) -> ExitCode {
    eprintln!(
        "optctl: sweeping budgets={:?} over {} systems ({}) ...",
        config.budgets, config.systems, args.backend_name
    );
    let rows = pareto::run(config);
    let t = pareto::table(&rows);
    println!("## Buffer-plan Pareto frontier — bound reduction vs buffer bytes\n");
    println!("{}", t.to_markdown());
    let path = args.out.join("pareto.csv");
    if let Err(e) = t.write_csv(&path) {
        eprintln!("error writing CSV: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("CSV written to {}", path.display());
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: optctl [--budgets CSV] [--systems N] [--seed N] [--backend NAME] \
                 [--beam-width N] [--bytes-per-sample N] [--out DIR] \
                 [--forbid-new-findings] \
                 [--trace-out FILE] [--metrics-out FILE] [--deny-lints] [--lints-out FILE]"
            );
            return ExitCode::FAILURE;
        }
    };
    let config = match config_of(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    args.obs.enable_if_requested();
    let code = match run_lint_gate(&args, &config) {
        Ok(true) => run_sweep(&args, &config),
        Ok(false) => {
            eprintln!("optctl: --deny-lints: error diagnostics on probe graphs; not sweeping");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    };
    match args.obs.flush() {
        Ok(lines) => {
            for line in lines {
                eprintln!("optctl: {line}");
            }
            code
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
