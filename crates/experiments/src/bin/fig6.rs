//! Regenerates the paper's Fig. 6 series.
//!
//! ```text
//! fig6 [a|b|c|d|ab|cd|funnel|all] [--full] [--seed N] [--out DIR] [--horizon-secs S]
//!      [--trace-out FILE] [--metrics-out FILE] [--deny-lints] [--lints-out FILE]
//! ```
//!
//! * `a`/`b` share one sweep (absolute values vs. incremental ratios), as
//!   do `c`/`d`; `funnel` runs the pipeline-topology variant of (a)/(b);
//!   `all` runs everything.
//! * `--full` uses the paper's scale: 10-minute simulations, 10 graphs ×
//!   10 offsets per point (hours of wall-clock time). The default is a
//!   quick profile whose qualitative shape matches.
//! * CSV lands in `--out` (default `results/`); markdown goes to stdout.
//! * `--trace-out`/`--metrics-out` record the sweeps with `disparity-obs`
//!   (see EXPERIMENTS.md, "Observability").
//! * `--deny-lints`/`--lints-out` run the `disparity-analyzer` diagnostic
//!   gate over probe graphs regenerated from the sweep's own seeds before
//!   sweeping (see EXPERIMENTS.md, "Static analysis & diagnostics"). The
//!   probe pass uses fresh RNGs, so the sweep output is byte-identical
//!   with or without the gate.

use std::path::PathBuf;
use std::process::ExitCode;

use disparity_experiments::fig6ab::{self, Fig6abConfig};
use disparity_experiments::fig6cd::{self, Fig6cdConfig};
use disparity_experiments::lintcli::LintArgs;
use disparity_experiments::obscli::ObsArgs;
use disparity_model::time::Duration;

#[derive(Debug)]
struct Args {
    run_ab: bool,
    run_cd: bool,
    run_funnel: bool,
    full: bool,
    seed: Option<u64>,
    out: PathBuf,
    horizon_secs: Option<i64>,
    obs: ObsArgs,
    lint: LintArgs,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        run_ab: false,
        run_cd: false,
        run_funnel: false,
        full: false,
        seed: None,
        out: PathBuf::from("results"),
        horizon_secs: None,
        obs: ObsArgs::default(),
        lint: LintArgs::default(),
    };
    let mut saw_selector = false;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        if args.obs.try_parse(&arg, &mut || it.next())? {
            continue;
        }
        if args.lint.try_parse(&arg, &mut || it.next())? {
            continue;
        }
        match arg.as_str() {
            "a" | "b" | "ab" => {
                args.run_ab = true;
                saw_selector = true;
            }
            "c" | "d" | "cd" => {
                args.run_cd = true;
                saw_selector = true;
            }
            "funnel" => {
                args.run_funnel = true;
                saw_selector = true;
            }
            "all" => {
                args.run_ab = true;
                args.run_cd = true;
                args.run_funnel = true;
                saw_selector = true;
            }
            "--full" => args.full = true,
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                args.seed = Some(v.parse().map_err(|_| format!("bad seed: {v}"))?);
            }
            "--out" => {
                args.out = PathBuf::from(it.next().ok_or("--out needs a value")?);
            }
            "--horizon-secs" => {
                let v = it.next().ok_or("--horizon-secs needs a value")?;
                args.horizon_secs = Some(v.parse().map_err(|_| format!("bad horizon: {v}"))?);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    if !saw_selector {
        args.run_ab = true;
        args.run_cd = true;
        args.run_funnel = true;
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: fig6 [a|b|c|d|ab|cd|funnel|all] [--full] [--seed N] [--out DIR] \
                 [--horizon-secs S] [--trace-out FILE] [--metrics-out FILE] \
                 [--deny-lints] [--lints-out FILE]"
            );
            return ExitCode::FAILURE;
        }
    };
    args.obs.enable_if_requested();
    let code = match run_lint_gate(&args) {
        Ok(true) => run_sweeps(&args),
        Ok(false) => {
            eprintln!("fig6: --deny-lints: error diagnostics on probe graphs; not sweeping");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    };
    // Flush even when a sweep failed so partial runs stay inspectable.
    match args.obs.flush() {
        Ok(lines) => {
            for line in lines {
                eprintln!("fig6: {line}");
            }
            code
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// The Fig. 6(a)/(b) (and funnel) configuration implied by the CLI args.
fn ab_config(args: &Args) -> Fig6abConfig {
    let mut cfg = Fig6abConfig {
        sim_horizon: Duration::from_secs(
            args.horizon_secs.unwrap_or(if args.full { 600 } else { 10 }),
        ),
        ..Default::default()
    };
    if let Some(seed) = args.seed {
        cfg.seed = seed;
    }
    if !args.full {
        cfg.graphs_per_point = 5;
        cfg.offsets_per_graph = 3;
    }
    cfg
}

/// The Fig. 6(c)/(d) configuration implied by the CLI args.
fn cd_config(args: &Args) -> Fig6cdConfig {
    let mut cfg = Fig6cdConfig {
        sim_horizon: Duration::from_secs(
            args.horizon_secs.unwrap_or(if args.full { 600 } else { 10 }),
        ),
        ..Default::default()
    };
    if let Some(seed) = args.seed {
        cfg.seed = seed;
    }
    if !args.full {
        cfg.systems_per_point = 5;
        cfg.offsets_per_system = 3;
    }
    cfg
}

/// Runs the `--deny-lints`/`--lints-out` diagnostic gate over probe graphs
/// for every selected sweep. Returns `Ok(false)` when `--deny-lints` is set
/// and a probe reported an Error-severity diagnostic.
fn run_lint_gate(args: &Args) -> Result<bool, String> {
    if !args.lint.requested() {
        return Ok(true);
    }
    let mut probes = Vec::new();
    if args.run_ab {
        probes.extend(fig6ab::probe_graphs(&ab_config(args)));
    }
    if args.run_funnel {
        probes.extend(fig6ab::probe_funnel_graphs(&ab_config(args)));
    }
    if args.run_cd {
        probes.extend(fig6cd::probe_graphs(&cd_config(args)));
    }
    let errors = args.lint.gate("fig6", &probes)?;
    Ok(!(args.lint.deny_lints && errors > 0))
}

fn run_sweeps(args: &Args) -> ExitCode {
    if args.run_ab {
        let cfg = ab_config(args);
        eprintln!("fig6(a,b): sweeping n_tasks={:?} ...", cfg.task_counts);
        let rows = fig6ab::run(&cfg);
        let ta = fig6ab::table_a(&rows);
        let tb = fig6ab::table_b(&rows);
        println!("## Fig 6(a) — absolute worst-case time disparity (mean over graphs)\n");
        println!("{}", ta.to_markdown());
        println!("## Fig 6(b) — incremental ratio vs Sim\n");
        println!("{}", tb.to_markdown());
        if let Err(e) = ta
            .write_csv(&args.out.join("fig6a.csv"))
            .and_then(|()| tb.write_csv(&args.out.join("fig6b.csv")))
        {
            eprintln!("error writing CSV: {e}");
            return ExitCode::FAILURE;
        }
    }

    if args.run_funnel {
        let cfg = ab_config(args);
        eprintln!(
            "fig6(a') funnel variant: sweeping n_tasks={:?} ...",
            cfg.task_counts
        );
        let rows = fig6ab::run_funnel(&cfg);
        let ta = fig6ab::table_a(&rows);
        let tb = fig6ab::table_b(&rows);
        println!("## Fig 6(a') — funnel-graph variant (pipeline topologies)\n");
        println!("{}", ta.to_markdown());
        println!("## Fig 6(b') — funnel-graph incremental ratios\n");
        println!("{}", tb.to_markdown());
        if let Err(e) = ta
            .write_csv(&args.out.join("fig6a_funnel.csv"))
            .and_then(|()| tb.write_csv(&args.out.join("fig6b_funnel.csv")))
        {
            eprintln!("error writing CSV: {e}");
            return ExitCode::FAILURE;
        }
    }

    if args.run_cd {
        let cfg = cd_config(args);
        eprintln!(
            "fig6(c,d): sweeping chain_lengths={:?} ...",
            cfg.chain_lengths
        );
        let rows = fig6cd::run(&cfg);
        let tc = fig6cd::table_c(&rows);
        let td = fig6cd::table_d(&rows);
        println!("## Fig 6(c) — buffer optimization, absolute values (mean over systems)\n");
        println!("{}", tc.to_markdown());
        println!("## Fig 6(d) — incremental ratios after optimization\n");
        println!("{}", td.to_markdown());
        if let Err(e) = tc
            .write_csv(&args.out.join("fig6c.csv"))
            .and_then(|()| td.write_csv(&args.out.join("fig6d.csv")))
        {
            eprintln!("error writing CSV: {e}");
            return ExitCode::FAILURE;
        }
    }

    eprintln!("CSV written to {}", args.out.display());
    ExitCode::SUCCESS
}
