//! Reproduces the paper's running examples:
//!
//! * **Fig. 2/3** — the six-task fork-join graph: chain enumeration,
//!   backward-time bounds, and the P-diff/S-diff bounds at the sink.
//! * **Fig. 4** — the frequency trap: raising a middle task's frequency
//!   does not reduce the worst-case time disparity, while Algorithm 1's
//!   buffer does.

use disparity_core::buffering::design_buffer;
use disparity_core::disparity::{worst_case_disparity, AnalysisConfig};
use disparity_core::pairwise::{theorem2_bound, Method};
use disparity_core::prelude::backward_bounds;
use disparity_model::builder::SystemBuilder;
use disparity_model::chain::Chain;
use disparity_model::graph::CauseEffectGraph;
use disparity_model::ids::TaskId;
use disparity_model::task::TaskSpec;
use disparity_model::time::Duration;
use disparity_sched::schedulability::analyze;
use disparity_sim::engine::{SimConfig, Simulator};
use disparity_sim::exec::ExecutionTimeModel;

fn ms(v: i64) -> Duration {
    Duration::from_millis(v)
}

/// The paper's Fig. 2 graph with representative parameters.
fn fig2() -> (CauseEffectGraph, [TaskId; 6]) {
    let mut b = SystemBuilder::new();
    let e1 = b.add_ecu("ecu1");
    let e2 = b.add_ecu("ecu2");
    let t1 = b.add_task(TaskSpec::periodic("tau1", ms(10)));
    let t2 = b.add_task(TaskSpec::periodic("tau2", ms(20)));
    let t3 = b.add_task(
        TaskSpec::periodic("tau3", ms(10))
            .execution(ms(1), ms(2))
            .on_ecu(e1),
    );
    let t4 = b.add_task(
        TaskSpec::periodic("tau4", ms(20))
            .execution(ms(2), ms(4))
            .on_ecu(e1),
    );
    let t5 = b.add_task(
        TaskSpec::periodic("tau5", ms(30))
            .execution(ms(2), ms(5))
            .on_ecu(e2),
    );
    let t6 = b.add_task(
        TaskSpec::periodic("tau6", ms(30))
            .execution(ms(3), ms(6))
            .on_ecu(e2),
    );
    b.connect(t1, t3);
    b.connect(t2, t3);
    b.connect(t3, t4);
    b.connect(t3, t5);
    b.connect(t4, t6);
    b.connect(t5, t6);
    (
        b.build().expect("fig2 graph is valid"),
        [t1, t2, t3, t4, t5, t6],
    )
}

/// Fig. 4 topology: a fast camera path (`τ1 → τ3 → τ5`) joined with a slow
/// path (`τ2 → τ4 → τ5`); `τ3`'s period is the design knob.
fn fig4(t3_period: Duration) -> (CauseEffectGraph, [TaskId; 5]) {
    let mut b = SystemBuilder::new();
    let e = b.add_ecu("ecu1");
    let t1 = b.add_task(TaskSpec::periodic("tau1", ms(10)));
    let t2 = b.add_task(TaskSpec::periodic("tau2", ms(30)));
    let t3 = b.add_task(
        TaskSpec::periodic("tau3", t3_period)
            .execution(ms(1), ms(2))
            .on_ecu(e),
    );
    let t4 = b.add_task(
        TaskSpec::periodic("tau4", ms(30))
            .execution(ms(2), ms(4))
            .on_ecu(e),
    );
    let t5 = b.add_task(
        TaskSpec::periodic("tau5", ms(30))
            .execution(ms(2), ms(3))
            .on_ecu(e),
    );
    b.connect(t1, t3);
    b.connect(t2, t4);
    b.connect(t3, t5);
    b.connect(t4, t5);
    (
        b.build().expect("fig4 graph is valid"),
        [t1, t2, t3, t4, t5],
    )
}

/// Maximum observed disparity over a handful of offset-randomized runs
/// (the paper's "Sim" protocol, scaled down).
fn simulated_disparity(graph: &CauseEffectGraph, task: TaskId) -> f64 {
    use disparity_workload::offsets::randomize_offsets;
    let mut rng = disparity_rng::rngs::StdRng::seed_from_u64(7);
    let mut best = 0.0f64;
    for seed in 0..5u64 {
        let instance = randomize_offsets(graph, &mut rng);
        let sim = Simulator::new(
            &instance,
            SimConfig {
                horizon: Duration::from_secs(20),
                exec_model: ExecutionTimeModel::Uniform,
                seed,
                warmup: Duration::from_millis(500),
                record_trace: false,
                ..Default::default()
            },
        );
        if let Some(d) = sim.run().expect("valid config").metrics.max_disparity(task) {
            best = best.max(d.as_millis_f64());
        }
    }
    best
}

fn main() {
    println!("# Paper running examples\n");

    // ----- Fig. 2/3 -------------------------------------------------------
    let (g, [_, _, _, _, _, t6]) = fig2();
    let report = analyze(&g).expect("schedulable example");
    assert!(report.all_schedulable());
    let rt = report.response_times().clone();

    println!("## Fig. 2 — chains into tau6 and their backward-time bounds\n");
    let chains = g.chains_to(t6, 64).expect("small graph");
    for chain in &chains {
        let b = backward_bounds(&g, chain, &rt);
        let names: Vec<&str> = chain.tasks().iter().map(|&t| g.task(t).name()).collect();
        println!(
            "  {:<32} WCBT = {:>6}  BCBT = {:>6}",
            names.join(" -> "),
            b.wcbt.to_string(),
            b.bcbt.to_string()
        );
    }

    let p = worst_case_disparity(
        &g,
        t6,
        &rt,
        AnalysisConfig {
            method: Method::Independent,
            ..Default::default()
        },
    )
    .expect("analysis succeeds");
    let s = worst_case_disparity(
        &g,
        t6,
        &rt,
        AnalysisConfig {
            method: Method::ForkJoin,
            ..Default::default()
        },
    )
    .expect("analysis succeeds");
    let sim = simulated_disparity(&g, t6);
    println!("\n  P-diff(tau6) = {}", p.bound);
    println!("  S-diff(tau6) = {}", s.bound);
    println!("  Sim(tau6)    = {sim:.2}ms\n");

    // ----- Fig. 4 ---------------------------------------------------------
    println!("## Fig. 4 — raising tau3's frequency does not help\n");
    let mut bounds = Vec::new();
    for period in [ms(30), ms(10)] {
        let (g4, [t1, t2, t3, t4, t5]) = fig4(period);
        let report = analyze(&g4).expect("schedulable example");
        let rt = report.response_times().clone();
        let lam = Chain::new(&g4, vec![t1, t3, t5]).expect("path");
        let nu = Chain::new(&g4, vec![t2, t4, t5]).expect("path");
        let bound = theorem2_bound(&g4, &lam, &nu, &rt).expect("pairwise analysis");
        let sim = simulated_disparity(&g4, t5);
        println!(
            "  T(tau3) = {:<5} S-diff(tau5) = {:>6}   Sim(tau5) = {sim:.2}ms",
            period.to_string(),
            bound.to_string()
        );
        bounds.push((period, bound, g4, lam, nu, rt, t5));
    }
    let faster_not_better = bounds[1].1 >= bounds[0].1.min(bounds[1].1);
    assert!(faster_not_better);
    println!("\n  -> tripling tau3's frequency leaves the worst case unchanged.\n");

    println!("## Fig. 4 + Algorithm 1 — buffers do help\n");
    let (_, _, g4, lam, nu, rt, t5) = bounds.remove(0);
    let plan = design_buffer(&g4, &lam, &nu, &rt).expect("buffer design");
    let mut buffered = g4.clone();
    plan.apply(&mut buffered)
        .expect("plan channel belongs to graph");
    let sim_b = simulated_disparity(&buffered, t5);
    println!(
        "  designed buffer: capacity {} on {}",
        plan.capacity, plan.channel
    );
    println!("  S-diff   before = {}", plan.bound_before);
    println!("  S-diff-B after  = {}", plan.bound_after);
    println!("  Sim-B           = {sim_b:.2}ms");
}
