//! Audit a cause-effect system described in JSON.
//!
//! ```text
//! audit <spec.json> [--budget-ms N] [--optimize] [--dot FILE] [--sim-secs S]
//!       [--trace-out FILE] [--metrics-out FILE]
//! ```
//!
//! Reads a [`disparity_model::spec::SystemSpec`], then prints:
//!
//! * per-ECU utilization and per-task schedulability (`R ≤ T`);
//! * for every sink: the worst-case time disparity under P-diff, S-diff
//!   and Combined, with the critical sensor pair;
//! * per-chain backward-time, data-age and reaction-time bounds;
//! * with `--let`, the same chains under Logical Execution Time
//!   communication (scheduling-independent bounds);
//! * optionally (`--optimize`) an Algorithm-1 buffer plan per sink;
//! * optionally a short simulation cross-check (`--sim-secs`, default 5).
//!
//! Exits non-zero if a `--budget-ms` disparity budget is violated by any
//! sink, making the tool usable as a CI gate for timing requirements.
//!
//! `--trace-out`/`--metrics-out` record the analysis and the simulation
//! cross-check with `disparity-obs` (see EXPERIMENTS.md, "Observability").

use std::path::PathBuf;
use std::process::ExitCode;

use disparity_core::prelude::*;
use disparity_experiments::obscli::ObsArgs;
use disparity_model::prelude::*;
use disparity_model::spec::SystemSpec;
use disparity_sched::prelude::*;
use disparity_sim::prelude::*;

#[derive(Debug)]
struct Args {
    spec: PathBuf,
    budget: Option<Duration>,
    optimize: bool,
    let_mode: bool,
    dot: Option<PathBuf>,
    sim_secs: i64,
    obs: ObsArgs,
}

fn parse_args() -> Result<Args, String> {
    let mut spec = None;
    let mut budget = None;
    let mut optimize = false;
    let mut let_mode = false;
    let mut dot = None;
    let mut sim_secs = 5;
    let mut obs = ObsArgs::default();
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        if obs.try_parse(&arg, &mut || it.next())? {
            continue;
        }
        match arg.as_str() {
            "--budget-ms" => {
                let v = it.next().ok_or("--budget-ms needs a value")?;
                budget = Some(Duration::from_millis(
                    v.parse().map_err(|_| format!("bad budget: {v}"))?,
                ));
            }
            "--optimize" => optimize = true,
            "--let" => let_mode = true,
            "--dot" => dot = Some(PathBuf::from(it.next().ok_or("--dot needs a value")?)),
            "--sim-secs" => {
                let v = it.next().ok_or("--sim-secs needs a value")?;
                sim_secs = v.parse().map_err(|_| format!("bad duration: {v}"))?;
            }
            other if spec.is_none() && !other.starts_with('-') => {
                spec = Some(PathBuf::from(other));
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(Args {
        spec: spec.ok_or("missing <spec.json> argument")?,
        budget,
        optimize,
        let_mode,
        dot,
        sim_secs,
        obs,
    })
}

fn run(args: &Args) -> Result<bool, Box<dyn std::error::Error>> {
    let text = std::fs::read_to_string(&args.spec)?;
    let spec = SystemSpec::from_json_str(&text)?;
    let graph = spec.build()?;
    println!(
        "loaded {}: {} tasks, {} channels, {} resources",
        args.spec.display(),
        graph.task_count(),
        graph.channel_count(),
        graph.ecus().len()
    );

    if let Some(dot_path) = &args.dot {
        std::fs::write(dot_path, disparity_model::dot::to_dot(&graph))?;
        println!("DOT written to {}", dot_path.display());
    }

    // --- Schedulability ----------------------------------------------------
    let report = analyze(&graph)?;
    println!("\n## schedulability");
    for ecu in graph.ecus() {
        println!(
            "  {:<12} {:<10} utilization {:>5.1}%",
            ecu.name(),
            format!("({})", ecu.kind()),
            ecu_utilization(&graph, ecu.id()) * 100.0
        );
    }
    for v in report.verdicts() {
        let task = graph.task(v.task);
        if task.is_zero_cost() {
            continue;
        }
        println!(
            "  {:<12} R = {:>10}  T = {:>8}  {}",
            task.name(),
            v.wcrt.to_string(),
            v.period.to_string(),
            if v.schedulable { "ok" } else { "DEADLINE MISS" }
        );
    }
    if !report.all_schedulable() {
        println!("\nsystem is not schedulable; disparity bounds require R <= T");
        return Ok(false);
    }
    let rt = report.into_response_times();

    // --- Per-sink disparity -------------------------------------------------
    let mut within_budget = true;
    for sink in graph.sinks() {
        println!("\n## sink `{}`", graph.task(sink).name());
        let chains = match graph.chains_to(sink, 4096) {
            Ok(c) => c,
            Err(e) => {
                println!("  chain enumeration failed: {e}");
                continue;
            }
        };
        println!(
            "  {} chains from {} source(s)",
            chains.len(),
            graph.sources().len()
        );
        for chain in &chains {
            let b = backward_bounds(&graph, chain, &rt);
            let names: Vec<&str> = chain
                .tasks()
                .iter()
                .map(|&t| graph.task(t).name())
                .collect();
            println!(
                "    {:<40} backward [{}, {}], age <= {}, reaction <= {}",
                names.join("->"),
                b.bcbt,
                b.wcbt,
                data_age_bound(&graph, chain, &rt),
                reaction_time_bound(&graph, chain, &rt)
            );
        }
        let mut best = Duration::MAX;
        for method in [Method::Independent, Method::ForkJoin, Method::Combined] {
            let r = worst_case_disparity(
                &graph,
                sink,
                &rt,
                AnalysisConfig {
                    method,
                    ..Default::default()
                },
            )?;
            println!(
                "  {:<12} worst-case disparity {}",
                format!("{method:?}"),
                r.bound
            );
            best = best.min(r.bound);
            if method == Method::Combined {
                if let Some(critical) = r.critical_pair() {
                    println!(
                        "  critical pair: {} vs {}",
                        graph.task(r.chains[critical.lambda].head()).name(),
                        graph.task(r.chains[critical.nu].head()).name()
                    );
                }
            }
        }
        if args.let_mode {
            use disparity_core::letmodel::{let_backward_bounds, let_worst_case_disparity};
            for chain in &chains {
                let b = let_backward_bounds(&graph, chain);
                let names: Vec<&str> = chain
                    .tasks()
                    .iter()
                    .map(|&t| graph.task(t).name())
                    .collect();
                println!(
                    "    [LET] {:<34} backward [{}, {}]",
                    names.join("->"),
                    b.bcbt,
                    b.wcbt
                );
            }
            let let_bound = let_worst_case_disparity(&graph, sink, Method::Combined, 4096)?;
            println!("  [LET]        worst-case disparity {let_bound}");
        }

        if let Some(budget) = args.budget {
            let ok = best <= budget;
            println!(
                "  budget {}: {}",
                budget,
                if ok { "met" } else { "VIOLATED" }
            );
            within_budget &= ok;
        }

        if args.optimize {
            let outcome = optimize_task(&graph, sink, AnalysisConfig::default(), 8)?;
            if outcome.steps.is_empty() {
                println!("  optimization: no improving buffer found");
            } else {
                println!(
                    "  optimization: {} -> {} via",
                    outcome.initial_bound,
                    outcome.final_bound()
                );
                for step in &outcome.steps {
                    let ch = outcome.graph.channel(step.plan.channel);
                    println!(
                        "    FIFO({}) on {} -> {}",
                        step.plan.capacity,
                        outcome.graph.task(ch.src()).name(),
                        outcome.graph.task(ch.dst()).name()
                    );
                }
            }
        }

        if args.sim_secs > 0 {
            let sim = Simulator::new(
                &graph,
                SimConfig {
                    horizon: Duration::from_secs(args.sim_secs),
                    seed: 1,
                    ..Default::default()
                },
            );
            if let Some(observed) = sim.run()?.metrics.max_disparity(sink) {
                println!(
                    "  simulated max disparity over {}s: {}",
                    args.sim_secs, observed
                );
            }
        }
    }
    Ok(within_budget)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: audit <spec.json> [--budget-ms N] [--optimize] [--let] [--dot FILE] \
                 [--sim-secs S] [--trace-out FILE] [--metrics-out FILE]"
            );
            return ExitCode::FAILURE;
        }
    };
    args.obs.enable_if_requested();
    let outcome = run(&args);
    // Flush even on audit failures so the recording survives for diagnosis.
    match args.obs.flush() {
        Ok(lines) => {
            for line in lines {
                eprintln!("audit: {line}");
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    match outcome {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
