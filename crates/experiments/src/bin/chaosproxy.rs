//! `chaosproxy` — a deterministic fault-injecting TCP proxy for wire-level
//! chaos testing of `serve`.
//!
//! ```text
//! chaosproxy --listen HOST:PORT --upstream HOST:PORT --kind KIND [--seed N]
//! ```
//!
//! Sits between `loadgen` and `serve` and mangles traffic per `--kind`:
//!
//! | kind       | injection                                                 |
//! |------------|-----------------------------------------------------------|
//! | `none`     | transparent pass-through (baseline)                       |
//! | `delay`    | random 1–40 ms stalls before forwarding a chunk           |
//! | `split`    | chunks forwarded in 1–7-byte slices with micro-stalls     |
//! | `garbage`  | random bytes injected ahead of real traffic               |
//! | `truncate` | a chunk is cut short and the connection torn down         |
//! | `reset`    | the connection is reset mid-chunk                         |
//! | `mix`      | each chunk independently draws one of the kinds above     |
//!
//! Every random decision flows from `--seed` through per-connection,
//! per-direction `StdRng` streams (xoshiro256** keyed by
//! `splitmix64_mix`), so a failing run replays byte-for-byte. The proxy
//! injects faults in *both* directions: garbage toward the server
//! exercises its protocol hardening, garbage toward the client exercises
//! loadgen's response verification and retry.
//!
//! Prints `listening on ADDR` once ready, then serves until killed
//! (scripted smokes background it and kill by PID).

use std::io::{Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::process::ExitCode;
use std::time::Duration;

use disparity_rng::rngs::StdRng;
use disparity_rng::{splitmix64_mix, Rng};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    None,
    Delay,
    Split,
    Garbage,
    Truncate,
    Reset,
    Mix,
}

impl Kind {
    fn parse(s: &str) -> Result<Kind, String> {
        Ok(match s {
            "none" => Kind::None,
            "delay" => Kind::Delay,
            "split" => Kind::Split,
            "garbage" => Kind::Garbage,
            "truncate" => Kind::Truncate,
            "reset" => Kind::Reset,
            "mix" => Kind::Mix,
            other => {
                return Err(format!(
                    "unknown --kind {other:?} (none|delay|split|garbage|truncate|reset|mix)"
                ))
            }
        })
    }
}

struct Args {
    listen: String,
    upstream: String,
    kind: Kind,
    seed: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut listen = None;
    let mut upstream = None;
    let mut kind = Kind::Mix;
    let mut seed = 1u64;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "--listen" => listen = Some(value("--listen")?),
            "--upstream" => upstream = Some(value("--upstream")?),
            "--kind" => kind = Kind::parse(&value("--kind")?)?,
            "--seed" => seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--help" | "-h" => {
                return Err(
                    "usage: chaosproxy --listen HOST:PORT --upstream HOST:PORT \
                     --kind none|delay|split|garbage|truncate|reset|mix [--seed N]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(Args {
        listen: listen.ok_or("--listen is required")?,
        upstream: upstream.ok_or("--upstream is required")?,
        kind,
        seed,
    })
}

/// Forwards `from` → `to`, injecting faults per `kind`. Returning tears
/// both streams down so the opposite pump unblocks too.
fn pump(mut from: TcpStream, mut to: TcpStream, mut rng: StdRng, kind: Kind) {
    let mut buf = [0u8; 2048];
    'outer: loop {
        let n = match from.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        let chunk = &buf[..n];
        let effective = if kind == Kind::Mix {
            match rng.gen_range(0..6u64) {
                0 => Kind::None,
                1 => Kind::Delay,
                2 => Kind::Split,
                3 => Kind::Garbage,
                4 => Kind::Truncate,
                _ => Kind::Reset,
            }
        } else {
            kind
        };
        let failed = match effective {
            Kind::None | Kind::Mix => to.write_all(chunk).is_err(),
            Kind::Delay => {
                if rng.gen_range(0..100u64) < 30 {
                    std::thread::sleep(Duration::from_millis(rng.gen_range(1..=40u64)));
                }
                to.write_all(chunk).is_err()
            }
            Kind::Split => {
                let mut rest = chunk;
                while !rest.is_empty() {
                    let take = (rng.gen_range(1..=7u64) as usize).min(rest.len());
                    if to.write_all(&rest[..take]).and_then(|()| to.flush()).is_err() {
                        break 'outer;
                    }
                    rest = &rest[take..];
                    let stall = rng.gen_range(0..=2u64);
                    if stall > 0 {
                        std::thread::sleep(Duration::from_millis(stall));
                    }
                }
                false
            }
            Kind::Garbage => {
                if rng.gen_range(0..100u64) < 15 {
                    let n_junk = rng.gen_range(1..=12u64) as usize;
                    let junk: Vec<u8> =
                        (0..n_junk).map(|_| (rng.gen_range(0..=255u64)) as u8).collect();
                    if to.write_all(&junk).is_err() {
                        break;
                    }
                }
                to.write_all(chunk).is_err()
            }
            Kind::Truncate => {
                if rng.gen_range(0..100u64) < 10 {
                    // Forward a prefix, then kill the connection: the
                    // peer sees a cleanly truncated stream.
                    let keep = rng.gen_range(0..chunk.len() as u64) as usize;
                    let _ = to.write_all(&chunk[..keep]);
                    let _ = to.flush();
                    break;
                }
                to.write_all(chunk).is_err()
            }
            Kind::Reset => {
                if rng.gen_range(0..100u64) < 7 {
                    // Mid-chunk reset: a few bytes escape, then both
                    // directions drop.
                    let keep = rng.gen_range(0..=(chunk.len() as u64 / 2)) as usize;
                    let _ = to.write_all(&chunk[..keep]);
                    break;
                }
                to.write_all(chunk).is_err()
            }
        };
        if failed {
            break;
        }
    }
    let _ = to.shutdown(Shutdown::Both);
    let _ = from.shutdown(Shutdown::Both);
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("chaosproxy: {msg}");
            return ExitCode::FAILURE;
        }
    };
    let listener = match TcpListener::bind(&args.listen) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("chaosproxy: cannot bind {}: {e}", args.listen);
            return ExitCode::FAILURE;
        }
    };
    match listener.local_addr() {
        Ok(addr) => println!("listening on {addr}"),
        Err(_) => println!("listening on {}", args.listen),
    }
    let _ = std::io::stdout().flush();

    let mut conn_index = 0u64;
    for client in listener.incoming() {
        let Ok(client) = client else { continue };
        let upstream = match TcpStream::connect(&args.upstream) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("chaosproxy: upstream {} unreachable: {e}", args.upstream);
                continue;
            }
        };
        let (Ok(client_r), Ok(upstream_r)) = (client.try_clone(), upstream.try_clone()) else {
            continue;
        };
        // Distinct deterministic streams per connection and direction.
        let fwd_rng = StdRng::seed_from_u64(splitmix64_mix(args.seed ^ (conn_index << 1)));
        let rev_rng = StdRng::seed_from_u64(splitmix64_mix(args.seed ^ ((conn_index << 1) | 1)));
        let kind = args.kind;
        std::thread::spawn(move || pump(client_r, upstream, fwd_rng, kind));
        std::thread::spawn(move || pump(upstream_r, client, rev_rng, kind));
        conn_index += 1;
    }
    ExitCode::SUCCESS
}
