//! Shared `--trace-out` / `--metrics-out` / `--flight-out` plumbing for
//! the experiment binaries.
//!
//! Every binary that supports observability output parses the flags
//! into an [`ObsArgs`], calls [`ObsArgs::enable_if_requested`] before the
//! workload runs, and [`ObsArgs::flush`] once it is done — including on
//! failure exits, so a sweep that dies early still leaves its trace and
//! metrics behind.
//!
//! `--flight-out` dumps the always-on flight recorder (see
//! [`disparity_obs::flight`]) as a `postmortem-v1` NDJSON document with
//! reason `exit`; unlike the other two outputs it does not require the
//! span recorder to be enabled.

use std::path::PathBuf;

/// Optional observability output paths, parsed from the command line.
#[derive(Debug, Clone, Default)]
pub struct ObsArgs {
    /// Destination of the Chrome trace-event file (`--trace-out`).
    pub trace_out: Option<PathBuf>,
    /// Destination of the flat metrics report (`--metrics-out`).
    pub metrics_out: Option<PathBuf>,
    /// Destination of the flight-recorder NDJSON dump (`--flight-out`).
    pub flight_out: Option<PathBuf>,
}

impl ObsArgs {
    /// Returns `true` when an output needing the span recorder was
    /// requested (`--flight-out` alone does not: the flight recorder is
    /// always on).
    #[must_use]
    pub fn requested(&self) -> bool {
        self.trace_out.is_some() || self.metrics_out.is_some()
    }

    /// Tries to consume `arg` as one of the two flags, pulling the value
    /// from `next`. Returns `Ok(true)` when the flag was recognized.
    pub fn try_parse(
        &mut self,
        arg: &str,
        next: &mut dyn FnMut() -> Option<String>,
    ) -> Result<bool, String> {
        match arg {
            "--trace-out" => {
                self.trace_out = Some(PathBuf::from(next().ok_or("--trace-out needs a value")?));
                Ok(true)
            }
            "--metrics-out" => {
                self.metrics_out =
                    Some(PathBuf::from(next().ok_or("--metrics-out needs a value")?));
                Ok(true)
            }
            "--flight-out" => {
                self.flight_out =
                    Some(PathBuf::from(next().ok_or("--flight-out needs a value")?));
                Ok(true)
            }
            _ => Ok(false),
        }
    }

    /// Turns the recorder on when any output was requested. Must run
    /// before the instrumented workload.
    pub fn enable_if_requested(&self) {
        if self.requested() {
            disparity_obs::enable();
        }
    }

    /// Writes every requested output, draining the recorder. Returns one
    /// human-readable line per file written.
    pub fn flush(&self) -> Result<Vec<String>, String> {
        let mut written = Vec::new();
        if let Some(path) = &self.trace_out {
            disparity_obs::export::write_chrome_trace(path)
                .map_err(|e| format!("failed to write trace {}: {e}", path.display()))?;
            written.push(format!("trace written to {}", path.display()));
        }
        if let Some(path) = &self.metrics_out {
            disparity_obs::export::write_metrics_report(path)
                .map_err(|e| format!("failed to write metrics {}: {e}", path.display()))?;
            written.push(format!("metrics written to {}", path.display()));
        }
        if let Some(path) = &self.flight_out {
            std::fs::write(path, disparity_obs::flight::postmortem("exit", 0))
                .map_err(|e| format!("failed to write flight dump {}: {e}", path.display()))?;
            written.push(format!("flight dump written to {}", path.display()));
        }
        Ok(written)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_flags_and_ignores_others() {
        let mut args = ObsArgs::default();
        let mut vals = vec![
            "t.json".to_string(),
            "m.json".to_string(),
            "f.ndjson".to_string(),
        ]
        .into_iter();
        let mut next = || vals.next();
        assert!(args.try_parse("--trace-out", &mut next).unwrap());
        assert!(args.try_parse("--metrics-out", &mut next).unwrap());
        assert!(args.try_parse("--flight-out", &mut next).unwrap());
        assert!(!args.try_parse("--seed", &mut next).unwrap());
        assert_eq!(args.trace_out.as_deref(), Some(std::path::Path::new("t.json")));
        assert_eq!(
            args.metrics_out.as_deref(),
            Some(std::path::Path::new("m.json"))
        );
        assert_eq!(
            args.flight_out.as_deref(),
            Some(std::path::Path::new("f.ndjson"))
        );
        assert!(args.requested());
    }

    #[test]
    fn missing_value_is_an_error() {
        let mut args = ObsArgs::default();
        let mut next = || None;
        assert!(args.try_parse("--trace-out", &mut next).is_err());
        assert!(!ObsArgs::default().requested());
    }
}
