//! Experiment harness reproducing every figure of the DATE 2023
//! time-disparity paper.
//!
//! * [`fig6ab`] — Fig. 6(a)/(b): P-diff / S-diff / Sim on random DAGs.
//! * [`fig6cd`] — Fig. 6(c)/(d): buffer optimization on merged chains.
//! * [`pareto`] — budget/disparity Pareto frontier of the global
//!   buffer-plan optimizer (the `optctl` binary).
//! * [`soak`] — fault-injection soundness soak over seeds × plans ×
//!   workloads (the `soak` binary).
//! * [`table`] / [`stats`] — CSV/markdown emission and aggregation.
//! * [`obscli`] — shared `--trace-out`/`--metrics-out` flag handling (see
//!   the "Observability" section of EXPERIMENTS.md).
//!
//! The `fig6` binary drives these sweeps
//! (`cargo run -p disparity-experiments --release --bin fig6 -- all`);
//! `paper_examples` reproduces the running examples of Figs. 2–4.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod fig6ab;
pub mod fig6cd;
pub mod lintcli;
pub mod obscli;
pub mod par;
pub mod pareto;
pub mod soak;
pub mod stats;
pub mod table;
