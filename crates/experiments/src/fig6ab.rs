//! Reproduction of Fig. 6(a) and 6(b): P-diff / S-diff bounds vs. the
//! simulated maximum time disparity on random single-sink DAGs.
//!
//! Protocol (paper §V): for each task count `n` on the X axis, generate
//! `graphs_per_point` random graphs; analyze the sink with Theorem 1
//! (**P-diff**) and Theorem 2 (**S-diff**); simulate each graph
//! `offsets_per_graph` times with fresh random offsets and record the
//! maximum observed disparity (**Sim**); average everything per point.
//! Fig. 6(a) plots the absolute values, Fig. 6(b) the incremental ratios
//! `(bound − Sim)/Sim`.

use disparity_core::disparity::{worst_case_disparity, AnalysisConfig};
use disparity_core::pairwise::Method;
use disparity_model::graph::CauseEffectGraph;
use disparity_model::ids::TaskId;
use disparity_model::time::Duration;
use disparity_sched::schedulability::analyze;
use disparity_sim::engine::{SimConfig, Simulator};
use disparity_sim::exec::ExecutionTimeModel;
use disparity_workload::funnel::{schedulable_funnel_system, FunnelConfig};
use disparity_workload::graphgen::{schedulable_random_system, GraphGenConfig};
use disparity_workload::offsets::randomize_offsets;
use disparity_rng::rngs::StdRng;

use crate::stats::{incremental_ratio, mean};
use crate::table::{fmt_ms, fmt_pct, Table};

/// Parameters of the Fig. 6(a)/(b) sweep.
#[derive(Debug, Clone)]
pub struct Fig6abConfig {
    /// X-axis values (number of tasks per graph). Paper: `[5, 35]`.
    pub task_counts: Vec<usize>,
    /// Graphs generated per point. Paper: 10.
    pub graphs_per_point: usize,
    /// Offset randomizations simulated per graph. Paper: 10.
    pub offsets_per_graph: usize,
    /// Simulated horizon per run. Paper: 10 minutes; default kept shorter
    /// (observed maxima only grow with the horizon, so bounds stay safe).
    pub sim_horizon: Duration,
    /// Number of processor ECUs.
    pub n_ecus: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Chain-enumeration budget per sink.
    pub chain_limit: usize,
    /// Edges drawn per task (`m = ⌊edge_factor · n⌋`). The paper uses
    /// NetworkX's *dense* G(n, m) generator without stating `m`; denser
    /// graphs have more interleaved chain pairs, which is where Theorem 2
    /// separates from Theorem 1.
    pub edge_factor: f64,
    /// Source budget handed to the generator (see
    /// [`GraphGenConfig::max_sources`]).
    pub max_sources: Option<usize>,
    /// Per-ECU utilization target (see
    /// [`GraphGenConfig::target_utilization`]).
    pub target_utilization: Option<f64>,
}

impl Default for Fig6abConfig {
    fn default() -> Self {
        Fig6abConfig {
            task_counts: vec![5, 10, 15, 20, 25, 30, 35],
            graphs_per_point: 10,
            offsets_per_graph: 10,
            sim_horizon: Duration::from_secs(10),
            n_ecus: 4,
            seed: 0xD15B,
            chain_limit: 4096,
            edge_factor: 2.5,
            max_sources: Some(3),
            target_utilization: Some(0.45),
        }
    }
}

/// One aggregated point of the sweep.
#[derive(Debug, Clone, Copy)]
pub struct Fig6abRow {
    /// Number of tasks.
    pub n_tasks: usize,
    /// Mean Theorem 1 bound (ms).
    pub p_diff_ms: f64,
    /// Mean Theorem 2 bound (ms).
    pub s_diff_ms: f64,
    /// Mean simulated maximum disparity (ms).
    pub sim_ms: f64,
    /// `(P-diff − Sim)/Sim` on the means.
    pub p_ratio: Option<f64>,
    /// `(S-diff − Sim)/Sim` on the means.
    pub s_ratio: Option<f64>,
    /// Mean over all chain *pairs* of the Theorem 1 bound (ms). The
    /// per-pair view is where Theorem 2's advantage is visible: the
    /// per-task maximum is usually attained by a structureless pair on
    /// which both theorems provably coincide.
    pub p_pair_mean_ms: f64,
    /// Mean over all chain *pairs* of the Theorem 2 bound (ms).
    pub s_pair_mean_ms: f64,
    /// Graphs that actually contributed (analysis within limits).
    pub graphs: usize,
}

/// Runs the sweep on G(n, m) graphs (the paper's generator family) and
/// returns one row per task count.
///
/// Graphs whose sink exceeds the chain-enumeration budget are redrawn (the
/// paper's generator implicitly avoids path explosions the same way: by
/// drawing another random graph).
#[must_use]
pub fn run(config: &Fig6abConfig) -> Vec<Fig6abRow> {
    run_with(config, |n_tasks, cfg, rng| {
        schedulable_random_system(
            GraphGenConfig {
                n_tasks,
                n_ecus: cfg.n_ecus,
                n_edges: Some((n_tasks as f64 * cfg.edge_factor) as usize),
                max_sources: cfg.max_sources,
                target_utilization: cfg.target_utilization,
            },
            rng,
            50,
        )
        .ok()
    })
}

/// Runs the sweep on *funnel* graphs (layered pipelines).
///
/// On funnels every chain pair shares a suffix, so the fork-join bound's
/// per-task advantage over the independent bound — which G(n, m) graphs
/// wash out — becomes visible (see EXPERIMENTS.md).
#[must_use]
pub fn run_funnel(config: &Fig6abConfig) -> Vec<Fig6abRow> {
    run_with(config, |n_tasks, cfg, rng| {
        let mut funnel_cfg = FunnelConfig::with_approximate_size(n_tasks);
        funnel_cfg.n_ecus = cfg.n_ecus;
        funnel_cfg.target_utilization = cfg.target_utilization;
        schedulable_funnel_system(&funnel_cfg, rng, 50).ok()
    })
}

/// Shared sweep driver over an arbitrary graph generator.
///
/// Points are independent (each has its own derived RNG seed), so they are
/// computed on one thread per point; results are deterministic per
/// configuration regardless of scheduling.
fn run_with<F>(config: &Fig6abConfig, generate: F) -> Vec<Fig6abRow>
where
    F: Fn(usize, &Fig6abConfig, &mut StdRng) -> Option<disparity_model::graph::CauseEffectGraph>
        + Sync,
{
    let mut rows: Vec<Option<Fig6abRow>> = vec![None; config.task_counts.len()];
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (point, &n_tasks) in config.task_counts.iter().enumerate() {
            let generate = &generate;
            handles
                .push(scope.spawn(move || (point, sweep_point(config, point, n_tasks, generate))));
        }
        for handle in handles {
            let (point, row) = handle.join().expect("sweep worker never panics");
            rows[point] = Some(row);
        }
    });
    rows.into_iter()
        .map(|r| r.expect("every point computed"))
        .collect()
}

fn sweep_point<F>(config: &Fig6abConfig, point: usize, n_tasks: usize, generate: &F) -> Fig6abRow
where
    F: Fn(usize, &Fig6abConfig, &mut StdRng) -> Option<disparity_model::graph::CauseEffectGraph>,
{
    let mut span = disparity_obs::span("fig6ab.point");
    span.attr("n_tasks", n_tasks);
    let mut rng = StdRng::seed_from_u64(config.seed ^ ((point as u64) << 32));
    let mut p_values = Vec::new();
    let mut s_values = Vec::new();
    let mut p_pair_values = Vec::new();
    let mut s_pair_values = Vec::new();
    let mut sim_values = Vec::new();
    let mut produced = 0usize;
    let mut attempts = 0usize;
    while produced < config.graphs_per_point && attempts < config.graphs_per_point * 20 {
        attempts += 1;
        let generated = {
            let _span = disparity_obs::span!("fig6ab.generate", n_tasks = n_tasks);
            generate(n_tasks, config, &mut rng)
        };
        let Some(graph) = generated else {
            continue;
        };
        let sink = graph.sinks()[0];
        let bounds = {
            let _span = disparity_obs::span!("fig6ab.analyze", n_tasks = n_tasks);
            analyze_sink(&graph, sink, config.chain_limit)
        };
        let Some(bounds) = bounds else {
            continue; // chain explosion: redraw
        };
        let sim_ms = {
            let _span = disparity_obs::span!("fig6ab.simulate", n_tasks = n_tasks);
            simulate_max_disparity(
                &graph,
                sink,
                config.offsets_per_graph,
                config.sim_horizon,
                &mut rng,
            )
        };
        p_values.push(bounds.p_ms);
        s_values.push(bounds.s_ms);
        p_pair_values.push(bounds.p_pair_mean_ms);
        s_pair_values.push(bounds.s_pair_mean_ms);
        sim_values.push(sim_ms);
        produced += 1;
    }
    span.attr("graphs", produced);
    span.attr("attempts", attempts);
    let p_diff_ms = mean(&p_values).unwrap_or(0.0);
    let s_diff_ms = mean(&s_values).unwrap_or(0.0);
    let sim_ms = mean(&sim_values).unwrap_or(0.0);
    Fig6abRow {
        n_tasks,
        p_diff_ms,
        s_diff_ms,
        sim_ms,
        p_ratio: incremental_ratio(p_diff_ms, sim_ms),
        s_ratio: incremental_ratio(s_diff_ms, sim_ms),
        p_pair_mean_ms: mean(&p_pair_values).unwrap_or(0.0),
        s_pair_mean_ms: mean(&s_pair_values).unwrap_or(0.0),
        graphs: produced,
    }
}

/// Per-graph analysis results.
struct SinkBounds {
    p_ms: f64,
    s_ms: f64,
    p_pair_mean_ms: f64,
    s_pair_mean_ms: f64,
}

/// Theorem 1 and Theorem 2 bounds (in ms) of the sink, or `None` on chain
/// explosion.
fn analyze_sink(graph: &CauseEffectGraph, sink: TaskId, chain_limit: usize) -> Option<SinkBounds> {
    let report = analyze(graph).ok()?;
    if !report.all_schedulable() {
        return None;
    }
    let rt = report.into_response_times();
    let p = worst_case_disparity(
        graph,
        sink,
        &rt,
        AnalysisConfig {
            method: Method::Independent,
            chain_limit,
        },
    )
    .ok()?;
    let s = worst_case_disparity(
        graph,
        sink,
        &rt,
        AnalysisConfig {
            method: Method::ForkJoin,
            chain_limit,
        },
    )
    .ok()?;
    let pair_mean = |r: &disparity_core::disparity::DisparityReport| {
        let vals: Vec<f64> = r.pairs.iter().map(|p| p.bound.as_millis_f64()).collect();
        mean(&vals).unwrap_or(0.0)
    };
    Some(SinkBounds {
        p_ms: p.bound.as_millis_f64(),
        s_ms: s.bound.as_millis_f64(),
        p_pair_mean_ms: pair_mean(&p),
        s_pair_mean_ms: pair_mean(&s),
    })
}

/// Maximum observed disparity (ms) over several offset-randomized runs.
fn simulate_max_disparity(
    graph: &CauseEffectGraph,
    sink: TaskId,
    runs: usize,
    horizon: Duration,
    rng: &mut StdRng,
) -> f64 {
    let mut best = 0.0f64;
    for run in 0..runs {
        let instance = randomize_offsets(graph, rng);
        let sim = Simulator::new(
            &instance,
            SimConfig {
                horizon,
                exec_model: ExecutionTimeModel::Uniform,
                seed: rng_seed(rng, run),
                warmup: Duration::ZERO,
                record_trace: false,
                semantics: disparity_sim::engine::CommunicationSemantics::Implicit,
                fault: disparity_sim::fault::FaultPlan::none(),
            },
        );
        let outcome = sim.run().expect("valid configuration");
        if let Some(d) = outcome.metrics.max_disparity(sink) {
            best = best.max(d.as_millis_f64());
        }
    }
    best
}

fn rng_seed(rng: &mut StdRng, salt: usize) -> u64 {
    use disparity_rng::Rng as _;
    rng.gen::<u64>() ^ (salt as u64)
}

/// Renders the Fig. 6(a) view (absolute values).
#[must_use]
pub fn table_a(rows: &[Fig6abRow]) -> Table {
    let mut t = Table::new([
        "n_tasks",
        "P-diff_ms",
        "S-diff_ms",
        "Sim_ms",
        "P-pair-mean_ms",
        "S-pair-mean_ms",
        "graphs",
    ]);
    for r in rows {
        t.push_row([
            r.n_tasks.to_string(),
            fmt_ms(r.p_diff_ms),
            fmt_ms(r.s_diff_ms),
            fmt_ms(r.sim_ms),
            fmt_ms(r.p_pair_mean_ms),
            fmt_ms(r.s_pair_mean_ms),
            r.graphs.to_string(),
        ]);
    }
    t
}

/// Renders the Fig. 6(b) view (incremental ratios vs. Sim).
#[must_use]
pub fn table_b(rows: &[Fig6abRow]) -> Table {
    let mut t = Table::new(["n_tasks", "P-diff_ratio", "S-diff_ratio"]);
    for r in rows {
        t.push_row([
            r.n_tasks.to_string(),
            fmt_pct(r.p_ratio),
            fmt_pct(r.s_ratio),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> Fig6abConfig {
        Fig6abConfig {
            task_counts: vec![5, 8],
            graphs_per_point: 2,
            offsets_per_graph: 2,
            sim_horizon: Duration::from_millis(2_000),
            ..Default::default()
        }
    }

    #[test]
    fn sweep_produces_safe_bounds() {
        let rows = run(&tiny_config());
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.graphs > 0, "every point should produce graphs");
            // Safety: the mean bounds must dominate the mean observation.
            assert!(
                r.p_diff_ms + 1e-9 >= r.sim_ms,
                "P-diff {} < Sim {}",
                r.p_diff_ms,
                r.sim_ms
            );
            assert!(
                r.s_diff_ms + 1e-9 >= r.sim_ms,
                "S-diff {} < Sim {}",
                r.s_diff_ms,
                r.sim_ms
            );
        }
    }

    #[test]
    fn tables_have_one_row_per_point() {
        let rows = run(&tiny_config());
        assert_eq!(table_a(&rows).len(), rows.len());
        assert_eq!(table_b(&rows).len(), rows.len());
    }

    /// The sweep is parallel over points but must stay deterministic per
    /// configuration (each point derives its own seed).
    #[test]
    fn sweep_is_deterministic_across_runs() {
        let cfg = tiny_config();
        let a = run(&cfg);
        let b = run(&cfg);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.n_tasks, y.n_tasks);
            assert_eq!(x.p_diff_ms, y.p_diff_ms);
            assert_eq!(x.s_diff_ms, y.s_diff_ms);
            assert_eq!(x.sim_ms, y.sim_ms);
        }
    }

    #[test]
    fn funnel_sweep_runs_and_separates_bounds() {
        let rows = run_funnel(&Fig6abConfig {
            task_counts: vec![12],
            graphs_per_point: 3,
            offsets_per_graph: 2,
            sim_horizon: Duration::from_millis(1500),
            ..Default::default()
        });
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert!(r.graphs > 0);
        assert!(r.s_diff_ms < r.p_diff_ms, "funnels separate S from P");
        assert!(r.s_diff_ms + 1e-9 >= r.sim_ms, "S-diff stays safe");
    }
}
