//! Reproduction of Fig. 6(a) and 6(b): P-diff / S-diff bounds vs. the
//! simulated maximum time disparity on random single-sink DAGs.
//!
//! Protocol (paper §V): for each task count `n` on the X axis, generate
//! `graphs_per_point` random graphs; analyze the sink with Theorem 1
//! (**P-diff**) and Theorem 2 (**S-diff**); simulate each graph
//! `offsets_per_graph` times with fresh random offsets and record the
//! maximum observed disparity (**Sim**); average everything per point.
//! Fig. 6(a) plots the absolute values, Fig. 6(b) the incremental ratios
//! `(bound − Sim)/Sim`.

use disparity_core::disparity::AnalysisConfig;
use disparity_core::engine::AnalysisEngine;
use disparity_core::pairwise::Method;
use disparity_model::graph::CauseEffectGraph;
use disparity_model::ids::TaskId;
use disparity_model::time::Duration;
use disparity_sched::schedulability::analyze;
use disparity_sim::engine::{SimConfig, Simulator};
use disparity_sim::exec::ExecutionTimeModel;
use disparity_workload::funnel::{schedulable_funnel_system, FunnelConfig};
use disparity_workload::graphgen::{schedulable_random_system, GraphGenConfig};
use disparity_workload::offsets::randomize_offsets;
use disparity_rng::rngs::StdRng;

use crate::par::{attempt_seed, attempt_workers, run_indexed};
use crate::stats::{incremental_ratio, mean};
use crate::table::{fmt_ms, fmt_pct, Table};

/// Parameters of the Fig. 6(a)/(b) sweep.
#[derive(Debug, Clone)]
pub struct Fig6abConfig {
    /// X-axis values (number of tasks per graph). Paper: `[5, 35]`.
    pub task_counts: Vec<usize>,
    /// Graphs generated per point. Paper: 10.
    pub graphs_per_point: usize,
    /// Offset randomizations simulated per graph. Paper: 10.
    pub offsets_per_graph: usize,
    /// Simulated horizon per run. Paper: 10 minutes; default kept shorter
    /// (observed maxima only grow with the horizon, so bounds stay safe).
    pub sim_horizon: Duration,
    /// Number of processor ECUs.
    pub n_ecus: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Chain-enumeration budget per sink.
    pub chain_limit: usize,
    /// Edges drawn per task (`m = ⌊edge_factor · n⌋`). The paper uses
    /// NetworkX's *dense* G(n, m) generator without stating `m`; denser
    /// graphs have more interleaved chain pairs, which is where Theorem 2
    /// separates from Theorem 1.
    pub edge_factor: f64,
    /// Source budget handed to the generator (see
    /// [`GraphGenConfig::max_sources`]).
    pub max_sources: Option<usize>,
    /// Per-ECU utilization target (see
    /// [`GraphGenConfig::target_utilization`]).
    pub target_utilization: Option<f64>,
}

impl Default for Fig6abConfig {
    fn default() -> Self {
        Fig6abConfig {
            task_counts: vec![5, 10, 15, 20, 25, 30, 35],
            graphs_per_point: 10,
            offsets_per_graph: 10,
            sim_horizon: Duration::from_secs(10),
            n_ecus: 4,
            seed: 0xD15B,
            chain_limit: 4096,
            edge_factor: 2.5,
            max_sources: Some(3),
            target_utilization: Some(0.45),
        }
    }
}

/// One aggregated point of the sweep.
#[derive(Debug, Clone, Copy)]
pub struct Fig6abRow {
    /// Number of tasks.
    pub n_tasks: usize,
    /// Mean Theorem 1 bound (ms).
    pub p_diff_ms: f64,
    /// Mean Theorem 2 bound (ms).
    pub s_diff_ms: f64,
    /// Mean simulated maximum disparity (ms).
    pub sim_ms: f64,
    /// `(P-diff − Sim)/Sim` on the means.
    pub p_ratio: Option<f64>,
    /// `(S-diff − Sim)/Sim` on the means.
    pub s_ratio: Option<f64>,
    /// Mean over all chain *pairs* of the Theorem 1 bound (ms). The
    /// per-pair view is where Theorem 2's advantage is visible: the
    /// per-task maximum is usually attained by a structureless pair on
    /// which both theorems provably coincide.
    pub p_pair_mean_ms: f64,
    /// Mean over all chain *pairs* of the Theorem 2 bound (ms).
    pub s_pair_mean_ms: f64,
    /// Graphs that actually contributed (analysis within limits).
    pub graphs: usize,
}

impl Fig6abRow {
    /// Whether the point's attempt budget exhausted without producing a
    /// single graph. An empty row carries no data — its means are
    /// placeholders, not measurements — and is excluded from the rendered
    /// tables.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.graphs == 0
    }
}

/// Runs the sweep on G(n, m) graphs (the paper's generator family) and
/// returns one row per task count.
///
/// Graphs whose sink exceeds the chain-enumeration budget are redrawn (the
/// paper's generator implicitly avoids path explosions the same way: by
/// drawing another random graph).
#[must_use]
pub fn run(config: &Fig6abConfig) -> Vec<Fig6abRow> {
    run_with(config, |n_tasks, cfg, rng| {
        schedulable_random_system(
            GraphGenConfig {
                n_tasks,
                n_ecus: cfg.n_ecus,
                n_edges: Some((n_tasks as f64 * cfg.edge_factor) as usize),
                max_sources: cfg.max_sources,
                target_utilization: cfg.target_utilization,
            },
            rng,
            50,
        )
        .ok()
    })
}

/// Runs the sweep on *funnel* graphs (layered pipelines).
///
/// On funnels every chain pair shares a suffix, so the fork-join bound's
/// per-task advantage over the independent bound — which G(n, m) graphs
/// wash out — becomes visible (see EXPERIMENTS.md).
#[must_use]
pub fn run_funnel(config: &Fig6abConfig) -> Vec<Fig6abRow> {
    run_with(config, |n_tasks, cfg, rng| {
        let mut funnel_cfg = FunnelConfig::with_approximate_size(n_tasks);
        funnel_cfg.n_ecus = cfg.n_ecus;
        funnel_cfg.target_utilization = cfg.target_utilization;
        schedulable_funnel_system(&funnel_cfg, rng, 50).ok()
    })
}

/// Regenerates one representative G(n, m) graph per sweep point for the
/// `--deny-lints` diagnostic gate.
///
/// Probes replay the sweep's own `(seed, point, attempt)` derivation on
/// fresh RNGs, so they see exactly the graphs the sweep will analyze while
/// leaving every sweep RNG untouched — running the gate cannot change the
/// sweep's output.
#[must_use]
pub fn probe_graphs(config: &Fig6abConfig) -> Vec<(String, CauseEffectGraph)> {
    probe_with(config, "fig6ab", |n_tasks, cfg, rng| {
        schedulable_random_system(
            GraphGenConfig {
                n_tasks,
                n_ecus: cfg.n_ecus,
                n_edges: Some((n_tasks as f64 * cfg.edge_factor) as usize),
                max_sources: cfg.max_sources,
                target_utilization: cfg.target_utilization,
            },
            rng,
            50,
        )
        .ok()
    })
}

/// [`probe_graphs`] for the funnel variant of the sweep.
#[must_use]
pub fn probe_funnel_graphs(config: &Fig6abConfig) -> Vec<(String, CauseEffectGraph)> {
    probe_with(config, "funnel", |n_tasks, cfg, rng| {
        let mut funnel_cfg = FunnelConfig::with_approximate_size(n_tasks);
        funnel_cfg.n_ecus = cfg.n_ecus;
        funnel_cfg.target_utilization = cfg.target_utilization;
        schedulable_funnel_system(&funnel_cfg, rng, 50).ok()
    })
}

fn probe_with<F>(config: &Fig6abConfig, family: &str, generate: F) -> Vec<(String, CauseEffectGraph)>
where
    F: Fn(usize, &Fig6abConfig, &mut StdRng) -> Option<CauseEffectGraph>,
{
    let mut probes = Vec::new();
    for (point, &n_tasks) in config.task_counts.iter().enumerate() {
        for attempt in 0..config.graphs_per_point * 20 {
            let mut rng = StdRng::seed_from_u64(attempt_seed(config.seed, point, attempt));
            if let Some(graph) = generate(n_tasks, config, &mut rng) {
                probes.push((format!("{family}-n{n_tasks}"), graph));
                break;
            }
        }
    }
    probes
}

/// Shared sweep driver over an arbitrary graph generator.
///
/// Parallelism is two-level: one thread per X-axis point, and inside each
/// point the graph *attempts* fan out over a worker pool at per-graph
/// granularity. Every attempt derives its own RNG seed from
/// `(seed, point, attempt)` (see [`attempt_seed`]), and results are
/// reduced in attempt-index order, so rows are deterministic per
/// configuration regardless of worker count or scheduling.
fn run_with<F>(config: &Fig6abConfig, generate: F) -> Vec<Fig6abRow>
where
    F: Fn(usize, &Fig6abConfig, &mut StdRng) -> Option<disparity_model::graph::CauseEffectGraph>
        + Sync,
{
    let mut rows: Vec<Option<Fig6abRow>> = vec![None; config.task_counts.len()];
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (point, &n_tasks) in config.task_counts.iter().enumerate() {
            let generate = &generate;
            handles
                .push(scope.spawn(move || (point, sweep_point(config, point, n_tasks, generate))));
        }
        for handle in handles {
            let (point, row) = match handle.join() {
                Ok(result) => result,
                Err(payload) => std::panic::resume_unwind(payload),
            };
            rows[point] = Some(row);
        }
    });
    rows.into_iter()
        .map(|r| match r {
            Some(row) => row,
            None => unreachable!("every point computed"),
        })
        .collect()
}

fn sweep_point<F>(config: &Fig6abConfig, point: usize, n_tasks: usize, generate: &F) -> Fig6abRow
where
    F: Fn(usize, &Fig6abConfig, &mut StdRng) -> Option<disparity_model::graph::CauseEffectGraph>
        + Sync,
{
    let mut span = disparity_obs::span("fig6ab.point");
    span.attr("n_tasks", n_tasks);
    let budget = config.graphs_per_point * 20;
    let workers = attempt_workers();
    let mut samples: Vec<Sample> = Vec::with_capacity(config.graphs_per_point);
    let mut attempts = 0usize;
    while samples.len() < config.graphs_per_point && attempts < budget {
        // Wave size = graphs still needed: the wave boundaries depend only
        // on per-attempt outcomes (seeded by index), never on how many
        // workers happen to be available, so the attempt sequence — and
        // with it the row — is identical on every machine.
        let wave = (config.graphs_per_point - samples.len()).min(budget - attempts);
        let results = run_indexed(wave, workers, |i| {
            sweep_attempt(config, point, n_tasks, attempts + i, generate)
        });
        attempts += wave;
        samples.extend(results.into_iter().flatten());
    }
    span.attr("graphs", samples.len());
    span.attr("attempts", attempts);
    if samples.is_empty() {
        // Budget exhausted with nothing produced: emit an explicitly
        // empty row instead of all-zero "measurements".
        disparity_obs::counter_add("fig6ab.point_exhausted", 1);
        return Fig6abRow {
            n_tasks,
            p_diff_ms: 0.0,
            s_diff_ms: 0.0,
            sim_ms: 0.0,
            p_ratio: None,
            s_ratio: None,
            p_pair_mean_ms: 0.0,
            s_pair_mean_ms: 0.0,
            graphs: 0,
        };
    }
    let collect = |f: fn(&Sample) -> f64| samples.iter().map(f).collect::<Vec<f64>>();
    let p_diff_ms = mean(&collect(|s| s.p_ms)).unwrap_or(0.0);
    let s_diff_ms = mean(&collect(|s| s.s_ms)).unwrap_or(0.0);
    let sim_ms = mean(&collect(|s| s.sim_ms)).unwrap_or(0.0);
    Fig6abRow {
        n_tasks,
        p_diff_ms,
        s_diff_ms,
        sim_ms,
        p_ratio: incremental_ratio(p_diff_ms, sim_ms),
        s_ratio: incremental_ratio(s_diff_ms, sim_ms),
        p_pair_mean_ms: mean(&collect(|s| s.p_pair_mean_ms)).unwrap_or(0.0),
        s_pair_mean_ms: mean(&collect(|s| s.s_pair_mean_ms)).unwrap_or(0.0),
        graphs: samples.len(),
    }
}

/// One attempt: generate, analyze and simulate a single graph with an RNG
/// seeded from the attempt index alone.
fn sweep_attempt<F>(
    config: &Fig6abConfig,
    point: usize,
    n_tasks: usize,
    attempt: usize,
    generate: &F,
) -> Option<Sample>
where
    F: Fn(usize, &Fig6abConfig, &mut StdRng) -> Option<disparity_model::graph::CauseEffectGraph>,
{
    let mut rng = StdRng::seed_from_u64(attempt_seed(config.seed, point, attempt));
    let generated = {
        let _span = disparity_obs::span!("fig6ab.generate", n_tasks = n_tasks);
        generate(n_tasks, config, &mut rng)
    };
    let graph = generated?;
    let Some(&sink) = graph.sinks().first() else {
        // A generator can hand back a sinkless graph (e.g. one whose only
        // terminal is also a source); count it and redraw rather than
        // indexing into an empty Vec.
        disparity_obs::counter_add("fig6ab.sink_missing", 1);
        return None;
    };
    let bounds = {
        let _span = disparity_obs::span!("fig6ab.analyze", n_tasks = n_tasks);
        analyze_sink(&graph, sink, config.chain_limit)
    }?;
    let sim_ms = {
        let _span = disparity_obs::span!("fig6ab.simulate", n_tasks = n_tasks);
        simulate_max_disparity(
            &graph,
            sink,
            config.offsets_per_graph,
            config.sim_horizon,
            &mut rng,
        )
    };
    Some(Sample {
        p_ms: bounds.p_ms,
        s_ms: bounds.s_ms,
        p_pair_mean_ms: bounds.p_pair_mean_ms,
        s_pair_mean_ms: bounds.s_pair_mean_ms,
        sim_ms,
    })
}

/// One attempt's measurements.
struct Sample {
    p_ms: f64,
    s_ms: f64,
    p_pair_mean_ms: f64,
    s_pair_mean_ms: f64,
    sim_ms: f64,
}

/// Per-graph analysis results.
struct SinkBounds {
    p_ms: f64,
    s_ms: f64,
    p_pair_mean_ms: f64,
    s_pair_mean_ms: f64,
}

/// Theorem 1 and Theorem 2 bounds (in ms) of the sink, or `None` on chain
/// explosion.
fn analyze_sink(graph: &CauseEffectGraph, sink: TaskId, chain_limit: usize) -> Option<SinkBounds> {
    let report = analyze(graph).ok()?;
    if !report.all_schedulable() {
        return None;
    }
    let rt = report.into_response_times();
    // One engine for both methods: the hop-bound cache warmed by the
    // P-diff pass is reused wholesale by the S-diff pass. The pair loop
    // stays serial — the sweep already parallelizes per attempt.
    let engine = AnalysisEngine::new(graph, &rt).with_workers(1);
    let p = engine
        .worst_case_disparity(
            sink,
            AnalysisConfig {
                method: Method::Independent,
                chain_limit,
            },
        )
        .ok()?;
    let s = engine
        .worst_case_disparity(
            sink,
            AnalysisConfig {
                method: Method::ForkJoin,
                chain_limit,
            },
        )
        .ok()?;
    let pair_mean = |r: &disparity_core::disparity::DisparityReport| {
        let vals: Vec<f64> = r.pairs.iter().map(|p| p.bound.as_millis_f64()).collect();
        mean(&vals).unwrap_or(0.0)
    };
    Some(SinkBounds {
        p_ms: p.bound.as_millis_f64(),
        s_ms: s.bound.as_millis_f64(),
        p_pair_mean_ms: pair_mean(&p),
        s_pair_mean_ms: pair_mean(&s),
    })
}

/// Maximum observed disparity (ms) over several offset-randomized runs.
fn simulate_max_disparity(
    graph: &CauseEffectGraph,
    sink: TaskId,
    runs: usize,
    horizon: Duration,
    rng: &mut StdRng,
) -> f64 {
    let mut best = 0.0f64;
    for run in 0..runs {
        let instance = randomize_offsets(graph, rng);
        let sim = Simulator::new(
            &instance,
            SimConfig {
                horizon,
                exec_model: ExecutionTimeModel::Uniform,
                seed: rng_seed(rng, run),
                warmup: Duration::ZERO,
                record_trace: false,
                semantics: disparity_sim::engine::CommunicationSemantics::Implicit,
                fault: disparity_sim::fault::FaultPlan::none(),
            },
        );
        let Ok(outcome) = sim.run() else {
            disparity_obs::counter_add("fig6ab.sim_rejected", 1);
            continue;
        };
        if let Some(d) = outcome.metrics.max_disparity(sink) {
            best = best.max(d.as_millis_f64());
        }
    }
    best
}

fn rng_seed(rng: &mut StdRng, salt: usize) -> u64 {
    use disparity_rng::Rng as _;
    rng.gen::<u64>() ^ (salt as u64)
}

/// Renders the Fig. 6(a) view (absolute values). Empty rows (points whose
/// attempt budget exhausted) carry no data and are skipped.
#[must_use]
pub fn table_a(rows: &[Fig6abRow]) -> Table {
    let mut t = Table::new([
        "n_tasks",
        "P-diff_ms",
        "S-diff_ms",
        "Sim_ms",
        "P-pair-mean_ms",
        "S-pair-mean_ms",
        "graphs",
    ]);
    for r in rows.iter().filter(|r| !r.is_empty()) {
        t.push_row([
            r.n_tasks.to_string(),
            fmt_ms(r.p_diff_ms),
            fmt_ms(r.s_diff_ms),
            fmt_ms(r.sim_ms),
            fmt_ms(r.p_pair_mean_ms),
            fmt_ms(r.s_pair_mean_ms),
            r.graphs.to_string(),
        ]);
    }
    t
}

/// Renders the Fig. 6(b) view (incremental ratios vs. Sim). Empty rows
/// are skipped, matching [`table_a`].
#[must_use]
pub fn table_b(rows: &[Fig6abRow]) -> Table {
    let mut t = Table::new(["n_tasks", "P-diff_ratio", "S-diff_ratio"]);
    for r in rows.iter().filter(|r| !r.is_empty()) {
        t.push_row([
            r.n_tasks.to_string(),
            fmt_pct(r.p_ratio),
            fmt_pct(r.s_ratio),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> Fig6abConfig {
        Fig6abConfig {
            task_counts: vec![5, 8],
            graphs_per_point: 2,
            offsets_per_graph: 2,
            sim_horizon: Duration::from_millis(2_000),
            ..Default::default()
        }
    }

    #[test]
    fn sweep_produces_safe_bounds() {
        let rows = run(&tiny_config());
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.graphs > 0, "every point should produce graphs");
            // Safety: the mean bounds must dominate the mean observation.
            assert!(
                r.p_diff_ms + 1e-9 >= r.sim_ms,
                "P-diff {} < Sim {}",
                r.p_diff_ms,
                r.sim_ms
            );
            assert!(
                r.s_diff_ms + 1e-9 >= r.sim_ms,
                "S-diff {} < Sim {}",
                r.s_diff_ms,
                r.sim_ms
            );
        }
    }

    #[test]
    fn tables_have_one_row_per_point() {
        let rows = run(&tiny_config());
        assert_eq!(table_a(&rows).len(), rows.len());
        assert_eq!(table_b(&rows).len(), rows.len());
    }

    /// The sweep is parallel over points but must stay deterministic per
    /// configuration (each point derives its own seed).
    #[test]
    fn sweep_is_deterministic_across_runs() {
        let cfg = tiny_config();
        let a = run(&cfg);
        let b = run(&cfg);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.n_tasks, y.n_tasks);
            assert_eq!(x.p_diff_ms, y.p_diff_ms);
            assert_eq!(x.s_diff_ms, y.s_diff_ms);
            assert_eq!(x.sim_ms, y.sim_ms);
        }
    }

    /// A generator that never produces marks the point as empty instead of
    /// emitting a silent all-zero row, and the tables drop it.
    #[test]
    fn exhausted_point_yields_empty_row_excluded_from_tables() {
        let cfg = Fig6abConfig {
            task_counts: vec![5],
            graphs_per_point: 2,
            ..Default::default()
        };
        let rows = run_with(&cfg, |_, _, _| None);
        assert_eq!(rows.len(), 1, "one row per point, even when empty");
        let r = &rows[0];
        assert!(r.is_empty());
        assert_eq!(r.graphs, 0);
        assert_eq!(r.p_ratio, None);
        assert_eq!(r.s_ratio, None);
        assert_eq!(table_a(&rows).len(), 0, "empty rows are not rendered");
        assert_eq!(table_b(&rows).len(), 0);
    }

    #[test]
    fn funnel_sweep_runs_and_separates_bounds() {
        let rows = run_funnel(&Fig6abConfig {
            task_counts: vec![12],
            graphs_per_point: 3,
            offsets_per_graph: 2,
            sim_horizon: Duration::from_millis(1500),
            ..Default::default()
        });
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert!(r.graphs > 0);
        assert!(r.s_diff_ms < r.p_diff_ms, "funnels separate S from P");
        assert!(r.s_diff_ms + 1e-9 >= r.sim_ms, "S-diff stays safe");
    }
}
