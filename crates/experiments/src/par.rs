//! Deterministic index-ordered worker pool for the sweep drivers.
//!
//! The fig6 sweeps parallelize *per graph attempt*: every attempt derives
//! its own RNG seed from `(sweep seed, point, attempt index)`, so attempts
//! are independent and can run on any thread in any order. What must stay
//! deterministic is the *reduction*: results are returned in attempt-index
//! order, so the sweep consumes them exactly as a serial loop would and
//! produces identical rows for any worker count (including 1).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs `f(0) … f(total − 1)` across up to `workers` scoped threads and
/// returns the results in index order.
///
/// Work is distributed dynamically (an atomic cursor), so an expensive
/// index does not stall the others; ordering is restored at the end, which
/// is what makes the output independent of scheduling.
///
/// # Panics
///
/// Propagates a panic from `f` (the pool itself never panics).
pub fn run_indexed<T, F>(total: usize, workers: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = workers.max(1).min(total);
    if workers <= 1 {
        return (0..total).map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<T>>> = Mutex::new((0..total).map(|_| None).collect());
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| loop {
                    // conc: claim counter; the slots mutex and the scope
                    // join publish every written value to the collector
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= total {
                        return;
                    }
                    let value = f(i);
                    slots
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)[i] = Some(value);
                })
            })
            .collect();
        for handle in handles {
            if let Err(payload) = handle.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });
    slots
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .into_iter()
        .map(|slot| match slot {
            Some(value) => value,
            None => unreachable!("every index computed"),
        })
        .collect()
}

/// The per-attempt seed derivation shared by the sweeps: mixes the sweep
/// seed, the point index and the attempt index through a splitmix-style
/// multiply so neighboring attempts land far apart in seed space.
#[must_use]
pub fn attempt_seed(base: u64, point: usize, attempt: usize) -> u64 {
    base ^ ((point as u64) << 32) ^ (attempt as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Worker count for attempt-level parallelism: the machine's available
/// parallelism, modestly capped (the sweeps already run one thread per
/// X-axis point).
#[must_use]
pub fn attempt_workers() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get().min(8))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_index_order_for_any_worker_count() {
        for workers in [1, 2, 3, 7, 16] {
            let out = run_indexed(11, workers, |i| i * i);
            assert_eq!(out, (0..11).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        assert!(run_indexed(0, 4, |i| i).is_empty());
    }

    #[test]
    fn seeds_differ_across_attempts_and_points() {
        let mut seen = std::collections::HashSet::new();
        for point in 0..4 {
            for attempt in 0..32 {
                assert!(seen.insert(attempt_seed(0xD15B, point, attempt)));
            }
        }
    }
}
