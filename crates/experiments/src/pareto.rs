//! Budget/disparity Pareto sweep of the global buffer-plan optimizer.
//!
//! A fig6-style companion to the paper's §IV optimization story: for a
//! fixed population of seeded fusion workloads, sweep the total slot
//! budget handed to [`disparity_opt`] and report, per budget point, the
//! mean total disparity bound before/after the plan, the buffer memory
//! the plans actually consumed, and the optimizer's search-effort
//! accounting (delta-scored vs cold-scored states). The resulting table
//! is the Pareto frontier of bound reduction versus buffer bytes.
//!
//! Every budget point optimizes the *same* systems (seeds derive from
//! the attempt index alone, never the budget), so points are comparable
//! and the sweep is deterministic for any worker count.

use disparity_core::delta::AnalyzedSystem;
use disparity_core::disparity::AnalysisConfig;
use disparity_model::graph::CauseEffectGraph;
use disparity_model::spec::SystemSpec;
use disparity_opt::{optimize_analyzed, BackendChoice, BufferBudget, GlobalPlan, PlanRequest};
use disparity_rng::SplitMix64;
use disparity_workload::funnel::{schedulable_funnel_system, FunnelConfig};

use crate::par::attempt_seed;
use crate::stats::mean;
use crate::table::{fmt_ms, fmt_pct, Table};

/// Parameters of the Pareto sweep.
#[derive(Debug, Clone)]
pub struct ParetoConfig {
    /// Slot budgets to sweep (the X axis). Zero belongs in the list: it
    /// anchors the frontier at the unoptimized system.
    pub budgets: Vec<usize>,
    /// Fusion workloads optimized per budget point.
    pub systems: usize,
    /// Per-sample payload size used to convert slots into bytes.
    pub bytes_per_sample: usize,
    /// Base RNG seed (also the plan seed handed to the optimizer).
    pub seed: u64,
    /// Search backend for every point.
    pub backend: BackendChoice,
    /// Admit plans that introduce new D007 (over-buffered) findings.
    ///
    /// Defaults to `true`, unlike the service's `optimize` op: a funnel
    /// source channel feeds every pair its branch participates in, so a
    /// shift aligning one pair's windows almost always overshoots some
    /// other pair's, and with the guard on the optimizer refuses nearly
    /// every assignment. The sweep measures the unconstrained
    /// bound-vs-memory frontier; cleanliness is an admission concern.
    pub allow_overbuffering: bool,
}

impl Default for ParetoConfig {
    fn default() -> Self {
        ParetoConfig {
            budgets: vec![0, 1, 2, 4, 8],
            systems: 5,
            bytes_per_sample: 64,
            seed: 0x9A7E70,
            backend: BackendChoice::Auto,
            allow_overbuffering: true,
        }
    }
}

/// One aggregated budget point of the sweep.
#[derive(Debug, Clone, Copy)]
pub struct ParetoRow {
    /// The slot budget offered to the optimizer.
    pub budget_slots: usize,
    /// Mean extra slots the returned plans actually consumed.
    pub mean_slots_used: f64,
    /// [`Self::mean_slots_used`] in bytes at the configured payload size.
    pub mean_buffer_bytes: f64,
    /// Mean total disparity bound across fusion tasks, before (ms).
    pub base_total_ms: f64,
    /// Mean total disparity bound with the plan applied (ms).
    pub opt_total_ms: f64,
    /// `(base − opt)/base`, `None` when the base total is zero.
    pub reduction: Option<f64>,
    /// Search states scored through the incremental engine, summed.
    pub delta_scored: u64,
    /// Search states scored through the cold pipeline, summed.
    pub cold_scored: u64,
    /// Systems that contributed to the point.
    pub systems: usize,
}

impl ParetoRow {
    /// Whether the point's attempt budget exhausted without producing a
    /// single analyzable system.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.systems == 0
    }
}

/// Runs the sweep: one thread per budget point, systems seeded from the
/// attempt index alone so every point optimizes the same population.
#[must_use]
pub fn run(config: &ParetoConfig) -> Vec<ParetoRow> {
    let mut rows: Vec<Option<ParetoRow>> = vec![None; config.budgets.len()];
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (point, &budget) in config.budgets.iter().enumerate() {
            handles.push(scope.spawn(move || (point, sweep_point(config, budget))));
        }
        for handle in handles {
            let (point, row) = match handle.join() {
                Ok(result) => result,
                Err(payload) => std::panic::resume_unwind(payload),
            };
            rows[point] = Some(row);
        }
    });
    rows.into_iter()
        .map(|r| match r {
            Some(row) => row,
            None => unreachable!("every point computed"),
        })
        .collect()
}

/// One optimized system's contribution to a point.
struct Sample {
    base_total_ms: f64,
    opt_total_ms: f64,
    slots_used: usize,
    delta_scored: u64,
    cold_scored: u64,
}

fn sweep_point(config: &ParetoConfig, budget: usize) -> ParetoRow {
    let mut span = disparity_obs::span("pareto.point");
    span.attr("budget_slots", budget);
    let attempts_budget = config.systems * 20;
    let mut samples: Vec<Sample> = Vec::with_capacity(config.systems);
    let mut attempt = 0usize;
    while samples.len() < config.systems && attempt < attempts_budget {
        // Seeds never involve the budget: every point sees the same
        // system population, so the frontier's points are comparable.
        if let Some(s) = sweep_attempt(config, budget, attempt) {
            samples.push(s);
        }
        attempt += 1;
    }
    span.attr("systems", samples.len());
    span.attr("attempts", attempt);
    if samples.is_empty() {
        disparity_obs::counter_add("pareto.point_exhausted", 1);
        return ParetoRow {
            budget_slots: budget,
            mean_slots_used: 0.0,
            mean_buffer_bytes: 0.0,
            base_total_ms: 0.0,
            opt_total_ms: 0.0,
            reduction: None,
            delta_scored: 0,
            cold_scored: 0,
            systems: 0,
        };
    }
    let collect = |f: fn(&Sample) -> f64| samples.iter().map(f).collect::<Vec<f64>>();
    let base_total_ms = mean(&collect(|s| s.base_total_ms)).unwrap_or(0.0);
    let opt_total_ms = mean(&collect(|s| s.opt_total_ms)).unwrap_or(0.0);
    #[allow(clippy::cast_precision_loss)]
    let mean_slots_used = mean(&collect(|s| s.slots_used as f64)).unwrap_or(0.0);
    #[allow(clippy::cast_precision_loss)]
    let mean_buffer_bytes = mean_slots_used * config.bytes_per_sample as f64;
    ParetoRow {
        budget_slots: budget,
        mean_slots_used,
        mean_buffer_bytes,
        base_total_ms,
        opt_total_ms,
        reduction: if base_total_ms > 0.0 {
            Some((base_total_ms - opt_total_ms) / base_total_ms)
        } else {
            None
        },
        delta_scored: samples.iter().map(|s| s.delta_scored).sum(),
        cold_scored: samples.iter().map(|s| s.cold_scored).sum(),
        systems: samples.len(),
    }
}

/// Generate, analyze and optimize one seeded fusion workload.
fn sweep_attempt(config: &ParetoConfig, budget: usize, attempt: usize) -> Option<Sample> {
    let mut rng = SplitMix64::new(attempt_seed(config.seed, 0, attempt));
    let graph = schedulable_funnel_system(&FunnelConfig::default(), &mut rng, 64).ok()?;
    let plan = optimize_graph(&graph, budget, config).ok()??;
    let base_total: i128 = plan
        .predictions
        .iter()
        .map(|p| i128::from(p.before.as_nanos()))
        .sum();
    let opt_total: i128 = plan
        .predictions
        .iter()
        .map(|p| i128::from(p.after.as_nanos()))
        .sum();
    #[allow(clippy::cast_precision_loss)]
    Some(Sample {
        base_total_ms: base_total as f64 / 1e6,
        opt_total_ms: opt_total as f64 / 1e6,
        slots_used: plan.slots_used,
        delta_scored: plan.stats.delta_scored,
        cold_scored: plan.stats.cold_scored,
    })
}

/// Optimizes one graph; `Ok(None)` when the base system is outside the
/// analyzable class (it then proves nothing about the frontier).
fn optimize_graph(
    graph: &CauseEffectGraph,
    budget: usize,
    config: &ParetoConfig,
) -> Result<Option<GlobalPlan>, disparity_opt::OptError> {
    let spec = SystemSpec::from_graph(graph);
    let Ok(base) = AnalyzedSystem::analyze(&spec, AnalysisConfig::default()) else {
        return Ok(None);
    };
    let mut request = PlanRequest::with_budget(BufferBudget::slots(budget));
    request.seed = config.seed;
    request.forbid_new_findings = !config.allow_overbuffering;
    optimize_analyzed(&base, &request, config.backend).map(Some)
}

/// Renders the frontier. Empty points (attempt budget exhausted) are
/// skipped.
#[must_use]
pub fn table(rows: &[ParetoRow]) -> Table {
    let mut t = Table::new([
        "budget_slots",
        "slots_used",
        "buffer_bytes",
        "base_total_ms",
        "opt_total_ms",
        "reduction",
        "delta_scored",
        "cold_scored",
        "systems",
    ]);
    for r in rows.iter().filter(|r| !r.is_empty()) {
        t.push_row([
            r.budget_slots.to_string(),
            format!("{:.2}", r.mean_slots_used),
            format!("{:.0}", r.mean_buffer_bytes),
            fmt_ms(r.base_total_ms),
            fmt_ms(r.opt_total_ms),
            fmt_pct(r.reduction),
            r.delta_scored.to_string(),
            r.cold_scored.to_string(),
            r.systems.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> ParetoConfig {
        ParetoConfig {
            budgets: vec![0, 3],
            systems: 2,
            ..Default::default()
        }
    }

    #[test]
    fn sweep_is_deterministic_across_runs() {
        let cfg = quick_config();
        let a = run(&cfg);
        let b = run(&cfg);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.budget_slots, y.budget_slots);
            assert_eq!(x.base_total_ms, y.base_total_ms);
            assert_eq!(x.opt_total_ms, y.opt_total_ms);
            assert_eq!(x.mean_slots_used, y.mean_slots_used);
        }
    }

    #[test]
    fn frontier_anchors_at_zero_and_never_regresses() {
        let rows = run(&quick_config());
        assert_eq!(rows.len(), 2);
        let zero = &rows[0];
        let budgeted = &rows[1];
        assert!(zero.systems > 0 && budgeted.systems > 0);
        // Both points optimized the same population.
        assert_eq!(zero.base_total_ms, budgeted.base_total_ms);
        // Budget 0 is the unoptimized anchor ...
        assert_eq!(zero.mean_slots_used, 0.0);
        assert_eq!(zero.opt_total_ms, zero.base_total_ms);
        // ... and more budget never worsens the total bound.
        assert!(budgeted.opt_total_ms <= zero.opt_total_ms + 1e-9);
        assert!(budgeted.opt_total_ms <= budgeted.base_total_ms + 1e-9);
    }
}
