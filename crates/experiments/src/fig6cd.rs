//! Reproduction of Fig. 6(c) and 6(d): the effect of Algorithm 1's buffer
//! design on two merged chains.
//!
//! Protocol (paper §V): two independent chains of `len` tasks each are
//! merged at a single sink; the X axis sweeps `len ∈ [5, 30]`. Compared
//! series:
//!
//! * **S-diff** — Theorem 2 bound on the unbuffered system;
//! * **S-diff-B** — Theorem 3 bound after Algorithm 1's buffer;
//! * **Sim** — observed maximum disparity, unbuffered;
//! * **Sim-B** — observed maximum disparity with the designed buffer
//!   (measured after a warm-up so the FIFO has filled — Lemma 6 holds "in
//!   the long term").
//!
//! Fig. 6(c) plots absolute values, Fig. 6(d) the incremental ratios of
//! each bound against its own simulation.

use disparity_core::buffering::design_buffer;
use disparity_core::pairwise::theorem2_bound;
use disparity_model::graph::CauseEffectGraph;
use disparity_model::ids::TaskId;
use disparity_model::time::Duration;
use disparity_sched::schedulability::analyze;
use disparity_sim::engine::{SimConfig, Simulator};
use disparity_sim::exec::ExecutionTimeModel;
use disparity_workload::chains::schedulable_two_chain_system;
use disparity_workload::offsets::randomize_offsets;
use disparity_rng::rngs::StdRng;
use disparity_rng::Rng as _;

use crate::par::{attempt_seed, attempt_workers, run_indexed};
use crate::stats::{incremental_ratio, mean};
use crate::table::{fmt_ms, fmt_pct, Table};

/// Parameters of the Fig. 6(c)/(d) sweep.
#[derive(Debug, Clone)]
pub struct Fig6cdConfig {
    /// X-axis values (tasks per chain). Paper: `[5, 30]`.
    pub chain_lengths: Vec<usize>,
    /// Systems generated per point.
    pub systems_per_point: usize,
    /// Offset randomizations simulated per system.
    pub offsets_per_system: usize,
    /// Simulated horizon per run.
    pub sim_horizon: Duration,
    /// Number of processor ECUs.
    pub n_ecus: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for Fig6cdConfig {
    fn default() -> Self {
        Fig6cdConfig {
            chain_lengths: vec![5, 10, 15, 20, 25, 30],
            systems_per_point: 10,
            offsets_per_system: 10,
            sim_horizon: Duration::from_secs(10),
            n_ecus: 4,
            seed: 0xF16C,
        }
    }
}

/// One aggregated point of the sweep.
#[derive(Debug, Clone, Copy)]
pub struct Fig6cdRow {
    /// Tasks per chain.
    pub chain_len: usize,
    /// Mean Theorem 2 bound, unbuffered (ms).
    pub s_diff_ms: f64,
    /// Mean Theorem 3 bound with the designed buffer (ms).
    pub s_diff_b_ms: f64,
    /// Mean observed maximum disparity, unbuffered (ms).
    pub sim_ms: f64,
    /// Mean observed maximum disparity, buffered (ms).
    pub sim_b_ms: f64,
    /// `(S-diff − Sim)/Sim`.
    pub ratio_unopt: Option<f64>,
    /// `(S-diff-B − Sim-B)/Sim-B`.
    pub ratio_opt: Option<f64>,
    /// Systems that contributed.
    pub systems: usize,
}

impl Fig6cdRow {
    /// Whether the point's attempt budget exhausted without producing a
    /// single system (see [`Fig6abRow::is_empty`](crate::fig6ab::Fig6abRow::is_empty)).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.systems == 0
    }
}

/// Runs the sweep and returns one row per chain length. Parallelism is
/// two-level — one thread per point, plus a per-system worker pool inside
/// each point with seeds derived per attempt — and stays deterministic for
/// any worker count (results reduce in attempt order).
#[must_use]
pub fn run(config: &Fig6cdConfig) -> Vec<Fig6cdRow> {
    let mut rows: Vec<Option<Fig6cdRow>> = vec![None; config.chain_lengths.len()];
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (point, &chain_len) in config.chain_lengths.iter().enumerate() {
            handles.push(scope.spawn(move || (point, sweep_point(config, point, chain_len))));
        }
        for handle in handles {
            let (point, row) = match handle.join() {
                Ok(result) => result,
                Err(payload) => std::panic::resume_unwind(payload),
            };
            rows[point] = Some(row);
        }
    });
    rows.into_iter()
        .map(|r| match r {
            Some(row) => row,
            None => unreachable!("every point computed"),
        })
        .collect()
}

fn sweep_point(config: &Fig6cdConfig, point: usize, chain_len: usize) -> Fig6cdRow {
    let mut span = disparity_obs::span("fig6cd.point");
    span.attr("chain_len", chain_len);
    let budget = config.systems_per_point * 20;
    let workers = attempt_workers();
    let mut samples: Vec<Sample> = Vec::with_capacity(config.systems_per_point);
    let mut attempts = 0usize;
    while samples.len() < config.systems_per_point && attempts < budget {
        // Wave size = systems still needed; boundaries depend only on
        // per-attempt outcomes, keeping the row machine-independent.
        let wave = (config.systems_per_point - samples.len()).min(budget - attempts);
        let results = run_indexed(wave, workers, |i| {
            sweep_attempt(config, point, chain_len, attempts + i)
        });
        attempts += wave;
        samples.extend(results.into_iter().flatten());
    }
    span.attr("systems", samples.len());
    span.attr("attempts", attempts);
    if samples.is_empty() {
        disparity_obs::counter_add("fig6cd.point_exhausted", 1);
        return Fig6cdRow {
            chain_len,
            s_diff_ms: 0.0,
            s_diff_b_ms: 0.0,
            sim_ms: 0.0,
            sim_b_ms: 0.0,
            ratio_unopt: None,
            ratio_opt: None,
            systems: 0,
        };
    }
    let collect = |f: fn(&Sample) -> f64| samples.iter().map(f).collect::<Vec<f64>>();
    let s_diff_ms = mean(&collect(|s| s.s_ms)).unwrap_or(0.0);
    let s_diff_b_ms = mean(&collect(|s| s.sb_ms)).unwrap_or(0.0);
    let sim_ms = mean(&collect(|s| s.sim_ms)).unwrap_or(0.0);
    let sim_b_ms = mean(&collect(|s| s.sim_b_ms)).unwrap_or(0.0);
    Fig6cdRow {
        chain_len,
        s_diff_ms,
        s_diff_b_ms,
        sim_ms,
        sim_b_ms,
        ratio_unopt: incremental_ratio(s_diff_ms, sim_ms),
        ratio_opt: incremental_ratio(s_diff_b_ms, sim_b_ms),
        systems: samples.len(),
    }
}

/// Regenerates one representative two-chain system per sweep point for
/// the `--deny-lints` diagnostic gate.
///
/// Probes replay the sweep's own `(seed, point, attempt)` derivation on
/// fresh RNGs (see [`crate::fig6ab::probe_graphs`]); running the gate
/// cannot change the sweep's output.
#[must_use]
pub fn probe_graphs(config: &Fig6cdConfig) -> Vec<(String, CauseEffectGraph)> {
    let mut probes = Vec::new();
    for (point, &chain_len) in config.chain_lengths.iter().enumerate() {
        for attempt in 0..config.systems_per_point * 20 {
            let mut rng = StdRng::seed_from_u64(attempt_seed(config.seed, point, attempt));
            if let Ok(sys) = schedulable_two_chain_system(chain_len, config.n_ecus, &mut rng, 50) {
                probes.push((format!("fig6cd-len{chain_len}"), sys.graph));
                break;
            }
        }
    }
    probes
}

/// One attempt's measurements.
struct Sample {
    s_ms: f64,
    sb_ms: f64,
    sim_ms: f64,
    sim_b_ms: f64,
}

/// One attempt: generate, analyze, buffer-design and simulate a single
/// two-chain system with an RNG seeded from the attempt index alone.
fn sweep_attempt(
    config: &Fig6cdConfig,
    point: usize,
    chain_len: usize,
    attempt: usize,
) -> Option<Sample> {
    let mut rng = StdRng::seed_from_u64(attempt_seed(config.seed, point, attempt));
    let generated = {
        let _span = disparity_obs::span!("fig6cd.generate", chain_len = chain_len);
        schedulable_two_chain_system(chain_len, config.n_ecus, &mut rng, 50)
    };
    let sys = generated.ok()?;
    let _analyze_span = disparity_obs::span!("fig6cd.analyze", chain_len = chain_len);
    let report = analyze(&sys.graph).ok()?;
    let rt = report.into_response_times();
    let s_diff = theorem2_bound(&sys.graph, &sys.lambda, &sys.nu, &rt).ok()?;
    let plan = design_buffer(&sys.graph, &sys.lambda, &sys.nu, &rt).ok()?;
    drop(_analyze_span);
    let mut buffered = sys.graph.clone();
    plan.apply(&mut buffered).ok()?;
    // Warm-up long enough for the FIFO to fill plus slack.
    let warmup = (plan.shift * 2 + Duration::from_millis(400)).min(config.sim_horizon / 2);
    let sink = sys.sink();
    let _simulate_span = disparity_obs::span!("fig6cd.simulate", chain_len = chain_len);
    let sim = simulate_max(
        &sys.graph,
        sink,
        config.offsets_per_system,
        config.sim_horizon,
        warmup,
        &mut rng,
    );
    let sim_b = simulate_max(
        &buffered,
        sink,
        config.offsets_per_system,
        config.sim_horizon,
        warmup,
        &mut rng,
    );
    drop(_simulate_span);
    Some(Sample {
        s_ms: s_diff.as_millis_f64(),
        sb_ms: plan.bound_after.as_millis_f64(),
        sim_ms: sim,
        sim_b_ms: sim_b,
    })
}

fn simulate_max(
    graph: &CauseEffectGraph,
    sink: TaskId,
    runs: usize,
    horizon: Duration,
    warmup: Duration,
    rng: &mut StdRng,
) -> f64 {
    let mut best = 0.0f64;
    for _ in 0..runs {
        let instance = randomize_offsets(graph, rng);
        let sim = Simulator::new(
            &instance,
            SimConfig {
                horizon,
                exec_model: ExecutionTimeModel::Uniform,
                seed: rng.gen(),
                warmup,
                record_trace: false,
                semantics: disparity_sim::engine::CommunicationSemantics::Implicit,
                fault: disparity_sim::fault::FaultPlan::none(),
            },
        );
        let Ok(outcome) = sim.run() else {
            disparity_obs::counter_add("fig6cd.sim_rejected", 1);
            continue;
        };
        if let Some(d) = outcome.metrics.max_disparity(sink) {
            best = best.max(d.as_millis_f64());
        }
    }
    best
}

/// Renders the Fig. 6(c) view (absolute values). Empty rows (points whose
/// attempt budget exhausted) are skipped.
#[must_use]
pub fn table_c(rows: &[Fig6cdRow]) -> Table {
    let mut t = Table::new([
        "chain_len",
        "S-diff_ms",
        "S-diff-B_ms",
        "Sim_ms",
        "Sim-B_ms",
        "systems",
    ]);
    for r in rows.iter().filter(|r| !r.is_empty()) {
        t.push_row([
            r.chain_len.to_string(),
            fmt_ms(r.s_diff_ms),
            fmt_ms(r.s_diff_b_ms),
            fmt_ms(r.sim_ms),
            fmt_ms(r.sim_b_ms),
            r.systems.to_string(),
        ]);
    }
    t
}

/// Renders the Fig. 6(d) view (incremental ratios). Empty rows are
/// skipped, matching [`table_c`].
#[must_use]
pub fn table_d(rows: &[Fig6cdRow]) -> Table {
    let mut t = Table::new(["chain_len", "S-diff_ratio", "S-diff-B_ratio"]);
    for r in rows.iter().filter(|r| !r.is_empty()) {
        t.push_row([
            r.chain_len.to_string(),
            fmt_pct(r.ratio_unopt),
            fmt_pct(r.ratio_opt),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Per-attempt seeding keeps the sweep deterministic even with the
    /// attempts fanned out over a worker pool.
    #[test]
    fn sweep_is_deterministic_across_runs() {
        let cfg = Fig6cdConfig {
            chain_lengths: vec![5],
            systems_per_point: 2,
            offsets_per_system: 1,
            sim_horizon: Duration::from_millis(1_500),
            ..Default::default()
        };
        let a = run(&cfg);
        let b = run(&cfg);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.chain_len, y.chain_len);
            assert_eq!(x.s_diff_ms, y.s_diff_ms);
            assert_eq!(x.s_diff_b_ms, y.s_diff_b_ms);
            assert_eq!(x.sim_ms, y.sim_ms);
            assert_eq!(x.sim_b_ms, y.sim_b_ms);
        }
    }

    #[test]
    fn sweep_shows_optimization_effect() {
        let rows = run(&Fig6cdConfig {
            chain_lengths: vec![5],
            systems_per_point: 2,
            offsets_per_system: 2,
            sim_horizon: Duration::from_millis(3_000),
            ..Default::default()
        });
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert!(r.systems > 0);
        // The optimized bound never exceeds the unoptimized one.
        assert!(r.s_diff_b_ms <= r.s_diff_ms + 1e-9);
        // Safety of each bound against its own simulation.
        assert!(
            r.s_diff_ms + 1e-9 >= r.sim_ms,
            "S-diff {} < Sim {}",
            r.s_diff_ms,
            r.sim_ms
        );
        assert!(
            r.s_diff_b_ms + 1e-9 >= r.sim_b_ms,
            "S-diff-B {} < Sim-B {}",
            r.s_diff_b_ms,
            r.sim_b_ms
        );
    }
}
