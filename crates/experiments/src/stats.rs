//! Small statistics helpers for experiment aggregation.

/// Arithmetic mean; `None` for an empty slice.
#[must_use]
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

/// Sample maximum; `None` for an empty slice.
#[must_use]
pub fn max(values: &[f64]) -> Option<f64> {
    values.iter().copied().reduce(f64::max)
}

/// The paper's *incremental ratio* of a bound against an observed value:
/// `(bound − observed) / observed`. `None` when `observed` is not strictly
/// positive (no meaningful ratio exists).
#[must_use]
pub fn incremental_ratio(bound: f64, observed: f64) -> Option<f64> {
    (observed > 0.0).then(|| (bound - observed) / observed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_max() {
        assert_eq!(mean(&[]), None);
        assert_eq!(mean(&[2.0, 4.0]), Some(3.0));
        assert_eq!(max(&[]), None);
        assert_eq!(max(&[2.0, 4.0, 3.0]), Some(4.0));
    }

    #[test]
    fn ratio_guards_division() {
        assert_eq!(incremental_ratio(15.0, 10.0), Some(0.5));
        assert_eq!(incremental_ratio(15.0, 0.0), None);
        assert_eq!(incremental_ratio(15.0, -1.0), None);
    }
}
