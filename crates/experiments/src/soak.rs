//! Fault-injection soundness soak.
//!
//! Sweeps seeds × fault plans × WATERS-style workloads, replaying every
//! run's observations through the soundness sentinel
//! ([`disparity_core::sentinel`]):
//!
//! * **Model-preserving** plans (nothing injected, or execution-time
//!   perturbations re-clamped into `[B, W]`) are hard soundness oracles:
//!   any bound violation is a real bug and fails the soak.
//! * **Model-violating** plans (release jitter, beyond-WCET overruns,
//!   token loss, ECU stalls) must come back *flagged*; their bounds are
//!   not judged.
//! * Deliberately **unschedulable** systems exercise the graceful
//!   degradation path: the sentinel falls back to the Dürr-style baseline
//!   and the soak logs a warning instead of enforcing the exact bounds
//!   (deadline misses void the WCRT analysis the bounds build on).
//!
//! The [`run_soak`] entry point powers both the `soak` binary and the
//! regression tests; violations are reported as self-contained JSON
//! artifacts with a minimized reproduction (seed, fault plan, graph
//! spec).

use disparity_core::buffering::design_buffer;
use disparity_core::sentinel::{self, ChainEvidence, RunEvidence, TaskEvidence};
use disparity_model::builder::SystemBuilder;
use disparity_model::chain::Chain;
use disparity_model::graph::CauseEffectGraph;
use disparity_model::ids::{Priority, TaskId};
use disparity_model::json::Value;
use disparity_model::task::TaskSpec;
use disparity_model::time::Duration;
use disparity_rng::rngs::StdRng;
use disparity_sim::engine::{CommunicationSemantics, SimConfig, Simulator};
use disparity_sim::exec::ExecutionTimeModel;
use disparity_sim::fault::{ExecFault, FaultPlan, ReleaseJitter, StallPlan, TokenLoss};
use disparity_workload::chains::schedulable_two_chain_system;
use disparity_workload::graphgen::{schedulable_random_system, GraphGenConfig};

/// Parameters of one soak sweep.
#[derive(Debug, Clone, Copy)]
pub struct SoakConfig {
    /// Random WATERS DAGs drawn via `graphgen`.
    pub random_systems: usize,
    /// Seeds simulated per (system, fault plan) combination.
    pub seeds_per_combo: usize,
    /// Simulated horizon per run.
    pub horizon: Duration,
    /// Warm-up excluded from the metrics (lets FIFOs fill).
    pub warmup: Duration,
    /// Base seed; everything else derives deterministically from it.
    pub base_seed: u64,
    /// Monitored chains per system (upper cap).
    pub max_monitored_chains: usize,
}

impl Default for SoakConfig {
    fn default() -> Self {
        SoakConfig {
            random_systems: 3,
            seeds_per_combo: 3,
            horizon: Duration::from_secs(3),
            warmup: Duration::from_millis(200),
            base_seed: 0x50AC,
            max_monitored_chains: 4,
        }
    }
}

impl SoakConfig {
    /// A cheap configuration for CI smoke runs and tests.
    #[must_use]
    pub fn quick() -> Self {
        SoakConfig {
            random_systems: 1,
            seeds_per_combo: 1,
            horizon: Duration::from_millis(800),
            warmup: Duration::from_millis(100),
            ..SoakConfig::default()
        }
    }

    /// Number of seed × fault-plan × system combinations this
    /// configuration will execute.
    #[must_use]
    pub fn combos(&self) -> usize {
        // random systems + two-chain + its buffered twin + the
        // unschedulable degradation probe.
        (self.random_systems + 3) * fault_catalog().len() * self.seeds_per_combo
    }
}

/// The named fault plans every system is swept through.
///
/// The catalog spans both fault classes: the first three plans are
/// model-preserving (true soundness oracles), the rest must be flagged.
#[must_use]
pub fn fault_catalog() -> Vec<(&'static str, FaultPlan)> {
    let ms = Duration::from_millis;
    vec![
        ("none", FaultPlan::none()),
        (
            "exec-overload",
            FaultPlan {
                exec: ExecFault::Scale { permille: 2_000 },
                ..FaultPlan::default()
            },
        ),
        (
            "exec-underrun",
            FaultPlan {
                exec: ExecFault::Scale { permille: 400 },
                ..FaultPlan::default()
            },
        ),
        (
            "release-jitter",
            FaultPlan {
                release_jitter: Some(ReleaseJitter {
                    max: ms(2),
                    permille: 500,
                }),
                ..FaultPlan::default()
            },
        ),
        (
            "token-loss",
            FaultPlan {
                token_loss: Some(TokenLoss { permille: 100 }),
                ..FaultPlan::default()
            },
        ),
        (
            "ecu-stall",
            FaultPlan {
                stall: Some(StallPlan {
                    interval: ms(20),
                    duration: ms(2),
                }),
                ..FaultPlan::default()
            },
        ),
        (
            "wcet-overrun",
            FaultPlan {
                exec: ExecFault::OverrunBeyondWcet {
                    permille: 200,
                    max_excess: ms(2),
                },
                ..FaultPlan::default()
            },
        ),
        (
            "combined",
            FaultPlan {
                release_jitter: Some(ReleaseJitter {
                    max: ms(1),
                    permille: 200,
                }),
                exec: ExecFault::OverrunBeyondWcet {
                    permille: 100,
                    max_excess: ms(1),
                },
                token_loss: Some(TokenLoss { permille: 50 }),
                stall: Some(StallPlan {
                    interval: ms(50),
                    duration: ms(3),
                }),
            },
        ),
    ]
}

/// What a soak sweep did and found.
#[derive(Debug, Default)]
pub struct SoakSummary {
    /// Seed × plan × system combinations executed.
    pub runs: usize,
    /// Individual sentinel checks evaluated.
    pub checks: usize,
    /// Runs in which model-violating faults fired and were flagged.
    pub flagged: usize,
    /// Runs judged against the Dürr baseline (unschedulable system).
    pub degraded: usize,
    /// Runs skipped because simulation or analysis errored.
    pub skipped: usize,
    /// Warnings from degraded runs whose baseline check failed (deadline
    /// misses void the WCRT analysis, so these do not fail the soak).
    pub degraded_warnings: usize,
    /// Hard violations: JSON artifacts from enforced, non-degraded runs.
    pub violations: Vec<Value>,
}

impl SoakSummary {
    /// Whether the sweep found any hard soundness violation.
    #[must_use]
    pub fn is_sound(&self) -> bool {
        self.violations.is_empty()
    }
}

/// One system under soak: the graph, the chains to watch and the fusion
/// task whose disparity is judged.
#[derive(Debug, Clone)]
struct SoakSystem {
    name: String,
    graph: CauseEffectGraph,
    chains: Vec<Chain>,
    focus: TaskId,
}

/// Regenerates the soak sweep's systems for the `--deny-lints` diagnostic
/// gate.
///
/// The builder reseeds its own RNG from `base_seed`, so this sees exactly
/// the graphs [`run_soak`] will exercise without touching any sweep state.
/// The deliberately unschedulable degradation probe — a negative control,
/// *supposed* to miss deadlines — is excluded so `--deny-lints` gates the
/// sweep's real systems only.
#[must_use]
pub fn probe_graphs(config: &SoakConfig) -> Vec<(String, CauseEffectGraph)> {
    build_systems(config, &mut |_| {})
        .into_iter()
        .filter(|sys| sys.name != "degradation-probe")
        .map(|sys| (sys.name, sys.graph))
        .collect()
}

fn build_systems(config: &SoakConfig, log: &mut dyn FnMut(String)) -> Vec<SoakSystem> {
    let mut rng = StdRng::seed_from_u64(config.base_seed);
    let mut systems = Vec::new();
    for i in 0..config.random_systems {
        let gen = GraphGenConfig {
            n_tasks: 10 + 2 * i,
            n_ecus: 3,
            max_sources: Some(3),
            target_utilization: Some(0.5),
            ..GraphGenConfig::default()
        };
        match schedulable_random_system(gen, &mut rng, 50) {
            Ok(graph) => {
                let Some(&sink) = graph.sinks().first() else {
                    disparity_obs::counter_add("soak.sink_missing", 1);
                    log(format!("warning: skipping random system {i}: no sink"));
                    continue;
                };
                let mut chains = match graph.chains_to(sink, 4096) {
                    Ok(chains) => chains,
                    Err(_) => {
                        disparity_obs::counter_add("soak.chain_budget_exceeded", 1);
                        log(format!(
                            "warning: skipping random system {i}: chain budget exceeded"
                        ));
                        continue;
                    }
                };
                chains.truncate(config.max_monitored_chains);
                systems.push(SoakSystem {
                    name: format!("waters-dag-{}", gen.n_tasks),
                    graph,
                    chains,
                    focus: sink,
                });
            }
            Err(e) => log(format!("warning: skipping random system {i}: {e}")),
        }
    }
    match schedulable_two_chain_system(5, 3, &mut rng, 50) {
        Ok(sys) => {
            let focus = sys.sink();
            let chains = vec![sys.lambda.clone(), sys.nu.clone()];
            // The buffered twin exercises S-diff-B (Theorem 3): the
            // sentinel's S-diff check over the rewritten capacities.
            match disparity_sched::schedulability::analyze(&sys.graph) {
                Ok(report) if report.all_schedulable() => {
                    let rt = report.into_response_times();
                    if let Ok(plan) = design_buffer(&sys.graph, &sys.lambda, &sys.nu, &rt) {
                        let mut buffered = sys.graph.clone();
                        if plan.apply(&mut buffered).is_ok() {
                            systems.push(SoakSystem {
                                name: "two-chain-buffered".to_string(),
                                graph: buffered,
                                chains: chains.clone(),
                                focus,
                            });
                        }
                    }
                }
                _ => {}
            }
            systems.push(SoakSystem {
                name: "two-chain".to_string(),
                graph: sys.graph,
                chains,
                focus,
            });
        }
        Err(e) => log(format!("warning: skipping two-chain system: {e}")),
    }
    systems.push(degradation_probe());
    systems
}

/// A deliberately unschedulable (yet utilization < 1) system: the
/// low-priority consumer misses its deadline, forcing the sentinel onto
/// the Dürr-style baseline.
fn degradation_probe() -> SoakSystem {
    let ms = Duration::from_millis;
    let mut b = SystemBuilder::new();
    let e = b.add_ecu("e");
    let s = b.add_task(TaskSpec::periodic("s", ms(10)));
    let a = b.add_task(
        TaskSpec::periodic("a", ms(10))
            .execution(ms(4), ms(4))
            .on_ecu(e)
            .priority(Priority::new(0)),
    );
    let t = b.add_task(
        TaskSpec::periodic("t", ms(12))
            .execution(ms(7), ms(7))
            .on_ecu(e)
            .priority(Priority::new(1)),
    );
    b.connect(s, a);
    b.connect(a, t);
    let Ok(graph) = b.build() else {
        unreachable!("probe system is well-formed")
    };
    let Ok(chain) = Chain::new(&graph, vec![s, a, t]) else {
        unreachable!("probe chain is a path")
    };
    SoakSystem {
        name: "degradation-probe".to_string(),
        graph,
        chains: vec![chain],
        focus: t,
    }
}

/// Upper bound on the fill transient of buffered FIFOs. Lemma 6's
/// `(n−1)·T` shift holds only once a FIFO is full, which takes up to
/// `capacity` productions of its producer — plus one period each for the
/// release offset and the response time (`R ≤ T` on schedulable sets).
/// Samples taken earlier can legitimately undercut the shifted BCBT, so
/// the warm-up must cover this window.
fn buffer_fill_transient(graph: &CauseEffectGraph) -> Duration {
    let mut extra = Duration::ZERO;
    for ch in graph.channels() {
        if ch.capacity() > 1 {
            let t = graph.task(ch.src()).period();
            extra += t * (ch.capacity() as i64 + 2);
        }
    }
    extra
}

/// Simulates one (system, plan, seed) combination and returns the
/// sentinel's verdict plus the run's evidence artifact inputs.
fn run_one(
    system: &SoakSystem,
    plan: FaultPlan,
    seed: u64,
    config: &SoakConfig,
) -> Result<(sentinel::SentinelReport, Value), String> {
    // Stretch both warm-up and horizon by the buffered-fill transient so
    // every run still observes the configured steady-state window.
    let transient = buffer_fill_transient(&system.graph);
    let mut sim = Simulator::new(
        &system.graph,
        SimConfig {
            horizon: config.horizon + transient,
            exec_model: ExecutionTimeModel::Uniform,
            seed,
            warmup: config.warmup + transient,
            record_trace: false,
            semantics: CommunicationSemantics::Implicit,
            fault: plan,
        },
    );
    sim.monitor_chains(system.chains.iter().cloned());
    let out = sim.run().map_err(|e| format!("simulation failed: {e}"))?;
    let chains = system
        .chains
        .iter()
        .enumerate()
        .map(|(i, c)| {
            let o = out.metrics.chain(i);
            ChainEvidence {
                chain: c.clone(),
                min_backward: o.min_backward,
                max_backward: o.max_backward,
                samples: o.samples,
            }
        })
        .collect();
    let tasks = vec![TaskEvidence {
        task: system.focus,
        max_disparity: out.metrics.max_disparity(system.focus),
        max_response: Some(out.metrics.max_response(system.focus)),
    }];
    let evidence = RunEvidence {
        graph: &system.graph,
        seed,
        fault_plan: format!("{plan:?}"),
        model_preserving: plan.is_model_preserving(),
        faults_fired: out.faults.any_model_violation(),
        chains,
        tasks,
    };
    let report = sentinel::check_run(&evidence).map_err(|e| format!("sentinel failed: {e}"))?;
    let artifact = sentinel::artifact(&evidence, &report);
    Ok((report, artifact))
}

/// Wall-clock gap between progress heartbeats on long sweeps.
const HEARTBEAT_PERIOD: std::time::Duration = std::time::Duration::from_secs(2);

/// One `progress:` heartbeat line: combos done, violations, elapsed time.
fn progress_line(summary: &SoakSummary, total: usize, started: std::time::Instant) -> String {
    format!(
        "progress: {}/{} combos, {} violations, {:.1}s elapsed",
        summary.runs,
        total,
        summary.violations.len(),
        started.elapsed().as_secs_f64()
    )
}

/// Runs the full sweep. `log` receives progress and warning lines (the
/// binary routes them to stderr; tests capture them).
///
/// Long sweeps emit a `progress:` heartbeat through `log` at least every
/// `HEARTBEAT_PERIOD` (2 s), and one final heartbeat is always flushed before
/// returning — including sweeps that end early because every system was
/// skipped.
pub fn run_soak(config: &SoakConfig, log: &mut dyn FnMut(String)) -> SoakSummary {
    let systems = build_systems(config, log);
    let catalog = fault_catalog();
    let mut summary = SoakSummary::default();
    let total = config.combos();
    let started = std::time::Instant::now();
    let mut last_beat = started;
    for system in &systems {
        for (plan_name, plan) in &catalog {
            for s in 0..config.seeds_per_combo {
                let seed = config
                    .base_seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add((summary.runs as u64) << 17)
                    .wrapping_add(s as u64);
                summary.runs += 1;
                let _span = disparity_obs::span!(
                    "soak.run",
                    system = system.name.as_str(),
                    plan = *plan_name,
                    seed = seed,
                );
                disparity_obs::counter_add("soak.runs", 1);
                if last_beat.elapsed() >= HEARTBEAT_PERIOD {
                    last_beat = std::time::Instant::now();
                    log(progress_line(&summary, total, started));
                }
                match run_one(system, *plan, seed, config) {
                    Ok((report, artifact)) => {
                        summary.checks += report.checks;
                        if !report.enforced {
                            summary.flagged += 1;
                        }
                        if report.degraded {
                            summary.degraded += 1;
                            if summary.degraded == 1 {
                                log(format!(
                                    "warning: {} is unschedulable; falling back to the \
                                     Dürr-style baseline bound",
                                    system.name
                                ));
                            }
                        }
                        if report.is_sound() {
                            continue;
                        }
                        if report.degraded {
                            summary.degraded_warnings += 1;
                            log(format!(
                                "warning: baseline check failed on degraded run \
                                 ({} / {plan_name} / seed {seed}); not fatal",
                                system.name
                            ));
                        } else {
                            log(format!(
                                "VIOLATION: {} / {plan_name} / seed {seed}",
                                system.name
                            ));
                            summary.violations.push(artifact);
                        }
                    }
                    Err(e) => {
                        summary.skipped += 1;
                        log(format!(
                            "warning: skipped {} / {plan_name} / seed {seed}: {e}",
                            system.name
                        ));
                    }
                }
            }
        }
    }
    log(progress_line(&summary, total, started));
    summary
}

#[cfg(test)]
mod tests {
    use super::*;
    use disparity_core::backward::{backward_bounds, BackwardBounds};
    use disparity_core::sentinel::{check_run_with, CheckKind};
    use disparity_sched::schedulability::analyze;

    #[test]
    fn buffered_fill_transient_does_not_trip_the_sentinel() {
        // Base seed 999 once generated a buffered two-chain twin whose
        // FIFO fill outlasted the fixed quick-profile warm-up: fault-free
        // runs reported spurious BCBT violations from startup samples
        // taken before Lemma 6's shift applies. The warm-up now stretches
        // by the fill transient; this seed must stay sound.
        let config = SoakConfig {
            base_seed: 999,
            ..SoakConfig::quick()
        };
        let summary = run_soak(&config, &mut |_| {});
        assert!(summary.is_sound(), "{:?}", summary.violations);
    }

    #[test]
    fn quick_soak_finds_no_violations() {
        let config = SoakConfig::quick();
        let mut lines = Vec::new();
        let summary = run_soak(&config, &mut |l| lines.push(l));
        assert!(summary.is_sound(), "{:?}", summary.violations);
        assert_eq!(summary.runs, config.combos());
        assert!(summary.checks > summary.runs, "sentinel actually ran");
        assert!(summary.flagged > 0, "model-violating plans were flagged");
        assert!(summary.degraded > 0, "degradation probe was judged");
        assert!(
            lines.iter().any(|l| l.contains("Dürr-style baseline")),
            "degradation warns: {lines:?}"
        );
        let beat = lines
            .iter()
            .find(|l| l.starts_with("progress: "))
            .expect("final heartbeat is always flushed");
        assert!(
            beat.contains(&format!("{}/{} combos", summary.runs, config.combos())),
            "heartbeat reports completion: {beat}"
        );
        assert!(beat.contains("0 violations"), "heartbeat: {beat}");
        assert!(beat.contains("s elapsed"), "heartbeat: {beat}");
    }

    #[test]
    fn soak_is_deterministic() {
        let config = SoakConfig::quick();
        let a = run_soak(&config, &mut |_| {});
        let b = run_soak(&config, &mut |_| {});
        assert_eq!(a.runs, b.runs);
        assert_eq!(a.checks, b.checks);
        assert_eq!(a.flagged, b.flagged);
        assert_eq!(a.violations.len(), b.violations.len());
    }

    /// End-to-end mutation test: evidence from a *real* simulation run is
    /// judged against a deliberately corrupted WCBT; the sentinel must
    /// notice, and the honest bounds must pass the same evidence.
    #[test]
    fn sentinel_detects_a_broken_bound_on_real_evidence() {
        let config = SoakConfig::quick();
        let probe = build_systems(&config, &mut |_| {})
            .into_iter()
            .find(|s| s.name == "two-chain")
            .expect("two-chain system generated");
        let mut sim = Simulator::new(
            &probe.graph,
            SimConfig {
                horizon: config.horizon,
                warmup: config.warmup,
                seed: 42,
                exec_model: ExecutionTimeModel::Uniform,
                ..Default::default()
            },
        );
        sim.monitor_chains(probe.chains.iter().cloned());
        let out = sim.run().unwrap();
        let o = out.metrics.chain(0);
        let evidence = RunEvidence {
            graph: &probe.graph,
            seed: 42,
            fault_plan: format!("{:?}", FaultPlan::none()),
            model_preserving: true,
            faults_fired: false,
            chains: vec![ChainEvidence {
                chain: probe.chains[0].clone(),
                min_backward: o.min_backward,
                max_backward: o.max_backward,
                samples: o.samples,
            }],
            tasks: Vec::new(),
        };
        assert!(o.samples > 0, "simulation produced backward samples");
        let rt = analyze(&probe.graph).unwrap().into_response_times();
        let honest = check_run_with(&evidence, &rt, false, &|c| {
            backward_bounds(&probe.graph, c, &rt)
        })
        .unwrap();
        assert!(honest.is_sound(), "{:?}", honest.violations);
        // Mutation: halve the WCBT below the observed maximum.
        let broken = |c: &Chain| {
            let b = backward_bounds(&probe.graph, c, &rt);
            BackwardBounds {
                wcbt: o.max_backward.unwrap() - Duration::from_nanos(1),
                bcbt: b.bcbt,
            }
        };
        let verdict = check_run_with(&evidence, &rt, false, &broken).unwrap();
        assert_eq!(verdict.violations.len(), 1);
        assert_eq!(verdict.violations[0].kind, CheckKind::Wcbt);
    }
}
