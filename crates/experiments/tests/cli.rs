//! Integration tests for the `audit` and `fig6` command-line tools.

use std::process::Command;

fn audit_bin() -> &'static str {
    env!("CARGO_BIN_EXE_audit")
}

const SPEC: &str = r#"{
  "ecus": [{"name": "e0"}],
  "tasks": [
    {"name": "s1", "period": 10000000},
    {"name": "s2", "period": 30000000},
    {"name": "fuse", "period": 30000000, "bcet": 1000000, "wcet": 2000000, "ecu": "e0"}
  ],
  "channels": [
    {"from": "s1", "to": "fuse"},
    {"from": "s2", "to": "fuse"}
  ]
}"#;

fn write_spec(name: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(name);
    std::fs::write(&path, SPEC).expect("temp spec written");
    path
}

#[test]
fn audit_reports_and_meets_generous_budget() {
    let spec = write_spec("audit_cli_ok.json");
    let out = Command::new(audit_bin())
        .arg(&spec)
        .args(["--budget-ms", "2000", "--sim-secs", "1", "--let"])
        .output()
        .expect("audit runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("## schedulability"));
    assert!(stdout.contains("worst-case disparity"));
    assert!(stdout.contains("[LET]"));
    assert!(stdout.contains("budget 2000ms: met"));
}

#[test]
fn audit_fails_on_impossible_budget() {
    let spec = write_spec("audit_cli_tight.json");
    let out = Command::new(audit_bin())
        .arg(&spec)
        .args(["--budget-ms", "1", "--sim-secs", "0"])
        .output()
        .expect("audit runs");
    assert!(!out.status.success(), "a 1ms budget must be violated");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("VIOLATED"));
}

#[test]
fn audit_rejects_bad_arguments() {
    let out = Command::new(audit_bin())
        .arg("--definitely-not-a-flag")
        .output()
        .expect("audit runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("usage:"));
}

#[test]
fn audit_writes_dot_output() {
    let spec = write_spec("audit_cli_dot.json");
    let dot = std::env::temp_dir().join("audit_cli_graph.dot");
    let _ = std::fs::remove_file(&dot);
    let out = Command::new(audit_bin())
        .arg(&spec)
        .args(["--sim-secs", "0", "--dot"])
        .arg(&dot)
        .output()
        .expect("audit runs");
    assert!(out.status.success());
    let rendered = std::fs::read_to_string(&dot).expect("dot written");
    assert!(rendered.contains("digraph cause_effect"));
}

#[test]
fn audit_emits_trace_and_metrics_on_request() {
    let spec = write_spec("audit_cli_obs.json");
    let trace = std::env::temp_dir().join("audit_cli_obs_trace.json");
    let metrics = std::env::temp_dir().join("audit_cli_obs_metrics.json");
    let _ = std::fs::remove_file(&trace);
    let _ = std::fs::remove_file(&metrics);
    let out = Command::new(audit_bin())
        .arg(&spec)
        .args(["--sim-secs", "1", "--trace-out"])
        .arg(&trace)
        .arg("--metrics-out")
        .arg(&metrics)
        .output()
        .expect("audit runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("trace written to"), "stderr: {stderr}");
    assert!(stderr.contains("metrics written to"), "stderr: {stderr}");
    let trace_json = disparity_model::json::Value::parse(
        &std::fs::read_to_string(&trace).expect("trace exists"),
    )
    .expect("trace parses");
    assert!(
        !trace_json
            .get("traceEvents")
            .and_then(|v| v.as_array())
            .expect("traceEvents")
            .is_empty(),
        "audit recorded spans"
    );
    let report = disparity_model::json::Value::parse(
        &std::fs::read_to_string(&metrics).expect("metrics exist"),
    )
    .expect("metrics parse");
    assert!(
        report
            .get("counters")
            .and_then(|c| c.get("sim.events"))
            .and_then(|v| v.as_i64())
            .is_some_and(|n| n > 0),
        "the simulation cross-check was counted"
    );
}

#[test]
fn fig6_rejects_unknown_selector() {
    let out = Command::new(env!("CARGO_BIN_EXE_fig6"))
        .arg("bogus")
        .output()
        .expect("fig6 runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}
