//! Golden observability test: records a tiny Fig. 6(a)/(b) sweep and
//! checks that the exported Chrome trace is parseable and well-nested and
//! that the metrics report carries the headline instrumentation.
//!
//! This lives in its own integration-test binary because the recorder is
//! global per process: other tests enabling/draining it concurrently
//! would race with the golden run.

use disparity_experiments::fig6ab::{self, Fig6abConfig};
use disparity_model::json::Value;
use disparity_model::time::Duration;

fn scratch_path(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("disparity-obs-{}-{name}", std::process::id()));
    p
}

/// One trace event, reduced to the fields the nesting check needs.
struct Event {
    name: String,
    tid: i64,
    start_ns: i64,
    end_ns: i64,
}

fn events_of(trace: &Value) -> Vec<Event> {
    trace
        .get("traceEvents")
        .and_then(Value::as_array)
        .expect("traceEvents array")
        .iter()
        .map(|e| {
            assert_eq!(e.get("ph").and_then(Value::as_str), Some("X"));
            assert!(e.get("ts").and_then(Value::as_f64).is_some(), "ts present");
            assert!(e.get("dur").and_then(Value::as_f64).is_some(), "dur");
            let args = e.get("args").expect("args object");
            let start_ns = args.get("start_ns").and_then(Value::as_i64).unwrap();
            let dur_ns = args.get("dur_ns").and_then(Value::as_i64).unwrap();
            assert!(dur_ns >= 0, "span durations are non-negative");
            Event {
                name: e.get("name").and_then(Value::as_str).unwrap().to_string(),
                tid: e.get("tid").and_then(Value::as_i64).unwrap(),
                start_ns,
                end_ns: start_ns + dur_ns,
            }
        })
        .collect()
}

/// Within one thread, any two spans must either nest or be disjoint —
/// partial overlap would mean the RAII guards closed out of order.
fn assert_well_nested(events: &[Event]) {
    for (i, a) in events.iter().enumerate() {
        for b in &events[i + 1..] {
            if a.tid != b.tid {
                continue;
            }
            let disjoint = a.end_ns <= b.start_ns || b.end_ns <= a.start_ns;
            let a_in_b = b.start_ns <= a.start_ns && a.end_ns <= b.end_ns;
            let b_in_a = a.start_ns <= b.start_ns && b.end_ns <= a.end_ns;
            assert!(
                disjoint || a_in_b || b_in_a,
                "spans `{}` [{}, {}] and `{}` [{}, {}] partially overlap on tid {}",
                a.name,
                a.start_ns,
                a.end_ns,
                b.name,
                b.start_ns,
                b.end_ns,
                a.tid
            );
        }
    }
}

fn counter(report: &Value, name: &str) -> i64 {
    report
        .get("counters")
        .and_then(|c| c.get(name))
        .and_then(Value::as_i64)
        .unwrap_or_else(|| panic!("counter `{name}` missing from report"))
}

fn histogram<'a>(report: &'a Value, name: &str) -> &'a Value {
    report
        .get("histograms")
        .and_then(|h| h.get(name))
        .unwrap_or_else(|| panic!("histogram `{name}` missing from report"))
}

#[test]
fn fig6ab_run_exports_nested_trace_and_headline_metrics() {
    disparity_obs::reset();
    disparity_obs::enable();
    let rows = fig6ab::run(&Fig6abConfig {
        task_counts: vec![5, 8],
        graphs_per_point: 2,
        offsets_per_graph: 2,
        sim_horizon: Duration::from_millis(1_500),
        ..Default::default()
    });
    assert!(rows.iter().all(|r| r.graphs > 0), "sweep produced graphs");

    let trace_path = scratch_path("trace.json");
    let metrics_path = scratch_path("metrics.json");
    disparity_obs::export::write_chrome_trace(&trace_path).expect("trace writes");
    disparity_obs::export::write_metrics_report(&metrics_path).expect("metrics write");
    disparity_obs::disable();

    let trace = Value::parse(&std::fs::read_to_string(&trace_path).unwrap())
        .expect("trace re-parses with the in-tree JSON parser");
    let events = events_of(&trace);
    assert!(!events.is_empty(), "the sweep recorded spans");
    assert_well_nested(&events);
    // The sweep phases all appear, and every point span contains at least
    // its own thread's generate/analyze/simulate children.
    for phase in ["fig6ab.point", "fig6ab.generate", "fig6ab.analyze", "fig6ab.simulate"] {
        assert!(
            events.iter().any(|e| e.name == phase),
            "phase `{phase}` missing from trace"
        );
    }
    // WCRT analysis runs inside the sweep's analyze phase.
    assert!(events.iter().any(|e| e.name == "wcrt.response_times"));

    let report = Value::parse(&std::fs::read_to_string(&metrics_path).unwrap())
        .expect("metrics report re-parses");
    assert_eq!(
        report.get("schema").and_then(Value::as_str),
        Some("disparity-obs/metrics-v1")
    );
    // Headline counters from every instrumented layer.
    assert!(counter(&report, "sdiff.decompositions") > 0, "S-diff ran");
    assert!(
        counter(&report, "wcrt.fixed_point_iterations") > 0,
        "WCRT fixed point iterated"
    );
    assert!(counter(&report, "sim.events") > 0, "simulator dispatched");
    assert!(counter(&report, "sim.tokens_produced") > 0, "tokens flowed");
    // Phase-timing histograms come from the span auto-histograms.
    for h in ["span.fig6ab.point", "span.fig6ab.analyze", "span.wcrt.response_times"] {
        let hist = histogram(&report, h);
        let count = hist.get("count").and_then(Value::as_i64).unwrap();
        assert!(count > 0, "{h} recorded");
        let p50 = hist.get("p50").and_then(Value::as_i64).unwrap();
        let p99 = hist.get("p99").and_then(Value::as_i64).unwrap();
        let max = hist.get("max").and_then(Value::as_i64).unwrap();
        assert!(p50 <= p99 && p99 <= max, "{h} quantiles are ordered");
    }
    // The S-diff window width `y_j − x_j` (Theorem 2) is observed.
    assert!(
        histogram(&report, "sdiff.window_span")
            .get("count")
            .and_then(Value::as_i64)
            .unwrap()
            > 0
    );

    std::fs::remove_file(&trace_path).ok();
    std::fs::remove_file(&metrics_path).ok();
}
