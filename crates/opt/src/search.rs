//! Search backends: branch-and-bound (provably optimal on the lattice)
//! and beam search (WATERS scale), behind one [`Optimizer`] trait.
//!
//! Candidates are scored with the incremental engine — each search node
//! is one [`SpecEdit::ResizeBuffer`] away from its parent, so scoring a
//! node is a [`AnalyzedSystem::apply`] that re-sweeps only the chains
//! through the resized edge. When the incremental path refuses an edit
//! the node falls back to the cold pipeline (and the fallback is
//! counted: see [`SearchStats::cold_scored`]).
//!
//! The branch-and-bound backend prunes with a Lemma 6 admissible bound:
//! one extra slot on channel `c` shifts a sampling window by at most
//! `T(src(c))`, so a report's bound can drop by at most
//! `Σ shifts` of the channels that head one of its pairs. Summing that
//! over the undecided suffix of the candidate order (with each channel
//! at its budget-capped ceiling) never underestimates what the
//! remaining choices can still gain, so pruning on it never cuts an
//! optimal leaf.
//!
//! Determinism: the candidate order is fixed (channel id), both
//! backends visit states in a fixed order, and equal-score plans are
//! resolved by a seeded hash of the assignment
//! ([`PlanRequest::seed`]) — the same request always returns the same
//! plan, byte for byte.

use std::collections::BTreeMap;
use std::rc::Rc;

use disparity_core::buffering::optimize_task;
use disparity_core::delta::AnalyzedSystem;
use disparity_core::disparity::AnalysisConfig;
use disparity_model::edit::{apply_all, SpecEdit};
use disparity_model::ids::{ChannelId, TaskId};
use disparity_model::spec::SystemSpec;
use disparity_model::time::Duration;
use disparity_rng::splitmix64_mix;

use crate::candidates::{derive_candidates, CandidateChannel, PairConstraint};
use crate::error::OptError;
use crate::plan::{
    ChannelAssignment, GlobalPlan, PairDelta, PlanRequest, PlanScore, SearchStats, TaskPrediction,
};

/// Default beam width of [`BeamSearch`] and the `Auto` fallback.
pub const DEFAULT_BEAM_WIDTH: usize = 8;

/// Rounds handed to the per-pair greedy when building the incumbent.
const GREEDY_ROUNDS: usize = 4;

/// `Auto` runs branch-and-bound while the lattice has at most this many
/// states; beyond it, beam search.
const AUTO_BNB_STATE_LIMIT: u128 = 20_000;

/// Which search backend to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendChoice {
    /// Branch-and-bound on small lattices (up to 20 000 states), beam
    /// search beyond that.
    Auto,
    /// Exact branch-and-bound (optimal over the candidate lattice).
    BranchAndBound,
    /// Beam search with the given width.
    Beam {
        /// States kept per level.
        width: usize,
    },
}

impl BackendChoice {
    fn resolve(self, candidates: &[CandidateChannel]) -> ResolvedBackend {
        match self {
            BackendChoice::BranchAndBound => ResolvedBackend::BranchAndBound,
            BackendChoice::Beam { width } => ResolvedBackend::Beam(width.max(1)),
            BackendChoice::Auto => {
                let mut states: u128 = 1;
                for c in candidates {
                    states = states.saturating_mul(c.max_extra as u128 + 1);
                    if states > AUTO_BNB_STATE_LIMIT {
                        return ResolvedBackend::Beam(DEFAULT_BEAM_WIDTH);
                    }
                }
                ResolvedBackend::BranchAndBound
            }
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum ResolvedBackend {
    BranchAndBound,
    Beam(usize),
}

/// A search backend that turns an analyzed base system and a request
/// into a validated plan.
///
/// Backends search the D007-safe candidate lattice only. The product
/// entry point [`optimize_analyzed`] additionally folds in the per-pair
/// greedy incumbent, which guarantees its plans are never worse than
/// greedy under the same budget; a bare backend makes no such promise.
pub trait Optimizer {
    /// Stable backend name (used in plans and wire responses).
    fn name(&self) -> &'static str;

    /// Searches for the best assignment under `request`.
    ///
    /// # Errors
    ///
    /// See [`OptError`]; notably `ValidationDivergence` when a plan's
    /// predicted bounds disagree with a cold re-analysis.
    fn plan(&self, base: &AnalyzedSystem, request: &PlanRequest) -> Result<GlobalPlan, OptError>;
}

/// Exact branch-and-bound (depth-first, Lemma 6 admissible bound).
#[derive(Debug, Clone, Copy, Default)]
pub struct BranchAndBound;

impl Optimizer for BranchAndBound {
    fn name(&self) -> &'static str {
        "branch_and_bound"
    }

    fn plan(&self, base: &AnalyzedSystem, request: &PlanRequest) -> Result<GlobalPlan, OptError> {
        let mut s = Searcher::new(base, request)?;
        let best = s.branch_and_bound()?;
        s.finish(self.name(), best)
    }
}

/// Width-limited beam search for systems whose lattice is too large to
/// enumerate.
#[derive(Debug, Clone, Copy)]
pub struct BeamSearch {
    /// States kept per level.
    pub width: usize,
}

impl Default for BeamSearch {
    fn default() -> Self {
        BeamSearch {
            width: DEFAULT_BEAM_WIDTH,
        }
    }
}

impl Optimizer for BeamSearch {
    fn name(&self) -> &'static str {
        "beam"
    }

    fn plan(&self, base: &AnalyzedSystem, request: &PlanRequest) -> Result<GlobalPlan, OptError> {
        let mut s = Searcher::new(base, request)?;
        let best = s.beam(self.width.max(1))?;
        s.finish(self.name(), best)
    }
}

/// The product entry point: runs the chosen backend, then folds in the
/// budget-truncated per-pair greedy assignment and the no-op plan, and
/// returns whichever scores best (ties broken by the seeded hash).
///
/// Consequences, by construction:
///
/// * the plan is never worse than per-pair greedy [`optimize_task`]
///   truncated to the same budget — unconditionally with
///   [`PlanRequest::forbid_new_findings`] off, and whenever the greedy
///   plan is itself admissible (introduces no new D007 finding) with
///   the guard on;
/// * the plan is never worse than doing nothing.
///
/// # Errors
///
/// See [`OptError`].
pub fn optimize_analyzed(
    base: &AnalyzedSystem,
    request: &PlanRequest,
    backend: BackendChoice,
) -> Result<GlobalPlan, OptError> {
    let mut s = {
        let _span = disparity_obs::span("opt.candidates");
        Searcher::new(base, request)?
    };
    let resolved = backend.resolve(&s.candidates);
    let (name, searched) = {
        let mut span = disparity_obs::span("opt.search");
        span.attr("candidates", i64::try_from(s.candidates.len()).unwrap_or(i64::MAX));
        match resolved {
            ResolvedBackend::BranchAndBound => ("branch_and_bound", s.branch_and_bound()?),
            ResolvedBackend::Beam(width) => ("beam", s.beam(width)?),
        }
    };
    let greedy = s.greedy_candidate()?;
    let mut best = Candidate {
        backend: name,
        ..searched
    };
    if let Some(g) = greedy {
        if (g.score, g.tie) < (best.score, best.tie) {
            best = g;
        }
    }
    s.finish(best.backend, best)
}

/// Convenience: cold-analyzes `spec` and calls [`optimize_analyzed`].
///
/// # Errors
///
/// See [`OptError`].
pub fn optimize_spec(
    spec: &SystemSpec,
    config: AnalysisConfig,
    request: &PlanRequest,
    backend: BackendChoice,
) -> Result<GlobalPlan, OptError> {
    let base = AnalyzedSystem::analyze(spec, config)?;
    optimize_analyzed(&base, request, backend)
}

/// Exhaustive enumeration of the whole candidate lattice, scored
/// through the **cold** pipeline only — the independent oracle the
/// branch-and-bound backend is asserted against in tests. Exponential;
/// fixtures only.
///
/// # Errors
///
/// See [`OptError`].
pub fn exhaustive_plan(
    base: &AnalyzedSystem,
    request: &PlanRequest,
) -> Result<GlobalPlan, OptError> {
    let mut s = Searcher::new(base, request)?;
    let n = s.candidates.len();
    let mut extras = vec![0usize; n];
    let mut best: Option<Candidate> = None;
    loop {
        let used: usize = extras.iter().sum();
        if used <= s.budget && s.clean_lattice(&extras) {
            s.stats.nodes += 1;
            s.stats.cold_scored += 1;
            let mut spec = s.base.spec().clone();
            let edits: Vec<SpecEdit> = s.lattice_assignments(&extras).iter().map(ChannelAssignment::edit).collect();
            apply_all(&mut spec, &edits).map_err(|(_, e)| OptError::Edit(e.to_string()))?;
            let sys = Rc::new(AnalyzedSystem::analyze(&spec, s.base.config())?);
            let score = s.score_of(&sys);
            let tie = s.tie_of(&s.lattice_pairs(&extras));
            let cand = Candidate {
                backend: "exhaustive",
                extras: extras.clone(),
                sys,
                score,
                tie,
            };
            if best
                .as_ref()
                .is_none_or(|b| (cand.score, cand.tie) < (b.score, b.tie))
            {
                best = Some(cand);
            }
        }
        // Odometer over the per-channel ranges.
        let mut i = 0;
        loop {
            if i == n {
                let Some(best) = best else {
                    return s.noop_finish("exhaustive");
                };
                return s.finish("exhaustive", best);
            }
            if extras[i] < s.candidates[i].max_extra {
                extras[i] += 1;
                break;
            }
            extras[i] = 0;
            i += 1;
        }
    }
}

/// The budget-truncated per-pair greedy assignment: runs
/// [`optimize_task`] for every fusion task (in task-id order) on a
/// shared working graph, consuming budget slots step by step and
/// skipping steps that no longer fit.
///
/// # Errors
///
/// Propagates analysis errors from the greedy rounds.
pub fn greedy_assignment(
    base: &AnalyzedSystem,
    budget: usize,
) -> Result<Vec<ChannelAssignment>, OptError> {
    let mut graph = base.graph().clone();
    let mut remaining = budget;
    let mut tasks: Vec<TaskId> = base.reports().iter().map(|r| r.task).collect();
    tasks.sort_unstable();
    for task in tasks {
        if remaining == 0 {
            break;
        }
        let outcome = optimize_task(&graph, task, base.config(), GREEDY_ROUNDS)?;
        for step in &outcome.steps {
            let current = graph.channel(step.plan.channel).capacity();
            let extra = step.plan.capacity.saturating_sub(current);
            if extra == 0 {
                continue;
            }
            if extra > remaining {
                // Later steps of this task build on this one; stop here.
                break;
            }
            graph
                .set_channel_capacity(step.plan.channel, step.plan.capacity)
                .map_err(|e| OptError::Edit(e.to_string()))?;
            remaining -= extra;
        }
    }
    let base_graph = base.graph();
    let mut assignments = Vec::new();
    for ch in base_graph.channels() {
        let new_cap = graph.channel(ch.id()).capacity();
        if new_cap > ch.capacity() {
            assignments.push(ChannelAssignment {
                channel: ch.id(),
                from: base_graph.task(ch.src()).name().to_string(),
                to: base_graph.task(ch.dst()).name().to_string(),
                base_capacity: ch.capacity(),
                capacity: new_cap,
            });
        }
    }
    Ok(assignments)
}

/// A resolved per-task target.
struct ResolvedTarget {
    task: TaskId,
    bound: Duration,
}

/// A scored assignment, lattice (`extras` aligned with the candidate
/// order) or free-form (greedy; `extras` empty, `sys` already carries
/// the resizes).
struct Candidate {
    backend: &'static str,
    /// Extra slots per candidate, aligned with the lattice order. For
    /// free-form (greedy) candidates this is empty and the assignment
    /// is recovered from `sys`'s graph instead.
    extras: Vec<usize>,
    sys: Rc<AnalyzedSystem>,
    score: PlanScore,
    tie: u64,
}

struct Searcher<'a> {
    base: &'a AnalyzedSystem,
    candidates: Vec<CandidateChannel>,
    /// The D007 constraint table; a plan that introduces a finding is
    /// never returned (and never becomes a pruning incumbent).
    constraints: Vec<PairConstraint>,
    /// Channel id → lattice level, for constraint evaluation.
    index: BTreeMap<ChannelId, usize>,
    targets: Vec<ResolvedTarget>,
    budget: usize,
    seed: u64,
    forbid_new_findings: bool,
    stats: SearchStats,
}

impl<'a> Searcher<'a> {
    fn new(base: &'a AnalyzedSystem, request: &PlanRequest) -> Result<Self, OptError> {
        let set = derive_candidates(base)?;
        let candidates = set.channels;
        let constraints = set.constraints;
        let index: BTreeMap<ChannelId, usize> = candidates
            .iter()
            .enumerate()
            .map(|(i, c)| (c.channel, i))
            .collect();
        let mut targets = Vec::with_capacity(request.targets.len());
        for t in &request.targets {
            let task = base
                .graph()
                .find_task(&t.task)
                .ok_or_else(|| OptError::UnknownTarget {
                    task: t.task.clone(),
                })?;
            targets.push(ResolvedTarget {
                task,
                bound: t.bound,
            });
        }
        let stats = SearchStats {
            candidates: candidates.len(),
            ..SearchStats::default()
        };
        Ok(Searcher {
            base,
            candidates,
            constraints,
            index,
            targets,
            budget: request.budget.extra_slots,
            seed: request.seed,
            forbid_new_findings: request.forbid_new_findings,
            stats,
        })
    }

    /// Whether a lattice assignment is admissible under the request's
    /// D007 policy (introduces no new over-buffered-channel finding, or
    /// the guard is off). Exact per Lemma 6: each side's midpoint
    /// shifts left by its own head channel's `extra × period`.
    fn clean_lattice(&self, extras: &[usize]) -> bool {
        if !self.forbid_new_findings {
            return true;
        }
        let extra_of = |ch: ChannelId| self.index.get(&ch).map_or(0, |&i| extras[i]);
        !self
            .constraints
            .iter()
            .any(|c| c.introduces_finding(&extra_of))
    }

    /// Admissibility of a free-form (off-lattice) assignment.
    fn clean_map(&self, extra: &BTreeMap<ChannelId, usize>) -> bool {
        if !self.forbid_new_findings {
            return true;
        }
        let extra_of = |ch: ChannelId| extra.get(&ch).copied().unwrap_or(0);
        !self
            .constraints
            .iter()
            .any(|c| c.introduces_finding(&extra_of))
    }

    /// The lexicographic objective of a state.
    fn score_of(&self, sys: &AnalyzedSystem) -> PlanScore {
        let total = sys
            .reports()
            .iter()
            .map(|r| i128::from(r.bound.as_nanos()))
            .sum();
        let excess = self
            .targets
            .iter()
            .map(|t| {
                let bound = sys.report_for(t.task).map_or(Duration::ZERO, |r| r.bound);
                (i128::from(bound.as_nanos()) - i128::from(t.bound.as_nanos())).max(0)
            })
            .sum();
        PlanScore {
            target_excess_ns: excess,
            total_bound_ns: total,
        }
    }

    /// Seeded tie-break hash over the non-trivial `(channel, capacity)`
    /// pairs of an assignment (must be sorted by channel).
    fn tie_of(&self, pairs: &[(ChannelId, usize)]) -> u64 {
        let mut h = splitmix64_mix(self.seed ^ 0x0B7A_5EED);
        for (ch, cap) in pairs {
            h = splitmix64_mix(h ^ ch.index() as u64);
            h = splitmix64_mix(h ^ *cap as u64);
        }
        h
    }

    /// Non-trivial `(channel, capacity)` pairs of a lattice assignment.
    fn lattice_pairs(&self, extras: &[usize]) -> Vec<(ChannelId, usize)> {
        self.candidates
            .iter()
            .zip(extras)
            .filter(|(_, &e)| e > 0)
            .map(|(c, &e)| (c.channel, c.base_capacity + e))
            .collect()
    }

    /// Lattice assignment as wire-ready channel assignments.
    fn lattice_assignments(&self, extras: &[usize]) -> Vec<ChannelAssignment> {
        self.candidates
            .iter()
            .zip(extras)
            .filter(|(_, &e)| e > 0)
            .map(|(c, &e)| ChannelAssignment {
                channel: c.channel,
                from: c.from_name.clone(),
                to: c.to_name.clone(),
                base_capacity: c.base_capacity,
                capacity: c.base_capacity + e,
            })
            .collect()
    }

    /// Scores a child one resize away from `parent`: incremental first,
    /// cold fallback.
    fn child(
        &mut self,
        parent: &Rc<AnalyzedSystem>,
        edit: &SpecEdit,
    ) -> Result<Rc<AnalyzedSystem>, OptError> {
        match parent.apply(edit) {
            Ok((sys, _)) => {
                self.stats.delta_scored += 1;
                Ok(Rc::new(sys))
            }
            Err(_) => {
                self.stats.cold_scored += 1;
                let mut spec = parent.spec().clone();
                apply_all(&mut spec, std::slice::from_ref(edit))
                    .map_err(|(_, e)| OptError::Edit(e.to_string()))?;
                Ok(Rc::new(AnalyzedSystem::analyze(&spec, parent.config())?))
            }
        }
    }

    /// The root state (no resizes).
    fn root(&mut self) -> Candidate {
        self.stats.nodes += 1;
        let sys = Rc::new(self.base.clone());
        let score = self.score_of(&sys);
        let extras = vec![0usize; self.candidates.len()];
        let tie = self.tie_of(&self.lattice_pairs(&extras));
        Candidate {
            backend: "noop",
            extras,
            sys,
            score,
            tie,
        }
    }

    /// Optimistic reduction still achievable from `level` on with
    /// `remaining` budget slots (Lemma 6 relaxation, admissible).
    fn optimistic_reduction(&self, level: usize, remaining: usize) -> i128 {
        self.candidates[level..]
            .iter()
            .map(|c| {
                let extra = c.max_extra.min(remaining) as i128;
                i128::from(c.period.as_nanos()) * extra * c.reports_touched as i128
            })
            .sum()
    }

    fn branch_and_bound(&mut self) -> Result<Candidate, OptError> {
        let root = self.root();
        let mut incumbent = Candidate {
            backend: "branch_and_bound",
            ..root
        };
        let root_state = Rc::clone(&incumbent.sys);
        let mut extras = vec![0usize; self.candidates.len()];
        self.bnb_node(0, &root_state, incumbent.score, &mut extras, self.budget, &mut incumbent)?;
        Ok(incumbent)
    }

    /// Expands one branch-and-bound node: `state` reflects
    /// `extras[..level]`, `score` is its objective.
    fn bnb_node(
        &mut self,
        level: usize,
        state: &Rc<AnalyzedSystem>,
        score: PlanScore,
        extras: &mut Vec<usize>,
        remaining: usize,
        incumbent: &mut Candidate,
    ) -> Result<(), OptError> {
        if level == self.candidates.len() {
            if !self.clean_lattice(extras) {
                return Ok(());
            }
            let tie = self.tie_of(&self.lattice_pairs(extras));
            if (score, tie) < (incumbent.score, incumbent.tie) {
                *incumbent = Candidate {
                    backend: "branch_and_bound",
                    extras: extras.clone(),
                    sys: Rc::clone(state),
                    score,
                    tie,
                };
            }
            return Ok(());
        }
        // Admissible prune: even reducing every undecided channel's
        // touched reports by its full budget-capped shift cannot beat
        // the incumbent.
        let optimistic = self.optimistic_reduction(level, remaining);
        let optimistic_score = PlanScore {
            target_excess_ns: (score.target_excess_ns - optimistic).max(0),
            total_bound_ns: (score.total_bound_ns - optimistic).max(0),
        };
        if optimistic_score > incumbent.score {
            self.stats.pruned += 1;
            return Ok(());
        }
        let cand = self.candidates[level].clone();
        let cap = cand.max_extra.min(remaining);
        // Deeper buffers first: good incumbents early tighten pruning.
        for extra in (0..=cap).rev() {
            extras[level] = extra;
            if extra == 0 {
                self.stats.nodes += 1;
                self.bnb_node(level + 1, state, score, extras, remaining, incumbent)?;
            } else {
                let edit = SpecEdit::ResizeBuffer {
                    from: cand.from_name.clone(),
                    to: cand.to_name.clone(),
                    capacity: cand.base_capacity + extra,
                };
                let child = self.child(state, &edit)?;
                let child_score = self.score_of(&child);
                self.stats.nodes += 1;
                self.bnb_node(
                    level + 1,
                    &child,
                    child_score,
                    extras,
                    remaining - extra,
                    incumbent,
                )?;
            }
        }
        extras[level] = 0;
        Ok(())
    }

    fn beam(&mut self, width: usize) -> Result<Candidate, OptError> {
        let root = self.root();
        let base_score = root.score;
        let base_tie = root.tie;
        let mut beam = vec![BeamState {
            extras: Vec::new(),
            used: 0,
            sys: Rc::clone(&root.sys),
            score: root.score,
        }];
        for level in 0..self.candidates.len() {
            let cand = self.candidates[level].clone();
            let mut next = Vec::new();
            for state in &beam {
                let cap = cand.max_extra.min(self.budget - state.used);
                for extra in 0..=cap {
                    let mut extras = state.extras.clone();
                    extras.push(extra);
                    if extra == 0 {
                        self.stats.nodes += 1;
                        next.push(BeamState {
                            extras,
                            used: state.used,
                            sys: Rc::clone(&state.sys),
                            score: state.score,
                        });
                    } else {
                        let edit = SpecEdit::ResizeBuffer {
                            from: cand.from_name.clone(),
                            to: cand.to_name.clone(),
                            capacity: cand.base_capacity + extra,
                        };
                        let sys = self.child(&state.sys, &edit)?;
                        let score = self.score_of(&sys);
                        self.stats.nodes += 1;
                        next.push(BeamState {
                            extras,
                            used: state.used + extra,
                            sys,
                            score,
                        });
                    }
                }
            }
            next.sort_by(|a, b| {
                (a.score, self.tie_of(&self.lattice_pairs(&a.extras)))
                    .cmp(&(b.score, self.tie_of(&self.lattice_pairs(&b.extras))))
            });
            next.truncate(width);
            beam = next;
        }
        // Final states are complete assignments; only D007-clean ones
        // may be returned.
        let best = beam
            .into_iter()
            .find(|s| self.clean_lattice(&s.extras));
        let Some(best) = best else {
            // Empty candidate set: the root is the only state.
            return Ok(Candidate {
                backend: "beam",
                ..self.root()
            });
        };
        let tie = self.tie_of(&self.lattice_pairs(&best.extras));
        let mut result = Candidate {
            backend: "beam",
            extras: best.extras,
            sys: best.sys,
            score: best.score,
            tie,
        };
        // The all-zero path can fall off a narrow beam; doing nothing is
        // always admissible, so never return worse than the root.
        if (base_score, base_tie) < (result.score, result.tie) {
            result = Candidate {
                backend: "beam",
                extras: vec![0; self.candidates.len()],
                sys: Rc::new(self.base.clone()),
                score: base_score,
                tie: base_tie,
            };
        }
        Ok(result)
    }

    /// Scores the budget-truncated greedy assignment as a free-form
    /// candidate. Returns `None` when greedy finds nothing to resize —
    /// or when its per-pair designs jointly over-buffer some other pair
    /// (a new D007 finding): greedy plans that trade one pair's
    /// alignment away are not admissible product plans.
    fn greedy_candidate(&mut self) -> Result<Option<Candidate>, OptError> {
        let assignments = greedy_assignment(self.base, self.budget)?;
        if assignments.is_empty() {
            return Ok(None);
        }
        let extra: BTreeMap<ChannelId, usize> = assignments
            .iter()
            .map(|a| (a.channel, a.extra_slots()))
            .collect();
        if !self.clean_map(&extra) {
            return Ok(None);
        }
        let mut sys = Rc::new(self.base.clone());
        for a in &assignments {
            sys = self.child(&sys, &a.edit())?;
        }
        self.stats.nodes += 1;
        let score = self.score_of(&sys);
        let mut pairs: Vec<(ChannelId, usize)> =
            assignments.iter().map(|a| (a.channel, a.capacity)).collect();
        pairs.sort_unstable();
        let tie = self.tie_of(&pairs);
        Ok(Some(Candidate {
            backend: "greedy",
            extras: Vec::new(),
            sys,
            score,
            tie,
        }))
    }

    /// Finishes with the empty plan (used when a search found nothing).
    fn noop_finish(&mut self, backend: &'static str) -> Result<GlobalPlan, OptError> {
        let root = self.root();
        self.finish(backend, root)
    }

    /// Validates the winning candidate against a cold re-analysis of
    /// the plan-applied spec and assembles the plan from the **cold**
    /// numbers. Divergence is an error, not a warning: a plan whose
    /// predictions the cold pipeline cannot reproduce must never ship.
    fn finish(&mut self, backend: &'static str, best: Candidate) -> Result<GlobalPlan, OptError> {
        let _span = disparity_obs::span("opt.validate");
        let assignments = if best.extras.is_empty() && best.backend == "greedy" {
            let mut a: Vec<ChannelAssignment> = Vec::new();
            let base_graph = self.base.graph();
            for ch in base_graph.channels() {
                let new_cap = best.sys.graph().channel(ch.id()).capacity();
                if new_cap > ch.capacity() {
                    a.push(ChannelAssignment {
                        channel: ch.id(),
                        from: base_graph.task(ch.src()).name().to_string(),
                        to: base_graph.task(ch.dst()).name().to_string(),
                        base_capacity: ch.capacity(),
                        capacity: new_cap,
                    });
                }
            }
            a
        } else {
            self.lattice_assignments(&best.extras)
        };
        let mut spec = self.base.spec().clone();
        let edits: Vec<SpecEdit> = assignments.iter().map(ChannelAssignment::edit).collect();
        apply_all(&mut spec, &edits).map_err(|(_, e)| OptError::Edit(e.to_string()))?;
        let cold = AnalyzedSystem::analyze(&spec, self.base.config())?;

        // Byte-identity of every predicted bound against the cold run.
        for predicted in best.sys.reports() {
            let name = self.base.graph().task(predicted.task).name().to_string();
            let Some(actual) = cold.report_for(predicted.task) else {
                return Err(OptError::ValidationDivergence {
                    task: name,
                    predicted: predicted.bound,
                    reanalyzed: Duration::ZERO,
                });
            };
            if actual.bound != predicted.bound
                || actual.pairs.len() != predicted.pairs.len()
                || actual
                    .pairs
                    .iter()
                    .zip(&predicted.pairs)
                    .any(|(a, p)| a.bound != p.bound)
            {
                return Err(OptError::ValidationDivergence {
                    task: name,
                    predicted: predicted.bound,
                    reanalyzed: actual.bound,
                });
            }
        }

        let graph = self.base.graph();
        let mut predictions = Vec::new();
        for after in cold.reports() {
            let Some(before) = self.base.report_for(after.task) else {
                continue;
            };
            let target = self
                .targets
                .iter()
                .find(|t| t.task == after.task)
                .map(|t| t.bound);
            let pairs = before
                .pairs
                .iter()
                .zip(&after.pairs)
                .map(|(b, a)| PairDelta {
                    lambda: b.lambda,
                    nu: b.nu,
                    analyzed_at: graph.task(b.analyzed_at).name().to_string(),
                    before: b.bound,
                    after: a.bound,
                })
                .collect();
            predictions.push(TaskPrediction {
                task: graph.task(after.task).name().to_string(),
                before: before.bound,
                after: after.bound,
                target,
                pairs,
            });
        }

        let score = self.score_of(&cold);
        let slots_used = assignments.iter().map(ChannelAssignment::extra_slots).sum();
        let stats = self.stats;
        disparity_obs::counter_add("opt.plans", 1);
        disparity_obs::counter_add("opt.search.nodes", stats.nodes);
        disparity_obs::counter_add("opt.search.pruned", stats.pruned);
        disparity_obs::counter_add("opt.score.delta", stats.delta_scored);
        disparity_obs::counter_add("opt.score.cold", stats.cold_scored);
        Ok(GlobalPlan {
            backend,
            assignments,
            predictions,
            score,
            slots_used,
            stats,
        })
    }
}

/// One beam state: `extras` covers the levels expanded so far.
struct BeamState {
    extras: Vec<usize>,
    used: usize,
    sys: Rc<AnalyzedSystem>,
    score: PlanScore,
}
