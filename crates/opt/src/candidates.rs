//! Candidate lattice and D007 constraint derivation.
//!
//! The optimizer searches per-channel FIFO capacities over a finite
//! lattice derived from the base analysis. A channel is a candidate iff
//! it heads the truncated *fresher* side of at least one analyzed chain
//! pair — exactly the channels Algorithm 1 (and Lemma 6) can act on.
//! Truncated chains always start at a source, and a source has no
//! predecessors, so a candidate channel can only ever appear as a
//! *first hop*; its capacity moves a sampling window if and only if the
//! window's chain starts with it.
//!
//! The per-channel ceiling is the **maximum** midpoint gap (in whole
//! source periods) over every pair the channel heads as the fresher
//! side — the deepest buffer any single-pair Algorithm 1 design could
//! want. Deeper ceilings than that cannot lower any pair bound further
//! (beyond alignment a shift re-widens its own pair).
//!
//! Joint assignments inside that box can still over-buffer a *different*
//! pair the channel heads (analyzer rule D007): a window is shifted by
//! its own head channel only, so a shift designed for one pair's gap may
//! overshoot another pair's. Rather than shrinking the box to the
//! worst-case pair (which empties it on funnel systems, where most
//! channels head both fresh and stale sides), the derivation also emits
//! the full pair-constraint table; the search evaluates candidate
//! assignments against it and never returns a plan that introduces a
//! new D007 finding. The midpoint arithmetic is exact: buffering a head
//! channel by `e` slots moves that side's sampling-window midpoint left
//! by exactly `e·T(source)` (Lemma 6) and nothing else.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use disparity_core::delta::AnalyzedSystem;
use disparity_core::pairwise::decompose;
use disparity_model::chain::Chain;
use disparity_model::ids::{ChannelId, TaskId};
use disparity_model::time::Duration;

use crate::error::OptError;

/// One resizable channel with its score-relevant capacity ceiling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CandidateChannel {
    /// The channel.
    pub channel: ChannelId,
    /// Producing (source) task.
    pub from: TaskId,
    /// Consuming task.
    pub to: TaskId,
    /// Producing task name (wire form).
    pub from_name: String,
    /// Consuming task name (wire form).
    pub to_name: String,
    /// The source's period — one extra slot shifts the window left by
    /// exactly this much (Lemma 6).
    pub period: Duration,
    /// The capacity the spec already has.
    pub base_capacity: usize,
    /// Largest useful number of extra slots: the maximum midpoint gap
    /// in whole source periods over every pair this channel heads as
    /// the fresher side.
    pub max_extra: usize,
    /// Fusion tasks with at least one pair headed by this channel —
    /// the only reports a resize can move (used by the admissible
    /// bound of the branch-and-bound backend).
    pub reports_touched: usize,
}

/// One side of a pair constraint: the head channel (if the chain is
/// long enough to have one) and the base-analysis window midpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairSide {
    /// The side's first-hop channel; `None` for trivial chains, which
    /// have no buffer to over-size.
    pub channel: Option<ChannelId>,
    /// The channel's capacity in the base spec.
    pub base_capacity: usize,
    /// The side's sampling-window midpoint on the base system.
    pub midpoint: Duration,
    /// The side's source period (the per-slot shift).
    pub period: Duration,
}

/// One analyzed chain pair as a D007 constraint: a side with total
/// capacity `> 1` must keep its shifted midpoint at or above its
/// peer's.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairConstraint {
    /// The λ side (after truncation to the last joint task).
    pub lambda: PairSide,
    /// The ν side.
    pub nu: PairSide,
}

impl PairConstraint {
    /// Whether the assignment `extra_of` (extra slots per channel)
    /// makes a side of this pair fire D007 when it did not fire on the
    /// base system. Sides already firing in the base spec are
    /// grandfathered — the optimizer refuses to *introduce* findings,
    /// not to inherit them.
    pub fn introduces_finding(&self, extra_of: &dyn Fn(ChannelId) -> usize) -> bool {
        let shift = |side: &PairSide| -> Duration {
            match side.channel {
                Some(ch) => side.period * i64::try_from(extra_of(ch)).unwrap_or(i64::MAX),
                None => Duration::ZERO,
            }
        };
        let fires = |own: &PairSide, own_shift: Duration, other_mid: Duration| -> bool {
            let extra = own.channel.map_or(0, extra_of);
            own.base_capacity + extra > 1 && own.midpoint - own_shift < other_mid
        };
        let (sl, sn) = (shift(&self.lambda), shift(&self.nu));
        let lambda_new = fires(&self.lambda, sl, self.nu.midpoint - sn)
            && !(self.lambda.base_capacity > 1 && self.lambda.midpoint < self.nu.midpoint);
        let nu_new = fires(&self.nu, sn, self.lambda.midpoint - sl)
            && !(self.nu.base_capacity > 1 && self.nu.midpoint < self.lambda.midpoint);
        lambda_new || nu_new
    }
}

/// The derived search space: the channel lattice plus the D007
/// constraint table every returned plan is checked against.
#[derive(Debug, Clone)]
pub struct CandidateSet {
    /// Resizable channels, sorted by channel id (the search's level
    /// order).
    pub channels: Vec<CandidateChannel>,
    /// Every decomposable truncated chain pair at every sink, exactly
    /// the set analyzer rule D007 sweeps.
    pub constraints: Vec<PairConstraint>,
}

impl CandidateSet {
    /// Whether the assignment introduces any new D007 finding.
    #[must_use]
    pub fn introduces_finding(&self, extra_of: &dyn Fn(ChannelId) -> usize) -> bool {
        self.constraints
            .iter()
            .any(|c| c.introduces_finding(extra_of))
    }
}

/// Per-channel accumulation while sweeping pairs.
struct Accum {
    max_steps: i64,
    touched: BTreeSet<TaskId>,
}

fn side_of(graph: &disparity_model::graph::CauseEffectGraph, chain: &Chain, mid: Duration) -> PairSide {
    let channel = chain
        .get(1)
        .and_then(|second| graph.channel_between(chain.head(), second));
    PairSide {
        channel: channel.map(disparity_model::channel::Channel::id),
        base_capacity: channel.map_or(1, disparity_model::channel::Channel::capacity),
        midpoint: mid,
        period: graph.task(chain.head()).period(),
    }
}

/// Derives the candidate lattice and the D007 constraint table from the
/// base analysis.
///
/// Channels that never head a fresher side (ceiling zero everywhere)
/// are dropped: resizing them cannot lower any bound. The result is
/// sorted by channel id, which fixes the search's level order.
///
/// # Errors
///
/// Propagates nothing today — pairs whose decomposition fails are
/// skipped (a pair the pairwise analysis refuses cannot be buffered
/// either, and D007 skips it too); the signature is fallible for
/// forward compatibility.
pub fn derive_candidates(base: &AnalyzedSystem) -> Result<CandidateSet, OptError> {
    let graph = base.graph();
    let rt = base.response_times();
    let mut accum: BTreeMap<ChannelId, Accum> = BTreeMap::new();

    for report in base.reports() {
        for pair in &report.pairs {
            let lambda = &report.chains[pair.lambda];
            let nu = &report.chains[pair.nu];
            let Some((lam_t, nu_t)) = lambda.truncate_to_last_joint(nu) else {
                continue;
            };
            let Ok(d) = decompose(graph, &lam_t, &nu_t, rt) else {
                continue;
            };
            let w_lambda = d.lambda_source_window();
            let w_nu = d.nu_source_window(graph);
            let sides: [(&Chain, Duration, Duration); 2] = [
                (&lam_t, w_lambda.midpoint(), w_nu.midpoint()),
                (&nu_t, w_nu.midpoint(), w_lambda.midpoint()),
            ];
            for (chain, own_mid, other_mid) in sides {
                let Some(second) = chain.get(1) else {
                    continue;
                };
                let Some(ch) = graph.channel_between(chain.head(), second) else {
                    continue;
                };
                let period = graph.task(chain.head()).period();
                let steps = if own_mid >= other_mid && period > Duration::ZERO {
                    (own_mid - other_mid).div_floor(period)
                } else {
                    0
                };
                let entry = accum.entry(ch.id()).or_insert(Accum {
                    max_steps: 0,
                    touched: BTreeSet::new(),
                });
                entry.max_steps = entry.max_steps.max(steps);
                entry.touched.insert(report.task);
            }
        }
    }

    let mut channels = Vec::new();
    for (id, acc) in accum {
        if acc.max_steps <= 0 {
            continue;
        }
        let ch = graph.channel(id);
        let from = ch.src();
        let to = ch.dst();
        channels.push(CandidateChannel {
            channel: id,
            from,
            to,
            from_name: graph.task(from).name().to_string(),
            to_name: graph.task(to).name().to_string(),
            period: graph.task(from).period(),
            base_capacity: ch.capacity(),
            max_extra: usize::try_from(acc.max_steps).unwrap_or(0),
            reports_touched: acc.touched.len(),
        });
    }

    // Mirror `check_pairwise`'s D007 sweep: every decomposable truncated
    // chain pair at every sink becomes one constraint.
    let mut constraints = Vec::new();
    let chain_limit = base.config().chain_limit;
    for sink in graph.sinks() {
        let Ok(chains) = graph.chains_to(sink, chain_limit) else {
            continue;
        };
        for i in 0..chains.len() {
            for j in (i + 1)..chains.len() {
                let Some((lam_t, nu_t)) = chains[i].truncate_to_last_joint(&chains[j]) else {
                    continue;
                };
                if lam_t == nu_t {
                    continue;
                }
                let Ok(d) = decompose(graph, &lam_t, &nu_t, rt) else {
                    continue;
                };
                constraints.push(PairConstraint {
                    lambda: side_of(graph, &lam_t, d.lambda_source_window().midpoint()),
                    nu: side_of(graph, &nu_t, d.nu_source_window(graph).midpoint()),
                });
            }
        }
    }

    Ok(CandidateSet {
        channels,
        constraints,
    })
}
