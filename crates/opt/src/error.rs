//! Error type of the global buffer-plan optimizer.

use disparity_core::delta::DeltaError;
use disparity_core::error::AnalysisError;
use disparity_model::time::Duration;

/// Everything that can go wrong while planning buffers.
#[derive(Debug)]
pub enum OptError {
    /// The underlying disparity analysis failed (bad chains, budget
    /// exhaustion, unschedulable system, ...).
    Analysis(AnalysisError),
    /// The incremental engine rejected a candidate edit or re-analysis.
    Delta(DeltaError),
    /// A generated [`SpecEdit`](disparity_model::edit::SpecEdit) did not
    /// apply to the base spec (a bug in candidate derivation).
    Edit(String),
    /// A disparity target names a task the spec does not contain.
    UnknownTarget {
        /// The unresolvable task name.
        task: String,
    },
    /// The plan's predicted bound disagreed with a cold re-analysis of
    /// the plan-applied spec. The optimizer asserts this invariant on
    /// every returned plan; a divergence means the incremental engine
    /// and the cold pipeline no longer agree.
    ValidationDivergence {
        /// The task whose bound diverged.
        task: String,
        /// What the search's incremental state predicted.
        predicted: Duration,
        /// What the cold re-analysis computed.
        reanalyzed: Duration,
    },
}

impl core::fmt::Display for OptError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            OptError::Analysis(e) => write!(f, "analysis: {e}"),
            OptError::Delta(e) => write!(f, "incremental re-analysis: {e}"),
            OptError::Edit(msg) => write!(f, "candidate edit rejected: {msg}"),
            OptError::UnknownTarget { task } => {
                write!(f, "disparity target names unknown task {task:?}")
            }
            OptError::ValidationDivergence {
                task,
                predicted,
                reanalyzed,
            } => write!(
                f,
                "plan validation diverged on {task}: predicted {predicted}, re-analysis {reanalyzed}"
            ),
        }
    }
}

impl std::error::Error for OptError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OptError::Analysis(e) => Some(e),
            OptError::Delta(e) => Some(e),
            _ => None,
        }
    }
}

impl From<AnalysisError> for OptError {
    fn from(e: AnalysisError) -> Self {
        OptError::Analysis(e)
    }
}

impl From<DeltaError> for OptError {
    fn from(e: DeltaError) -> Self {
        OptError::Delta(e)
    }
}
