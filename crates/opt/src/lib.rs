//! Global buffer-plan optimization for cause-effect chains.
//!
//! The paper's Algorithm 1 sizes the buffers of **one** chain pair in
//! isolation. This crate optimizes **jointly**: given an analyzed
//! system, a total-memory budget and optional per-task disparity
//! targets, it searches over per-channel FIFO capacities for the
//! assignment that minimizes first the total target excess and then
//! the total worst-case disparity bound across every fusion task.
//!
//! Two backends implement the search behind the [`Optimizer`] trait:
//!
//! * [`BranchAndBound`] — exact over the candidate lattice, pruned by a
//!   Lemma 6 admissible bound; asserted against exhaustive enumeration
//!   in tests.
//! * [`BeamSearch`] — width-limited, for WATERS-scale systems whose
//!   lattice is too large to enumerate.
//!
//! Candidates are scored through the incremental re-analysis engine
//! (each search node is one `resize_buffer` edit away from its parent)
//! with a cold-pipeline fallback, and every returned plan is validated
//! against a full cold re-analysis of the plan-applied spec — the
//! numbers in a [`GlobalPlan`] are the cold pipeline's numbers.
//!
//! ```
//! use disparity_core::disparity::AnalysisConfig;
//! use disparity_opt::{optimize_spec, BackendChoice, BufferBudget, PlanRequest};
//! use disparity_model::spec::SystemSpec;
//! use disparity_rng::SplitMix64;
//! use disparity_workload::funnel::{schedulable_funnel_system, FunnelConfig};
//!
//! let mut rng = SplitMix64::new(7);
//! let graph = schedulable_funnel_system(&FunnelConfig::default(), &mut rng, 64)
//!     .expect("funnel generation is budgeted");
//! let spec = SystemSpec::from_graph(&graph);
//! let request = PlanRequest::with_budget(BufferBudget::slots(4));
//! let plan = optimize_spec(&spec, AnalysisConfig::default(), &request, BackendChoice::Auto)
//!     .expect("funnel systems analyze");
//! assert!(plan.slots_used <= 4);
//! for p in &plan.predictions {
//!     assert!(p.after <= p.before, "plans never regress a bound");
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod candidates;
pub mod error;
pub mod plan;
pub mod search;

pub use candidates::{derive_candidates, CandidateChannel};
pub use error::OptError;
pub use plan::{
    BufferBudget, ChannelAssignment, DisparityTarget, GlobalPlan, PairDelta, PlanRequest,
    PlanScore, SearchStats, TaskPrediction,
};
pub use search::{
    exhaustive_plan, greedy_assignment, optimize_analyzed, optimize_spec, BackendChoice,
    BeamSearch, BranchAndBound, Optimizer, DEFAULT_BEAM_WIDTH,
};
