//! Plan, budget and target types of the global optimizer.

use disparity_model::edit::SpecEdit;
use disparity_model::ids::ChannelId;
use disparity_model::time::Duration;

/// A total-memory budget for the whole plan, counted in *extra* FIFO
/// slots beyond the spec's existing capacities (a register channel has
/// capacity 1; giving it capacity `n` costs `n − 1` extra slots).
///
/// Slots are the paper-level unit — §IV sizes buffers in samples, not
/// bytes. A byte budget divides by the payload size first
/// ([`BufferBudget::from_bytes`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BufferBudget {
    /// Total extra slots the plan may allocate across all channels.
    pub extra_slots: usize,
}

impl BufferBudget {
    /// A budget of `extra_slots` FIFO slots.
    #[must_use]
    pub fn slots(extra_slots: usize) -> Self {
        BufferBudget { extra_slots }
    }

    /// Converts a byte budget into slots given a per-sample payload
    /// size (rounding down; a fractional slot holds no sample).
    #[must_use]
    pub fn from_bytes(bytes: usize, bytes_per_sample: usize) -> Self {
        BufferBudget {
            extra_slots: bytes / bytes_per_sample.max(1),
        }
    }

    /// The byte cost of `extra_slots` at a given payload size.
    #[must_use]
    pub fn bytes(self, bytes_per_sample: usize) -> usize {
        self.extra_slots.saturating_mul(bytes_per_sample)
    }
}

/// An optional per-task ceiling on the achieved disparity bound.
///
/// Targets are *soft*: the optimizer first minimizes the total excess
/// over all targets, then the total bound — a plan that leaves a target
/// unmet is still returned (with [`TaskPrediction::met`] = `false`)
/// when the budget cannot do better.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DisparityTarget {
    /// The fusion task the target constrains.
    pub task: String,
    /// The desired worst-case disparity bound.
    pub bound: Duration,
}

/// Everything the optimizer needs besides the analyzed base system.
#[derive(Debug, Clone)]
pub struct PlanRequest {
    /// The total-memory budget.
    pub budget: BufferBudget,
    /// Optional per-task disparity targets.
    pub targets: Vec<DisparityTarget>,
    /// Seed of the deterministic tie-break among equal-score plans.
    pub seed: u64,
    /// Refuse plans that introduce a new analyzer D007 finding
    /// (over-buffered channel), the default. A joint assignment can
    /// lower the *total* bound while overshooting one pair's window
    /// alignment; with this set, such plans are excluded from the
    /// search space (and from the greedy incumbent), so optimizing a
    /// diagnostically clean spec keeps it clean. Turning it off admits
    /// every assignment and makes the optimizer never worse than the
    /// raw per-pair greedy, at the price of possible D007 findings on
    /// the optimized spec.
    pub forbid_new_findings: bool,
}

impl PlanRequest {
    /// A target-free request with the given budget, seed 0 and the
    /// D007 guard on.
    #[must_use]
    pub fn with_budget(budget: BufferBudget) -> Self {
        PlanRequest {
            budget,
            targets: Vec::new(),
            seed: 0,
            forbid_new_findings: true,
        }
    }
}

/// One channel's capacity assignment in a [`GlobalPlan`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelAssignment {
    /// The resized channel.
    pub channel: ChannelId,
    /// Producing task name (wire form of the channel).
    pub from: String,
    /// Consuming task name.
    pub to: String,
    /// The capacity the spec already had.
    pub base_capacity: usize,
    /// The planned capacity (always `> base_capacity`).
    pub capacity: usize,
}

impl ChannelAssignment {
    /// Extra slots this assignment costs against the budget.
    #[must_use]
    pub fn extra_slots(&self) -> usize {
        self.capacity.saturating_sub(self.base_capacity)
    }

    /// The assignment as an incremental-engine edit.
    #[must_use]
    pub fn edit(&self) -> SpecEdit {
        SpecEdit::ResizeBuffer {
            from: self.from.clone(),
            to: self.to.clone(),
            capacity: self.capacity,
        }
    }
}

/// One chain pair's predicted bound movement under the plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairDelta {
    /// Index of the pair's first chain in the task's report.
    pub lambda: usize,
    /// Index of the pair's second chain in the task's report.
    pub nu: usize,
    /// Name of the last joint task the pair was analyzed at.
    pub analyzed_at: String,
    /// The pair's bound before the plan.
    pub before: Duration,
    /// The pair's bound with the plan applied (validated by cold
    /// re-analysis, not extrapolated).
    pub after: Duration,
}

/// Predicted effect of the plan on one fusion task.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskPrediction {
    /// The fusion task.
    pub task: String,
    /// Worst-case disparity bound before the plan.
    pub before: Duration,
    /// Bound with the plan applied (validated by cold re-analysis).
    pub after: Duration,
    /// The requested target, if one was set for this task.
    pub target: Option<Duration>,
    /// Per-pair bound movements.
    pub pairs: Vec<PairDelta>,
}

impl TaskPrediction {
    /// Whether the achieved bound meets the target (`None` without one).
    #[must_use]
    pub fn met(&self) -> Option<bool> {
        self.target.map(|t| self.after <= t)
    }
}

/// The optimizer's objective, minimized lexicographically: first the
/// total nanoseconds of target excess, then the total bound across all
/// fusion tasks. Ties are broken by a seeded hash of the assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct PlanScore {
    /// `Σ max(0, bound(task) − target(task))` over all targets, in ns.
    pub target_excess_ns: i128,
    /// `Σ bound(task)` over every analyzed fusion task, in ns.
    pub total_bound_ns: i128,
}

/// Search-effort accounting, also exported as obs counters
/// (`opt.search.nodes`, `opt.score.delta`, `opt.score.cold`, ...).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Channels the candidate derivation admitted to the lattice.
    pub candidates: usize,
    /// Search nodes visited (states scored or reused).
    pub nodes: u64,
    /// Subtrees cut by the admissible bound (branch-and-bound only).
    pub pruned: u64,
    /// Candidates scored through the incremental engine.
    pub delta_scored: u64,
    /// Candidates scored through the cold pipeline (fallback or oracle).
    pub cold_scored: u64,
}

/// A complete, validated buffer plan.
///
/// Every prediction in the plan was checked against a cold re-analysis
/// of the plan-applied spec before the plan was returned; the numbers
/// here *are* the cold pipeline's numbers.
#[derive(Debug, Clone)]
pub struct GlobalPlan {
    /// Which backend produced the winning assignment (`"branch_and_bound"`,
    /// `"beam"`, `"greedy"`, `"exhaustive"` or `"noop"`).
    pub backend: &'static str,
    /// The channel resizes to apply, ordered by channel id.
    pub assignments: Vec<ChannelAssignment>,
    /// Per-fusion-task predicted effect, in report order.
    pub predictions: Vec<TaskPrediction>,
    /// The achieved objective.
    pub score: PlanScore,
    /// Extra slots the plan consumes (`≤` the requested budget).
    pub slots_used: usize,
    /// Search-effort accounting.
    pub stats: SearchStats,
}

impl GlobalPlan {
    /// The plan as a sequence of incremental-engine edits.
    #[must_use]
    pub fn edits(&self) -> Vec<SpecEdit> {
        self.assignments.iter().map(ChannelAssignment::edit).collect()
    }

    /// Total predicted bound reduction across all fusion tasks (ns).
    #[must_use]
    pub fn improvement_ns(&self) -> i128 {
        self.predictions
            .iter()
            .map(|p| i128::from(p.before.as_nanos()) - i128::from(p.after.as_nanos()))
            .sum()
    }

    /// Whether every requested target is met.
    #[must_use]
    pub fn all_targets_met(&self) -> bool {
        self.predictions
            .iter()
            .all(|p| p.met().unwrap_or(true))
    }
}
