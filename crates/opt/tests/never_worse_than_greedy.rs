//! The global optimizer is never worse than the budget-truncated
//! per-pair greedy (`optimize_task` applied task by task).
//!
//! With [`PlanRequest::forbid_new_findings`] **off**, the property is
//! unconditional: [`optimize_analyzed`] folds the greedy incumbent into
//! the final comparison, so the returned score can only tie or beat it.
//! With the guard **on** (the default), greedy plans that introduce a
//! new D007 finding are inadmissible, and the optimizer must beat or
//! match greedy only when greedy's own plan is clean — a joint
//! assignment that over-buffers one pair to lower the total is exactly
//! what the guard exists to refuse. Both modes are pinned here on
//! seeded WATERS-style and funnel workloads for both backends.

use disparity_analyzer::checks::{analyze_graph, DiagConfig};
use disparity_analyzer::diag::DiagCode;
use disparity_core::delta::AnalyzedSystem;
use disparity_core::disparity::AnalysisConfig;
use disparity_model::edit::apply_all;
use disparity_model::graph::CauseEffectGraph;
use disparity_model::spec::SystemSpec;
use disparity_opt::{
    greedy_assignment, optimize_analyzed, BackendChoice, BufferBudget, ChannelAssignment,
    PlanRequest,
};
use disparity_rng::SplitMix64;
use disparity_workload::funnel::{schedulable_funnel_system, FunnelConfig};
use disparity_workload::graphgen::schedulable_random_system;

/// The greedy assignment, its total bound (ns) under the cold pipeline,
/// and whether applying it keeps the graph free of new D007 findings.
fn greedy_outcome(
    graph: &CauseEffectGraph,
    base: &AnalyzedSystem,
    budget: usize,
) -> (i128, bool) {
    let assignments = greedy_assignment(base, budget).expect("greedy runs");
    let slots: usize = assignments.iter().map(ChannelAssignment::extra_slots).sum();
    assert!(slots <= budget, "greedy must respect the budget");
    let mut spec = base.spec().clone();
    let edits: Vec<_> = assignments.iter().map(ChannelAssignment::edit).collect();
    apply_all(&mut spec, &edits).expect("greedy edits apply");
    let sys = AnalyzedSystem::analyze(&spec, base.config()).expect("greedy spec analyzes");
    let total = sys
        .reports()
        .iter()
        .map(|r| i128::from(r.bound.as_nanos()))
        .sum();
    let d007_before = analyze_graph(graph, &DiagConfig::default()).count_of(DiagCode::OverBuffered);
    let mut buffered = graph.clone();
    for a in &assignments {
        buffered
            .set_channel_capacity(a.channel, a.capacity)
            .expect("greedy channels exist");
    }
    let d007_after =
        analyze_graph(&buffered, &DiagConfig::default()).count_of(DiagCode::OverBuffered);
    (total, d007_after <= d007_before)
}

fn check_never_worse(graph: &CauseEffectGraph, budget: usize, seed: u64) {
    let spec = SystemSpec::from_graph(graph);
    let Ok(base) = AnalyzedSystem::analyze(&spec, AnalysisConfig::default()) else {
        return; // a generated system outside the analyzable class proves nothing
    };
    let (greedy_ns, greedy_clean) = greedy_outcome(graph, &base, budget);
    let base_ns: i128 = base
        .reports()
        .iter()
        .map(|r| i128::from(r.bound.as_nanos()))
        .sum();
    for backend in [
        BackendChoice::BranchAndBound,
        BackendChoice::Beam { width: 8 },
    ] {
        for forbid in [true, false] {
            let mut request = PlanRequest::with_budget(BufferBudget::slots(budget));
            request.seed = seed;
            request.forbid_new_findings = forbid;
            let plan = optimize_analyzed(&base, &request, backend).expect("plan");
            assert!(plan.slots_used <= budget, "budget respected");
            assert!(
                plan.score.total_bound_ns <= base_ns,
                "global plan ({backend:?}) worse than doing nothing"
            );
            if !forbid || greedy_clean {
                assert!(
                    plan.score.total_bound_ns <= greedy_ns,
                    "global plan ({backend:?}, forbid={forbid}) worse than greedy: {} > {greedy_ns}",
                    plan.score.total_bound_ns
                );
            }
            if forbid {
                // Admissible shifts keep every pair's windows ordered, so
                // no task's bound regresses; with the guard off the
                // optimizer may trade one task's bound for the total.
                for p in &plan.predictions {
                    assert!(p.after <= p.before, "no per-task regression");
                }
            }
        }
    }
}

#[test]
fn never_worse_on_seeded_funnels() {
    for seed in 0..6u64 {
        let mut rng = SplitMix64::new(seed);
        let Ok(g) = schedulable_funnel_system(&FunnelConfig::default(), &mut rng, 64) else {
            continue;
        };
        check_never_worse(&g, 4, seed);
    }
}

#[test]
fn never_worse_on_seeded_waters_systems() {
    for seed in 0..6u64 {
        let mut rng = SplitMix64::new(0xAA_0000 + seed);
        let Ok(g) = schedulable_random_system(Default::default(), &mut rng, 64) else {
            continue;
        };
        check_never_worse(&g, 3, seed);
    }
}

#[test]
fn zero_budget_returns_the_base_system() {
    let mut rng = SplitMix64::new(1);
    let g = schedulable_funnel_system(&FunnelConfig::default(), &mut rng, 64)
        .expect("funnel generates");
    let spec = SystemSpec::from_graph(&g);
    let base = AnalyzedSystem::analyze(&spec, AnalysisConfig::default()).expect("analyzes");
    let request = PlanRequest::with_budget(BufferBudget::slots(0));
    let plan =
        optimize_analyzed(&base, &request, BackendChoice::Auto).expect("zero-budget plan");
    assert!(plan.assignments.is_empty());
    assert_eq!(plan.slots_used, 0);
    assert_eq!(plan.improvement_ns(), 0);
}
