//! Optimizer output cross-checked against analyzer rule D007
//! (over-buffered channel): optimizing a diagnostically clean spec must
//! never introduce a D007 finding. The candidate lattice guarantees
//! this by construction (per-channel ceilings are minimum midpoint
//! gaps); this test keeps the two subsystems honest against each other.

use disparity_analyzer::checks::{analyze_graph, DiagConfig};
use disparity_analyzer::diag::DiagCode;
use disparity_core::delta::AnalyzedSystem;
use disparity_core::disparity::AnalysisConfig;
use disparity_model::graph::CauseEffectGraph;
use disparity_model::spec::SystemSpec;
use disparity_opt::{optimize_analyzed, BackendChoice, BufferBudget, PlanRequest};
use disparity_rng::SplitMix64;
use disparity_workload::funnel::{schedulable_funnel_system, FunnelConfig};
use disparity_workload::graphgen::schedulable_random_system;

fn d007_count(graph: &CauseEffectGraph) -> usize {
    analyze_graph(graph, &DiagConfig::default()).count_of(DiagCode::OverBuffered)
}

fn check_no_new_d007(graph: &CauseEffectGraph, budget: usize, backend: BackendChoice) {
    let before = d007_count(graph);
    if before != 0 {
        return; // only *clean* specs carry the guarantee
    }
    let spec = SystemSpec::from_graph(graph);
    let Ok(base) = AnalyzedSystem::analyze(&spec, AnalysisConfig::default()) else {
        return;
    };
    let request = PlanRequest::with_budget(BufferBudget::slots(budget));
    let plan = optimize_analyzed(&base, &request, backend).expect("plan");
    let mut optimized = graph.clone();
    for a in &plan.assignments {
        optimized
            .set_channel_capacity(a.channel, a.capacity)
            .expect("plan channels exist in the base graph");
    }
    assert_eq!(
        d007_count(&optimized),
        0,
        "optimizing a D007-clean spec introduced over-buffered channels ({backend:?}, budget {budget})"
    );
}

#[test]
fn funnels_stay_d007_clean_after_optimization() {
    for seed in 0..5u64 {
        let mut rng = SplitMix64::new(seed);
        let Ok(g) = schedulable_funnel_system(&FunnelConfig::default(), &mut rng, 64) else {
            continue;
        };
        check_no_new_d007(&g, 4, BackendChoice::Auto);
        check_no_new_d007(&g, 8, BackendChoice::Beam { width: 4 });
    }
}

#[test]
fn waters_systems_stay_d007_clean_after_optimization() {
    for seed in 0..5u64 {
        let mut rng = SplitMix64::new(0xD0_07 + seed);
        let Ok(g) = schedulable_random_system(Default::default(), &mut rng, 64) else {
            continue;
        };
        check_no_new_d007(&g, 3, BackendChoice::Auto);
    }
}
