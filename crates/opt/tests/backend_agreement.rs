//! Branch-and-bound must agree with exhaustive enumeration of the
//! candidate lattice on small fixtures (≤4 channels), and beam search
//! must never beat the proven optimum (it searches the same lattice).

use disparity_core::delta::AnalyzedSystem;
use disparity_core::disparity::AnalysisConfig;
use disparity_model::builder::SystemBuilder;
use disparity_model::graph::CauseEffectGraph;
use disparity_model::spec::SystemSpec;
use disparity_model::task::TaskSpec;
use disparity_model::time::Duration;
use disparity_opt::{
    exhaustive_plan, BackendChoice, BeamSearch, BranchAndBound, BufferBudget, Optimizer,
    PlanRequest,
};

fn ms(v: i64) -> Duration {
    Duration::from_millis(v)
}

/// Fig. 4-style fusion: fast 10ms chain against a slow 30ms chain.
fn fig4() -> CauseEffectGraph {
    let mut b = SystemBuilder::new();
    let e = b.add_ecu("e");
    let t1 = b.add_task(TaskSpec::periodic("t1", ms(10)));
    let t2 = b.add_task(TaskSpec::periodic("t2", ms(30)));
    let t3 = b.add_task(TaskSpec::periodic("t3", ms(10)).execution(ms(1), ms(2)).on_ecu(e));
    let t4 = b.add_task(TaskSpec::periodic("t4", ms(30)).execution(ms(2), ms(5)).on_ecu(e));
    let t5 = b.add_task(TaskSpec::periodic("t5", ms(30)).execution(ms(2), ms(4)).on_ecu(e));
    b.connect(t1, t3);
    b.connect(t2, t4);
    b.connect(t3, t5);
    b.connect(t4, t5);
    b.build().expect("fig4 builds")
}

/// Three chains fused at one task — two independently buffarable heads.
fn three_chain() -> CauseEffectGraph {
    let mut b = SystemBuilder::new();
    let e = b.add_ecu("e");
    let cam = b.add_task(TaskSpec::periodic("cam", ms(10)));
    let radar = b.add_task(TaskSpec::periodic("radar", ms(20)));
    let lidar = b.add_task(TaskSpec::periodic("lidar", ms(100)));
    let f1 = b.add_task(TaskSpec::periodic("f1", ms(10)).execution(ms(1), ms(1)).on_ecu(e));
    let f2 = b.add_task(TaskSpec::periodic("f2", ms(20)).execution(ms(1), ms(2)).on_ecu(e));
    let f3 = b.add_task(TaskSpec::periodic("f3", ms(100)).execution(ms(2), ms(4)).on_ecu(e));
    let fuse = b.add_task(TaskSpec::periodic("fuse", ms(100)).execution(ms(1), ms(2)).on_ecu(e));
    b.connect(cam, f1);
    b.connect(radar, f2);
    b.connect(lidar, f3);
    b.connect(f1, fuse);
    b.connect(f2, fuse);
    b.connect(f3, fuse);
    b.build().expect("three-chain builds")
}

fn check_agreement(graph: &CauseEffectGraph, budget: usize, seed: u64) {
    let spec = SystemSpec::from_graph(graph);
    let base = AnalyzedSystem::analyze(&spec, AnalysisConfig::default()).expect("base analyzes");
    let mut request = PlanRequest::with_budget(BufferBudget::slots(budget));
    request.seed = seed;

    let oracle = exhaustive_plan(&base, &request).expect("exhaustive enumerates");
    let bnb = BranchAndBound.plan(&base, &request).expect("bnb plans");
    assert_eq!(
        bnb.score, oracle.score,
        "branch-and-bound must reach the exhaustive optimum (budget {budget}, seed {seed})"
    );
    assert_eq!(
        bnb.assignments, oracle.assignments,
        "equal-score plans must tie-break identically (budget {budget}, seed {seed})"
    );

    let beam = BeamSearch::default().plan(&base, &request).expect("beam plans");
    assert!(
        beam.score >= oracle.score,
        "beam cannot beat the proven lattice optimum"
    );
    assert!(beam.slots_used <= budget);
    assert!(bnb.slots_used <= budget);
}

#[test]
fn bnb_matches_exhaustive_on_fig4() {
    let g = fig4();
    for budget in [0, 1, 2, 5] {
        check_agreement(&g, budget, 0xF164);
    }
}

#[test]
fn bnb_matches_exhaustive_on_three_chain_fusion() {
    let g = three_chain();
    for budget in [1, 3, 8] {
        check_agreement(&g, budget, 7);
    }
}

#[test]
fn tie_break_is_seed_deterministic() {
    let g = three_chain();
    let spec = SystemSpec::from_graph(&g);
    let base = AnalyzedSystem::analyze(&spec, AnalysisConfig::default()).expect("base analyzes");
    let mut request = PlanRequest::with_budget(BufferBudget::slots(4));
    request.seed = 42;
    let a = BranchAndBound.plan(&base, &request).expect("plan a");
    let b = BranchAndBound.plan(&base, &request).expect("plan b");
    assert_eq!(a.assignments, b.assignments, "same request, same plan");
    assert_eq!(a.score, b.score);
}

#[test]
fn auto_backend_picks_bnb_on_small_lattices() {
    let g = fig4();
    let spec = SystemSpec::from_graph(&g);
    let base = AnalyzedSystem::analyze(&spec, AnalysisConfig::default()).expect("base analyzes");
    let request = PlanRequest::with_budget(BufferBudget::slots(3));
    let plan = disparity_opt::optimize_analyzed(&base, &request, BackendChoice::Auto)
        .expect("auto plans");
    // On a tiny lattice Auto runs branch-and-bound; the winner may still
    // be relabelled if greedy ties, but the score must be the optimum.
    let oracle = exhaustive_plan(&base, &request).expect("oracle");
    assert_eq!(plan.score, oracle.score);
}
