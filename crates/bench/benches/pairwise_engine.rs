//! Benchmarks the memoized [`AnalysisEngine`] against the direct
//! (uncached) pairwise analysis on the default Fig. 6(a)/(b) workload.
//!
//! `cached` runs `AnalysisEngine::worst_case_disparity` — one hop-bound
//! per graph edge, one prefix table per enumerated chain, O(1) lookups
//! per pair. `uncached` runs `worst_case_disparity_direct`, which refolds
//! the backward bounds of both chains from scratch for every pair. Before
//! any timing, the two paths are asserted to produce bit-identical
//! reports, so the speedup is measured between observationally equal
//! implementations.

use disparity_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use disparity_core::disparity::{worst_case_disparity_direct, AnalysisConfig};
use disparity_core::engine::AnalysisEngine;
use disparity_core::pairwise::Method;
use disparity_model::graph::CauseEffectGraph;
use disparity_sched::schedulability::analyze;
use disparity_sched::wcrt::ResponseTimes;
use disparity_workload::graphgen::{schedulable_random_system, GraphGenConfig};
use disparity_rng::rngs::StdRng;
use std::hint::black_box;

/// Mirrors the default `Fig6abConfig` generator parameters (4 ECUs,
/// `2.5 × n` edges, ≤ 3 sources, 0.45 per-ECU utilization).
fn fig6ab_system(n_tasks: usize, seed: u64) -> (CauseEffectGraph, ResponseTimes) {
    let mut rng = StdRng::seed_from_u64(seed);
    let graph = schedulable_random_system(
        GraphGenConfig {
            n_tasks,
            n_ecus: 4,
            n_edges: Some((n_tasks as f64 * 2.5) as usize),
            max_sources: Some(3),
            target_utilization: Some(0.45),
        },
        &mut rng,
        200,
    )
    .expect("generator finds a schedulable system");
    let rt = analyze(&graph).expect("schedulable").into_response_times();
    (graph, rt)
}

const CONFIG: AnalysisConfig = AnalysisConfig {
    method: Method::Combined,
    chain_limit: 4096,
};

fn bench_engine_vs_direct(c: &mut Criterion) {
    let mut group = c.benchmark_group("pairwise_engine/sink_analysis");
    for &n in &[20usize, 35] {
        let (graph, rt) = fig6ab_system(n, 42);
        let sink = *graph.sinks().first().expect("finite DAG has a sink");

        // Consistency gate: the cached and uncached paths must agree
        // bit-for-bit before either is worth timing.
        let cached = AnalysisEngine::new(&graph, &rt)
            .worst_case_disparity(sink, CONFIG)
            .expect("engine analysis");
        let uncached =
            worst_case_disparity_direct(&graph, sink, &rt, CONFIG).expect("direct analysis");
        assert_eq!(cached.bound, uncached.bound, "bound mismatch at n={n}");
        assert_eq!(cached.chains, uncached.chains, "chain set mismatch at n={n}");
        assert_eq!(cached.pairs.len(), uncached.pairs.len());
        for (a, b) in cached.pairs.iter().zip(&uncached.pairs) {
            assert_eq!(
                (a.lambda, a.nu, a.analyzed_at, a.bound),
                (b.lambda, b.nu, b.analyzed_at, b.bound),
                "pair mismatch at n={n}",
            );
        }

        group.bench_with_input(
            BenchmarkId::new("cached", n),
            &(&graph, &rt),
            |b, (graph, rt)| {
                b.iter(|| {
                    AnalysisEngine::new(black_box(graph), rt)
                        .worst_case_disparity(sink, CONFIG)
                        .expect("analysis succeeds")
                        .bound
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("uncached", n),
            &(&graph, &rt),
            |b, (graph, rt)| {
                b.iter(|| {
                    worst_case_disparity_direct(black_box(graph), sink, rt, CONFIG)
                        .expect("analysis succeeds")
                        .bound
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_engine_vs_direct);
criterion_main!(benches);
