//! Ablation: Lemma 4's non-preemptive-aware WCBT vs the scheduler-agnostic
//! Dürr-style baseline.
//!
//! Benchmarks the computation cost of both bounds and, once per run,
//! prints their tightness ratio on a batch of generated chains (the design
//! choice DESIGN.md calls out: the paper claims Lemma 4 "is more precise
//! than the results presented in [5]").

use disparity_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use disparity_core::backward::wcbt;
use disparity_core::baseline::baseline_wcbt;
use disparity_model::chain::Chain;
use disparity_model::graph::CauseEffectGraph;
use disparity_sched::schedulability::analyze;
use disparity_sched::wcrt::ResponseTimes;
use disparity_workload::chains::schedulable_two_chain_system_scaled;
use disparity_rng::rngs::StdRng;
use std::hint::black_box;

fn sample_chains(len: usize) -> (CauseEffectGraph, Vec<Chain>, ResponseTimes) {
    let mut rng = StdRng::seed_from_u64(5);
    let sys = schedulable_two_chain_system_scaled(len, 2, Some(0.5), &mut rng, 200)
        .expect("generator finds a schedulable system");
    let rt = analyze(&sys.graph)
        .expect("schedulable")
        .into_response_times();
    let chains = vec![sys.lambda.clone(), sys.nu.clone()];
    (sys.graph, chains, rt)
}

fn report_tightness_once() {
    // Few ECUs -> many same-ECU hops -> Lemma 4's refined cases apply.
    let mut rng = StdRng::seed_from_u64(17);
    let mut ratios = Vec::new();
    for _ in 0..20 {
        let Ok(sys) = schedulable_two_chain_system_scaled(10, 2, Some(0.5), &mut rng, 200) else {
            continue;
        };
        let rt = analyze(&sys.graph)
            .expect("schedulable")
            .into_response_times();
        for chain in [&sys.lambda, &sys.nu] {
            let tight = wcbt(&sys.graph, chain, &rt);
            let loose = baseline_wcbt(&sys.graph, chain, &rt);
            if loose.is_positive() {
                ratios.push(tight.as_nanos() as f64 / loose.as_nanos() as f64);
            }
        }
    }
    let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
    eprintln!(
        "[ablation] Lemma 4 WCBT / baseline WCBT over {} chains: mean {:.3} (lower = tighter)",
        ratios.len(),
        mean
    );
}

fn bench_backward_bounds(c: &mut Criterion) {
    report_tightness_once();
    let mut group = c.benchmark_group("ablation/wcbt");
    for &len in &[5usize, 15, 30] {
        let (graph, chains, rt) = sample_chains(len);
        group.bench_with_input(
            BenchmarkId::new("lemma4", len),
            &(&graph, &chains, &rt),
            |b, (graph, chains, rt)| {
                b.iter(|| {
                    chains
                        .iter()
                        .map(|c| wcbt(black_box(graph), c, rt))
                        .max()
                        .expect("non-empty")
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("baseline", len),
            &(&graph, &chains, &rt),
            |b, (graph, chains, rt)| {
                b.iter(|| {
                    chains
                        .iter()
                        .map(|c| baseline_wcbt(black_box(graph), c, rt))
                        .max()
                        .expect("non-empty")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_backward_bounds);
criterion_main!(benches);
