//! Benchmarks the global optimizer's two candidate-scoring paths.
//!
//! `delta_scored` is what the search pays per explored state on its hot
//! path: [`AnalyzedSystem::apply`] rebasing the parent state across one
//! `ResizeBuffer` edit. `cold_scored` is the fallback (and the
//! exhaustive oracle's only path): canonical clone, edit application,
//! and a full from-scratch re-analysis. `plan_auto` times one complete
//! `optimize_analyzed` call — search, greedy fold-in, and the final
//! cold validation pass — on a fig6ab-scale fusion workload.
//!
//! Before any timing, the delta-scored state is asserted bound-identical
//! to the cold pipeline on the same edit. The committed
//! `BENCH_opt_baseline.json` plus `benchgate --metric
//! delta_scored=cold_scored --threshold-pct -80` is the standing proof
//! that the incremental path makes each search node ≥5× cheaper than
//! cold re-analysis (see `scripts/tier1.sh`).
//!
//! [`AnalyzedSystem::apply`]: disparity_core::delta::AnalyzedSystem::apply

use disparity_bench::{criterion_group, criterion_main, Criterion};
use disparity_core::delta::AnalyzedSystem;
use disparity_core::disparity::AnalysisConfig;
use disparity_model::edit::{apply_all, SpecEdit};
use disparity_model::graph::CauseEffectGraph;
use disparity_model::spec::SystemSpec;
use disparity_opt::{
    derive_candidates, optimize_analyzed, BackendChoice, BufferBudget, PlanRequest,
};
use disparity_rng::rngs::StdRng;
use disparity_workload::funnel::{schedulable_funnel_system, FunnelConfig};
use std::hint::black_box;

/// A seeded multi-sink fusion workload (WATERS period bins). Four
/// independent fusion sinks make the cost model honest: a cold score
/// recomputes every sink's report while the delta path carries over
/// every chain that avoids the resized edge.
fn seeded_workload(seed: u64) -> CauseEffectGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let config = FunnelConfig {
        stage_widths: vec![16, 8, 4, 4],
        ..FunnelConfig::default()
    };
    schedulable_funnel_system(&config, &mut rng, 64).expect("funnel workload generates")
}

fn bench_opt_search(c: &mut Criterion) {
    let graph = seeded_workload(42);
    let spec = SystemSpec::from_graph(&graph);
    let base =
        AnalyzedSystem::analyze(&spec, AnalysisConfig::default()).expect("base analyzes cold");

    // Score a last-stage candidate channel: the edit the search pays
    // for most often is a local one, reaching one sink, not a sensor
    // edge feeding the whole graph.
    let candidates = derive_candidates(&base).expect("candidates derive");
    let ch = candidates
        .channels
        .last()
        .expect("fusion workload has a resizable channel");
    let edit = SpecEdit::ResizeBuffer {
        from: ch.from_name.clone(),
        to: ch.to_name.clone(),
        capacity: ch.base_capacity + 1,
    };

    // Consistency gate: both scoring paths must agree on every fusion
    // task's bound before either is worth timing.
    let (delta_sys, _stats) = base.apply(&edit).expect("delta path applies");
    let mut spec2 = spec.clone();
    apply_all(&mut spec2, std::slice::from_ref(&edit)).expect("edit applies");
    let cold_sys =
        AnalyzedSystem::analyze(&spec2, AnalysisConfig::default()).expect("cold path analyzes");
    for (d, c) in delta_sys.reports().iter().zip(cold_sys.reports()) {
        assert_eq!(d.task, c.task, "report order");
        assert_eq!(d.bound, c.bound, "delta and cold scores agree");
    }

    let request = PlanRequest::with_budget(BufferBudget::slots(4));

    let mut group = c.benchmark_group("opt_search/score");
    group.bench_function("delta_scored", |b| {
        b.iter(|| black_box(&base).apply(black_box(&edit)).expect("delta applies"))
    });
    group.bench_function("cold_scored", |b| {
        b.iter(|| {
            let mut spec2 = black_box(&spec).clone();
            apply_all(&mut spec2, std::slice::from_ref(black_box(&edit)))
                .expect("edit applies");
            AnalyzedSystem::analyze(&spec2, AnalysisConfig::default()).expect("analyzes")
        })
    });
    group.bench_function("plan_auto", |b| {
        b.iter(|| {
            optimize_analyzed(black_box(&base), black_box(&request), BackendChoice::Auto)
                .expect("plans")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_opt_search);
criterion_main!(benches);
