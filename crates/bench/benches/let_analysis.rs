//! Benchmarks the Logical Execution Time extension: LET backward bounds
//! and LET disparity analysis vs their implicit-communication
//! counterparts (the LET path needs no response-time analysis at all).

use disparity_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use disparity_core::disparity::{worst_case_disparity, AnalysisConfig};
use disparity_core::letmodel::{let_backward_bounds, let_worst_case_disparity};
use disparity_core::pairwise::Method;
use disparity_sched::schedulability::analyze;
use disparity_workload::funnel::{schedulable_funnel_system, FunnelConfig};
use disparity_rng::rngs::StdRng;
use std::hint::black_box;

fn bench_let_vs_implicit_disparity(c: &mut Criterion) {
    let mut group = c.benchmark_group("let/task_disparity");
    for &n in &[12usize, 24] {
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = FunnelConfig::with_approximate_size(n);
        let graph =
            schedulable_funnel_system(&cfg, &mut rng, 200).expect("generator succeeds");
        let sink = graph.sinks()[0];
        let rt = analyze(&graph).expect("schedulable").into_response_times();
        group.bench_with_input(BenchmarkId::new("implicit", n), &graph, |b, graph| {
            b.iter(|| {
                worst_case_disparity(
                    black_box(graph),
                    sink,
                    &rt,
                    AnalysisConfig::default(),
                )
                .expect("analysis succeeds")
                .bound
            })
        });
        group.bench_with_input(BenchmarkId::new("let", n), &graph, |b, graph| {
            b.iter(|| {
                let_worst_case_disparity(black_box(graph), sink, Method::ForkJoin, 4096)
                    .expect("analysis succeeds")
            })
        });
    }
    group.finish();
}

fn bench_let_backward_bounds(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let graph = schedulable_funnel_system(&FunnelConfig::with_approximate_size(20), &mut rng, 200)
        .expect("generator succeeds");
    let sink = graph.sinks()[0];
    let chains = graph.chains_to(sink, 4096).expect("enumerable");
    c.bench_function("let/backward_bounds_per_chain_set", |b| {
        b.iter(|| {
            chains
                .iter()
                .map(|chain| let_backward_bounds(black_box(&graph), chain).wcbt)
                .max()
                .expect("non-empty")
        })
    });
}

criterion_group!(benches, bench_let_vs_implicit_disparity, bench_let_backward_bounds);
criterion_main!(benches);
