//! Benchmarks the Fig. 6(c)/(d) machinery: the Theorem 2 pairwise bound,
//! Algorithm 1's buffer design and the greedy multi-pair optimizer on
//! merged two-chain systems of growing length.

use disparity_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use disparity_core::buffering::{design_buffer, optimize_task};
use disparity_core::disparity::AnalysisConfig;
use disparity_core::pairwise::theorem2_bound;
use disparity_sched::schedulability::analyze;
use disparity_sched::wcrt::ResponseTimes;
use disparity_workload::chains::{schedulable_two_chain_system, TwoChainSystem};
use disparity_rng::rngs::StdRng;
use std::hint::black_box;

fn prepared(len: usize, seed: u64) -> (TwoChainSystem, ResponseTimes) {
    let mut rng = StdRng::seed_from_u64(seed);
    let sys = schedulable_two_chain_system(len, 4, &mut rng, 200)
        .expect("generator finds a schedulable system");
    let rt = analyze(&sys.graph)
        .expect("schedulable")
        .into_response_times();
    (sys, rt)
}

fn bench_theorem2(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6cd/theorem2_pairwise");
    for &len in &[5usize, 15, 30] {
        let (sys, rt) = prepared(len, 7);
        group.bench_with_input(
            BenchmarkId::from_parameter(len),
            &(&sys, &rt),
            |b, (sys, rt)| {
                b.iter(|| {
                    theorem2_bound(black_box(&sys.graph), &sys.lambda, &sys.nu, rt)
                        .expect("pairwise analysis succeeds")
                })
            },
        );
    }
    group.finish();
}

fn bench_algorithm1(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6cd/algorithm1_buffer_design");
    for &len in &[5usize, 15, 30] {
        let (sys, rt) = prepared(len, 7);
        group.bench_with_input(
            BenchmarkId::from_parameter(len),
            &(&sys, &rt),
            |b, (sys, rt)| {
                b.iter(|| {
                    design_buffer(black_box(&sys.graph), &sys.lambda, &sys.nu, rt)
                        .expect("buffer design succeeds")
                        .capacity
                })
            },
        );
    }
    group.finish();
}

fn bench_greedy_optimizer(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6cd/greedy_optimizer");
    group.sample_size(20);
    for &len in &[5usize, 15] {
        let (sys, _) = prepared(len, 7);
        let sink = sys.sink();
        group.bench_with_input(BenchmarkId::from_parameter(len), &sys, |b, sys| {
            b.iter(|| {
                optimize_task(black_box(&sys.graph), sink, AnalysisConfig::default(), 4)
                    .expect("optimization succeeds")
                    .final_bound()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_theorem2,
    bench_algorithm1,
    bench_greedy_optimizer
);
criterion_main!(benches);
