//! Cost of `disparity-obs` probes.
//!
//! The hot-path contract is that a probe behind a *disabled* recorder is
//! one relaxed atomic load — single-digit nanoseconds, invisible next to
//! the analysis and simulation work it annotates. The enabled numbers
//! quantify what turning recording on costs per span.

use disparity_bench::{criterion_group, criterion_main, Criterion};

fn bench_disabled_probes(c: &mut Criterion) {
    disparity_obs::disable();
    let mut group = c.benchmark_group("obs_disabled");
    group.bench_function("span", |b| b.iter(|| disparity_obs::span("bench.probe")));
    group.bench_function("span_macro_with_attrs", |b| {
        b.iter(|| disparity_obs::span!("bench.probe", value = 42i64))
    });
    group.bench_function("counter_add", |b| {
        b.iter(|| disparity_obs::counter_add("bench.counter", 1))
    });
    group.bench_function("observe", |b| {
        b.iter(|| disparity_obs::observe("bench.hist", 42))
    });
    group.finish();
}

fn bench_enabled_probes(c: &mut Criterion) {
    disparity_obs::reset();
    disparity_obs::enable();
    let mut group = c.benchmark_group("obs_enabled");
    group.bench_function("span", |b| b.iter(|| disparity_obs::span("bench.probe")));
    group.bench_function("counter_add", |b| {
        b.iter(|| disparity_obs::counter_add("bench.counter", 1))
    });
    group.finish();
    disparity_obs::disable();
    disparity_obs::reset();
}

criterion_group!(obs, bench_disabled_probes, bench_enabled_probes);
criterion_main!(obs);
