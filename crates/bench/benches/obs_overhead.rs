//! Cost of `disparity-obs` probes.
//!
//! The hot-path contract is that a probe behind a *disabled* recorder is
//! one relaxed atomic load — single-digit nanoseconds, invisible next to
//! the analysis and simulation work it annotates. The enabled numbers
//! quantify what turning recording on costs per span.
//!
//! The flight recorder has no off switch, so its `record` cost is paid
//! on every request the service handles; `obs_flight` pins it (with and
//! without an active trace context) under the benchgate regression gate.

use disparity_bench::{criterion_group, criterion_main, Criterion};
use disparity_obs::flight::{self, EventKind};

fn bench_disabled_probes(c: &mut Criterion) {
    disparity_obs::disable();
    let mut group = c.benchmark_group("obs_disabled");
    group.bench_function("span", |b| b.iter(|| disparity_obs::span("bench.probe")));
    group.bench_function("span_macro_with_attrs", |b| {
        b.iter(|| disparity_obs::span!("bench.probe", value = 42i64))
    });
    group.bench_function("counter_add", |b| {
        b.iter(|| disparity_obs::counter_add("bench.counter", 1))
    });
    group.bench_function("observe", |b| {
        b.iter(|| disparity_obs::observe("bench.hist", 42))
    });
    group.finish();
}

fn bench_enabled_probes(c: &mut Criterion) {
    disparity_obs::reset();
    disparity_obs::enable();
    let mut group = c.benchmark_group("obs_enabled");
    group.bench_function("span", |b| b.iter(|| disparity_obs::span("bench.probe")));
    group.bench_function("counter_add", |b| {
        b.iter(|| disparity_obs::counter_add("bench.counter", 1))
    });
    group.finish();
    disparity_obs::disable();
    disparity_obs::reset();
}

fn bench_flight_recorder(c: &mut Criterion) {
    flight::init();
    let mut group = c.benchmark_group("obs_flight");
    group.bench_function("record", |b| {
        b.iter(|| flight::record(EventKind::Accept, 0))
    });
    group.bench_function("record_traced", |b| {
        let _scope = disparity_obs::trace_scope(0x1234_5678_9abc_def0);
        b.iter(|| flight::record(EventKind::Accept, 0));
    });
    group.finish();
}

criterion_group!(obs, bench_disabled_probes, bench_enabled_probes, bench_flight_recorder);
criterion_main!(obs);
