//! Benchmarks the Fig. 6(a)/(b) analysis pipeline: chain enumeration plus
//! the P-diff (Theorem 1) and S-diff (Theorem 2) disparity bounds on
//! WATERS-style random graphs of growing size.
//!
//! The paper argues that simulation is "not only unsafe but also time
//! consuming" compared to analysis; together with `simulation.rs` this
//! bench quantifies that gap on our implementation.

use disparity_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use disparity_core::disparity::{worst_case_disparity, AnalysisConfig};
use disparity_core::pairwise::Method;
use disparity_model::graph::CauseEffectGraph;
use disparity_sched::schedulability::analyze;
use disparity_sched::wcrt::ResponseTimes;
use disparity_workload::graphgen::{schedulable_random_system, GraphGenConfig};
use disparity_rng::rngs::StdRng;
use std::hint::black_box;

fn prepared_system(n_tasks: usize, seed: u64) -> (CauseEffectGraph, ResponseTimes) {
    let mut rng = StdRng::seed_from_u64(seed);
    let graph = schedulable_random_system(
        GraphGenConfig {
            n_tasks,
            max_sources: Some(3),
            target_utilization: Some(0.4),
            ..Default::default()
        },
        &mut rng,
        200,
    )
    .expect("generator finds a schedulable system");
    let rt = analyze(&graph).expect("schedulable").into_response_times();
    (graph, rt)
}

fn bench_disparity_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6ab/disparity_analysis");
    for &n in &[10usize, 20, 35] {
        let (graph, rt) = prepared_system(n, 42);
        let sink = graph.sinks()[0];
        for (label, method) in [
            ("p_diff", Method::Independent),
            ("s_diff", Method::ForkJoin),
        ] {
            group.bench_with_input(
                BenchmarkId::new(label, n),
                &(&graph, &rt),
                |b, (graph, rt)| {
                    b.iter(|| {
                        worst_case_disparity(
                            black_box(graph),
                            sink,
                            rt,
                            AnalysisConfig {
                                method,
                                chain_limit: 8192,
                            },
                        )
                        .expect("analysis succeeds")
                        .bound
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_chain_enumeration(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6ab/chain_enumeration");
    for &n in &[10usize, 20, 35] {
        let (graph, _) = prepared_system(n, 42);
        let sink = graph.sinks()[0];
        group.bench_with_input(BenchmarkId::from_parameter(n), &graph, |b, graph| {
            b.iter(|| {
                graph
                    .chains_to(black_box(sink), 8192)
                    .expect("within limit")
                    .len()
            })
        });
    }
    group.finish();
}

fn bench_response_time_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6ab/response_times");
    for &n in &[10usize, 20, 35] {
        let (graph, _) = prepared_system(n, 42);
        group.bench_with_input(BenchmarkId::from_parameter(n), &graph, |b, graph| {
            b.iter(|| {
                analyze(black_box(graph))
                    .expect("schedulable")
                    .all_schedulable()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_disparity_analysis,
    bench_chain_enumeration,
    bench_response_time_analysis
);
criterion_main!(benches);
