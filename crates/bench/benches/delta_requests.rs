//! Benchmarks the incremental (delta) re-analysis path against the cold
//! pipeline it replaces.
//!
//! `cold_pipeline` is the full from-scratch cost of answering a
//! disparity query on an edited spec: canonical hashing, graph build,
//! WCRT fixpoints, a fresh engine run, and result encoding.
//! `reanalyze_core` is the core-layer delta: [`AnalyzedSystem::apply`]
//! rebasing a prior analysis across a single-field WCET edit (every
//! fusion-task report refreshed, clean pairs copied). `patch_warm` is
//! the served hot path: an `Op::Patch` request whose (base, edit)
//! pair is already in the service's patch memo — the cost a client
//! pays per repeated edit replay.
//!
//! Before any timing, the patch response is asserted byte-identical to
//! the cold pipeline's line on the edited spec. The committed
//! `BENCH_delta_baseline.json` plus `benchgate --metric
//! patch_warm=cold_pipeline --threshold-pct -90` is the standing proof
//! that a warm single-field edit is ≥10× cheaper than re-sending the
//! spec (see `scripts/tier1.sh`).
//!
//! [`AnalyzedSystem::apply`]: disparity_core::delta::AnalyzedSystem::apply

use disparity_bench::{criterion_group, criterion_main, Criterion};
use disparity_core::delta::AnalyzedSystem;
use disparity_core::disparity::AnalysisConfig;
use disparity_core::engine::AnalysisEngine;
use disparity_model::edit::SpecEdit;
use disparity_model::graph::CauseEffectGraph;
use disparity_model::ids::TaskId;
use disparity_model::json::Value;
use disparity_model::spec::SystemSpec;
use disparity_model::time::Duration;
use disparity_rng::rngs::StdRng;
use disparity_sched::wcrt::response_times;
use disparity_service::proto::{
    encode_disparity_result, response_line, Request, ResponseBody, Status,
};
use disparity_service::service::{Service, ServiceConfig};
use disparity_workload::funnel::{schedulable_funnel_system, FunnelConfig};
use std::hint::black_box;

/// A seeded fusion workload (WATERS period bins) and its fusion sink.
fn seeded_workload(seed: u64) -> (CauseEffectGraph, TaskId) {
    let mut rng = StdRng::seed_from_u64(seed);
    let graph = schedulable_funnel_system(&FunnelConfig::default(), &mut rng, 64)
        .expect("funnel workload generates");
    let sink = *graph.sinks().first().expect("funnel has a sink");
    (graph, sink)
}

fn bench_delta_requests(c: &mut Criterion) {
    let (graph, sink) = seeded_workload(42);
    let spec = SystemSpec::from_graph(&graph);
    let task = graph.task(sink).name().to_string();
    let base = spec.canonical_hash();

    // A single-field WCET shrink: valid, schedulable, graph-preserving.
    let victim = spec
        .tasks
        .iter()
        .find(|t| t.wcet.as_nanos() > t.bcet.as_nanos() + 1)
        .expect("workload has a shrinkable task");
    let new_wcet = (victim.bcet.as_nanos() + victim.wcet.as_nanos()) / 2;
    let edit = SpecEdit::SetWcet {
        task: victim.name.clone(),
        wcet: Duration::from_nanos(new_wcet),
    };
    let mut edited = spec.clone();
    edit.apply(&mut edited).expect("edit applies");

    let service = Service::start(ServiceConfig::default());

    // Seat the base graph, then the derived entry + patch memo.
    let warm_line = format!(
        "{{\"id\":1,\"op\":\"disparity\",\"task\":{},\"spec\":{}}}",
        Value::from(task.as_str()),
        spec.to_json()
    );
    let warm = Request::parse(&warm_line).expect("warm request parses");
    assert!(service.process(&warm).contains("\"status\":\"ok\""));
    let patch_line = format!(
        "{{\"id\":1,\"op\":\"patch\",\"base\":\"{base:016x}\",\"edits\":[{}],\"task\":{}}}",
        edit.to_json(),
        Value::from(task.as_str())
    );
    let patch = Request::parse(&patch_line).expect("patch request parses");

    // Consistency gate: the patched bytes must equal the cold pipeline
    // on the edited spec before either path is worth timing.
    let graph2 = edited.build().expect("edited spec builds");
    let rt2 = response_times(&graph2).expect("edited spec schedulable");
    let sink2 = graph2.find_task(&task).expect("task survives the edit");
    let report2 = AnalysisEngine::new(&graph2, &rt2)
        .worst_case_disparity(sink2, AnalysisConfig::default())
        .expect("direct analysis");
    let expected = response_line(
        &Value::Int(1),
        Status::Ok,
        ResponseBody::Result(encode_disparity_result(&graph2, &report2)),
    );
    assert_eq!(
        service.process(&patch),
        expected,
        "patch response matches cold pipeline bytes"
    );

    let prev =
        AnalyzedSystem::analyze(&spec, AnalysisConfig::default()).expect("base analyzes cold");

    let mut group = c.benchmark_group("delta_requests/patch");
    group.bench_function("cold_pipeline", |b| {
        b.iter(|| {
            let spec = black_box(&edited);
            let _hash = spec.canonical_hash();
            let graph = spec.build().expect("spec builds");
            let rt = response_times(&graph).expect("schedulable workload");
            let sink = graph.find_task(&task).expect("task");
            let report = AnalysisEngine::new(&graph, &rt)
                .worst_case_disparity(sink, AnalysisConfig::default())
                .expect("analysis succeeds");
            response_line(
                &Value::Int(1),
                Status::Ok,
                ResponseBody::Result(encode_disparity_result(&graph, &report)),
            )
        })
    });
    group.bench_function("reanalyze_core", |b| {
        b.iter(|| black_box(&prev).apply(black_box(&edit)).expect("delta applies"))
    });
    group.bench_function("patch_warm", |b| {
        b.iter(|| service.process(black_box(&patch)))
    });
    group.finish();

    service.shutdown();
}

criterion_group!(benches, bench_delta_requests);
criterion_main!(benches);
