//! Measures the cost of a full `disparity-analyzer` diagnostic pass on
//! the default Fig. 6(a)/(b) workload, so the `--deny-lints` probe gate
//! in the experiment binaries has a known price tag.
//!
//! `full_pass` times [`analyze_graph`] end to end (utilization, WCRT,
//! blocking, pairwise fork-join, sampling lints); `sans_pairwise` times
//! the same pass with a chain budget of zero, isolating how much of the
//! total the Theorem 2 chain-pair decomposition accounts for.

use disparity_analyzer::{analyze_graph, DiagConfig};
use disparity_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use disparity_model::graph::CauseEffectGraph;
use disparity_rng::rngs::StdRng;
use disparity_workload::graphgen::{schedulable_random_system, GraphGenConfig};
use std::hint::black_box;

/// Mirrors the default `Fig6abConfig` generator parameters (4 ECUs,
/// `2.5 × n` edges, ≤ 3 sources, 0.45 per-ECU utilization).
fn fig6ab_system(n_tasks: usize, seed: u64) -> CauseEffectGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    schedulable_random_system(
        GraphGenConfig {
            n_tasks,
            n_ecus: 4,
            n_edges: Some((n_tasks as f64 * 2.5) as usize),
            max_sources: Some(3),
            target_utilization: Some(0.45),
        },
        &mut rng,
        200,
    )
    .expect("generator finds a schedulable system")
}

fn bench_analyzer_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("analyzer_overhead/diagnose");
    for &n in &[20usize, 35] {
        let graph = fig6ab_system(n, 42);
        let config = DiagConfig::default();

        // A schedulable generator graph must be free of Error diagnostics
        // before its analysis cost is worth reporting.
        let set = analyze_graph(&graph, &config);
        assert_eq!(set.error_count(), 0, "probe graph has errors at n={n}");

        group.bench_with_input(BenchmarkId::new("full_pass", n), &graph, |b, graph| {
            b.iter(|| analyze_graph(black_box(graph), &config).len())
        });
        let no_chains = DiagConfig { chain_limit: 0 };
        group.bench_with_input(BenchmarkId::new("sans_pairwise", n), &graph, |b, graph| {
            b.iter(|| analyze_graph(black_box(graph), &no_chains).len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_analyzer_overhead);
criterion_main!(benches);
