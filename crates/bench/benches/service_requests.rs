//! Benchmarks the serving hot path of `disparity-service` against the
//! equivalent from-scratch pipeline.
//!
//! `warm_cache` runs [`Service::process`] on a disparity request whose
//! spec is already cached: the graph, response times, and hop-bound cache
//! are shared, so each request pays only canonical hashing, a cache
//! lookup, and the memoized engine run. `uncached_pipeline` rebuilds the
//! graph, re-runs schedulability, and analyzes with a fresh engine — the
//! work a one-shot CLI (or a cache miss) pays per request. `parse` and
//! `ping` isolate codec and dispatch overhead. Before any timing, the
//! service response is asserted byte-identical to encoding a direct
//! engine run.
//!
//! The `warm_cache_live` / `ping_live` variants run the same requests
//! against a service with the live-telemetry machinery fully armed: the
//! `--metrics-interval` window-rotation thread ticking every 50 ms and
//! the (always-on) flight recorder absorbing lifecycle events. The
//! `benchgate` comparison of `_live` against the plain variants is the
//! committed proof that telemetry costs < 5% on the warm serving path
//! (see `BENCH_telemetry_baseline.json`).
//!
//! [`Service::process`]: disparity_service::service::Service::process

use disparity_bench::{criterion_group, criterion_main, Criterion};
use disparity_core::disparity::AnalysisConfig;
use disparity_core::engine::AnalysisEngine;
use disparity_model::graph::CauseEffectGraph;
use disparity_model::ids::TaskId;
use disparity_model::json::Value;
use disparity_model::spec::SystemSpec;
use disparity_rng::rngs::StdRng;
use disparity_sched::schedulability::analyze;
use disparity_service::proto::{
    encode_disparity_result, response_line, Request, ResponseBody, Status,
};
use disparity_service::service::{Service, ServiceConfig};
use disparity_workload::funnel::{schedulable_funnel_system, FunnelConfig};
use std::hint::black_box;

/// A seeded fusion workload (WATERS period bins) and its fusion sink.
fn seeded_workload(seed: u64) -> (CauseEffectGraph, TaskId) {
    let mut rng = StdRng::seed_from_u64(seed);
    let graph = schedulable_funnel_system(&FunnelConfig::default(), &mut rng, 64)
        .expect("funnel workload generates");
    let sink = *graph.sinks().first().expect("funnel has a sink");
    (graph, sink)
}

fn disparity_line(graph: &CauseEffectGraph, sink: TaskId) -> String {
    let spec = SystemSpec::from_graph(graph);
    format!(
        "{{\"id\":1,\"op\":\"disparity\",\"task\":{},\"spec\":{}}}",
        Value::from(graph.task(sink).name()),
        spec.to_json()
    )
}

fn bench_service_requests(c: &mut Criterion) {
    let (graph, sink) = seeded_workload(42);
    let line = disparity_line(&graph, sink);
    let request = Request::parse(&line).expect("request parses");
    let ping = Request::parse("{\"id\":2,\"op\":\"ping\"}").expect("ping parses");
    let spec = SystemSpec::from_graph(&graph);

    let service = Service::start(ServiceConfig::default());

    // Consistency gate: the served bytes must equal encoding a direct
    // engine run before either path is worth timing.
    let rt = analyze(&graph)
        .expect("schedulable workload")
        .into_response_times();
    let report = AnalysisEngine::new(&graph, &rt)
        .worst_case_disparity(sink, AnalysisConfig::default())
        .expect("direct analysis");
    let expected = response_line(
        &Value::Int(1),
        Status::Ok,
        ResponseBody::Result(encode_disparity_result(&graph, &report)),
    );
    assert_eq!(
        service.process(&request),
        expected,
        "service response matches direct engine bytes"
    );

    let mut group = c.benchmark_group("service_requests/disparity");
    group.bench_function("warm_cache", |b| {
        b.iter(|| service.process(black_box(&request)))
    });
    group.bench_function("uncached_pipeline", |b| {
        b.iter(|| {
            let spec = black_box(&spec);
            let _hash = spec.canonical_hash();
            let graph = spec.build().expect("spec builds");
            let rt = analyze(&graph)
                .expect("schedulable workload")
                .into_response_times();
            let sink = *graph.sinks().first().expect("sink");
            let report = AnalysisEngine::new(&graph, &rt)
                .worst_case_disparity(sink, AnalysisConfig::default())
                .expect("analysis succeeds");
            response_line(
                &Value::Int(1),
                Status::Ok,
                ResponseBody::Result(encode_disparity_result(&graph, &report)),
            )
        })
    });
    group.finish();

    let mut group = c.benchmark_group("service_requests/overhead");
    group.bench_function("parse", |b| {
        b.iter(|| Request::parse(black_box(&line)).expect("parses"))
    });
    group.bench_function("ping", |b| b.iter(|| service.process(black_box(&ping))));
    group.finish();

    service.shutdown();

    // Telemetry-armed service: identical requests, window rotator live.
    let live = Service::start(ServiceConfig {
        metrics_interval: Some(std::time::Duration::from_millis(50)),
        ..ServiceConfig::default()
    });
    assert_eq!(
        live.process(&request),
        expected,
        "telemetry-armed response matches direct engine bytes"
    );
    let mut group = c.benchmark_group("service_requests/disparity");
    group.bench_function("warm_cache_live", |b| {
        b.iter(|| live.process(black_box(&request)))
    });
    group.finish();
    let mut group = c.benchmark_group("service_requests/overhead");
    group.bench_function("ping_live", |b| b.iter(|| live.process(black_box(&ping))));
    group.finish();

    live.shutdown();
}

criterion_group!(benches, bench_service_requests);
criterion_main!(benches);
