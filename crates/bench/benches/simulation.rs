//! Benchmarks the discrete-event simulator: events per wall-clock second
//! across graph sizes, trace recording overhead, and FIFO channels.
//!
//! Read together with `fig6ab_analysis.rs`, this substantiates the paper's
//! remark that simulation-based estimation is orders of magnitude more
//! expensive than the analytical bounds (while also being unsafe).

use disparity_bench::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use disparity_model::graph::CauseEffectGraph;
use disparity_model::time::Duration;
use disparity_sim::engine::{SimConfig, Simulator};
use disparity_sim::exec::ExecutionTimeModel;
use disparity_workload::graphgen::{schedulable_random_system, GraphGenConfig};
use disparity_rng::rngs::StdRng;
use std::hint::black_box;

fn prepared_system(n_tasks: usize) -> CauseEffectGraph {
    let mut rng = StdRng::seed_from_u64(11);
    schedulable_random_system(
        GraphGenConfig {
            n_tasks,
            max_sources: Some(3),
            target_utilization: Some(0.4),
            ..Default::default()
        },
        &mut rng,
        200,
    )
    .expect("generator finds a schedulable system")
}

fn bench_simulation_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulation/one_second_horizon");
    group.sample_size(20);
    for &n in &[10usize, 20, 35] {
        let graph = prepared_system(n);
        let sink = graph.sinks()[0];
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &graph, |b, graph| {
            b.iter(|| {
                let sim = Simulator::new(
                    black_box(graph),
                    SimConfig {
                        horizon: Duration::from_secs(1),
                        exec_model: ExecutionTimeModel::Uniform,
                        seed: 3,
                        ..Default::default()
                    },
                );
                sim.run()
                    .expect("valid simulation")
                    .metrics
                    .max_disparity(sink)
            })
        });
    }
    group.finish();
}

fn bench_trace_recording_overhead(c: &mut Criterion) {
    let graph = prepared_system(20);
    let mut group = c.benchmark_group("simulation/trace_overhead");
    group.sample_size(20);
    for (label, record) in [("streaming", false), ("with_trace", true)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let sim = Simulator::new(
                    &graph,
                    SimConfig {
                        horizon: Duration::from_secs(1),
                        record_trace: record,
                        seed: 3,
                        ..Default::default()
                    },
                );
                sim.run().expect("valid simulation").metrics.chain_count()
            })
        });
    }
    group.finish();
}

fn bench_fifo_capacity(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulation/fifo_capacity");
    group.sample_size(20);
    for &capacity in &[1usize, 4, 16] {
        let mut graph = prepared_system(20);
        let ids: Vec<_> = graph.channels().iter().map(|ch| ch.id()).collect();
        for id in ids {
            graph
                .set_channel_capacity(id, capacity)
                .expect("valid capacity");
        }
        group.bench_with_input(BenchmarkId::from_parameter(capacity), &graph, |b, graph| {
            b.iter(|| {
                let sim = Simulator::new(
                    black_box(graph),
                    SimConfig {
                        horizon: Duration::from_secs(1),
                        seed: 3,
                        ..Default::default()
                    },
                );
                sim.run().expect("valid simulation").metrics.chain_count()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_simulation_throughput,
    bench_trace_recording_overhead,
    bench_fifo_capacity
);
criterion_main!(benches);
