//! Benchmark crate for the `time-disparity` workspace.
//!
//! The workspace builds offline with no external dependencies, so this
//! crate ships its own tiny wall-clock harness exposing the subset of the
//! `criterion` API the benches use (`benchmark_group`, `bench_function`,
//! `bench_with_input`, `Bencher::iter`, the `criterion_group!` /
//! `criterion_main!` macros). Results are min/mean nanoseconds per
//! iteration printed to stdout — enough to compare orders of magnitude
//! and catch regressions, without statistical machinery.
//!
//! All content lives in `benches/`:
//!
//! * `fig6ab_analysis` — disparity analysis, chain enumeration, WCRT.
//! * `fig6cd_optimization` — Theorem 2, Algorithm 1, greedy optimizer.
//! * `simulation` — simulator throughput, trace overhead, FIFO cost.
//! * `ablation_backward_bounds` — Lemma 4 vs the scheduler-agnostic
//!   baseline, cost and tightness.
//! * `let_analysis` — LET bounds vs the implicit-communication path.
//!
//! Run with `cargo bench -p disparity-bench`. The default is a quick
//! pass (≤ 30 iterations or ~100 ms per benchmark) suitable for CI
//! smoke runs; set `DISPARITY_BENCH_FULL=1` for longer, steadier
//! measurements.

use std::fmt;
use std::time::{Duration, Instant};

/// Measurement budget per benchmark.
#[derive(Debug, Clone, Copy)]
struct Budget {
    max_iters: u64,
    max_time: Duration,
}

fn budget() -> Budget {
    if std::env::var_os("DISPARITY_BENCH_FULL").is_some() {
        Budget {
            max_iters: 1_000,
            max_time: Duration::from_secs(2),
        }
    } else {
        Budget {
            max_iters: 30,
            max_time: Duration::from_millis(100),
        }
    }
}

/// Runs closures and records per-iteration timings.
#[derive(Debug)]
pub struct Bencher {
    budget: Budget,
    samples: Vec<Duration>,
}

impl Bencher {
    fn new() -> Self {
        Bencher {
            budget: budget(),
            samples: Vec::new(),
        }
    }

    /// Times `f` repeatedly within the measurement budget.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        // One untimed warmup pass (populates caches, faults in pages).
        std::hint::black_box(f());
        let started = Instant::now();
        for _ in 0..self.budget.max_iters {
            let t0 = Instant::now();
            std::hint::black_box(f());
            self.samples.push(t0.elapsed());
            if started.elapsed() >= self.budget.max_time {
                break;
            }
        }
    }
}

/// A benchmark identifier: a function label plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id with a label and a parameter, printed `label/parameter`.
    pub fn new(label: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{label}/{parameter}"),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId {
            label: label.to_string(),
        }
    }
}

/// Throughput annotation; reported as a per-element rate when set.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Number of logical elements processed per iteration.
    Elements(u64),
}

/// A named group of related benchmarks.
///
/// Mutably borrows the [`Criterion`] it came from for its lifetime, like
/// the criterion original.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _harness: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for criterion API compatibility; the in-tree harness
    /// sizes runs by wall-clock budget instead.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `f` against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new();
        f(&mut b, input);
        report(
            &format!("{}/{}", self.name, id.label),
            &b.samples,
            self.throughput,
        );
    }

    /// Benchmarks a closure with no input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new();
        f(&mut b);
        report(
            &format!("{}/{}", self.name, id.into().label),
            &b.samples,
            self.throughput,
        );
    }

    /// Ends the group (prints nothing; results stream as they finish).
    pub fn finish(self) {}
}

/// The harness entry point, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        BenchmarkGroup {
            _harness: self,
            name,
            throughput: None,
        }
    }

    /// Benchmarks a standalone closure.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new();
        f(&mut b);
        report(name, &b.samples, None);
        self
    }
}

fn report(name: &str, samples: &[Duration], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("{name:<55} (no samples)");
        return;
    }
    let min = samples.iter().min().copied().unwrap_or_default();
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let mut line = format!(
        "{name:<55} min {:>12}  mean {:>12}  ({} iters)",
        fmt_ns(min),
        fmt_ns(mean),
        samples.len()
    );
    if let Some(Throughput::Elements(n)) = throughput {
        if n > 0 && mean.as_nanos() > 0 {
            let rate = n as f64 / mean.as_secs_f64();
            line.push_str(&format!("  {rate:.0} elem/s"));
        }
    }
    println!("{line}");
}

fn fmt_ns(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Mirrors `criterion::criterion_group!`: defines a function running each
/// listed benchmark with a shared [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($bench:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $bench(&mut c); )+
        }
    };
}

/// Mirrors `criterion::criterion_main!`: defines `main` invoking each
/// group function.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut b = Bencher {
            budget: Budget {
                max_iters: 5,
                max_time: Duration::from_secs(1),
            },
            samples: Vec::new(),
        };
        let mut count = 0u64;
        b.iter(|| {
            count += 1;
            count
        });
        // 5 timed iterations plus 1 warmup.
        assert_eq!(b.samples.len(), 5);
        assert_eq!(count, 6);
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("p_diff", 10).label, "p_diff/10");
        assert_eq!(BenchmarkId::from_parameter(35).label, "35");
    }

    #[test]
    fn group_runs_to_completion() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group.sample_size(10).throughput(Throughput::Elements(4));
        group.bench_with_input(BenchmarkId::from_parameter(1), &3u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.bench_function("plain", |b| b.iter(|| 1 + 1));
        group.finish();
    }
}
