//! Criterion benchmark crate for the `time-disparity` workspace.
//!
//! All content lives in `benches/`:
//!
//! * `fig6ab_analysis` — disparity analysis, chain enumeration, WCRT.
//! * `fig6cd_optimization` — Theorem 2, Algorithm 1, greedy optimizer.
//! * `simulation` — simulator throughput, trace overhead, FIFO cost.
//! * `ablation_backward_bounds` — Lemma 4 vs the scheduler-agnostic
//!   baseline, cost and tightness.
//!
//! Run with `cargo bench -p disparity-bench`.
