//! Benchmark crate for the `time-disparity` workspace.
//!
//! The workspace builds offline with no external dependencies, so this
//! crate ships its own tiny wall-clock harness exposing the subset of the
//! `criterion` API the benches use (`benchmark_group`, `bench_function`,
//! `bench_with_input`, `Bencher::iter`, the `criterion_group!` /
//! `criterion_main!` macros). Results are min/median/max nanoseconds per
//! iteration printed to stdout — enough to compare orders of magnitude
//! and catch regressions, without statistical machinery.
//!
//! When `DISPARITY_BENCH_JSON` names a file, every bench binary also
//! appends its per-iteration timings there as a `disparity-obs` metrics
//! report (histogram `bench.<name>` per benchmark, merged on write so the
//! sequential bench binaries accumulate into one file). See
//! `scripts/perf_snapshot.sh` and EXPERIMENTS.md, "Observability".
//!
//! All content lives in `benches/`:
//!
//! * `fig6ab_analysis` — disparity analysis, chain enumeration, WCRT.
//! * `fig6cd_optimization` — Theorem 2, Algorithm 1, greedy optimizer.
//! * `simulation` — simulator throughput, trace overhead, FIFO cost.
//! * `ablation_backward_bounds` — Lemma 4 vs the scheduler-agnostic
//!   baseline, cost and tightness.
//! * `let_analysis` — LET bounds vs the implicit-communication path.
//! * `analyzer_overhead` — the `disparity-analyzer` diagnostic pass, full
//!   vs without the pairwise fork-join checks.
//!
//! Run with `cargo bench -p disparity-bench`. The default is a quick
//! pass (≤ 30 iterations or ~100 ms per benchmark) suitable for CI
//! smoke runs; set `DISPARITY_BENCH_FULL=1` for longer, steadier
//! measurements.

use std::fmt;
use std::path::Path;
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

use disparity_model::json::Value;
use disparity_obs::{Histogram, HistogramSummary, MetricsSnapshot};

/// Measurement budget per benchmark.
#[derive(Debug, Clone, Copy)]
struct Budget {
    max_iters: u64,
    max_time: Duration,
}

fn budget() -> Budget {
    if std::env::var_os("DISPARITY_BENCH_FULL").is_some() {
        Budget {
            max_iters: 1_000,
            max_time: Duration::from_secs(2),
        }
    } else {
        Budget {
            max_iters: 30,
            max_time: Duration::from_millis(100),
        }
    }
}

/// Runs closures and records per-iteration timings.
#[derive(Debug)]
pub struct Bencher {
    budget: Budget,
    samples: Vec<Duration>,
}

impl Bencher {
    fn new() -> Self {
        Bencher {
            budget: budget(),
            samples: Vec::new(),
        }
    }

    /// Times `f` repeatedly within the measurement budget.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        // One untimed warmup pass (populates caches, faults in pages).
        std::hint::black_box(f());
        let started = Instant::now();
        for _ in 0..self.budget.max_iters {
            let t0 = Instant::now();
            std::hint::black_box(f());
            self.samples.push(t0.elapsed());
            if started.elapsed() >= self.budget.max_time {
                break;
            }
        }
    }
}

/// A benchmark identifier: a function label plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id with a label and a parameter, printed `label/parameter`.
    pub fn new(label: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{label}/{parameter}"),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId {
            label: label.to_string(),
        }
    }
}

/// Throughput annotation; reported as a per-element rate when set.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Number of logical elements processed per iteration.
    Elements(u64),
}

/// A named group of related benchmarks.
///
/// Mutably borrows the [`Criterion`] it came from for its lifetime, like
/// the criterion original.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _harness: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for criterion API compatibility; the in-tree harness
    /// sizes runs by wall-clock budget instead.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `f` against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new();
        f(&mut b, input);
        report(
            &format!("{}/{}", self.name, id.label),
            &b.samples,
            self.throughput,
        );
    }

    /// Benchmarks a closure with no input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new();
        f(&mut b);
        report(
            &format!("{}/{}", self.name, id.into().label),
            &b.samples,
            self.throughput,
        );
    }

    /// Ends the group (prints nothing; results stream as they finish).
    pub fn finish(self) {}
}

/// The harness entry point, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        BenchmarkGroup {
            _harness: self,
            name,
            throughput: None,
        }
    }

    /// Benchmarks a standalone closure.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new();
        f(&mut b);
        report(name, &b.samples, None);
        self
    }
}

/// Per-benchmark timing summaries accumulated for [`finalize`].
static RESULTS: Mutex<Vec<(String, HistogramSummary)>> = Mutex::new(Vec::new());

fn report(name: &str, samples: &[Duration], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("{name:<55} (no samples)");
        return;
    }
    let mut sorted = samples.to_vec();
    sorted.sort();
    let min = sorted[0];
    let median = sorted[sorted.len() / 2];
    let max = sorted.last().copied().unwrap_or(min);
    let mut line = format!(
        "{name:<55} min {:>12}  median {:>12}  max {:>12}  ({} iters)",
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(max),
        samples.len()
    );
    if let Some(Throughput::Elements(n)) = throughput {
        if n > 0 && median.as_nanos() > 0 {
            let rate = n as f64 / median.as_secs_f64();
            line.push_str(&format!("  {rate:.0} elem/s"));
        }
    }
    println!("{line}");
    let mut hist = Histogram::new();
    for s in samples {
        hist.record(i64::try_from(s.as_nanos()).unwrap_or(i64::MAX));
    }
    RESULTS
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .push((name.to_string(), hist.summary()));
}

/// Writes the accumulated per-benchmark timings to the file named by
/// `DISPARITY_BENCH_JSON` (no-op when unset), merging with any report
/// already there so the sequential bench binaries share one file.
///
/// `criterion_main!` calls this after every group has run.
pub fn finalize() {
    let Some(path) = std::env::var_os("DISPARITY_BENCH_JSON") else {
        return;
    };
    let results = RESULTS
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone();
    if let Err(e) = write_bench_report(Path::new(&path), &results) {
        eprintln!("disparity-bench: {e}");
        std::process::exit(1);
    }
}

/// Merges `results` into the metrics report at `path` (histogram
/// `bench.<name>` per benchmark, nanoseconds per iteration).
fn write_bench_report(path: &Path, results: &[(String, HistogramSummary)]) -> Result<(), String> {
    let mut snap = read_existing_report(path);
    for (name, summary) in results {
        let key = format!("bench.{name}");
        match snap.histograms.iter_mut().find(|(n, _)| *n == key) {
            Some(slot) => slot.1 = *summary,
            None => snap.histograms.push((key, *summary)),
        }
    }
    snap.histograms.sort_by(|a, b| a.0.cmp(&b.0));
    let text = disparity_obs::export::metrics_report(&snap).to_pretty();
    Value::parse(&text).map_err(|e| format!("bench report does not round-trip: {e}"))?;
    // Write-to-temp + rename so a concurrently running bench binary (or a
    // reader like perf_snapshot.sh) never observes a half-written file.
    // The temp file lives in the target directory so the rename stays on
    // one filesystem and is atomic.
    let tmp = path.with_file_name(format!(
        "{}.tmp.{}",
        path.file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| "bench-report".to_string()),
        std::process::id()
    ));
    std::fs::write(&tmp, text).map_err(|e| format!("cannot write {}: {e}", tmp.display()))?;
    std::fs::rename(&tmp, path).map_err(|e| {
        let _ = std::fs::remove_file(&tmp);
        format!("cannot move {} into place: {e}", tmp.display())
    })
}

/// Best-effort parse of an existing metrics report; anything missing or
/// malformed degrades to an empty snapshot (the file is then rebuilt).
fn read_existing_report(path: &Path) -> MetricsSnapshot {
    let mut snap = MetricsSnapshot::default();
    let Ok(text) = std::fs::read_to_string(path) else {
        return snap;
    };
    let Ok(root) = Value::parse(&text) else {
        return snap;
    };
    if let Some(counters) = root.get("counters").and_then(Value::as_object) {
        for (name, v) in counters {
            if let Some(n) = v.as_i64() {
                snap.counters.push((name.clone(), n.max(0) as u64));
            }
        }
    }
    if let Some(hists) = root.get("histograms").and_then(Value::as_object) {
        for (name, h) in hists {
            let field = |k: &str| h.get(k).and_then(Value::as_i64).unwrap_or(0);
            snap.histograms.push((
                name.clone(),
                HistogramSummary {
                    count: field("count").max(0) as u64,
                    sum: field("sum"),
                    min: field("min"),
                    max: field("max"),
                    p50: field("p50"),
                    p95: field("p95"),
                    p99: field("p99"),
                },
            ));
        }
    }
    snap
}

fn fmt_ns(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Mirrors `criterion::criterion_group!`: defines a function running each
/// listed benchmark with a shared [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($bench:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $bench(&mut c); )+
        }
    };
}

/// Mirrors `criterion::criterion_main!`: defines `main` invoking each
/// group function, then flushing the JSON timing report (see
/// [`finalize`]).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::finalize();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut b = Bencher {
            budget: Budget {
                max_iters: 5,
                max_time: Duration::from_secs(1),
            },
            samples: Vec::new(),
        };
        let mut count = 0u64;
        b.iter(|| {
            count += 1;
            count
        });
        // 5 timed iterations plus 1 warmup.
        assert_eq!(b.samples.len(), 5);
        assert_eq!(count, 6);
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("p_diff", 10).label, "p_diff/10");
        assert_eq!(BenchmarkId::from_parameter(35).label, "35");
    }

    #[test]
    fn json_report_merges_across_writes() {
        let path = std::env::temp_dir().join(format!(
            "disparity-bench-report-{}.json",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let summary = |min: i64| HistogramSummary {
            count: 3,
            sum: min * 3,
            min,
            max: min,
            p50: min,
            p95: min,
            p99: min,
        };
        write_bench_report(&path, &[("a/1".to_string(), summary(10))]).unwrap();
        // A second binary's results merge in; re-running a benchmark
        // replaces its previous entry.
        write_bench_report(
            &path,
            &[("b/2".to_string(), summary(20)), ("a/1".to_string(), summary(30))],
        )
        .unwrap();
        let root = Value::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let hists = root.get("histograms").and_then(Value::as_object).unwrap();
        assert_eq!(hists.len(), 2);
        let min_of = |name: &str| {
            root.get("histograms")
                .and_then(|h| h.get(name))
                .and_then(|h| h.get("min"))
                .and_then(Value::as_i64)
                .unwrap()
        };
        assert_eq!(min_of("bench.a/1"), 30, "rerun replaces the old entry");
        assert_eq!(min_of("bench.b/2"), 20, "other binaries' entries survive");
        std::fs::remove_file(&path).ok();
    }

    /// The merge-under-existing-report path goes through a temp file that
    /// is renamed into place: the target is never truncated in place, and
    /// no `.tmp.` litter survives the write.
    #[test]
    fn report_write_is_atomic_and_leaves_no_temp_file() {
        let dir = std::env::temp_dir().join(format!("disparity-bench-atomic-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("report.json");
        let summary = |min: i64| HistogramSummary {
            count: 1,
            sum: min,
            min,
            max: min,
            p50: min,
            p95: min,
            p99: min,
        };
        // Seed an existing report, then merge a second write into it.
        write_bench_report(&path, &[("seed/1".to_string(), summary(1))]).unwrap();
        write_bench_report(&path, &[("merge/2".to_string(), summary(2))]).unwrap();
        let root = Value::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let hists = root.get("histograms").and_then(Value::as_object).unwrap();
        assert_eq!(hists.len(), 2, "existing entries survive the merge");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "temp files left behind: {leftovers:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn group_runs_to_completion() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group.sample_size(10).throughput(Throughput::Elements(4));
        group.bench_with_input(BenchmarkId::from_parameter(1), &3u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.bench_function("plain", |b| b.iter(|| 1 + 1));
        group.finish();
    }
}
