//! `benchgate` — compare two `disparity-obs/metrics-v1` bench reports
//! and fail on regressions.
//!
//! ```text
//! benchgate --baseline FILE --current FILE [--threshold-pct F]
//!           [--floor-ns N] [--stat mean|min] [--prefix P]...
//!           [--metric CUR=BASE]...
//! ```
//!
//! Both files are bench reports as written by `DISPARITY_BENCH_JSON`
//! (see `disparity-bench`): histogram `bench.<name>` per benchmark,
//! nanoseconds per iteration. The gate compares the **mean**
//! (`sum / count`) of each histogram by default: the histograms are
//! log-bucketed, so `p50` sits on a power-of-two bucket edge and cannot
//! resolve a 5–10% shift, while the sum is exact. `--stat min` compares
//! the per-iteration minimum instead — the right statistic when the
//! current file is a fresh run on a possibly noisy machine, since a
//! real regression adds work to *every* iteration (raising the min)
//! while scheduler noise only inflates the tail (and the mean).
//!
//! With no `--metric` pairs, every histogram name present in both files
//! is compared (optionally restricted to names starting with a
//! `--prefix`). `--metric CUR=BASE` instead compares the `CUR` histogram
//! of `--current` against the `BASE` histogram of `--baseline` — e.g.
//! the telemetry-on serving path against the plain one from the same
//! run. Metrics whose baseline mean is below `--floor-ns` (default
//! 1000) are reported but never fail the gate: at sub-microsecond
//! scales the quick CI pass is dominated by timer noise.
//!
//! Exit is non-zero when any compared metric's current mean exceeds the
//! baseline mean by more than `--threshold-pct` (default 10), or when a
//! requested metric is missing from either file.

use std::process::ExitCode;

use disparity_model::json::Value;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Stat {
    Mean,
    Min,
}

struct Args {
    baseline: String,
    current: String,
    threshold_pct: f64,
    floor_ns: f64,
    stat: Stat,
    prefixes: Vec<String>,
    metrics: Vec<(String, String)>,
}

fn parse_args() -> Result<Args, String> {
    let mut baseline = None;
    let mut current = None;
    let mut args = Args {
        baseline: String::new(),
        current: String::new(),
        threshold_pct: 10.0,
        floor_ns: 1000.0,
        stat: Stat::Mean,
        prefixes: Vec::new(),
        metrics: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "--baseline" => baseline = Some(value("--baseline")?),
            "--current" => current = Some(value("--current")?),
            "--threshold-pct" => {
                args.threshold_pct = value("--threshold-pct")?
                    .parse()
                    .map_err(|e| format!("--threshold-pct: {e}"))?;
            }
            "--floor-ns" => {
                args.floor_ns = value("--floor-ns")?
                    .parse()
                    .map_err(|e| format!("--floor-ns: {e}"))?;
            }
            "--stat" => {
                args.stat = match value("--stat")?.as_str() {
                    "mean" => Stat::Mean,
                    "min" => Stat::Min,
                    other => return Err(format!("--stat expects mean|min, got {other:?}")),
                };
            }
            "--prefix" => args.prefixes.push(value("--prefix")?),
            "--metric" => {
                let pair = value("--metric")?;
                let (cur, base) = pair
                    .split_once('=')
                    .ok_or_else(|| format!("--metric expects CUR=BASE, got {pair:?}"))?;
                args.metrics.push((cur.to_string(), base.to_string()));
            }
            "--help" | "-h" => {
                return Err("usage: benchgate --baseline FILE --current FILE \
                     [--threshold-pct F] [--floor-ns N] [--stat mean|min] \
                     [--prefix P]... [--metric CUR=BASE]..."
                    .to_string());
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    args.baseline = baseline.ok_or("--baseline is required")?;
    args.current = current.ok_or("--current is required")?;
    Ok(args)
}

/// The chosen statistic per histogram name, from one metrics-v1 report.
fn read_stats(path: &str, stat: Stat) -> Result<Vec<(String, f64)>, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let root = Value::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let hists = root
        .get("histograms")
        .and_then(Value::as_object)
        .ok_or_else(|| format!("{path}: no histograms object"))?;
    let mut stats = Vec::new();
    for (name, h) in hists {
        let field = |k: &str| h.get(k).and_then(Value::as_i64).unwrap_or(0);
        let count = field("count");
        if count == 0 {
            continue;
        }
        #[allow(clippy::cast_precision_loss)]
        let v = match stat {
            Stat::Mean => field("sum") as f64 / count as f64,
            Stat::Min => field("min") as f64,
        };
        stats.push((name.clone(), v));
    }
    Ok(stats)
}

fn lookup(means: &[(String, f64)], name: &str) -> Option<f64> {
    means.iter().find(|(n, _)| n == name).map(|(_, m)| *m)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("benchgate: {msg}");
            return ExitCode::FAILURE;
        }
    };
    let (base, cur) = match (
        read_stats(&args.baseline, args.stat),
        read_stats(&args.current, args.stat),
    ) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(msg), _) | (_, Err(msg)) => {
            eprintln!("benchgate: {msg}");
            return ExitCode::FAILURE;
        }
    };

    // Resolve the comparison pairs: explicit --metric mappings, or every
    // name present in both files (prefix-filtered when asked).
    let pairs: Vec<(String, String)> = if args.metrics.is_empty() {
        base.iter()
            .map(|(name, _)| name)
            .filter(|name| {
                args.prefixes.is_empty() || args.prefixes.iter().any(|p| name.starts_with(&**p))
            })
            .filter(|name| lookup(&cur, name).is_some())
            .map(|name| (name.clone(), name.clone()))
            .collect()
    } else {
        args.metrics.clone()
    };
    if pairs.is_empty() {
        eprintln!("benchgate: no metrics to compare (prefix filtered everything out?)");
        return ExitCode::FAILURE;
    }

    let mut failed = false;
    for (cur_name, base_name) in &pairs {
        let (Some(b), Some(c)) = (lookup(&base, base_name), lookup(&cur, cur_name)) else {
            eprintln!(
                "benchgate: FAIL: metric missing — {base_name} in {} or {cur_name} in {}",
                args.baseline, args.current
            );
            failed = true;
            continue;
        };
        let delta_pct = (c - b) / b * 100.0;
        let over = delta_pct > args.threshold_pct;
        let noise = b < args.floor_ns;
        let verdict = match (over, noise) {
            (true, false) => "FAIL",
            (true, true) => "noise",
            _ => "ok",
        };
        let label = if cur_name == base_name {
            cur_name.clone()
        } else {
            format!("{cur_name} vs {base_name}")
        };
        println!(
            "{verdict:<5} {label:<60} base {b:>12.0} ns  cur {c:>12.0} ns  {delta_pct:>+7.1}%"
        );
        if over && !noise {
            failed = true;
        }
    }
    if failed {
        eprintln!(
            "benchgate: regression over {}% against {}",
            args.threshold_pct, args.baseline
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
