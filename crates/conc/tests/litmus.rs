//! Scheduler + memory-model self-tests.
//!
//! The litmus set pins down what the operational model admits and
//! forbids: store buffering must expose the relaxed 0/0 outcome and a
//! SeqCst fence must forbid it; message passing must be safe under
//! release/acquire and broken under relaxed; IRIW must stay coherent
//! per-location while (under our stronger-than-C11 SC approximation)
//! SeqCst agrees on a single order. Exhaustive exploration must report
//! `complete: true` at these sizes, and a recorded violation trace must
//! replay to a byte-identical failure.
#![cfg(feature = "model")]

use std::sync::Arc;

use disparity_conc::model::{check, replay, Config, Mode, Outcome};
use disparity_conc::sync::atomic::{fence, AtomicU64, Ordering};
use disparity_conc::sync::{thread, Condvar, Mutex};
use std::sync::PoisonError;

fn cfg() -> Config {
    Config { preemption_bound: 4, ..Config::default() }
}

/// Runs `f` under exhaustive exploration and asserts it completed.
fn explore(f: impl Fn() + Send + Sync + 'static) -> Outcome {
    let out = check(cfg(), f);
    assert!(out.complete || out.violation.is_some(), "exploration did not finish: {out:?}");
    out
}

/// Store buffering (SB): with relaxed accesses both threads may read 0.
/// The harness asserts the outcome is *reachable* by collecting every
/// explored result.
#[test]
fn store_buffering_relaxed_admits_zero_zero() {
    let seen = Arc::new(std::sync::Mutex::new(std::collections::BTreeSet::new()));
    let seen2 = Arc::clone(&seen);
    let out = explore(move || {
        let x = Arc::new(AtomicU64::new(0));
        let y = Arc::new(AtomicU64::new(0));
        let (x1, y1) = (Arc::clone(&x), Arc::clone(&y));
        let t1 = thread::spawn(move || {
            x1.store(1, Ordering::Relaxed);
            y1.load(Ordering::Relaxed)
        });
        let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
        let t2 = thread::spawn(move || {
            y2.store(1, Ordering::Relaxed);
            x2.load(Ordering::Relaxed)
        });
        let a = t1.join().unwrap_or(99);
        let b = t2.join().unwrap_or(99);
        seen2.lock().unwrap_or_else(PoisonError::into_inner).insert((a, b));
    });
    assert!(out.violation.is_none(), "unexpected violation: {out:?}");
    let seen = seen.lock().unwrap_or_else(PoisonError::into_inner);
    assert!(seen.contains(&(0, 0)), "relaxed SB must admit (0,0); saw {seen:?}");
    assert!(seen.contains(&(1, 1)), "SB must admit (1,1); saw {seen:?}");
}

/// SB with SeqCst fences between store and load: (0,0) must vanish.
#[test]
fn store_buffering_sc_fence_forbids_zero_zero() {
    let seen = Arc::new(std::sync::Mutex::new(std::collections::BTreeSet::new()));
    let seen2 = Arc::clone(&seen);
    let out = explore(move || {
        let x = Arc::new(AtomicU64::new(0));
        let y = Arc::new(AtomicU64::new(0));
        let (x1, y1) = (Arc::clone(&x), Arc::clone(&y));
        let t1 = thread::spawn(move || {
            x1.store(1, Ordering::Relaxed);
            fence(Ordering::SeqCst);
            y1.load(Ordering::Relaxed)
        });
        let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
        let t2 = thread::spawn(move || {
            y2.store(1, Ordering::Relaxed);
            fence(Ordering::SeqCst);
            x2.load(Ordering::Relaxed)
        });
        let a = t1.join().unwrap_or(99);
        let b = t2.join().unwrap_or(99);
        seen2.lock().unwrap_or_else(PoisonError::into_inner).insert((a, b));
    });
    assert!(out.violation.is_none(), "unexpected violation: {out:?}");
    let seen = seen.lock().unwrap_or_else(PoisonError::into_inner);
    assert!(!seen.contains(&(0, 0)), "SC-fenced SB must forbid (0,0); saw {seen:?}");
}

/// Message passing (MP), release/acquire: if the reader sees the flag it
/// must see the payload. Asserted inside the execution so a violation is
/// a catchable schedule.
#[test]
fn message_passing_release_acquire_is_safe() {
    let out = explore(|| {
        let data = Arc::new(AtomicU64::new(0));
        let flag = Arc::new(AtomicU64::new(0));
        let (d1, f1) = (Arc::clone(&data), Arc::clone(&flag));
        let t1 = thread::spawn(move || {
            d1.store(42, Ordering::Relaxed);
            f1.store(1, Ordering::Release);
        });
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let t2 = thread::spawn(move || {
            if f2.load(Ordering::Acquire) == 1 {
                assert_eq!(d2.load(Ordering::Relaxed), 42, "MP: flag seen but payload stale");
            }
        });
        let _ = t1.join();
        let _ = t2.join();
    });
    assert!(out.violation.is_none(), "RA message passing must be safe: {out:?}");
    assert!(out.complete, "MP exploration should be exhaustive");
}

/// MP with a relaxed flag store: the stale-payload read must be found.
#[test]
fn message_passing_relaxed_is_caught() {
    let out = check(cfg(), || {
        let data = Arc::new(AtomicU64::new(0));
        let flag = Arc::new(AtomicU64::new(0));
        let (d1, f1) = (Arc::clone(&data), Arc::clone(&flag));
        let t1 = thread::spawn(move || {
            d1.store(42, Ordering::Relaxed);
            f1.store(1, Ordering::Relaxed);
        });
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let t2 = thread::spawn(move || {
            if f2.load(Ordering::Acquire) == 1 {
                assert_eq!(d2.load(Ordering::Relaxed), 42, "MP: flag seen but payload stale");
            }
        });
        let _ = t1.join();
        let _ = t2.join();
    });
    let v = out.expect_violation();
    assert!(v.message.contains("payload stale"), "wrong violation: {}", v.message);
}

/// MP where release is supplied by a standalone fence before a relaxed
/// flag store — the pattern the flight-recorder fix relies on.
#[test]
fn message_passing_release_fence_is_safe() {
    let out = explore(|| {
        let data = Arc::new(AtomicU64::new(0));
        let flag = Arc::new(AtomicU64::new(0));
        let (d1, f1) = (Arc::clone(&data), Arc::clone(&flag));
        let t1 = thread::spawn(move || {
            d1.store(42, Ordering::Relaxed);
            fence(Ordering::Release);
            f1.store(1, Ordering::Relaxed);
        });
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let t2 = thread::spawn(move || {
            if f2.load(Ordering::Relaxed) == 1 {
                fence(Ordering::Acquire);
                assert_eq!(d2.load(Ordering::Relaxed), 42, "MP: flag seen but payload stale");
            }
        });
        let _ = t1.join();
        let _ = t2.join();
    });
    assert!(out.violation.is_none(), "fence-based MP must be safe: {out:?}");
}

/// IRIW with SeqCst accesses: the two readers must agree on the order of
/// the two independent writes (1,0) + (0,1) is forbidden.
#[test]
fn iriw_seqcst_readers_agree() {
    let seen = Arc::new(std::sync::Mutex::new(std::collections::BTreeSet::new()));
    let seen2 = Arc::clone(&seen);
    let out = explore(move || {
        let x = Arc::new(AtomicU64::new(0));
        let y = Arc::new(AtomicU64::new(0));
        let xw = Arc::clone(&x);
        let w1 = thread::spawn(move || xw.store(1, Ordering::SeqCst));
        let yw = Arc::clone(&y);
        let w2 = thread::spawn(move || yw.store(1, Ordering::SeqCst));
        let (xr, yr) = (Arc::clone(&x), Arc::clone(&y));
        let r1 = thread::spawn(move || {
            let a = xr.load(Ordering::SeqCst);
            let b = yr.load(Ordering::SeqCst);
            (a, b)
        });
        let (xr2, yr2) = (Arc::clone(&x), Arc::clone(&y));
        let r2 = thread::spawn(move || {
            let b = yr2.load(Ordering::SeqCst);
            let a = xr2.load(Ordering::SeqCst);
            (a, b)
        });
        let _ = w1.join();
        let _ = w2.join();
        let o1 = r1.join().unwrap_or((9, 9));
        let o2 = r2.join().unwrap_or((9, 9));
        seen2.lock().unwrap_or_else(PoisonError::into_inner).insert((o1, o2));
    });
    assert!(out.violation.is_none(), "unexpected violation: {out:?}");
    let seen = seen.lock().unwrap_or_else(PoisonError::into_inner);
    // r1 saw x then !y while r2 saw y then !x: writers observed in
    // opposite orders.
    assert!(
        !seen.contains(&((1, 0), (0, 1))),
        "SC IRIW readers disagreed on write order; saw {seen:?}"
    );
}

/// Per-location coherence: a thread re-reading the same location may
/// never go backwards, even fully relaxed.
#[test]
fn coherence_no_backwards_reads() {
    let out = explore(|| {
        let x = Arc::new(AtomicU64::new(0));
        let xw = Arc::clone(&x);
        let t1 = thread::spawn(move || {
            xw.store(1, Ordering::Relaxed);
            xw.store(2, Ordering::Relaxed);
        });
        let xr = Arc::clone(&x);
        let t2 = thread::spawn(move || {
            let a = xr.load(Ordering::Relaxed);
            let b = xr.load(Ordering::Relaxed);
            assert!(b >= a, "coherence violated: read {a} then {b}");
        });
        let _ = t1.join();
        let _ = t2.join();
    });
    assert!(out.violation.is_none(), "coherence must hold: {out:?}");
}

/// Mutex + condvar round trip: producer/consumer handshake terminates
/// and transfers the value (condvar wakeups + view transfer).
#[test]
fn mutex_condvar_handshake() {
    let out = explore(|| {
        let slot = Arc::new(Mutex::new(0u64));
        let cv = Arc::new(Condvar::new());
        let (s1, c1) = (Arc::clone(&slot), Arc::clone(&cv));
        let t1 = thread::spawn(move || {
            let mut g = s1.lock().unwrap_or_else(PoisonError::into_inner);
            *g = 7;
            drop(g);
            c1.notify_one();
        });
        let (s2, c2) = (Arc::clone(&slot), Arc::clone(&cv));
        let t2 = thread::spawn(move || {
            let mut g = s2.lock().unwrap_or_else(PoisonError::into_inner);
            while *g == 0 {
                g = c2.wait(g).unwrap_or_else(PoisonError::into_inner);
            }
            assert_eq!(*g, 7);
        });
        let _ = t1.join();
        let _ = t2.join();
    });
    assert!(out.violation.is_none(), "handshake must succeed: {out:?}");
    assert!(out.complete, "handshake exploration should be exhaustive");
}

/// A missing notify must surface as a deadlock violation (lost wakeup).
#[test]
fn lost_wakeup_reported_as_deadlock() {
    let out = check(cfg(), || {
        let slot = Arc::new(Mutex::new(0u64));
        let cv = Arc::new(Condvar::new());
        let (s1, _c1) = (Arc::clone(&slot), Arc::clone(&cv));
        let t1 = thread::spawn(move || {
            let mut g = s1.lock().unwrap_or_else(PoisonError::into_inner);
            *g = 7;
            // Bug under test: no notify.
        });
        let (s2, c2) = (Arc::clone(&slot), Arc::clone(&cv));
        let t2 = thread::spawn(move || {
            let mut g = s2.lock().unwrap_or_else(PoisonError::into_inner);
            while *g == 0 {
                g = c2.wait(g).unwrap_or_else(PoisonError::into_inner);
            }
        });
        let _ = t1.join();
        let _ = t2.join();
    });
    let v = out.expect_violation();
    assert!(v.message.contains("deadlock"), "expected deadlock, got: {}", v.message);
}

/// Replay determinism: running the recorded violation trace reproduces
/// the byte-identical failure message, twice.
#[test]
fn replay_reproduces_identical_failure() {
    let scenario = || {
        let data = Arc::new(AtomicU64::new(0));
        let flag = Arc::new(AtomicU64::new(0));
        let (d1, f1) = (Arc::clone(&data), Arc::clone(&flag));
        let t1 = thread::spawn(move || {
            d1.store(42, Ordering::Relaxed);
            f1.store(1, Ordering::Relaxed);
        });
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let t2 = thread::spawn(move || {
            if f2.load(Ordering::Acquire) == 1 {
                assert_eq!(d2.load(Ordering::Relaxed), 42, "MP: flag seen but payload stale");
            }
        });
        let _ = t1.join();
        let _ = t2.join();
    };
    let out = check(cfg(), scenario);
    let v = out.expect_violation().clone();
    let r1 = replay(cfg(), &v.trace, scenario);
    let rv1 = r1.expect_violation();
    assert_eq!(rv1.message, v.message, "replay 1 diverged");
    assert_eq!(rv1.trace, v.trace, "replay 1 trace not byte-identical");
    let r2 = replay(cfg(), &v.trace, scenario);
    let rv2 = r2.expect_violation();
    assert_eq!(rv2.message, v.message, "replay 2 diverged");
    assert_eq!(rv2.trace, v.trace, "replay 2 trace not byte-identical");
}

/// Random mode finds the relaxed-MP bug too, and its trace replays.
#[test]
fn random_mode_finds_and_replays() {
    let scenario = || {
        let data = Arc::new(AtomicU64::new(0));
        let flag = Arc::new(AtomicU64::new(0));
        let (d1, f1) = (Arc::clone(&data), Arc::clone(&flag));
        let t1 = thread::spawn(move || {
            d1.store(42, Ordering::Relaxed);
            f1.store(1, Ordering::Relaxed);
        });
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let t2 = thread::spawn(move || {
            if f2.load(Ordering::Acquire) == 1 {
                assert_eq!(d2.load(Ordering::Relaxed), 42, "MP: flag seen but payload stale");
            }
        });
        let _ = t1.join();
        let _ = t2.join();
    };
    let out = check(
        Config { mode: Mode::Random { seed: 7, schedules: 500 }, ..cfg() },
        scenario,
    );
    let v = out.expect_violation().clone();
    let r = replay(cfg(), &v.trace, scenario);
    assert_eq!(r.expect_violation().message, v.message, "random trace replay diverged");
}
