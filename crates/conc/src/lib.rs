//! `disparity-conc` — sync shim + deterministic concurrency model checker.
//!
//! The crate has two faces:
//!
//! * **Normal builds** (`model` feature off): [`sync`] is a transparent
//!   re-export of `std::sync` primitives. Zero overhead, zero behavior
//!   change — proven by benchgate against the committed BENCH baselines.
//! * **Model builds** (`--features model`): [`sync`] swaps in instrumented
//!   `AtomicU64` / `Mutex` / `Condvar` / `thread` types driven by a
//!   deterministic turn-based scheduler (the `model` module, which only
//!   exists under the feature). The checker explores
//!   interleavings exhaustively (DFS with a DPOR-lite sleep-set reduction
//!   and CHESS-style preemption bounding) or via seeded random schedules,
//!   and models Release/Acquire/Relaxed orderings operationally: a
//!   `Relaxed` load may return any value from a bounded per-location store
//!   history unless ordered by Release/Acquire edges or fences.
//!
//! On an invariant violation (an assertion panic inside the checked
//! closure, or a deadlock) the checker produces a serialized schedule
//! trace (`disparity-conc/trace-v1` JSON) that `model::replay` re-runs
//! byte-for-byte deterministically; traces are committed to per-crate
//! regression corpora like `proto_fuzz`'s.
//!
//! Structures under check live in their home crates (`service::queue`,
//! `service::cache`, `obs::flight`) and import from [`sync`], so the
//! verified code is the shipped code, not a copy.

pub mod sync;

#[cfg(feature = "model")]
pub mod model;
