//! The sync shim: `std` re-exports in normal builds, instrumented model
//! types under `--features model`.
//!
//! Code under check imports exactly this surface:
//!
//! ```ignore
//! use disparity_conc::sync::{Condvar, Mutex, MutexGuard};
//! use disparity_conc::sync::atomic::{fence, AtomicU64, Ordering};
//! use disparity_conc::sync::thread;
//! ```
//!
//! In normal builds every name is the `std` item, so there is no wrapper
//! in the compiled artifact at all. Under the `model` feature the same
//! names resolve to scheduler-instrumented versions; a model type
//! constructed *outside* a model execution transparently falls back to
//! its `std` implementation, so statics and ordinary runtime code keep
//! working even in model builds.

#[cfg(not(feature = "model"))]
pub use std::sync::{Condvar, Mutex, MutexGuard};

#[cfg(not(feature = "model"))]
pub mod atomic {
    //! Re-export of `std::sync::atomic` items used by checked structures.
    pub use std::sync::atomic::{fence, AtomicU64, Ordering};
}

#[cfg(not(feature = "model"))]
pub use std::thread;

#[cfg(feature = "model")]
pub use crate::model::shim::{Condvar, Mutex, MutexGuard};

#[cfg(feature = "model")]
pub mod atomic {
    //! Model-instrumented atomics (std fallback outside an execution).
    pub use crate::model::shim::{fence, AtomicU64};
    pub use std::sync::atomic::Ordering;
}

#[cfg(feature = "model")]
pub use crate::model::shim::thread;
