//! Turn-based deterministic scheduler + DFS explorer.
//!
//! Model threads are real OS threads, but exactly one runs at a time:
//! every shim operation parks the thread with a declared pending [`Op`]
//! and waits for a grant. When all live threads are parked the scheduler
//! picks the next one — a *decision*. Decisions (thread choices, relaxed
//! read-from choices, notify-waiter choices) fully determine an
//! execution, so a recorded decision list is a replayable schedule.
//!
//! Exploration is stateless DFS over decision prefixes with a sleep-set
//! (DPOR-lite) reduction and a CHESS-style preemption bound. A decision
//! node is recorded only when its *raw* arity is > 1 (more than one
//! enabled thread / more than one readable store), which makes node
//! positions a pure function of the choice prefix — the alignment
//! property replay relies on.

use std::any::Any;
use std::cell::{Cell, RefCell};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard, Once, PoisonError};

use super::memory::{is_acquire, is_release, is_seqcst, ord_label, Memory, View};
use super::{die, trace, Config, Mode, Outcome, Violation};

/// Model thread id (dense, assigned in spawn order; root is 0).
pub type Tid = usize;

/// Read-modify-write flavors the shim can issue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RmwKind {
    /// `fetch_add(v)`.
    Add(u64),
    /// `swap(v)`.
    Swap(u64),
}

/// A pending shim operation — the unit of scheduling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// First yield of every model thread.
    ThreadStart,
    /// Atomic load.
    Load {
        /// Location id.
        loc: usize,
        /// User-requested ordering.
        ord: Ordering,
    },
    /// Atomic store.
    Store {
        /// Location id.
        loc: usize,
        /// User-requested ordering.
        ord: Ordering,
        /// Value to store.
        val: u64,
    },
    /// Atomic read-modify-write.
    Rmw {
        /// Location id.
        loc: usize,
        /// User-requested ordering.
        ord: Ordering,
        /// Operation flavor.
        kind: RmwKind,
    },
    /// Standalone fence.
    Fence {
        /// User-requested ordering.
        ord: Ordering,
    },
    /// Mutex acquisition (blocks while owned).
    MutexLock {
        /// Mutex id.
        mid: usize,
    },
    /// Mutex release.
    MutexUnlock {
        /// Mutex id.
        mid: usize,
    },
    /// Condvar wait phase 1: atomically release the mutex and register.
    CvWait {
        /// Condvar id.
        cv: usize,
        /// Mutex id released while waiting.
        mid: usize,
    },
    /// Condvar wait phase 2: re-acquire after being woken.
    CvReacquire {
        /// Condvar id.
        cv: usize,
        /// Mutex id re-acquired on wake.
        mid: usize,
    },
    /// `notify_one` / `notify_all`.
    CvNotify {
        /// Condvar id.
        cv: usize,
        /// True for `notify_all`.
        all: bool,
    },
    /// Join on another model thread.
    Join {
        /// Target thread.
        target: Tid,
    },
}

impl Op {
    /// Short stable label used in traces and failure messages.
    pub fn describe(&self) -> String {
        match self {
            Op::ThreadStart => "start".to_string(),
            Op::Load { loc, ord } => format!("load[{loc}] {}", ord_label(*ord)),
            Op::Store { loc, ord, val } => format!("store[{loc}]={val} {}", ord_label(*ord)),
            Op::Rmw { loc, ord, kind } => match kind {
                RmwKind::Add(v) => format!("rmw[{loc}] add {v} {}", ord_label(*ord)),
                RmwKind::Swap(v) => format!("rmw[{loc}] swap {v} {}", ord_label(*ord)),
            },
            Op::Fence { ord } => format!("fence {}", ord_label(*ord)),
            Op::MutexLock { mid } => format!("lock m{mid}"),
            Op::MutexUnlock { mid } => format!("unlock m{mid}"),
            Op::CvWait { cv, mid } => format!("cvwait c{cv}/m{mid}"),
            Op::CvReacquire { cv, mid } => format!("cvreacq c{cv}/m{mid}"),
            Op::CvNotify { cv, all } => {
                if *all {
                    format!("notify_all c{cv}")
                } else {
                    format!("notify c{cv}")
                }
            }
            Op::Join { target } => format!("join t{target}"),
        }
    }
}

fn atomic_site(op: &Op) -> Option<(usize, bool, bool)> {
    match op {
        Op::Load { loc, ord } => Some((*loc, false, is_seqcst(*ord))),
        Op::Store { loc, ord, .. } => Some((*loc, true, is_seqcst(*ord))),
        Op::Rmw { loc, ord, .. } => Some((*loc, true, is_seqcst(*ord))),
        _ => None,
    }
}

fn mutex_of(op: &Op) -> Option<usize> {
    match op {
        Op::MutexLock { mid }
        | Op::MutexUnlock { mid }
        | Op::CvWait { mid, .. }
        | Op::CvReacquire { mid, .. } => Some(*mid),
        _ => None,
    }
}

fn cv_of(op: &Op) -> Option<usize> {
    match op {
        Op::CvWait { cv, .. } | Op::CvReacquire { cv, .. } | Op::CvNotify { cv, .. } => Some(*cv),
        _ => None,
    }
}

/// Dependence relation for the sleep-set reduction: two ops are
/// dependent iff executing them in either order can lead to different
/// states or different enabledness. Conservative where in doubt.
pub(crate) fn dependent(a: &Op, b: &Op) -> bool {
    if let (Some((l1, w1, s1)), Some((l2, w2, s2))) = (atomic_site(a), atomic_site(b)) {
        // Same location: dependent unless both are loads. Cross-location
        // SeqCst accesses interact through the global SC view.
        return (l1 == l2 && (w1 || w2)) || (s1 && s2);
    }
    let sc_fence = |op: &Op| matches!(op, Op::Fence { ord } if is_seqcst(*ord));
    let sc_access = |op: &Op| matches!(atomic_site(op), Some((_, _, true)));
    if sc_fence(a) && (sc_fence(b) || sc_access(b)) {
        return true;
    }
    if sc_fence(b) && sc_access(a) {
        return true;
    }
    // Acquire/release fences only touch thread-local views.
    if matches!(a, Op::Fence { .. }) || matches!(b, Op::Fence { .. }) {
        return false;
    }
    if let (Some(m1), Some(m2)) = (mutex_of(a), mutex_of(b)) {
        if m1 == m2 {
            return true;
        }
    }
    if let (Some(c1), Some(c2)) = (cv_of(a), cv_of(b)) {
        if c1 == c2 {
            return true;
        }
    }
    false
}

/// One resolved decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Choice {
    /// Scheduler granted this thread.
    Thread(Tid),
    /// Index into a candidate list (read-from or notify-waiter).
    Pick(usize),
}

/// Node metadata the explorer needs for backtracking.
#[derive(Debug, Clone)]
pub(crate) enum NodeInfo {
    /// A scheduling point with >1 enabled thread.
    Thread {
        /// All enabled threads with their pending ops (raw arity basis).
        enabled: Vec<(Tid, Op)>,
        /// Enabled threads not in the sleep set at record time — the set
        /// DFS may explore from this node.
        candidates: Vec<Tid>,
    },
    /// A value pick with >1 candidate.
    Pick {
        /// Number of candidates.
        arity: usize,
        /// What was picked ("read", "notify") — trace cosmetics.
        what: &'static str,
    },
}

/// A recorded decision: what was chosen plus enough info to backtrack.
#[derive(Debug, Clone)]
pub(crate) struct DecisionRec {
    pub(crate) choice: Choice,
    pub(crate) info: NodeInfo,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    /// Registered; OS thread not yet at its first yield.
    Spawning,
    /// Parked with a pending op, waiting for a grant.
    Parked,
    /// Granted; executing its op + following run segment.
    Running,
    /// Model thread finished (or unwound after an abort).
    Finished,
}

#[derive(Debug)]
struct ThreadState {
    status: Status,
    pending: Option<Op>,
    view: View,
    /// Pending acquire view (joined by relaxed loads, applied by fences).
    acq: View,
    /// View at the last release fence (message view of relaxed stores).
    rel: View,
    /// Set when this thread spawned another inside the current segment;
    /// consumed (conservatively clearing the sleep set) at its next yield.
    spawned_in_segment: bool,
}

impl ThreadState {
    fn new(view: View) -> Self {
        ThreadState {
            status: Status::Spawning,
            pending: None,
            view,
            acq: View::default(),
            rel: View::default(),
            spawned_in_segment: false,
        }
    }
}

#[derive(Debug)]
struct MutexState {
    owner: Option<Tid>,
    /// View left by the last unlocker (lock acquires it).
    view: View,
}

#[derive(Debug)]
struct Waiter {
    tid: Tid,
    woken: bool,
    /// Notifier's view at wake time, joined on re-acquire.
    woken_view: View,
}

#[derive(Debug, Default)]
struct CvState {
    waiters: Vec<Waiter>,
}

/// Terminal state of one execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum EndState {
    Running,
    Done,
    Pruned,
    Failed(String),
}

/// Per-run scheduler configuration (derived from [`Config`]).
#[derive(Debug, Clone)]
pub(crate) struct RunCfg {
    preemption_bound: u32,
    read_window: usize,
    max_steps: usize,
    use_sleep: bool,
    rng: Option<u64>,
}

struct ExecInner {
    threads: Vec<ThreadState>,
    memory: Memory,
    mutexes: Vec<MutexState>,
    cvs: Vec<CvState>,
    /// Currently granted thread, if any.
    active: Option<Tid>,
    /// Last granted thread (preemption accounting).
    cur: Tid,
    preempt_used: u32,
    cur_sleep: Vec<(Tid, Op)>,
    plan: Vec<Choice>,
    /// Extra sleep entries to merge when the decision counter reaches
    /// the given node index (the DFS backtrack point).
    plan_extra_sleep: Option<(usize, Vec<(Tid, Op)>)>,
    decisions: Vec<DecisionRec>,
    steps: usize,
    state: EndState,
    cfg: RunCfg,
    rng: Option<u64>,
    os_handles: Vec<std::thread::JoinHandle<()>>,
}

/// Shared execution state: one per explored schedule.
pub(crate) struct Exec {
    m: StdMutex<ExecInner>,
    cv: StdCondvar,
}

/// Marker payload used to unwind model threads when an execution ends
/// early (violation elsewhere, prune, budget). Not an error.
struct AbortToken;

fn abort_unwind() -> ! {
    panic::resume_unwind(Box::new(AbortToken));
}

fn payload_msg(p: &(dyn Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn splitmix(s: &mut u64) -> u64 {
    *s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *s;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

thread_local! {
    static CTX: RefCell<Option<(Arc<Exec>, Tid)>> = const { RefCell::new(None) };
    static SILENT: Cell<bool> = const { Cell::new(false) };
}

/// Current model context, if this OS thread is a model thread.
pub(crate) fn current_ctx() -> Option<(Arc<Exec>, Tid)> {
    CTX.with(|c| c.borrow().clone())
}

fn install_silent_panic_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if SILENT.with(|s| s.get()) {
                return;
            }
            prev(info);
        }));
    });
}

enum Performed {
    /// Op done; value returned to the shim caller.
    Done(u64),
    /// Op done, but the thread must immediately repark with a new op
    /// (condvar wait phase 2).
    Repark(Op),
}

impl Exec {
    fn new(cfg: RunCfg, plan: Vec<Choice>, extra: Option<(usize, Vec<(Tid, Op)>)>) -> Self {
        let rng = cfg.rng;
        Exec {
            m: StdMutex::new(ExecInner {
                threads: Vec::new(),
                memory: Memory::default(),
                mutexes: Vec::new(),
                cvs: Vec::new(),
                active: None,
                cur: 0,
                preempt_used: 0,
                cur_sleep: Vec::new(),
                plan,
                plan_extra_sleep: extra,
                decisions: Vec::new(),
                steps: 0,
                state: EndState::Running,
                cfg,
                rng,
                os_handles: Vec::new(),
            }),
            cv: StdCondvar::new(),
        }
    }

    fn lock(&self) -> StdMutexGuard<'_, ExecInner> {
        self.m.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Registers a fresh atomic location (shim `AtomicU64::new`).
    pub(crate) fn alloc_loc(&self, init: u64) -> usize {
        self.lock().memory.alloc(init)
    }

    /// Registers a fresh mutex (shim `Mutex::new`).
    pub(crate) fn alloc_mutex(&self) -> usize {
        let mut g = self.lock();
        g.mutexes.push(MutexState { owner: None, view: View::default() });
        g.mutexes.len() - 1
    }

    /// Registers a fresh condvar (shim `Condvar::new`).
    pub(crate) fn alloc_cv(&self) -> usize {
        let mut g = self.lock();
        g.cvs.push(CvState::default());
        g.cvs.len() - 1
    }

    /// Emergency unlock from a guard dropped during a panic unwind: no
    /// scheduling, just release ownership so deadlock reports stay sane.
    pub(crate) fn force_unlock(&self, mid: usize) {
        let mut g = self.lock();
        g.mutexes[mid].owner = None;
        self.cv.notify_all();
    }

    fn fail(&self, g: &mut ExecInner, msg: String) {
        if g.state == EndState::Running {
            g.state = EndState::Failed(msg);
        }
        self.cv.notify_all();
    }

    /// The heart of the shim: declare `op`, park, wait for the grant,
    /// perform it, and return the op's value.
    pub(crate) fn yield_op(&self, me: Tid, op: Op) -> u64 {
        let mut g = self.lock();
        let mut op = op;
        loop {
            if g.state != EndState::Running {
                drop(g);
                abort_unwind();
            }
            if g.cfg.use_sleep && g.threads[me].spawned_in_segment {
                g.threads[me].spawned_in_segment = false;
                g.cur_sleep.clear();
            }
            g.threads[me].pending = Some(op.clone());
            g.threads[me].status = Status::Parked;
            if g.active == Some(me) {
                g.active = None;
            }
            self.maybe_schedule(&mut g);
            self.cv.notify_all();
            while g.active != Some(me) {
                if g.state != EndState::Running {
                    drop(g);
                    abort_unwind();
                }
                g = self.cv.wait(g).unwrap_or_else(PoisonError::into_inner);
            }
            g.threads[me].status = Status::Running;
            g.threads[me].pending = None;
            g.steps += 1;
            if g.steps > g.cfg.max_steps {
                let msg = format!("step budget exceeded ({} steps)", g.cfg.max_steps);
                self.fail(&mut g, msg);
                drop(g);
                abort_unwind();
            }
            let performed = self.perform(&mut g, me, &op);
            if g.cfg.use_sleep {
                let done_op = op.clone();
                g.cur_sleep.retain(|(t, sop)| *t != me && !dependent(sop, &done_op));
            }
            match performed {
                Performed::Done(v) => return v,
                Performed::Repark(next) => {
                    op = next;
                    g.active = None;
                    // Loop: re-declare and park on the follow-up op.
                }
            }
        }
    }

    /// Marks `me` finished (normal return, assertion panic, or abort)
    /// and lets the scheduler move on.
    fn finish_thread(&self, me: Tid, failure: Option<String>) {
        let mut g = self.lock();
        if let Some(msg) = failure {
            let msg = format!("thread t{me}: {msg}");
            if g.state == EndState::Running {
                g.state = EndState::Failed(msg);
            }
        }
        g.threads[me].status = Status::Finished;
        g.threads[me].pending = None;
        if g.active == Some(me) {
            g.active = None;
        }
        if g.cfg.use_sleep {
            if g.threads[me].spawned_in_segment {
                g.cur_sleep.clear();
            } else {
                // Finishing enables Join(me) — those sleepers must wake.
                g.cur_sleep
                    .retain(|(_, sop)| !matches!(sop, Op::Join { target } if *target == me));
            }
        }
        self.maybe_schedule(&mut g);
        self.cv.notify_all();
    }

    fn op_enabled(g: &ExecInner, tid: Tid, op: &Op) -> bool {
        match op {
            Op::MutexLock { mid } => g.mutexes[*mid].owner.is_none(),
            Op::CvReacquire { cv, mid } => {
                let woken = g.cvs[*cv].waiters.iter().any(|w| w.tid == tid && w.woken);
                woken && g.mutexes[*mid].owner.is_none()
            }
            Op::Join { target } => g.threads[*target].status == Status::Finished,
            _ => true,
        }
    }

    /// If every live thread is parked, resolve the next scheduling
    /// decision (or end the execution: done / deadlock / prune).
    fn maybe_schedule(&self, g: &mut ExecInner) {
        if g.active.is_some() || g.state != EndState::Running {
            return;
        }
        if g.threads.iter().any(|t| matches!(t.status, Status::Spawning | Status::Running)) {
            return;
        }
        let live: Vec<Tid> = (0..g.threads.len())
            .filter(|t| g.threads[*t].status == Status::Parked)
            .collect();
        if live.is_empty() {
            g.state = EndState::Done;
            self.cv.notify_all();
            return;
        }
        let enabled: Vec<(Tid, Op)> = live
            .iter()
            .filter_map(|t| {
                let op = g.threads[*t].pending.clone()?;
                Self::op_enabled(g, *t, &op).then_some((*t, op))
            })
            .collect();
        if enabled.is_empty() {
            let stuck: Vec<String> = live
                .iter()
                .map(|t| {
                    let d = g.threads[*t]
                        .pending
                        .as_ref()
                        .map(|o| o.describe())
                        .unwrap_or_else(|| "?".to_string());
                    format!("t{t}: {d}")
                })
                .collect();
            self.fail(g, format!("deadlock: all threads blocked [{}]", stuck.join(", ")));
            return;
        }
        // Inject the backtrack's sleep entries only at a point that will
        // actually *record* decision `at` (raw arity > 1): arity-1 points
        // don't advance `decisions.len()`, so matching on the count alone
        // could fire early — sleeping a thread whose pending op is not yet
        // the one explored at the node, wrongly pruning whole subtrees.
        // Node positions are a pure function of the choice prefix, so the
        // first arity>1 point with a matching count IS the backtracked
        // node.
        if enabled.len() > 1 {
            if let Some((at, _)) = &g.plan_extra_sleep {
                if g.decisions.len() == *at {
                    if let Some((_, extra)) = g.plan_extra_sleep.take() {
                        g.cur_sleep.extend(extra);
                    }
                }
            }
        }
        let mut cands: Vec<Tid> = enabled
            .iter()
            .map(|(t, _)| *t)
            .filter(|t| !g.cur_sleep.iter().any(|(s, _)| s == t))
            .collect();
        let cur_enabled = enabled.iter().any(|(t, _)| *t == g.cur);
        if g.preempt_used >= g.cfg.preemption_bound && cur_enabled {
            cands.retain(|t| *t == g.cur);
        }
        // Prefer continuing the current thread: cheapest (no preemption)
        // and the natural DFS spine.
        cands.sort_unstable_by_key(|t| (*t != g.cur, *t));
        let arity = enabled.len();
        let k = g.decisions.len();
        let chosen = if arity > 1 && k < g.plan.len() {
            match g.plan[k] {
                Choice::Thread(t) if enabled.iter().any(|(e, _)| *e == t) => t,
                other => {
                    self.fail(
                        g,
                        format!("replay divergence at node {k}: plan {other:?} not enabled"),
                    );
                    return;
                }
            }
        } else if cands.is_empty() {
            // Every enabled thread is sleeping: this execution is
            // equivalent to one already explored.
            g.state = EndState::Pruned;
            self.cv.notify_all();
            return;
        } else if let Some(rng) = &mut g.rng {
            cands[(splitmix(rng) as usize) % cands.len()]
        } else {
            cands[0]
        };
        if arity > 1 {
            g.decisions.push(DecisionRec {
                choice: Choice::Thread(chosen),
                info: NodeInfo::Thread { enabled: enabled.clone(), candidates: cands },
            });
        }
        if cur_enabled && chosen != g.cur {
            g.preempt_used += 1;
        }
        g.cur = chosen;
        g.active = Some(chosen);
    }

    /// Resolves a value decision (read-from / notify-waiter) with the
    /// same plan/record discipline as thread decisions.
    fn pick(&self, g: &mut ExecInner, arity: usize, what: &'static str) -> usize {
        if arity <= 1 {
            return 0;
        }
        let k = g.decisions.len();
        let idx = if k < g.plan.len() {
            match g.plan[k] {
                Choice::Pick(i) if i < arity => i,
                other => {
                    self.fail(
                        g,
                        format!("replay divergence at node {k}: plan {other:?}, {what} arity {arity}"),
                    );
                    abort_unwind();
                }
            }
        } else if let Some(rng) = &mut g.rng {
            (splitmix(rng) as usize) % arity
        } else {
            0
        };
        g.decisions.push(DecisionRec { choice: Choice::Pick(idx), info: NodeInfo::Pick { arity, what } });
        idx
    }

    fn perform(&self, g: &mut ExecInner, me: Tid, op: &Op) -> Performed {
        match op {
            Op::ThreadStart => Performed::Done(0),
            Op::Load { loc, ord } => {
                let (loc, ord) = (*loc, *ord);
                if is_seqcst(ord) {
                    let sc = g.memory.sc_view.clone();
                    g.threads[me].view.join(&sc);
                }
                let len = g.memory.locs[loc].stores.len() as u32;
                let floor = g.threads[me].view.get(loc);
                let window = g.cfg.read_window as u32;
                let mut lo = floor.max(len.saturating_sub(window.max(1)));
                if is_seqcst(ord) {
                    lo = lo.max(g.memory.locs[loc].last_sc);
                }
                // Newest first: index 0 is the coherence-latest store, so
                // the DFS default behaves sequentially consistent and
                // stale reads are explored as backtracks.
                let cand: Vec<u32> = (lo..len).rev().collect();
                let ci = self.pick(g, cand.len(), "read");
                let i = cand[ci];
                let msg = g.memory.locs[loc].stores[i as usize].view.clone();
                let val = g.memory.locs[loc].stores[i as usize].val;
                let th = &mut g.threads[me];
                th.view.raise(loc, i);
                if is_acquire(ord) {
                    th.view.join(&msg);
                } else {
                    th.acq.join(&msg);
                }
                if is_seqcst(ord) {
                    let v = th.view.clone();
                    g.memory.sc_view.join(&v);
                }
                Performed::Done(val)
            }
            Op::Store { loc, ord, val } => {
                let (loc, ord, val) = (*loc, *ord, *val);
                if is_seqcst(ord) {
                    let sc = g.memory.sc_view.clone();
                    g.threads[me].view.join(&sc);
                }
                let n = g.memory.locs[loc].stores.len() as u32;
                let th = &mut g.threads[me];
                th.view.raise(loc, n);
                let mut msg = if is_release(ord) { th.view.clone() } else { th.rel.clone() };
                msg.raise(loc, n);
                if is_seqcst(ord) {
                    let v = th.view.clone();
                    g.memory.sc_view.join(&v);
                    g.memory.locs[loc].last_sc = n;
                }
                g.memory.locs[loc].stores.push(super::memory::StoreMsg { val, view: msg });
                Performed::Done(0)
            }
            Op::Rmw { loc, ord, kind } => {
                let (loc, ord, kind) = (*loc, *ord, kind.clone());
                if is_seqcst(ord) {
                    let sc = g.memory.sc_view.clone();
                    g.threads[me].view.join(&sc);
                }
                // Atomicity: an RMW always reads the latest store in
                // modification order.
                let n = (g.memory.locs[loc].stores.len() - 1) as u32;
                let old = g.memory.locs[loc].stores[n as usize].val;
                let prev_view = g.memory.locs[loc].stores[n as usize].view.clone();
                let new_val = match kind {
                    RmwKind::Add(v) => old.wrapping_add(v),
                    RmwKind::Swap(v) => v,
                };
                let m = n + 1;
                let th = &mut g.threads[me];
                th.view.raise(loc, n);
                if is_acquire(ord) {
                    th.view.join(&prev_view);
                } else {
                    th.acq.join(&prev_view);
                }
                th.view.raise(loc, m);
                let mut msg = if is_release(ord) { th.view.clone() } else { th.rel.clone() };
                // Release-sequence approximation: the RMW's message view
                // carries the previous store's message forward.
                msg.join(&prev_view);
                msg.raise(loc, m);
                if is_seqcst(ord) {
                    let v = th.view.clone();
                    g.memory.sc_view.join(&v);
                    g.memory.locs[loc].last_sc = m;
                }
                g.memory.locs[loc].stores.push(super::memory::StoreMsg { val: new_val, view: msg });
                Performed::Done(old)
            }
            Op::Fence { ord } => {
                let ord = *ord;
                let th = &mut g.threads[me];
                if is_acquire(ord) {
                    let acq = th.acq.clone();
                    th.view.join(&acq);
                }
                if is_seqcst(ord) {
                    let sc = g.memory.sc_view.clone();
                    g.threads[me].view.join(&sc);
                    let v = g.threads[me].view.clone();
                    g.memory.sc_view.join(&v);
                }
                let th = &mut g.threads[me];
                if is_release(ord) {
                    th.rel = th.view.clone();
                }
                Performed::Done(0)
            }
            Op::MutexLock { mid } => {
                let mid = *mid;
                g.mutexes[mid].owner = Some(me);
                let mv = g.mutexes[mid].view.clone();
                g.threads[me].view.join(&mv);
                Performed::Done(0)
            }
            Op::MutexUnlock { mid } => {
                let mid = *mid;
                g.mutexes[mid].owner = None;
                g.mutexes[mid].view = g.threads[me].view.clone();
                Performed::Done(0)
            }
            Op::CvWait { cv, mid } => {
                let (cv, mid) = (*cv, *mid);
                g.mutexes[mid].owner = None;
                g.mutexes[mid].view = g.threads[me].view.clone();
                g.cvs[cv].waiters.push(Waiter { tid: me, woken: false, woken_view: View::default() });
                Performed::Repark(Op::CvReacquire { cv, mid })
            }
            Op::CvReacquire { cv, mid } => {
                let (cv, mid) = (*cv, *mid);
                let mut woken_view = View::default();
                g.cvs[cv].waiters.retain_mut(|w| {
                    if w.tid == me {
                        woken_view = std::mem::take(&mut w.woken_view);
                        false
                    } else {
                        true
                    }
                });
                g.mutexes[mid].owner = Some(me);
                let mv = g.mutexes[mid].view.clone();
                let th = &mut g.threads[me];
                th.view.join(&mv);
                th.view.join(&woken_view);
                Performed::Done(0)
            }
            Op::CvNotify { cv, all } => {
                let (cv, all) = (*cv, *all);
                let nview = g.threads[me].view.clone();
                if all {
                    for w in g.cvs[cv].waiters.iter_mut() {
                        if !w.woken {
                            w.woken = true;
                            w.woken_view = nview.clone();
                        }
                    }
                } else {
                    let mut idle: Vec<usize> = g.cvs[cv]
                        .waiters
                        .iter()
                        .enumerate()
                        .filter(|(_, w)| !w.woken)
                        .map(|(i, _)| i)
                        .collect();
                    idle.sort_by_key(|i| g.cvs[cv].waiters[*i].tid);
                    if !idle.is_empty() {
                        let pick = self.pick(g, idle.len(), "notify");
                        let w = &mut g.cvs[cv].waiters[idle[pick]];
                        w.woken = true;
                        w.woken_view = nview;
                    }
                }
                Performed::Done(0)
            }
            Op::Join { target } => {
                let tv = g.threads[*target].view.clone();
                g.threads[me].view.join(&tv);
                Performed::Done(0)
            }
        }
    }
}

fn run_model_thread(exec: Arc<Exec>, me: Tid, f: Box<dyn FnOnce() + Send>) {
    SILENT.with(|s| s.set(true));
    CTX.with(|c| *c.borrow_mut() = Some((Arc::clone(&exec), me)));
    let result = panic::catch_unwind(AssertUnwindSafe(move || {
        exec_start(me);
        f();
    }));
    CTX.with(|c| *c.borrow_mut() = None);
    let failure = match result {
        Ok(()) => None,
        Err(p) if p.downcast_ref::<AbortToken>().is_some() => None,
        Err(p) => Some(payload_msg(p.as_ref())),
    };
    exec.finish_thread(me, failure);
}

fn exec_start(me: Tid) {
    if let Some((exec, tid)) = current_ctx() {
        if tid == me {
            exec.yield_op(me, Op::ThreadStart);
        }
    }
}

/// Spawns a model thread running `f`; called from the shim.
pub(crate) fn spawn_model_thread(
    exec: &Arc<Exec>,
    parent: Tid,
    f: Box<dyn FnOnce() + Send + 'static>,
) -> Tid {
    let mut g = exec.lock();
    let tid = g.threads.len();
    let pview = g.threads[parent].view.clone();
    g.threads.push(ThreadState::new(pview));
    g.threads[parent].spawned_in_segment = true;
    let e2 = Arc::clone(exec);
    let built = std::thread::Builder::new()
        .name(format!("conc-model-{tid}"))
        .spawn(move || run_model_thread(e2, tid, f));
    match built {
        Ok(h) => g.os_handles.push(h),
        Err(e) => die(&format!("OS thread spawn failed: {e}")),
    }
    tid
}

struct RunResult {
    decisions: Vec<DecisionRec>,
    state: EndState,
}

fn run_once(
    rc: &RunCfg,
    plan: Vec<Choice>,
    extra: Option<(usize, Vec<(Tid, Op)>)>,
    f: Arc<dyn Fn() + Send + Sync>,
) -> RunResult {
    install_silent_panic_hook();
    let exec = Arc::new(Exec::new(rc.clone(), plan, extra));
    {
        let mut g = exec.lock();
        g.threads.push(ThreadState::new(View::default()));
        let e2 = Arc::clone(&exec);
        let built = std::thread::Builder::new()
            .name("conc-model-0".to_string())
            .spawn(move || run_model_thread(e2, 0, Box::new(move || f())));
        match built {
            Ok(h) => g.os_handles.push(h),
            Err(e) => die(&format!("OS thread spawn failed: {e}")),
        }
    }
    let mut g = exec.lock();
    while !g.threads.iter().all(|t| t.status == Status::Finished) {
        g = exec.cv.wait(g).unwrap_or_else(PoisonError::into_inner);
    }
    let decisions = std::mem::take(&mut g.decisions);
    let state = g.state.clone();
    let handles = std::mem::take(&mut g.os_handles);
    drop(g);
    for h in handles {
        let _ = h.join();
    }
    let state = if state == EndState::Running { EndState::Done } else { state };
    RunResult { decisions, state }
}

/// DFS frontier: the current decision path with per-node explored sets.
struct PathNode {
    rec: DecisionRec,
    explored: Vec<Choice>,
}

#[derive(Default)]
struct Explorer {
    path: Vec<PathNode>,
}

impl Explorer {
    /// Folds a finished run into the tree: the prefix up to `plan_len`
    /// was forced (already on the path); everything beyond is new.
    fn absorb(&mut self, decisions: Vec<DecisionRec>, plan_len: usize) {
        for (i, d) in decisions.into_iter().enumerate() {
            if i < plan_len {
                if i < self.path.len() && self.path[i].rec.choice != d.choice {
                    die(&format!(
                        "exploration drift at node {i}: path {:?} vs run {:?}",
                        self.path[i].rec.choice, d.choice
                    ));
                }
            } else {
                self.path.push(PathNode { rec: d.clone(), explored: vec![d.choice] });
            }
        }
    }

    /// Pops to the deepest node with an unexplored sibling and returns
    /// the forced plan + extra sleep entries for the backtrack node.
    #[allow(clippy::type_complexity)]
    fn next_plan(&mut self) -> Option<(Vec<Choice>, Option<(usize, Vec<(Tid, Op)>)>)> {
        loop {
            let d = self.path.len().checked_sub(1)?;
            let next = {
                let node = &self.path[d];
                match &node.rec.info {
                    NodeInfo::Pick { arity, .. } => (0..*arity)
                        .map(Choice::Pick)
                        .find(|c| !node.explored.contains(c)),
                    NodeInfo::Thread { candidates, .. } => candidates
                        .iter()
                        .map(|t| Choice::Thread(*t))
                        .find(|c| !node.explored.contains(c)),
                }
            };
            if let Some(c) = next {
                let node = &mut self.path[d];
                node.explored.push(c);
                node.rec.choice = c;
                let extra = match (&node.rec.info, c) {
                    (NodeInfo::Thread { enabled, .. }, Choice::Thread(chosen)) => {
                        // Sleep the already-explored siblings: any run
                        // that schedules them before an op dependent with
                        // theirs is equivalent to an explored one.
                        let entries: Vec<(Tid, Op)> = node
                            .explored
                            .iter()
                            .filter_map(|e| match e {
                                Choice::Thread(t) if *t != chosen => enabled
                                    .iter()
                                    .find(|(et, _)| et == t)
                                    .map(|(et, eop)| (*et, eop.clone())),
                                _ => None,
                            })
                            .collect();
                        if entries.is_empty() { None } else { Some((d, entries)) }
                    }
                    _ => None,
                };
                let plan: Vec<Choice> = self.path[..=d].iter().map(|n| n.rec.choice).collect();
                return Some((plan, extra));
            }
            self.path.pop();
        }
    }
}

fn outcome_from_failure(state: &EndState, decisions: &[DecisionRec], schedules: u32) -> Option<Outcome> {
    if let EndState::Failed(msg) = state {
        Some(Outcome {
            violation: Some(Violation {
                message: msg.clone(),
                trace: trace::serialize(decisions),
            }),
            schedules,
            complete: false,
        })
    } else {
        None
    }
}

pub(crate) fn check_impl(cfg: Config, f: Arc<dyn Fn() + Send + Sync>) -> Outcome {
    match cfg.mode {
        Mode::Exhaustive => {
            let rc = RunCfg {
                preemption_bound: cfg.preemption_bound,
                read_window: cfg.read_window,
                max_steps: cfg.max_steps,
                use_sleep: true,
                rng: None,
            };
            let mut explorer = Explorer::default();
            let mut plan: Vec<Choice> = Vec::new();
            let mut extra = None;
            let mut schedules = 0u32;
            loop {
                let plan_len = plan.len();
                let res = run_once(&rc, plan, extra, Arc::clone(&f));
                schedules += 1;
                if std::env::var_os("CONC_DEBUG").is_some() {
                    eprintln!(
                        "run {schedules}: state={:?} plan_len={plan_len} decisions={:?}",
                        res.state,
                        res.decisions.iter().map(|d| &d.choice).collect::<Vec<_>>()
                    );
                }
                if let Some(out) = outcome_from_failure(&res.state, &res.decisions, schedules) {
                    return out;
                }
                explorer.absorb(res.decisions, plan_len);
                if schedules >= cfg.max_schedules {
                    return Outcome { violation: None, schedules, complete: false };
                }
                match explorer.next_plan() {
                    Some((p, e)) => {
                        plan = p;
                        extra = e;
                    }
                    None => return Outcome { violation: None, schedules, complete: true },
                }
            }
        }
        Mode::Random { seed, schedules } => {
            for i in 0..schedules {
                let rc = RunCfg {
                    preemption_bound: cfg.preemption_bound,
                    read_window: cfg.read_window,
                    max_steps: cfg.max_steps,
                    use_sleep: false,
                    rng: Some(seed ^ (0xA5A5_5A5A_u64.wrapping_mul(u64::from(i) + 1))),
                };
                let res = run_once(&rc, Vec::new(), None, Arc::clone(&f));
                if let Some(out) = outcome_from_failure(&res.state, &res.decisions, i + 1) {
                    return out;
                }
            }
            Outcome { violation: None, schedules, complete: false }
        }
    }
}

pub(crate) fn replay_impl(cfg: Config, plan: Vec<Choice>, f: Arc<dyn Fn() + Send + Sync>) -> Outcome {
    let rc = RunCfg {
        preemption_bound: u32::MAX,
        read_window: cfg.read_window,
        max_steps: cfg.max_steps,
        use_sleep: false,
        rng: None,
    };
    let res = run_once(&rc, plan, None, f);
    match outcome_from_failure(&res.state, &res.decisions, 1) {
        Some(out) => out,
        None => Outcome { violation: None, schedules: 1, complete: false },
    }
}
