//! Instrumented drop-in replacements for the `std::sync` surface that
//! checked structures use.
//!
//! Every type is dual-mode: constructed *inside* a model execution it
//! registers with the scheduler and every operation becomes a yield
//! point; constructed *outside* (statics, ordinary runtime code in a
//! `--features model` build) it transparently wraps the `std` primitive,
//! so model builds still run normally outside the checker.

use std::cell::UnsafeCell;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::Ordering;
use std::sync::{Arc, LockResult, PoisonError, Weak};

use super::die;
use super::exec::{current_ctx, spawn_model_thread, Exec, Op, RmwKind, Tid};

fn ctx_for(exec: &Weak<Exec>, what: &str) -> (Arc<Exec>, Tid) {
    let (cur, tid) = match current_ctx() {
        Some(x) => x,
        None => die(&format!("modeled {what} used outside any model execution")),
    };
    match exec.upgrade() {
        Some(e) if Arc::ptr_eq(&e, &cur) => (cur, tid),
        _ => die(&format!("modeled {what} used outside its own execution")),
    }
}

/// Shim `AtomicU64`: std-backed outside executions, scheduler-driven
/// inside (weak orderings modeled operationally).
#[derive(Debug)]
pub struct AtomicU64 {
    repr: AtomicRepr,
}

#[derive(Debug)]
enum AtomicRepr {
    Real(std::sync::atomic::AtomicU64),
    Model { exec: Weak<Exec>, loc: usize },
}

impl AtomicU64 {
    /// Creates an atomic; registers a model location when called inside
    /// an execution.
    pub fn new(v: u64) -> Self {
        let repr = match current_ctx() {
            Some((exec, _)) => {
                let loc = exec.alloc_loc(v);
                AtomicRepr::Model { exec: Arc::downgrade(&exec), loc }
            }
            None => AtomicRepr::Real(std::sync::atomic::AtomicU64::new(v)),
        };
        AtomicU64 { repr }
    }

    fn run(&self, mk: impl FnOnce(usize) -> Op, real: impl FnOnce(&std::sync::atomic::AtomicU64) -> u64) -> u64 {
        match &self.repr {
            AtomicRepr::Real(a) => real(a),
            AtomicRepr::Model { exec, loc } => {
                let (e, tid) = ctx_for(exec, "AtomicU64");
                e.yield_op(tid, mk(*loc))
            }
        }
    }

    /// Atomic load with `ord`.
    pub fn load(&self, ord: Ordering) -> u64 {
        self.run(|loc| Op::Load { loc, ord }, |a| a.load(ord))
    }

    /// Atomic store with `ord`.
    pub fn store(&self, val: u64, ord: Ordering) {
        self.run(
            |loc| Op::Store { loc, ord, val },
            |a| {
                a.store(val, ord);
                0
            },
        );
    }

    /// Atomic fetch-add with `ord`; returns the previous value.
    pub fn fetch_add(&self, val: u64, ord: Ordering) -> u64 {
        self.run(|loc| Op::Rmw { loc, ord, kind: RmwKind::Add(val) }, |a| a.fetch_add(val, ord))
    }

    /// Atomic swap with `ord`; returns the previous value.
    pub fn swap(&self, val: u64, ord: Ordering) -> u64 {
        self.run(|loc| Op::Rmw { loc, ord, kind: RmwKind::Swap(val) }, |a| a.swap(val, ord))
    }
}

/// Shim `fence`: a scheduler yield point inside executions, std fence
/// outside.
pub fn fence(ord: Ordering) {
    match current_ctx() {
        Some((exec, tid)) => {
            exec.yield_op(tid, Op::Fence { ord });
        }
        None => std::sync::atomic::fence(ord),
    }
}

/// Shim `Mutex<T>`.
#[derive(Debug)]
pub struct Mutex<T> {
    repr: MutexRepr<T>,
}

enum MutexRepr<T> {
    Real(std::sync::Mutex<T>),
    Model { exec: Weak<Exec>, mid: usize, cell: UnsafeCell<T> },
}

impl<T: std::fmt::Debug> std::fmt::Debug for MutexRepr<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MutexRepr::Real(m) => m.fmt(f),
            MutexRepr::Model { mid, .. } => write!(f, "ModelMutex(m{mid})"),
        }
    }
}

// Safety: mirrors std — the model variant serializes access through the
// scheduler (at most one granted owner), so `UnsafeCell<T>` is only
// touched by the thread holding the model lock.
unsafe impl<T: Send> Send for Mutex<T> {}
unsafe impl<T: Send> Sync for Mutex<T> {}

impl<T> Mutex<T> {
    /// Creates a mutex; registers with the scheduler inside executions.
    pub fn new(t: T) -> Self {
        let repr = match current_ctx() {
            Some((exec, _)) => {
                let mid = exec.alloc_mutex();
                MutexRepr::Model { exec: Arc::downgrade(&exec), mid, cell: UnsafeCell::new(t) }
            }
            None => MutexRepr::Real(std::sync::Mutex::new(t)),
        };
        Mutex { repr }
    }

    /// Acquires the mutex (a blocking yield point inside executions).
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        match &self.repr {
            MutexRepr::Real(m) => match m.lock() {
                Ok(k) => Ok(MutexGuard { inner: GuardRepr::Real(std::mem::ManuallyDrop::new(k)) }),
                Err(p) => Err(PoisonError::new(MutexGuard {
                    inner: GuardRepr::Real(std::mem::ManuallyDrop::new(p.into_inner())),
                })),
            },
            MutexRepr::Model { exec, mid, .. } => {
                let (e, tid) = ctx_for(exec, "Mutex");
                e.yield_op(tid, Op::MutexLock { mid: *mid });
                Ok(MutexGuard { inner: GuardRepr::Model { mx: self } })
            }
        }
    }
}

/// Shim `MutexGuard`.
pub struct MutexGuard<'a, T> {
    inner: GuardRepr<'a, T>,
}

enum GuardRepr<'a, T> {
    // ManuallyDrop so Condvar::wait can move the std guard out without
    // tripping the outer Drop impl.
    Real(std::mem::ManuallyDrop<std::sync::MutexGuard<'a, T>>),
    Model { mx: &'a Mutex<T> },
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        match &self.inner {
            GuardRepr::Real(k) => k,
            // Safety: the scheduler grants the model lock exclusively.
            GuardRepr::Model { mx } => match &mx.repr {
                MutexRepr::Model { cell, .. } => unsafe { &*cell.get() },
                MutexRepr::Real(_) => die("guard/mutex repr mismatch"),
            },
        }
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        match &mut self.inner {
            GuardRepr::Real(k) => k,
            // Safety: as in `Deref`.
            GuardRepr::Model { mx } => match &mx.repr {
                MutexRepr::Model { cell, .. } => unsafe { &mut *cell.get() },
                MutexRepr::Real(_) => die("guard/mutex repr mismatch"),
            },
        }
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        match &mut self.inner {
            // Safety: dropped exactly once — `Condvar::wait` moves the
            // std guard out only via `ManuallyDrop::take` after wrapping
            // the whole shim guard in `ManuallyDrop`.
            GuardRepr::Real(k) => unsafe { std::mem::ManuallyDrop::drop(k) },
            GuardRepr::Model { mx } => {
                if let MutexRepr::Model { exec, mid, .. } = &mx.repr {
                    if std::thread::panicking() {
                        // Unwinding (assertion failure or execution
                        // abort): release ownership without scheduling.
                        if let Some(e) = exec.upgrade() {
                            e.force_unlock(*mid);
                        }
                    } else {
                        let (e, tid) = ctx_for(exec, "MutexGuard");
                        e.yield_op(tid, Op::MutexUnlock { mid: *mid });
                    }
                }
            }
        }
    }
}

/// Shim `Condvar` with two-phase modeled wait (atomic release+register,
/// then re-acquire once woken) — lost-wakeup semantics match std.
#[derive(Debug)]
pub struct Condvar {
    repr: CvRepr,
}

#[derive(Debug)]
enum CvRepr {
    Real(std::sync::Condvar),
    Model { exec: Weak<Exec>, cv: usize },
}

impl Condvar {
    /// Creates a condvar; registers with the scheduler inside executions.
    pub fn new() -> Self {
        let repr = match current_ctx() {
            Some((exec, _)) => {
                let cv = exec.alloc_cv();
                CvRepr::Model { exec: Arc::downgrade(&exec), cv }
            }
            None => CvRepr::Real(std::sync::Condvar::new()),
        };
        Condvar { repr }
    }

    /// Blocks on the condvar, releasing the guard's mutex while waiting.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        match &self.repr {
            CvRepr::Real(cv) => {
                let mut guard = std::mem::ManuallyDrop::new(guard);
                let k = match &mut guard.inner {
                    // Safety: the shim guard is wrapped in ManuallyDrop,
                    // so its Drop (which would re-drop) never runs.
                    GuardRepr::Real(k) => unsafe { std::mem::ManuallyDrop::take(k) },
                    GuardRepr::Model { .. } => die("std condvar waited with model guard"),
                };
                match cv.wait(k) {
                    Ok(k) => Ok(MutexGuard { inner: GuardRepr::Real(std::mem::ManuallyDrop::new(k)) }),
                    Err(p) => Err(PoisonError::new(MutexGuard {
                        inner: GuardRepr::Real(std::mem::ManuallyDrop::new(p.into_inner())),
                    })),
                }
            }
            CvRepr::Model { exec, cv } => {
                let mx = match &guard.inner {
                    GuardRepr::Model { mx } => *mx,
                    GuardRepr::Real(_) => die("model condvar waited with std guard"),
                };
                let mid = match &mx.repr {
                    MutexRepr::Model { mid, .. } => *mid,
                    MutexRepr::Real(_) => die("model condvar waited with std mutex"),
                };
                // The modeled wait releases the mutex itself; skip the
                // guard's Drop.
                std::mem::forget(guard);
                let (e, tid) = ctx_for(exec, "Condvar");
                e.yield_op(tid, Op::CvWait { cv: *cv, mid });
                Ok(MutexGuard { inner: GuardRepr::Model { mx } })
            }
        }
    }

    /// Wakes one waiter (the scheduler explores every eligible choice).
    pub fn notify_one(&self) {
        match &self.repr {
            CvRepr::Real(cv) => cv.notify_one(),
            CvRepr::Model { exec, cv } => {
                let (e, tid) = ctx_for(exec, "Condvar");
                e.yield_op(tid, Op::CvNotify { cv: *cv, all: false });
            }
        }
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        match &self.repr {
            CvRepr::Real(cv) => cv.notify_all(),
            CvRepr::Model { exec, cv } => {
                let (e, tid) = ctx_for(exec, "Condvar");
                e.yield_op(tid, Op::CvNotify { cv: *cv, all: true });
            }
        }
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

/// Shim `thread`: model-scheduled spawn/join inside executions, std
/// passthrough outside.
pub mod thread {
    use super::*;

    /// Shim `JoinHandle`.
    pub struct JoinHandle<T> {
        inner: HandleRepr<T>,
    }

    enum HandleRepr<T> {
        Real(std::thread::JoinHandle<T>),
        Model { exec: Arc<Exec>, target: Tid, slot: Arc<std::sync::Mutex<Option<T>>> },
    }

    /// Spawns a thread; inside an execution the child is a model thread
    /// under scheduler control.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        match current_ctx() {
            None => JoinHandle { inner: HandleRepr::Real(std::thread::spawn(f)) },
            Some((exec, me)) => {
                let slot = Arc::new(std::sync::Mutex::new(None));
                let s2 = Arc::clone(&slot);
                let target = spawn_model_thread(
                    &exec,
                    me,
                    Box::new(move || {
                        let v = f();
                        *s2.lock().unwrap_or_else(PoisonError::into_inner) = Some(v);
                    }),
                );
                JoinHandle { inner: HandleRepr::Model { exec, target, slot } }
            }
        }
    }

    impl<T> JoinHandle<T> {
        /// Waits for the thread; a blocking yield point in executions.
        pub fn join(self) -> std::thread::Result<T> {
            match self.inner {
                HandleRepr::Real(h) => h.join(),
                HandleRepr::Model { exec, target, slot } => {
                    let (cur, me) = match current_ctx() {
                        Some(x) => x,
                        None => die("model JoinHandle joined outside any execution"),
                    };
                    if !Arc::ptr_eq(&cur, &exec) {
                        die("model JoinHandle joined outside its execution");
                    }
                    cur.yield_op(me, Op::Join { target });
                    match slot.lock().unwrap_or_else(PoisonError::into_inner).take() {
                        Some(v) => Ok(v),
                        None => die("joined model thread produced no value"),
                    }
                }
            }
        }
    }
}
