//! Deterministic model-checking runtime (only compiled with `--features
//! model`).
//!
//! A *check* runs a closure repeatedly, once per explored schedule. All
//! shim operations are yield points: the thread declares its pending
//! operation and parks; the scheduler grants exactly one thread at a
//! time, so an execution is fully determined by the sequence of recorded
//! decisions (which thread runs next, which store a relaxed load reads,
//! which waiter a notify wakes). Exploration is DFS over those decisions
//! with a sleep-set (DPOR-lite) reduction and a CHESS-style preemption
//! bound; past the exhaustive budget, seeded random schedules take over.
//!
//! ## Memory model captured (and not)
//!
//! Weak orderings are modeled *operationally* with per-location store
//! histories and per-thread views (see [`memory`]): a `Relaxed` load may
//! return any sufficiently recent store not yet ordered before the
//! loading thread by Release/Acquire edges or fences. `SeqCst` is
//! approximated as Acquire+Release plus a global SC view — stronger than
//! C11 SC in corner cases, so absence of a violation under `SeqCst`-heavy
//! code is slightly weaker evidence than for RA code. Consume ordering,
//! spurious condvar wakeups, and compiler reordering of *non-atomic*
//! accesses are not modeled; non-atomic data is protected by the modeled
//! `Mutex`, whose lock/unlock edges the scheduler does enforce.

pub mod corpus;
pub mod exec;
pub mod memory;
pub mod shim;
pub mod trace;

use std::sync::Arc;

pub use exec::{Choice, Op, Tid};

/// Exploration strategy for [`check`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Bounded-exhaustive DFS with sleep sets; `max_schedules` caps the
    /// number of executions before the checker reports `complete: false`.
    Exhaustive,
    /// Seeded random schedules: `schedules` executions, decision points
    /// resolved by a splitmix64 stream derived from `seed`.
    Random { seed: u64, schedules: u32 },
}

/// Checker configuration.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Exploration strategy.
    pub mode: Mode,
    /// Max preemptions per execution (CHESS-style). Switching away from a
    /// still-enabled running thread costs one; blocked switches are free.
    pub preemption_bound: u32,
    /// How many most-recent stores per location a `Relaxed` load may
    /// observe (beyond coherence/acquire floors).
    pub read_window: usize,
    /// Max schedules explored in `Exhaustive` mode before giving up.
    pub max_schedules: u32,
    /// Max scheduler steps in one execution (runaway guard).
    pub max_steps: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            mode: Mode::Exhaustive,
            preemption_bound: 2,
            read_window: 4,
            max_schedules: 200_000,
            max_steps: 20_000,
        }
    }
}

/// An invariant violation found by the checker.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Panic message (assertion text) or deadlock description.
    pub message: String,
    /// Serialized `disparity-conc/trace-v1` schedule, replayable via
    /// [`replay`].
    pub trace: String,
}

/// Result of a [`check`] run.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// First violation found, if any.
    pub violation: Option<Violation>,
    /// Number of executions run.
    pub schedules: u32,
    /// True iff exhaustive exploration finished within budget (always
    /// false for `Random` mode and for runs that stop at a violation).
    pub complete: bool,
}

impl Outcome {
    /// Panics (outside any model execution) if a violation was found —
    /// convenience for harness tests on unmutated structures.
    pub fn assert_ok(&self) {
        if let Some(v) = &self.violation {
            die(&format!("model check failed: {}\ntrace: {}", v.message, v.trace));
        }
    }

    /// Returns the violation or panics — for mutant tests that require
    /// the checker to catch a seeded bug.
    pub fn expect_violation(&self) -> &Violation {
        match &self.violation {
            Some(v) => v,
            None => die(&format!(
                "model check found no violation in {} schedules (complete: {})",
                self.schedules, self.complete
            )),
        }
    }
}

/// Central escape hatch for unrecoverable checker-internal errors and
/// harness assertion helpers. Kept in one place so the srclint `panic`
/// allow entry covers a single file.
pub(crate) fn die(msg: &str) -> ! {
    panic!("disparity-conc: {msg}");
}

/// Runs `f` under the model scheduler per `cfg`. `f` must perform all
/// cross-thread synchronization through [`crate::sync`] shim types that
/// it constructs *inside* the closure (types constructed outside fall
/// back to std and are invisible to the scheduler).
pub fn check<F>(cfg: Config, f: F) -> Outcome
where
    F: Fn() + Send + Sync + 'static,
{
    exec::check_impl(cfg, Arc::new(f))
}

/// Re-runs `f` under a previously recorded schedule trace. Returns the
/// outcome of that single execution; replaying a violation trace against
/// unchanged code reproduces the identical failure message.
pub fn replay<F>(cfg: Config, trace_json: &str, f: F) -> Outcome
where
    F: Fn() + Send + Sync + 'static,
{
    let plan = match trace::parse(trace_json) {
        Ok(p) => p,
        Err(e) => die(&format!("bad trace: {e}")),
    };
    exec::replay_impl(cfg, plan, Arc::new(f))
}
