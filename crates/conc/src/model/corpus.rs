//! Regression-corpus plumbing for harness tests.
//!
//! Every mutant a harness proves catchable commits the violating schedule
//! trace under the crate's `tests/conc_corpus/` directory. [`verify`]
//! wires the full loop: check the scenario, require a violation, pin the
//! found trace byte-for-byte against the committed file, then replay the
//! committed trace and require the byte-identical failure message.
//!
//! Exploration is deterministic (DFS order is a pure function of the
//! program and config), so a drifting trace means the scenario or the
//! checker changed — rerun the harness with `CONC_CORPUS_REGEN=1` to
//! refresh the corpus and review the diff like any other golden file.

use std::path::Path;
use std::sync::Arc;

use super::{die, exec, trace, Config, Violation};

/// Environment variable that switches [`verify`] from comparing against
/// the committed trace to rewriting it.
pub const REGEN_ENV: &str = "CONC_CORPUS_REGEN";

/// Checks `f` under `cfg`, requires a violation, and round-trips its
/// schedule trace through the committed corpus file `dir/name`:
///
/// 1. the freshly found trace must equal the committed bytes (or, with
///    [`REGEN_ENV`] set, overwrites them);
/// 2. replaying the committed trace must reproduce a violation whose
///    message is byte-identical to the fresh one.
///
/// Returns the violation so callers can assert on its message.
pub fn verify<F>(dir: &Path, name: &str, cfg: Config, f: F) -> Violation
where
    F: Fn() + Send + Sync + 'static,
{
    let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
    let out = exec::check_impl(cfg, Arc::clone(&f));
    let found = out.expect_violation().clone();

    let path = dir.join(name);
    if std::env::var_os(REGEN_ENV).is_some() {
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        if let Err(e) = std::fs::write(&path, &found.trace) {
            die(&format!("cannot write corpus trace {}: {e}", path.display()));
        }
    }
    let committed = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => die(&format!(
            "missing corpus trace {} ({e}); run the harness once with {REGEN_ENV}=1",
            path.display()
        )),
    };
    if committed != found.trace {
        die(&format!(
            "corpus trace {} drifted from the freshly found schedule;\n\
             rerun with {REGEN_ENV}=1 and review the diff\n\
             committed: {committed}\n\
             found:     {}",
            path.display(),
            found.trace
        ));
    }

    let plan = match trace::parse(&committed) {
        Ok(p) => p,
        Err(e) => die(&format!("corpus trace {} unparsable: {e}", path.display())),
    };
    let replayed = exec::replay_impl(cfg, plan, f);
    let again = replayed.expect_violation();
    if again.message != found.message {
        die(&format!(
            "replay of {} diverged:\n  explored: {}\n  replayed: {}",
            path.display(),
            found.message,
            again.message
        ));
    }
    found
}
