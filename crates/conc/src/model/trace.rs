//! Schedule trace serialization: `disparity-conc/trace-v1`.
//!
//! A trace is the recorded decision list of one execution. Replaying it
//! forces every recorded choice, so (against unchanged code) the same
//! execution — and the same violation message — reproduces byte for
//! byte. Violation traces are committed to per-crate regression corpora
//! and re-run by replay tests.

use disparity_model::json::{object, Value};

use super::exec::{Choice, DecisionRec, NodeInfo};

/// Schema tag embedded in every trace document.
pub const TRACE_SCHEMA: &str = "disparity-conc/trace-v1";

/// Serializes a decision list to a compact JSON document. Each decision
/// carries an informational `op`/`what` label for human readers; only
/// `kind` + `tid`/`idx` are consumed by [`parse`].
pub(crate) fn serialize(decisions: &[DecisionRec]) -> String {
    let rows: Vec<Value> = decisions
        .iter()
        .map(|d| match (&d.choice, &d.info) {
            (Choice::Thread(t), NodeInfo::Thread { enabled, .. }) => {
                let op = enabled
                    .iter()
                    .find(|(et, _)| et == t)
                    .map(|(_, o)| o.describe())
                    .unwrap_or_default();
                object(vec![
                    ("kind", Value::Str("thread".to_string())),
                    ("tid", Value::Int(*t as i64)),
                    ("op", Value::Str(op)),
                ])
            }
            (Choice::Pick(i), NodeInfo::Pick { arity, what }) => object(vec![
                ("kind", Value::Str("pick".to_string())),
                ("idx", Value::Int(*i as i64)),
                ("arity", Value::Int(*arity as i64)),
                ("what", Value::Str((*what).to_string())),
            ]),
            // A mismatched pairing cannot be produced by the scheduler;
            // serialize it observably rather than panicking mid-report.
            (c, _) => object(vec![("kind", Value::Str(format!("corrupt:{c:?}")))]),
        })
        .collect();
    object(vec![
        ("schema", Value::Str(TRACE_SCHEMA.to_string())),
        ("decisions", Value::Array(rows)),
    ])
    .to_string()
}

/// Parses a trace document back into a forced decision plan.
pub fn parse(text: &str) -> Result<Vec<Choice>, String> {
    let v = Value::parse(text).map_err(|e| format!("trace JSON: {e}"))?;
    match v.get("schema").and_then(Value::as_str) {
        Some(TRACE_SCHEMA) => {}
        other => return Err(format!("trace schema mismatch: {other:?}")),
    }
    let rows = v
        .get("decisions")
        .and_then(Value::as_array)
        .ok_or_else(|| "trace missing decisions array".to_string())?;
    rows.iter()
        .enumerate()
        .map(|(i, row)| match row.get("kind").and_then(Value::as_str) {
            Some("thread") => row
                .get("tid")
                .and_then(Value::as_i64)
                .map(|t| Choice::Thread(t as usize))
                .ok_or_else(|| format!("decision {i}: missing tid")),
            Some("pick") => row
                .get("idx")
                .and_then(Value::as_i64)
                .map(|x| Choice::Pick(x as usize))
                .ok_or_else(|| format!("decision {i}: missing idx")),
            other => Err(format!("decision {i}: bad kind {other:?}")),
        })
        .collect()
}
