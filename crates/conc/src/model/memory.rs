//! Operational weak-memory state: per-location store histories plus
//! per-thread views, in the style of view-based RA semantics.
//!
//! Every atomic store appends a `StoreMsg` to its location's history. A
//! view maps each location to a *floor*: the index of the most recent
//! store the viewer is ordered after (coherence + happens-before). A
//! `Relaxed` load may read any store at or above its thread's floor
//! within the configured `read_window`; an `Acquire` load additionally
//! joins the chosen store's message view into the thread view, which
//! raises floors on *other* locations and is exactly what makes
//! publication patterns (store data Relaxed, publish flag Release, read
//! flag Acquire) come out right.

/// Per-location floor map. Index = location id, value = lowest store
/// index the viewer may still observe (all earlier stores are stale).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct View {
    at: Vec<u32>,
}

impl View {
    /// Floor for `loc` (0 if never raised).
    pub fn get(&self, loc: usize) -> u32 {
        self.at.get(loc).copied().unwrap_or(0)
    }

    /// Raises the floor for `loc` to at least `idx`.
    pub fn raise(&mut self, loc: usize, idx: u32) {
        if self.at.len() <= loc {
            self.at.resize(loc + 1, 0);
        }
        if self.at[loc] < idx {
            self.at[loc] = idx;
        }
    }

    /// Pointwise max with `other`.
    pub fn join(&mut self, other: &View) {
        if self.at.len() < other.at.len() {
            self.at.resize(other.at.len(), 0);
        }
        for (i, v) in other.at.iter().enumerate() {
            if self.at[i] < *v {
                self.at[i] = *v;
            }
        }
    }
}

/// One store in a location's history: the value plus the message view a
/// reader acquires by synchronizing with it.
#[derive(Debug, Clone)]
pub struct StoreMsg {
    /// Stored value.
    pub val: u64,
    /// View transferred to an Acquire reader of this store.
    pub view: View,
}

/// One atomic location (an `AtomicU64` instance inside an execution).
#[derive(Debug, Clone)]
pub struct Location {
    /// Store history; index 0 is the initial value.
    pub stores: Vec<StoreMsg>,
    /// Index of the latest SeqCst store (SC reads may not go below it).
    pub last_sc: u32,
}

/// All atomic state of one execution.
#[derive(Debug, Default)]
pub struct Memory {
    /// Locations, indexed by allocation order.
    pub locs: Vec<Location>,
    /// Global SC view: joined by every SeqCst access and fence.
    pub sc_view: View,
}

impl Memory {
    /// Allocates a fresh location with initial value `init`; the initial
    /// store carries an empty message view.
    pub fn alloc(&mut self, init: u64) -> usize {
        self.locs.push(Location {
            stores: vec![StoreMsg { val: init, view: View::default() }],
            last_sc: 0,
        });
        self.locs.len() - 1
    }
}

// Ordering classification is confined to this file so the srclint
// atomic-ordering audit has a single, reasoned exemption site.
use std::sync::atomic::Ordering;

/// True for Acquire, AcqRel, SeqCst. // conc: the model interprets user orderings; not a synchronization site itself
pub fn is_acquire(ord: Ordering) -> bool {
    matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

/// True for Release, AcqRel, SeqCst. // conc: see is_acquire
pub fn is_release(ord: Ordering) -> bool {
    matches!(ord, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

/// True for SeqCst only. // conc: see is_acquire
pub fn is_seqcst(ord: Ordering) -> bool {
    matches!(ord, Ordering::SeqCst)
}

/// Short stable label for traces. // conc: see is_acquire
pub fn ord_label(ord: Ordering) -> &'static str {
    match ord {
        Ordering::Relaxed => "rlx",
        Ordering::Acquire => "acq",
        Ordering::Release => "rel",
        Ordering::AcqRel => "acqrel",
        Ordering::SeqCst => "sc",
        _ => "other",
    }
}
