//! JSON round-trip of the declarative system format.

use disparity_model::prelude::*;
use disparity_model::spec::{ChannelSpec, EcuSpec, SystemSpec, TaskEntry};

fn ms(v: i64) -> Duration {
    Duration::from_millis(v)
}

#[test]
fn json_round_trip_preserves_the_graph() {
    let spec = SystemSpec {
        ecus: vec![EcuSpec::processor("ecu0"), EcuSpec::bus("can0")],
        tasks: vec![
            TaskEntry::stimulus("camera", ms(33)),
            TaskEntry::computation("detect", ms(33), ms(2), ms(6), "ecu0"),
            TaskEntry::computation("msg", ms(33), ms(1), ms(2), "can0"),
        ],
        channels: vec![
            ChannelSpec::register("camera", "detect"),
            ChannelSpec::fifo("detect", "msg", 3),
        ],
    };
    let json = spec.to_json_pretty();
    let parsed = SystemSpec::from_json_str(&json).expect("parses");
    assert_eq!(spec, parsed);
    assert_eq!(spec.build().unwrap(), parsed.build().unwrap());
}

#[test]
fn hand_written_json_with_defaults_parses() {
    // `kind`, `wcet`, `bcet`, `offset`, `capacity` all have defaults.
    let json = r#"{
        "ecus": [{"name": "ecu0"}],
        "tasks": [
            {"name": "sensor", "period": 10000000},
            {"name": "proc", "period": 10000000, "wcet": 2000000,
             "bcet": 1000000, "ecu": "ecu0"}
        ],
        "channels": [{"from": "sensor", "to": "proc"}]
    }"#;
    let spec = SystemSpec::from_json_str(json).expect("parses");
    let graph = spec.build().expect("builds");
    assert_eq!(graph.task_count(), 2);
    let sensor = graph.find_task("sensor").unwrap();
    assert!(graph.task(sensor).is_zero_cost());
    let proc = graph.find_task("proc").unwrap();
    assert_eq!(graph.channel_between(sensor, proc).unwrap().capacity(), 1);
}

#[test]
fn graph_json_cycle_via_spec_reproduces_the_graph() {
    // A graph can be exported to a spec, serialized to JSON, and rebuilt;
    // the full cycle must reproduce an equal graph.
    let spec = SystemSpec {
        ecus: vec![EcuSpec::processor("e")],
        tasks: vec![
            TaskEntry::stimulus("s", ms(10)),
            TaskEntry::computation("t", ms(20), ms(1), ms(3), "e"),
        ],
        channels: vec![ChannelSpec::register("s", "t")],
    };
    let graph = spec.build().unwrap();
    let json = SystemSpec::from_graph(&graph).to_json().to_string();
    let parsed = SystemSpec::from_json_str(&json).expect("parses");
    assert_eq!(graph, parsed.build().unwrap());
}

#[test]
fn malformed_json_is_a_json_error() {
    let err = SystemSpec::from_json_str("{not json").unwrap_err();
    assert!(matches!(err, SpecError::Json(_)), "{err}");
}

#[test]
fn wrong_shape_is_a_schema_error() {
    for bad in [
        r#"[1, 2, 3]"#,
        r#"{"tasks": [{"name": "t"}]}"#,
        r#"{"tasks": [{"name": "t", "period": "fast"}]}"#,
        r#"{"ecus": [{"name": "e", "kind": "Quantum"}]}"#,
        r#"{"channels": [{"from": "a", "to": "b", "capacity": 0}]}"#,
    ] {
        let err = SystemSpec::from_json_str(bad).unwrap_err();
        assert!(matches!(err, SpecError::Schema(_)), "{bad}: {err}");
    }
}
