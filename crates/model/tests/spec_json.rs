//! JSON round-trip of the declarative system format.

use disparity_model::prelude::*;
use disparity_model::spec::{ChannelSpec, EcuSpec, SystemSpec, TaskEntry};

fn ms(v: i64) -> Duration {
    Duration::from_millis(v)
}

#[test]
fn json_round_trip_preserves_the_graph() {
    let spec = SystemSpec {
        ecus: vec![EcuSpec::processor("ecu0"), EcuSpec::bus("can0")],
        tasks: vec![
            TaskEntry::stimulus("camera", ms(33)),
            TaskEntry::computation("detect", ms(33), ms(2), ms(6), "ecu0"),
            TaskEntry::computation("msg", ms(33), ms(1), ms(2), "can0"),
        ],
        channels: vec![
            ChannelSpec::register("camera", "detect"),
            ChannelSpec::fifo("detect", "msg", 3),
        ],
    };
    let json = serde_json::to_string_pretty(&spec).expect("serializes");
    let parsed: SystemSpec = serde_json::from_str(&json).expect("parses");
    assert_eq!(spec, parsed);
    assert_eq!(spec.build().unwrap(), parsed.build().unwrap());
}

#[test]
fn hand_written_json_with_defaults_parses() {
    // `kind`, `wcet`, `bcet`, `offset`, `capacity` all have defaults.
    let json = r#"{
        "ecus": [{"name": "ecu0"}],
        "tasks": [
            {"name": "sensor", "period": 10000000},
            {"name": "proc", "period": 10000000, "wcet": 2000000,
             "bcet": 1000000, "ecu": "ecu0"}
        ],
        "channels": [{"from": "sensor", "to": "proc"}]
    }"#;
    let spec: SystemSpec = serde_json::from_str(json).expect("parses");
    let graph = spec.build().expect("builds");
    assert_eq!(graph.task_count(), 2);
    let sensor = graph.find_task("sensor").unwrap();
    assert!(graph.task(sensor).is_zero_cost());
    let proc = graph.find_task("proc").unwrap();
    assert_eq!(graph.channel_between(sensor, proc).unwrap().capacity(), 1);
}

#[test]
fn graph_serde_matches_spec_route() {
    // The graph itself is also serde-serializable (derived); a full cycle
    // through JSON must reproduce an equal graph.
    let spec = SystemSpec {
        ecus: vec![EcuSpec::processor("e")],
        tasks: vec![
            TaskEntry::stimulus("s", ms(10)),
            TaskEntry::computation("t", ms(20), ms(1), ms(3), "e"),
        ],
        channels: vec![ChannelSpec::register("s", "t")],
    };
    let graph = spec.build().unwrap();
    let json = serde_json::to_string(&graph).expect("serializes");
    let parsed: CauseEffectGraph = serde_json::from_str(&json).expect("parses");
    assert_eq!(graph, parsed);
}
