//! Typed indices for tasks, ECUs and channels.
//!
//! All entities of a [`crate::graph::CauseEffectGraph`] are stored in dense
//! arrays; these newtypes make the indices type-safe (C-NEWTYPE) so a task
//! index can never be confused with a channel index.

use core::fmt;


macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash,
        )]
        pub struct $name(usize);

        impl $name {
            /// Creates an id from a raw dense index.
            #[must_use]
            pub const fn from_index(index: usize) -> Self {
                Self(index)
            }

            /// The raw dense index.
            #[must_use]
            pub const fn index(self) -> usize {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$name> for usize {
            fn from(id: $name) -> usize {
                id.0
            }
        }
    };
}

define_id!(
    /// Identifier of a task (a vertex of the cause-effect graph).
    ///
    /// # Examples
    ///
    /// ```
    /// use disparity_model::ids::TaskId;
    ///
    /// let id = TaskId::from_index(3);
    /// assert_eq!(id.index(), 3);
    /// assert_eq!(id.to_string(), "task3");
    /// ```
    TaskId,
    "task"
);

define_id!(
    /// Identifier of an ECU or bus (an execution resource).
    ///
    /// # Examples
    ///
    /// ```
    /// use disparity_model::ids::EcuId;
    ///
    /// assert_eq!(EcuId::from_index(0).to_string(), "ecu0");
    /// ```
    EcuId,
    "ecu"
);

define_id!(
    /// Identifier of a channel (an edge of the cause-effect graph).
    ///
    /// # Examples
    ///
    /// ```
    /// use disparity_model::ids::ChannelId;
    ///
    /// assert_eq!(ChannelId::from_index(7).to_string(), "chan7");
    /// ```
    ChannelId,
    "chan"
);

/// Fixed-priority level of a task on its ECU.
///
/// **Lower numeric value means higher priority**, matching the common
/// real-time convention (priority 0 is the most urgent). Priorities are
/// only comparable between tasks mapped to the same ECU.
///
/// # Examples
///
/// ```
/// use disparity_model::ids::Priority;
///
/// let urgent = Priority::new(0);
/// let relaxed = Priority::new(9);
/// assert!(urgent.is_higher_than(relaxed));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Priority(u32);

impl Priority {
    /// The most urgent priority level.
    pub const HIGHEST: Priority = Priority(0);

    /// Creates a priority level; lower `level` is more urgent.
    #[must_use]
    pub const fn new(level: u32) -> Self {
        Priority(level)
    }

    /// The raw level (lower is more urgent).
    #[must_use]
    pub const fn level(self) -> u32 {
        self.0
    }

    /// `true` if `self` is strictly more urgent than `other`.
    #[must_use]
    pub const fn is_higher_than(self, other: Priority) -> bool {
        self.0 < other.0
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "prio{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip_through_index() {
        for i in [0usize, 1, 17, 10_000] {
            assert_eq!(TaskId::from_index(i).index(), i);
            assert_eq!(EcuId::from_index(i).index(), i);
            assert_eq!(ChannelId::from_index(i).index(), i);
        }
    }

    #[test]
    fn priority_ordering_is_inverted_numeric() {
        assert!(Priority::new(1).is_higher_than(Priority::new(2)));
        assert!(!Priority::new(2).is_higher_than(Priority::new(2)));
        assert!(Priority::HIGHEST.is_higher_than(Priority::new(1)));
    }

    #[test]
    fn ids_are_usable_as_map_keys() {
        use std::collections::BTreeMap;
        let mut m = BTreeMap::new();
        m.insert(TaskId::from_index(2), "b");
        m.insert(TaskId::from_index(1), "a");
        assert_eq!(m.values().copied().collect::<Vec<_>>(), vec!["a", "b"]);
    }
}
