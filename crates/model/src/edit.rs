//! Typed, serializable edits over a [`SystemSpec`].
//!
//! A [`SpecEdit`] names one field-level change to a spec — the knobs the
//! paper's sensitivity and buffer-tuning loops (§IV, Algorithm 1) turn —
//! without re-stating the rest of the system. Edits validate the same
//! invariants the graph builder enforces *before* mutating, so a failed
//! [`SpecEdit::apply`] leaves the spec untouched.
//!
//! Edits round-trip through JSON ([`SpecEdit::to_json`] /
//! [`SpecEdit::from_json`]) using the spec conventions: durations are
//! integer nanoseconds, tasks and channels are addressed by name. This is
//! the wire form the service's `patch` op and the loadgen edit-replay mode
//! exchange.
//!
//! # Examples
//!
//! ```
//! use disparity_model::edit::SpecEdit;
//! use disparity_model::spec::{ChannelSpec, EcuSpec, SystemSpec, TaskEntry};
//! use disparity_model::time::Duration;
//!
//! let ms = Duration::from_millis;
//! let mut spec = SystemSpec {
//!     ecus: vec![EcuSpec::processor("e0")],
//!     tasks: vec![
//!         TaskEntry::stimulus("cam", ms(33)),
//!         TaskEntry::computation("det", ms(33), ms(2), ms(6), "e0"),
//!     ],
//!     channels: vec![ChannelSpec::register("cam", "det")],
//! };
//! SpecEdit::SetWcet { task: "det".into(), wcet: ms(7) }.apply(&mut spec)?;
//! assert_eq!(spec.tasks[1].wcet, ms(7));
//! # Ok::<(), disparity_model::edit::EditError>(())
//! ```

use core::fmt;

use crate::json::{self, Value};
use crate::spec::{ChannelSpec, SystemSpec, TaskEntry};
use crate::time::Duration;

/// One field-level change to a [`SystemSpec`].
///
/// The taxonomy covers every knob the incremental re-analysis engine
/// understands: execution-time and period changes, priority swaps, buffer
/// resizes, and channel (edge) insertion/removal. Tasks and channels are
/// addressed by name so an edit stays valid across id reassignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecEdit {
    /// Replace the worst-case execution time of a task.
    SetWcet {
        /// Task name.
        task: String,
        /// New WCET; must stay ≥ the task's BCET.
        wcet: Duration,
    },
    /// Replace the best-case execution time of a task.
    SetBcet {
        /// Task name.
        task: String,
        /// New BCET; must stay ≤ the task's WCET and non-negative.
        bcet: Duration,
    },
    /// Replace the activation period of a task.
    SetPeriod {
        /// Task name.
        task: String,
        /// New period; must be positive.
        period: Duration,
    },
    /// Swap the explicit priority levels of two tasks.
    ///
    /// Swapping `None` priorities is a spec-level no-op (both tasks keep
    /// rate-monotonic assignment); swapping `Some` with `None` moves the
    /// explicit level to the other task.
    SwapPriority {
        /// First task name.
        a: String,
        /// Second task name.
        b: String,
    },
    /// Resize the FIFO buffer of an existing channel (the §IV knob).
    ResizeBuffer {
        /// Producing task name.
        from: String,
        /// Consuming task name.
        to: String,
        /// New capacity; must be ≥ 1.
        capacity: usize,
    },
    /// Add a channel between two existing tasks.
    AddChannel {
        /// Producing task name.
        from: String,
        /// Consuming task name.
        to: String,
        /// Capacity of the new channel; must be ≥ 1.
        capacity: usize,
    },
    /// Remove an existing channel.
    RemoveChannel {
        /// Producing task name.
        from: String,
        /// Consuming task name.
        to: String,
    },
}

/// Why a [`SpecEdit`] could not be applied.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EditError {
    /// The edit names a task the spec does not contain.
    UnknownTask(String),
    /// The edit names a channel the spec does not contain.
    UnknownChannel {
        /// Producing task name.
        from: String,
        /// Consuming task name.
        to: String,
    },
    /// `AddChannel` would duplicate an existing edge.
    DuplicateChannel {
        /// Producing task name.
        from: String,
        /// Consuming task name.
        to: String,
    },
    /// The new value violates a model invariant (`BCET ≤ WCET`, positive
    /// period, capacity ≥ 1, no self-loop).
    InvalidValue(String),
    /// The JSON was well-formed but did not describe an edit.
    Schema(String),
}

impl fmt::Display for EditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EditError::UnknownTask(n) => write!(f, "edit names unknown task {n:?}"),
            EditError::UnknownChannel { from, to } => {
                write!(f, "edit names unknown channel {from:?} -> {to:?}")
            }
            EditError::DuplicateChannel { from, to } => {
                write!(f, "channel {from:?} -> {to:?} already exists")
            }
            EditError::InvalidValue(msg) => write!(f, "invalid edit value: {msg}"),
            EditError::Schema(msg) => write!(f, "edit schema error: {msg}"),
        }
    }
}

impl std::error::Error for EditError {}

impl SpecEdit {
    /// A short stable label for the edit kind (metrics / logs).
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            SpecEdit::SetWcet { .. } => "set_wcet",
            SpecEdit::SetBcet { .. } => "set_bcet",
            SpecEdit::SetPeriod { .. } => "set_period",
            SpecEdit::SwapPriority { .. } => "swap_priority",
            SpecEdit::ResizeBuffer { .. } => "resize_buffer",
            SpecEdit::AddChannel { .. } => "add_channel",
            SpecEdit::RemoveChannel { .. } => "remove_channel",
        }
    }

    /// `true` when the edit changes the edge set of the graph, which
    /// invalidates chain enumerations (not just bounds along them).
    #[must_use]
    pub fn changes_topology(&self) -> bool {
        matches!(
            self,
            SpecEdit::AddChannel { .. } | SpecEdit::RemoveChannel { .. }
        )
    }

    /// Applies the edit in place.
    ///
    /// Validation happens before any mutation: on error the spec is
    /// unchanged. The checks mirror the graph builder's invariants so an
    /// edit that applies cleanly cannot introduce a *parameter-level*
    /// violation (structural ones — cycles, duplicate explicit priorities
    /// across a swap of mapped/unmapped tasks — remain the builder's job).
    ///
    /// # Errors
    ///
    /// See [`EditError`].
    pub fn apply(&self, spec: &mut SystemSpec) -> Result<(), EditError> {
        fn task_index(spec: &SystemSpec, name: &str) -> Result<usize, EditError> {
            spec.tasks
                .iter()
                .position(|t| t.name == name)
                .ok_or_else(|| EditError::UnknownTask(name.to_string()))
        }
        fn channel_index(spec: &SystemSpec, from: &str, to: &str) -> Result<usize, EditError> {
            spec.channels
                .iter()
                .position(|c| c.from == from && c.to == to)
                .ok_or_else(|| EditError::UnknownChannel {
                    from: from.to_string(),
                    to: to.to_string(),
                })
        }

        match self {
            SpecEdit::SetWcet { task, wcet } => {
                let i = task_index(spec, task)?;
                if wcet.is_negative() || *wcet < spec.tasks[i].bcet {
                    return Err(EditError::InvalidValue(format!(
                        "wcet {} ns below bcet {} ns for task {task:?}",
                        wcet.as_nanos(),
                        spec.tasks[i].bcet.as_nanos()
                    )));
                }
                spec.tasks[i].wcet = *wcet;
            }
            SpecEdit::SetBcet { task, bcet } => {
                let i = task_index(spec, task)?;
                if bcet.is_negative() || *bcet > spec.tasks[i].wcet {
                    return Err(EditError::InvalidValue(format!(
                        "bcet {} ns above wcet {} ns for task {task:?}",
                        bcet.as_nanos(),
                        spec.tasks[i].wcet.as_nanos()
                    )));
                }
                spec.tasks[i].bcet = *bcet;
            }
            SpecEdit::SetPeriod { task, period } => {
                let i = task_index(spec, task)?;
                if !period.is_positive() {
                    return Err(EditError::InvalidValue(format!(
                        "non-positive period {} ns for task {task:?}",
                        period.as_nanos()
                    )));
                }
                spec.tasks[i].period = *period;
            }
            SpecEdit::SwapPriority { a, b } => {
                let i = task_index(spec, a)?;
                let j = task_index(spec, b)?;
                if i != j {
                    let pa = spec.tasks[i].priority;
                    spec.tasks[i].priority = spec.tasks[j].priority;
                    spec.tasks[j].priority = pa;
                }
            }
            SpecEdit::ResizeBuffer { from, to, capacity } => {
                let i = channel_index(spec, from, to)?;
                if *capacity == 0 {
                    return Err(EditError::InvalidValue(format!(
                        "zero capacity for channel {from:?} -> {to:?}"
                    )));
                }
                spec.channels[i].capacity = *capacity;
            }
            SpecEdit::AddChannel { from, to, capacity } => {
                task_index(spec, from)?;
                task_index(spec, to)?;
                if from == to {
                    return Err(EditError::InvalidValue(format!(
                        "self-loop channel on {from:?}"
                    )));
                }
                if *capacity == 0 {
                    return Err(EditError::InvalidValue(format!(
                        "zero capacity for channel {from:?} -> {to:?}"
                    )));
                }
                if channel_index(spec, from, to).is_ok() {
                    return Err(EditError::DuplicateChannel {
                        from: from.clone(),
                        to: to.clone(),
                    });
                }
                spec.channels.push(ChannelSpec {
                    from: from.clone(),
                    to: to.clone(),
                    capacity: *capacity,
                });
            }
            SpecEdit::RemoveChannel { from, to } => {
                let i = channel_index(spec, from, to)?;
                spec.channels.remove(i);
            }
        }
        Ok(())
    }

    /// The task names whose *parameters* the edit touches (empty for pure
    /// channel edits). Used by the delta engine to seed its dirty set.
    #[must_use]
    pub fn touched_tasks(&self) -> Vec<&str> {
        match self {
            SpecEdit::SetWcet { task, .. }
            | SpecEdit::SetBcet { task, .. }
            | SpecEdit::SetPeriod { task, .. } => vec![task],
            SpecEdit::SwapPriority { a, b } => vec![a, b],
            SpecEdit::ResizeBuffer { .. }
            | SpecEdit::AddChannel { .. }
            | SpecEdit::RemoveChannel { .. } => Vec::new(),
        }
    }

    /// The `(from, to)` channel the edit addresses, if any.
    #[must_use]
    pub fn touched_channel(&self) -> Option<(&str, &str)> {
        match self {
            SpecEdit::ResizeBuffer { from, to, .. }
            | SpecEdit::AddChannel { from, to, .. }
            | SpecEdit::RemoveChannel { from, to } => Some((from, to)),
            _ => None,
        }
    }

    /// Encodes the edit as a JSON value (the `patch` wire form).
    #[must_use]
    pub fn to_json(&self) -> Value {
        match self {
            SpecEdit::SetWcet { task, wcet } => json::object(vec![
                ("kind", Value::from("set_wcet")),
                ("task", Value::from(task.clone())),
                ("wcet", Value::Int(wcet.as_nanos())),
            ]),
            SpecEdit::SetBcet { task, bcet } => json::object(vec![
                ("kind", Value::from("set_bcet")),
                ("task", Value::from(task.clone())),
                ("bcet", Value::Int(bcet.as_nanos())),
            ]),
            SpecEdit::SetPeriod { task, period } => json::object(vec![
                ("kind", Value::from("set_period")),
                ("task", Value::from(task.clone())),
                ("period", Value::Int(period.as_nanos())),
            ]),
            SpecEdit::SwapPriority { a, b } => json::object(vec![
                ("kind", Value::from("swap_priority")),
                ("a", Value::from(a.clone())),
                ("b", Value::from(b.clone())),
            ]),
            SpecEdit::ResizeBuffer { from, to, capacity } => json::object(vec![
                ("kind", Value::from("resize_buffer")),
                ("from", Value::from(from.clone())),
                ("to", Value::from(to.clone())),
                ("capacity", Value::from(*capacity)),
            ]),
            SpecEdit::AddChannel { from, to, capacity } => json::object(vec![
                ("kind", Value::from("add_channel")),
                ("from", Value::from(from.clone())),
                ("to", Value::from(to.clone())),
                ("capacity", Value::from(*capacity)),
            ]),
            SpecEdit::RemoveChannel { from, to } => json::object(vec![
                ("kind", Value::from("remove_channel")),
                ("from", Value::from(from.clone())),
                ("to", Value::from(to.clone())),
            ]),
        }
    }

    /// Decodes an edit from its JSON wire form.
    ///
    /// # Errors
    ///
    /// [`EditError::Schema`] when `kind` is missing/unknown or a field has
    /// the wrong type.
    pub fn from_json(value: &Value) -> Result<Self, EditError> {
        fn schema(msg: impl Into<String>) -> EditError {
            EditError::Schema(msg.into())
        }
        fn str_field(v: &Value, key: &str) -> Result<String, EditError> {
            v.get(key)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| schema(format!("edit: missing or non-string \"{key}\"")))
        }
        fn nanos_field(v: &Value, key: &str) -> Result<Duration, EditError> {
            v.get(key)
                .and_then(Value::as_i64)
                .map(Duration::from_nanos)
                .ok_or_else(|| schema(format!("edit: \"{key}\" must be integer nanoseconds")))
        }
        fn capacity_field(v: &Value) -> Result<usize, EditError> {
            v.get("capacity")
                .and_then(Value::as_i64)
                .and_then(|n| usize::try_from(n).ok())
                .ok_or_else(|| schema("edit: \"capacity\" must be a non-negative integer"))
        }

        let kind = value
            .get("kind")
            .and_then(Value::as_str)
            .ok_or_else(|| schema("edit: missing or non-string \"kind\""))?;
        match kind {
            "set_wcet" => Ok(SpecEdit::SetWcet {
                task: str_field(value, "task")?,
                wcet: nanos_field(value, "wcet")?,
            }),
            "set_bcet" => Ok(SpecEdit::SetBcet {
                task: str_field(value, "task")?,
                bcet: nanos_field(value, "bcet")?,
            }),
            "set_period" => Ok(SpecEdit::SetPeriod {
                task: str_field(value, "task")?,
                period: nanos_field(value, "period")?,
            }),
            "swap_priority" => Ok(SpecEdit::SwapPriority {
                a: str_field(value, "a")?,
                b: str_field(value, "b")?,
            }),
            "resize_buffer" => Ok(SpecEdit::ResizeBuffer {
                from: str_field(value, "from")?,
                to: str_field(value, "to")?,
                capacity: capacity_field(value)?,
            }),
            "add_channel" => Ok(SpecEdit::AddChannel {
                from: str_field(value, "from")?,
                to: str_field(value, "to")?,
                capacity: capacity_field(value)?,
            }),
            "remove_channel" => Ok(SpecEdit::RemoveChannel {
                from: str_field(value, "from")?,
                to: str_field(value, "to")?,
            }),
            other => Err(schema(format!("edit: unknown kind {other:?}"))),
        }
    }
}

/// Applies a sequence of edits left to right, stopping at the first error.
///
/// On error the spec may hold a *prefix* of the sequence (each individual
/// edit is atomic; the sequence is not). Callers that need all-or-nothing
/// semantics should clone first — that is what the service's `patch` op
/// does.
///
/// # Errors
///
/// The first [`EditError`] produced by [`SpecEdit::apply`], tagged with its
/// index in the sequence.
pub fn apply_all(spec: &mut SystemSpec, edits: &[SpecEdit]) -> Result<(), (usize, EditError)> {
    for (i, edit) in edits.iter().enumerate() {
        edit.apply(spec).map_err(|e| (i, e))?;
    }
    Ok(())
}

/// Looks up a task entry by name (helper shared with the delta engine).
#[must_use]
pub fn find_entry<'s>(spec: &'s SystemSpec, name: &str) -> Option<&'s TaskEntry> {
    spec.tasks.iter().find(|t| t.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::EcuSpec;

    fn ms(v: i64) -> Duration {
        Duration::from_millis(v)
    }

    fn sample() -> SystemSpec {
        SystemSpec {
            ecus: vec![EcuSpec::processor("e0"), EcuSpec::processor("e1")],
            tasks: vec![
                TaskEntry::stimulus("cam", ms(33)),
                TaskEntry::computation("det", ms(33), ms(2), ms(6), "e0"),
                TaskEntry::computation("fuse", ms(66), ms(1), ms(3), "e1"),
            ],
            channels: vec![
                ChannelSpec::register("cam", "det"),
                ChannelSpec::fifo("det", "fuse", 2),
            ],
        }
    }

    #[test]
    fn field_edits_apply() {
        let mut spec = sample();
        SpecEdit::SetWcet {
            task: "det".into(),
            wcet: ms(8),
        }
        .apply(&mut spec)
        .unwrap();
        SpecEdit::SetBcet {
            task: "det".into(),
            bcet: ms(3),
        }
        .apply(&mut spec)
        .unwrap();
        SpecEdit::SetPeriod {
            task: "cam".into(),
            period: ms(16),
        }
        .apply(&mut spec)
        .unwrap();
        assert_eq!(spec.tasks[1].wcet, ms(8));
        assert_eq!(spec.tasks[1].bcet, ms(3));
        assert_eq!(spec.tasks[0].period, ms(16));
    }

    #[test]
    fn invalid_values_leave_spec_untouched() {
        let mut spec = sample();
        let before = spec.clone();
        assert!(matches!(
            SpecEdit::SetWcet {
                task: "det".into(),
                wcet: ms(1), // below bcet of 2
            }
            .apply(&mut spec),
            Err(EditError::InvalidValue(_))
        ));
        assert!(matches!(
            SpecEdit::SetBcet {
                task: "det".into(),
                bcet: ms(7), // above wcet of 6
            }
            .apply(&mut spec),
            Err(EditError::InvalidValue(_))
        ));
        assert!(matches!(
            SpecEdit::SetPeriod {
                task: "cam".into(),
                period: ms(0),
            }
            .apply(&mut spec),
            Err(EditError::InvalidValue(_))
        ));
        assert!(matches!(
            SpecEdit::ResizeBuffer {
                from: "det".into(),
                to: "fuse".into(),
                capacity: 0,
            }
            .apply(&mut spec),
            Err(EditError::InvalidValue(_))
        ));
        assert_eq!(spec, before);
    }

    #[test]
    fn unknown_names_are_reported() {
        let mut spec = sample();
        assert_eq!(
            SpecEdit::SetWcet {
                task: "nope".into(),
                wcet: ms(1),
            }
            .apply(&mut spec),
            Err(EditError::UnknownTask("nope".into()))
        );
        assert_eq!(
            SpecEdit::ResizeBuffer {
                from: "cam".into(),
                to: "fuse".into(),
                capacity: 2,
            }
            .apply(&mut spec),
            Err(EditError::UnknownChannel {
                from: "cam".into(),
                to: "fuse".into()
            })
        );
    }

    #[test]
    fn priority_swap_moves_explicit_levels() {
        let mut spec = sample();
        spec.tasks[1].priority = Some(3);
        SpecEdit::SwapPriority {
            a: "det".into(),
            b: "fuse".into(),
        }
        .apply(&mut spec)
        .unwrap();
        assert_eq!(spec.tasks[1].priority, None);
        assert_eq!(spec.tasks[2].priority, Some(3));
    }

    #[test]
    fn channel_add_and_remove() {
        let mut spec = sample();
        SpecEdit::AddChannel {
            from: "cam".into(),
            to: "fuse".into(),
            capacity: 1,
        }
        .apply(&mut spec)
        .unwrap();
        assert_eq!(spec.channels.len(), 3);
        assert_eq!(
            SpecEdit::AddChannel {
                from: "cam".into(),
                to: "fuse".into(),
                capacity: 1,
            }
            .apply(&mut spec),
            Err(EditError::DuplicateChannel {
                from: "cam".into(),
                to: "fuse".into()
            })
        );
        SpecEdit::RemoveChannel {
            from: "cam".into(),
            to: "fuse".into(),
        }
        .apply(&mut spec)
        .unwrap();
        assert_eq!(spec.channels.len(), 2);
        assert!(matches!(
            SpecEdit::AddChannel {
                from: "cam".into(),
                to: "cam".into(),
                capacity: 1,
            }
            .apply(&mut spec),
            Err(EditError::InvalidValue(_))
        ));
    }

    #[test]
    fn edits_round_trip_through_json() {
        let edits = vec![
            SpecEdit::SetWcet {
                task: "det".into(),
                wcet: ms(8),
            },
            SpecEdit::SetBcet {
                task: "det".into(),
                bcet: ms(1),
            },
            SpecEdit::SetPeriod {
                task: "cam".into(),
                period: ms(16),
            },
            SpecEdit::SwapPriority {
                a: "det".into(),
                b: "fuse".into(),
            },
            SpecEdit::ResizeBuffer {
                from: "det".into(),
                to: "fuse".into(),
                capacity: 4,
            },
            SpecEdit::AddChannel {
                from: "cam".into(),
                to: "fuse".into(),
                capacity: 1,
            },
            SpecEdit::RemoveChannel {
                from: "det".into(),
                to: "fuse".into(),
            },
        ];
        for edit in edits {
            let text = edit.to_json().to_string();
            let back = SpecEdit::from_json(&Value::parse(&text).unwrap()).unwrap();
            assert_eq!(back, edit, "round-trip of {}", edit.kind());
        }
    }

    #[test]
    fn malformed_edit_json_is_rejected() {
        for text in [
            "{}",
            "{\"kind\":\"warp_core\"}",
            "{\"kind\":\"set_wcet\",\"task\":\"t\"}",
            "{\"kind\":\"set_wcet\",\"task\":3,\"wcet\":1}",
            "{\"kind\":\"resize_buffer\",\"from\":\"a\",\"to\":\"b\",\"capacity\":-1}",
        ] {
            let v = Value::parse(text).unwrap();
            assert!(
                matches!(SpecEdit::from_json(&v), Err(EditError::Schema(_))),
                "{text} should be rejected"
            );
        }
    }

    #[test]
    fn apply_all_reports_failing_index() {
        let mut spec = sample();
        let edits = [
            SpecEdit::SetWcet {
                task: "det".into(),
                wcet: ms(9),
            },
            SpecEdit::SetPeriod {
                task: "nope".into(),
                period: ms(5),
            },
        ];
        let (idx, err) = apply_all(&mut spec, &edits).unwrap_err();
        assert_eq!(idx, 1);
        assert_eq!(err, EditError::UnknownTask("nope".into()));
        // the valid prefix stuck
        assert_eq!(spec.tasks[1].wcet, ms(9));
    }
}
