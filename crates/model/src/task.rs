//! Tasks: the vertices of a cause-effect graph.
//!
//! Each task `τ_i` is characterized by the paper's triple
//! `(W(τ_i), B(τ_i), T(τ_i))` — worst-case execution time, best-case
//! execution time and period — plus the run-time attributes the model needs:
//! a release offset, a static ECU mapping and a fixed priority on that ECU.


use crate::ids::{EcuId, Priority, TaskId};
use crate::time::Duration;

/// Declarative description of a task, consumed by
/// [`SystemBuilder::add_task`](crate::builder::SystemBuilder::add_task).
///
/// Built with a fluent API; only the name and period are mandatory.
/// A task with both WCET and BCET zero (the default) models an external
/// stimulus — the paper's *source task* convention `W = B = 0`.
///
/// # Examples
///
/// ```
/// use disparity_model::task::TaskSpec;
/// use disparity_model::time::Duration;
/// use disparity_model::ids::EcuId;
///
/// let spec = TaskSpec::periodic("camera_proc", Duration::from_millis(33))
///     .wcet(Duration::from_millis(8))
///     .bcet(Duration::from_millis(5))
///     .offset(Duration::from_millis(2))
///     .on_ecu(EcuId::from_index(0));
/// assert_eq!(spec.period, Duration::from_millis(33));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskSpec {
    /// Human-readable name, used in reports and DOT output.
    pub name: String,
    /// Worst-case execution time `W(τ)`.
    pub wcet: Duration,
    /// Best-case execution time `B(τ)`.
    pub bcet: Duration,
    /// Activation period `T(τ)`.
    pub period: Duration,
    /// Release offset of the first job relative to system start.
    pub offset: Duration,
    /// Execution resource the task is statically mapped to.
    ///
    /// May be `None` only for zero-cost (source) tasks.
    pub ecu: Option<EcuId>,
    /// Fixed priority on the ECU; assigned rate-monotonically at build time
    /// when absent.
    pub priority: Option<Priority>,
}

impl TaskSpec {
    /// Starts a spec for a periodic task with zero execution cost.
    #[must_use]
    pub fn periodic(name: impl Into<String>, period: Duration) -> Self {
        TaskSpec {
            name: name.into(),
            wcet: Duration::ZERO,
            bcet: Duration::ZERO,
            period,
            offset: Duration::ZERO,
            ecu: None,
            priority: None,
        }
    }

    /// Sets the worst-case execution time.
    #[must_use]
    pub fn wcet(mut self, wcet: Duration) -> Self {
        self.wcet = wcet;
        self
    }

    /// Sets the best-case execution time.
    #[must_use]
    pub fn bcet(mut self, bcet: Duration) -> Self {
        self.bcet = bcet;
        self
    }

    /// Sets both execution times at once (`bcet`, `wcet`).
    #[must_use]
    pub fn execution(mut self, bcet: Duration, wcet: Duration) -> Self {
        self.bcet = bcet;
        self.wcet = wcet;
        self
    }

    /// Sets the release offset of the first job.
    #[must_use]
    pub fn offset(mut self, offset: Duration) -> Self {
        self.offset = offset;
        self
    }

    /// Maps the task onto an execution resource.
    #[must_use]
    pub fn on_ecu(mut self, ecu: EcuId) -> Self {
        self.ecu = Some(ecu);
        self
    }

    /// Fixes the task's priority explicitly (lower level = more urgent).
    #[must_use]
    pub fn priority(mut self, priority: Priority) -> Self {
        self.priority = Some(priority);
        self
    }
}

/// A validated task inside a [`CauseEffectGraph`](crate::graph::CauseEffectGraph).
///
/// Obtained from [`CauseEffectGraph::task`](crate::graph::CauseEffectGraph::task);
/// fields are read through accessors so representation can evolve
/// (C-STRUCT-PRIVATE).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Task {
    pub(crate) id: TaskId,
    pub(crate) name: String,
    pub(crate) wcet: Duration,
    pub(crate) bcet: Duration,
    pub(crate) period: Duration,
    pub(crate) offset: Duration,
    pub(crate) ecu: Option<EcuId>,
    pub(crate) priority: Priority,
}

impl Task {
    /// The task's identifier.
    #[must_use]
    pub fn id(&self) -> TaskId {
        self.id
    }

    /// Human-readable name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Worst-case execution time `W(τ)`.
    #[must_use]
    pub fn wcet(&self) -> Duration {
        self.wcet
    }

    /// Best-case execution time `B(τ)`.
    #[must_use]
    pub fn bcet(&self) -> Duration {
        self.bcet
    }

    /// Activation period `T(τ)`.
    #[must_use]
    pub fn period(&self) -> Duration {
        self.period
    }

    /// Release offset of the first job.
    #[must_use]
    pub fn offset(&self) -> Duration {
        self.offset
    }

    /// The execution resource the task runs on, if it consumes CPU time.
    #[must_use]
    pub fn ecu(&self) -> Option<EcuId> {
        self.ecu
    }

    /// The task's fixed priority on its ECU (lower level = more urgent).
    #[must_use]
    pub fn priority(&self) -> Priority {
        self.priority
    }

    /// `true` if the task consumes no CPU time (`W = B = 0`), i.e. it is an
    /// external stimulus in the sense of the paper's source-task convention.
    #[must_use]
    pub fn is_zero_cost(&self) -> bool {
        self.wcet.is_zero() && self.bcet.is_zero()
    }

    /// CPU utilization `W/T` of the task.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        self.wcet.as_nanos() as f64 / self.period.as_nanos() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_builder_chains() {
        let s = TaskSpec::periodic("x", Duration::from_millis(20))
            .execution(Duration::from_millis(1), Duration::from_millis(3))
            .offset(Duration::from_millis(4))
            .priority(Priority::new(2));
        assert_eq!(s.bcet, Duration::from_millis(1));
        assert_eq!(s.wcet, Duration::from_millis(3));
        assert_eq!(s.offset, Duration::from_millis(4));
        assert_eq!(s.priority, Some(Priority::new(2)));
        assert_eq!(s.ecu, None);
    }

    #[test]
    fn default_spec_is_zero_cost_stimulus() {
        let s = TaskSpec::periodic("sensor", Duration::from_millis(33));
        assert!(s.wcet.is_zero() && s.bcet.is_zero());
    }

    #[test]
    fn task_utilization() {
        let t = Task {
            id: TaskId::from_index(0),
            name: "t".into(),
            wcet: Duration::from_millis(2),
            bcet: Duration::from_millis(1),
            period: Duration::from_millis(10),
            offset: Duration::ZERO,
            ecu: None,
            priority: Priority::new(0),
        };
        assert!((t.utilization() - 0.2).abs() < 1e-12);
        assert!(!t.is_zero_cost());
    }
}
