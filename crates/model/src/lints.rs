//! Design lints for cause-effect graphs.
//!
//! §IV of the paper opens with a design discussion: when a producer runs
//! faster than its consumer, part of its output is never propagated
//! ("computation resources could be potentially wasted"); when it runs
//! slower, the consumer re-processes stale data. These mismatches are
//! legal — the model's registers absorb them — but usually worth a second
//! look, so this module reports them as structured lints rather than
//! errors.

use core::fmt;

use crate::graph::CauseEffectGraph;
use crate::ids::ChannelId;

/// A single design observation about a graph.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Lint {
    /// The producer runs faster than the consumer: roughly
    /// `1 − T(producer)/T(consumer)` of its outputs are overwritten
    /// unread (the paper's "wasted computation" remark, §IV).
    OversampledChannel {
        /// The mismatched channel.
        channel: ChannelId,
        /// How many producer jobs fire per consumer job (≥ 2 to lint).
        producer_jobs_per_consumer_job: i64,
    },
    /// The producer runs slower than the consumer: the consumer processes
    /// the same token several times.
    UndersampledChannel {
        /// The mismatched channel.
        channel: ChannelId,
        /// How many consumer jobs fire per producer job (≥ 2 to lint).
        consumer_jobs_per_producer_job: i64,
    },
    /// The producer's period does not divide the consumer's (or vice
    /// versa): the sampling phase drifts, so backward times vary job to
    /// job even in a fully deterministic schedule.
    NonHarmonicChannel {
        /// The mismatched channel.
        channel: ChannelId,
    },
}

impl Lint {
    /// The channel the lint refers to.
    #[must_use]
    pub fn channel(&self) -> ChannelId {
        match self {
            Lint::OversampledChannel { channel, .. }
            | Lint::UndersampledChannel { channel, .. }
            | Lint::NonHarmonicChannel { channel } => *channel,
        }
    }
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Lint::OversampledChannel {
                channel,
                producer_jobs_per_consumer_job,
            } => write!(
                f,
                "{channel}: producer fires {producer_jobs_per_consumer_job}x per consumer job; \
                 most outputs are overwritten unread"
            ),
            Lint::UndersampledChannel {
                channel,
                consumer_jobs_per_producer_job,
            } => write!(
                f,
                "{channel}: consumer fires {consumer_jobs_per_producer_job}x per producer job; \
                 the same token is re-processed"
            ),
            Lint::NonHarmonicChannel { channel } => {
                write!(f, "{channel}: non-harmonic periods; sampling phase drifts")
            }
        }
    }
}

/// Scans every channel of the graph for rate mismatches.
///
/// # Examples
///
/// ```
/// use disparity_model::builder::SystemBuilder;
/// use disparity_model::lints::{lint_graph, Lint};
/// use disparity_model::task::TaskSpec;
/// use disparity_model::time::Duration;
///
/// let mut b = SystemBuilder::new();
/// let ecu = b.add_ecu("e");
/// let ms = Duration::from_millis;
/// let fast = b.add_task(TaskSpec::periodic("fast", ms(10)));
/// let slow = b.add_task(TaskSpec::periodic("slow", ms(30)).wcet(ms(1)).on_ecu(ecu));
/// b.connect(fast, slow);
/// let g = b.build()?;
/// let lints = lint_graph(&g);
/// assert!(matches!(lints[0], Lint::OversampledChannel { producer_jobs_per_consumer_job: 3, .. }));
/// # Ok::<(), disparity_model::error::ModelError>(())
/// ```
#[must_use]
pub fn lint_graph(graph: &CauseEffectGraph) -> Vec<Lint> {
    let mut lints = Vec::new();
    for ch in graph.channels() {
        let tp = graph.task(ch.src()).period().as_nanos();
        let tc = graph.task(ch.dst()).period().as_nanos();
        if tc % tp == 0 {
            let ratio = tc / tp;
            if ratio >= 2 {
                lints.push(Lint::OversampledChannel {
                    channel: ch.id(),
                    producer_jobs_per_consumer_job: ratio,
                });
            }
        } else if tp % tc == 0 {
            let ratio = tp / tc;
            if ratio >= 2 {
                lints.push(Lint::UndersampledChannel {
                    channel: ch.id(),
                    consumer_jobs_per_producer_job: ratio,
                });
            }
        } else {
            lints.push(Lint::NonHarmonicChannel { channel: ch.id() });
        }
    }
    // Deterministic output regardless of graph-construction order: sort by
    // (lint kind, channel id) so JSON exports and snapshots are stable.
    lints.sort_by_key(|l| (kind_rank(l), l.channel()));
    lints
}

/// Stable report order of the lint kinds (matches the `D008..D010`
/// diagnostic codes in `disparity-analyzer`).
fn kind_rank(lint: &Lint) -> u8 {
    match lint {
        Lint::OversampledChannel { .. } => 0,
        Lint::UndersampledChannel { .. } => 1,
        Lint::NonHarmonicChannel { .. } => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::SystemBuilder;
    use crate::task::TaskSpec;
    use crate::time::Duration;

    fn ms(v: i64) -> Duration {
        Duration::from_millis(v)
    }

    fn graph_with_periods(tp: i64, tc: i64) -> CauseEffectGraph {
        let mut b = SystemBuilder::new();
        let e = b.add_ecu("e");
        let p = b.add_task(TaskSpec::periodic("p", ms(tp)));
        let c = b.add_task(TaskSpec::periodic("c", ms(tc)).wcet(ms(1)).on_ecu(e));
        b.connect(p, c);
        b.build().unwrap()
    }

    #[test]
    fn equal_periods_are_clean() {
        assert!(lint_graph(&graph_with_periods(10, 10)).is_empty());
    }

    #[test]
    fn fast_producer_is_oversampled() {
        let lints = lint_graph(&graph_with_periods(10, 30));
        assert_eq!(lints.len(), 1);
        assert!(matches!(
            lints[0],
            Lint::OversampledChannel {
                producer_jobs_per_consumer_job: 3,
                ..
            }
        ));
        assert!(!lints[0].to_string().is_empty());
    }

    #[test]
    fn slow_producer_is_undersampled() {
        let lints = lint_graph(&graph_with_periods(100, 10));
        assert_eq!(lints.len(), 1);
        assert!(matches!(
            lints[0],
            Lint::UndersampledChannel {
                consumer_jobs_per_producer_job: 10,
                ..
            }
        ));
    }

    #[test]
    fn lints_sort_by_kind_then_channel_not_construction_order() {
        let mut b = SystemBuilder::new();
        let e = b.add_ecu("e");
        // Channel 0 (built first) is non-harmonic; channel 1 is oversampled.
        let a = b.add_task(TaskSpec::periodic("a", ms(20)));
        let bb = b.add_task(TaskSpec::periodic("b", ms(50)).wcet(ms(1)).on_ecu(e));
        b.connect(a, bb);
        let c = b.add_task(TaskSpec::periodic("c", ms(10)));
        let d = b.add_task(TaskSpec::periodic("d", ms(30)).wcet(ms(1)).on_ecu(e));
        b.connect(c, d);
        let lints = lint_graph(&b.build().unwrap());
        assert_eq!(lints.len(), 2);
        // Oversampled (kind 0) reports before NonHarmonic (kind 2) even
        // though its channel was created later.
        assert!(matches!(lints[0], Lint::OversampledChannel { .. }));
        assert_eq!(lints[0].channel(), ChannelId::from_index(1));
        assert!(matches!(lints[1], Lint::NonHarmonicChannel { .. }));
        assert_eq!(lints[1].channel(), ChannelId::from_index(0));
    }

    #[test]
    fn coprime_periods_are_nonharmonic() {
        let lints = lint_graph(&graph_with_periods(20, 50));
        assert_eq!(lints.len(), 1);
        assert!(matches!(lints[0], Lint::NonHarmonicChannel { .. }));
        assert_eq!(lints[0].channel(), ChannelId::from_index(0));
    }
}
