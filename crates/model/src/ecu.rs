//! Execution resources: ECUs and communication buses.
//!
//! The paper models inter-ECU communication as "a periodic task on the bus"
//! scheduled like any other non-preemptive fixed-priority resource — which
//! is exactly CAN arbitration. We therefore represent a bus as just another
//! execution resource; [`EcuKind`] is descriptive metadata for reports and
//! DOT output.

use core::fmt;


use crate::ids::EcuId;

/// The flavour of an execution resource.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum EcuKind {
    /// A processing core running application tasks.
    #[default]
    Processor,
    /// A communication bus (e.g. CAN); message transmissions are modeled as
    /// non-preemptive periodic tasks mapped to it.
    Bus,
}

impl fmt::Display for EcuKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EcuKind::Processor => write!(f, "processor"),
            EcuKind::Bus => write!(f, "bus"),
        }
    }
}

/// A validated execution resource inside a graph.
///
/// # Examples
///
/// ```
/// use disparity_model::builder::SystemBuilder;
/// use disparity_model::ecu::EcuKind;
///
/// # use disparity_model::task::TaskSpec;
/// # use disparity_model::time::Duration;
/// let mut b = SystemBuilder::new();
/// let bus = b.add_bus("can0");
/// # b.add_task(TaskSpec::periodic("stim", Duration::from_millis(1)));
/// let g = b.build()?;
/// assert_eq!(g.ecu(bus).kind(), EcuKind::Bus);
/// assert_eq!(g.ecu(bus).name(), "can0");
/// # Ok::<(), disparity_model::error::ModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ecu {
    pub(crate) id: EcuId,
    pub(crate) name: String,
    pub(crate) kind: EcuKind,
}

impl Ecu {
    /// The resource identifier.
    #[must_use]
    pub fn id(&self) -> EcuId {
        self.id
    }

    /// Human-readable name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Whether this is a processor or a bus.
    #[must_use]
    pub fn kind(&self) -> EcuKind {
        self.kind
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_display() {
        assert_eq!(EcuKind::Processor.to_string(), "processor");
        assert_eq!(EcuKind::Bus.to_string(), "bus");
    }

    #[test]
    fn default_kind_is_processor() {
        assert_eq!(EcuKind::default(), EcuKind::Processor);
    }
}
