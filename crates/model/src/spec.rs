//! Declarative, serializable system descriptions.
//!
//! [`SystemSpec`] is a plain-data mirror of a cause-effect graph meant for
//! files and tools: names instead of ids, one struct per concept, no
//! derived state. It round-trips through serde (JSON in the tests) and
//! converts to a validated [`CauseEffectGraph`] via [`SystemSpec::build`].
//!
//! # Examples
//!
//! ```
//! use disparity_model::spec::{ChannelSpec, EcuSpec, SystemSpec, TaskEntry};
//! use disparity_model::time::Duration;
//!
//! let spec = SystemSpec {
//!     ecus: vec![EcuSpec::processor("ecu0")],
//!     tasks: vec![
//!         TaskEntry::stimulus("camera", Duration::from_millis(33)),
//!         TaskEntry::computation(
//!             "detect",
//!             Duration::from_millis(33),
//!             Duration::from_millis(2),
//!             Duration::from_millis(6),
//!             "ecu0",
//!         ),
//!     ],
//!     channels: vec![ChannelSpec::register("camera", "detect")],
//! };
//! let graph = spec.build()?;
//! assert_eq!(graph.task_count(), 2);
//! # Ok::<(), disparity_model::spec::SpecError>(())
//! ```

use core::fmt;

use serde::{Deserialize, Serialize};

use crate::builder::SystemBuilder;
use crate::ecu::EcuKind;
use crate::error::ModelError;
use crate::graph::CauseEffectGraph;
use crate::ids::Priority;
use crate::task::TaskSpec;
use crate::time::Duration;

/// One execution resource in a spec.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EcuSpec {
    /// Unique resource name.
    pub name: String,
    /// Processor or bus.
    #[serde(default)]
    pub kind: EcuKind,
}

impl EcuSpec {
    /// A processor resource.
    #[must_use]
    pub fn processor(name: impl Into<String>) -> Self {
        EcuSpec {
            name: name.into(),
            kind: EcuKind::Processor,
        }
    }

    /// A bus resource.
    #[must_use]
    pub fn bus(name: impl Into<String>) -> Self {
        EcuSpec {
            name: name.into(),
            kind: EcuKind::Bus,
        }
    }
}

/// One task in a spec. Durations serialize as integer nanoseconds.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskEntry {
    /// Unique task name.
    pub name: String,
    /// Activation period.
    pub period: Duration,
    /// Worst-case execution time (default 0: a stimulus).
    #[serde(default)]
    pub wcet: Duration,
    /// Best-case execution time (default 0).
    #[serde(default)]
    pub bcet: Duration,
    /// First-release offset (default 0).
    #[serde(default)]
    pub offset: Duration,
    /// Name of the resource the task runs on; optional for stimuli.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub ecu: Option<String>,
    /// Explicit priority level; rate-monotonic when absent.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub priority: Option<u32>,
}

impl TaskEntry {
    /// A zero-cost external stimulus (the paper's source-task convention).
    #[must_use]
    pub fn stimulus(name: impl Into<String>, period: Duration) -> Self {
        TaskEntry {
            name: name.into(),
            period,
            wcet: Duration::ZERO,
            bcet: Duration::ZERO,
            offset: Duration::ZERO,
            ecu: None,
            priority: None,
        }
    }

    /// A computational task mapped to a resource.
    #[must_use]
    pub fn computation(
        name: impl Into<String>,
        period: Duration,
        bcet: Duration,
        wcet: Duration,
        ecu: impl Into<String>,
    ) -> Self {
        TaskEntry {
            name: name.into(),
            period,
            wcet,
            bcet,
            offset: Duration::ZERO,
            ecu: Some(ecu.into()),
            priority: None,
        }
    }
}

/// One channel in a spec.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChannelSpec {
    /// Producing task name.
    pub from: String,
    /// Consuming task name.
    pub to: String,
    /// FIFO capacity; 1 (the default) is the base model's register.
    #[serde(default = "default_capacity")]
    pub capacity: usize,
}

fn default_capacity() -> usize {
    1
}

impl ChannelSpec {
    /// A capacity-1 register channel.
    #[must_use]
    pub fn register(from: impl Into<String>, to: impl Into<String>) -> Self {
        ChannelSpec {
            from: from.into(),
            to: to.into(),
            capacity: 1,
        }
    }

    /// A FIFO channel of the given capacity.
    #[must_use]
    pub fn fifo(from: impl Into<String>, to: impl Into<String>, capacity: usize) -> Self {
        ChannelSpec {
            from: from.into(),
            to: to.into(),
            capacity,
        }
    }
}

/// A complete, serializable system description.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SystemSpec {
    /// Execution resources.
    #[serde(default)]
    pub ecus: Vec<EcuSpec>,
    /// Tasks.
    pub tasks: Vec<TaskEntry>,
    /// Channels.
    #[serde(default)]
    pub channels: Vec<ChannelSpec>,
}

/// Errors turning a [`SystemSpec`] into a graph.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SpecError {
    /// Two resources or two tasks share a name.
    DuplicateName(String),
    /// A task or channel references an unknown name.
    UnknownName(String),
    /// The underlying graph validation failed.
    Model(ModelError),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::DuplicateName(n) => write!(f, "duplicate name: {n}"),
            SpecError::UnknownName(n) => write!(f, "unknown name: {n}"),
            SpecError::Model(e) => write!(f, "model error: {e}"),
        }
    }
}

impl std::error::Error for SpecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SpecError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for SpecError {
    fn from(e: ModelError) -> Self {
        SpecError::Model(e)
    }
}

impl SystemSpec {
    /// Validates the spec and builds the cause-effect graph.
    ///
    /// # Errors
    ///
    /// * [`SpecError::DuplicateName`] for name collisions;
    /// * [`SpecError::UnknownName`] for dangling references;
    /// * [`SpecError::Model`] for graph-level violations (cycles, BCET >
    ///   WCET, …).
    pub fn build(&self) -> Result<CauseEffectGraph, SpecError> {
        use std::collections::BTreeMap;
        let mut builder = SystemBuilder::new();
        let mut ecu_ids = BTreeMap::new();
        for ecu in &self.ecus {
            let id = match ecu.kind {
                EcuKind::Processor => builder.add_ecu(ecu.name.clone()),
                EcuKind::Bus => builder.add_bus(ecu.name.clone()),
            };
            if ecu_ids.insert(ecu.name.clone(), id).is_some() {
                return Err(SpecError::DuplicateName(ecu.name.clone()));
            }
        }
        let mut task_ids = BTreeMap::new();
        for task in &self.tasks {
            let mut spec = TaskSpec::periodic(task.name.clone(), task.period)
                .execution(task.bcet, task.wcet)
                .offset(task.offset);
            if let Some(ecu_name) = &task.ecu {
                let &ecu = ecu_ids
                    .get(ecu_name)
                    .ok_or_else(|| SpecError::UnknownName(ecu_name.clone()))?;
                spec = spec.on_ecu(ecu);
            }
            if let Some(level) = task.priority {
                spec = spec.priority(Priority::new(level));
            }
            let id = builder.add_task(spec);
            if task_ids.insert(task.name.clone(), id).is_some() {
                return Err(SpecError::DuplicateName(task.name.clone()));
            }
        }
        for channel in &self.channels {
            let &from = task_ids
                .get(&channel.from)
                .ok_or_else(|| SpecError::UnknownName(channel.from.clone()))?;
            let &to = task_ids
                .get(&channel.to)
                .ok_or_else(|| SpecError::UnknownName(channel.to.clone()))?;
            builder.connect_with_capacity(from, to, channel.capacity);
        }
        Ok(builder.build()?)
    }

    /// Extracts a spec from an existing graph (names are preserved).
    #[must_use]
    pub fn from_graph(graph: &CauseEffectGraph) -> Self {
        SystemSpec {
            ecus: graph
                .ecus()
                .iter()
                .map(|e| EcuSpec {
                    name: e.name().to_string(),
                    kind: e.kind(),
                })
                .collect(),
            tasks: graph
                .tasks()
                .iter()
                .map(|t| TaskEntry {
                    name: t.name().to_string(),
                    period: t.period(),
                    wcet: t.wcet(),
                    bcet: t.bcet(),
                    offset: t.offset(),
                    ecu: t.ecu().map(|e| graph.ecu(e).name().to_string()),
                    priority: Some(t.priority().level()),
                })
                .collect(),
            channels: graph
                .channels()
                .iter()
                .map(|c| ChannelSpec {
                    from: graph.task(c.src()).name().to_string(),
                    to: graph.task(c.dst()).name().to_string(),
                    capacity: c.capacity(),
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_spec() -> SystemSpec {
        let ms = Duration::from_millis;
        SystemSpec {
            ecus: vec![EcuSpec::processor("ecu0"), EcuSpec::bus("can0")],
            tasks: vec![
                TaskEntry::stimulus("camera", ms(33)),
                TaskEntry::computation("detect", ms(33), ms(2), ms(6), "ecu0"),
                TaskEntry::computation("msg", ms(33), ms(1), ms(2), "can0"),
            ],
            channels: vec![
                ChannelSpec::register("camera", "detect"),
                ChannelSpec::fifo("detect", "msg", 3),
            ],
        }
    }

    #[test]
    fn build_produces_expected_graph() {
        let g = sample_spec().build().unwrap();
        assert_eq!(g.task_count(), 3);
        assert_eq!(g.channel_count(), 2);
        let detect = g.find_task("detect").unwrap();
        let msg = g.find_task("msg").unwrap();
        assert_eq!(g.channel_between(detect, msg).unwrap().capacity(), 3);
        assert_eq!(g.ecus()[1].kind(), EcuKind::Bus);
    }

    #[test]
    fn round_trip_via_graph() {
        let spec = sample_spec();
        let g = spec.build().unwrap();
        let extracted = SystemSpec::from_graph(&g);
        // The extracted spec pins priorities explicitly but otherwise
        // rebuilds to an identical graph.
        let g2 = extracted.build().unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn unknown_names_are_rejected() {
        let mut spec = sample_spec();
        spec.channels.push(ChannelSpec::register("nope", "detect"));
        assert_eq!(
            spec.build().unwrap_err(),
            SpecError::UnknownName("nope".into())
        );

        let mut spec = sample_spec();
        spec.tasks.push(TaskEntry::computation(
            "x",
            Duration::from_millis(5),
            Duration::ZERO,
            Duration::from_millis(1),
            "missing_ecu",
        ));
        assert_eq!(
            spec.build().unwrap_err(),
            SpecError::UnknownName("missing_ecu".into())
        );
    }

    #[test]
    fn duplicate_names_are_rejected() {
        let mut spec = sample_spec();
        spec.tasks
            .push(TaskEntry::stimulus("camera", Duration::from_millis(10)));
        assert_eq!(
            spec.build().unwrap_err(),
            SpecError::DuplicateName("camera".into())
        );

        let mut spec = sample_spec();
        spec.ecus.push(EcuSpec::processor("ecu0"));
        assert_eq!(
            spec.build().unwrap_err(),
            SpecError::DuplicateName("ecu0".into())
        );
    }

    #[test]
    fn model_errors_propagate() {
        let mut spec = sample_spec();
        spec.channels
            .push(ChannelSpec::register("detect", "detect"));
        assert!(matches!(spec.build().unwrap_err(), SpecError::Model(_)));
    }
}
