//! Declarative, serializable system descriptions.
//!
//! [`SystemSpec`] is a plain-data mirror of a cause-effect graph meant for
//! files and tools: names instead of ids, one struct per concept, no
//! derived state. It round-trips through JSON ([`SystemSpec::to_json`] /
//! [`SystemSpec::from_json_str`], built on [`crate::json`]) and converts to
//! a validated [`CauseEffectGraph`] via [`SystemSpec::build`].
//!
//! # Examples
//!
//! ```
//! use disparity_model::spec::{ChannelSpec, EcuSpec, SystemSpec, TaskEntry};
//! use disparity_model::time::Duration;
//!
//! let spec = SystemSpec {
//!     ecus: vec![EcuSpec::processor("ecu0")],
//!     tasks: vec![
//!         TaskEntry::stimulus("camera", Duration::from_millis(33)),
//!         TaskEntry::computation(
//!             "detect",
//!             Duration::from_millis(33),
//!             Duration::from_millis(2),
//!             Duration::from_millis(6),
//!             "ecu0",
//!         ),
//!     ],
//!     channels: vec![ChannelSpec::register("camera", "detect")],
//! };
//! let graph = spec.build()?;
//! assert_eq!(graph.task_count(), 2);
//! # Ok::<(), disparity_model::spec::SpecError>(())
//! ```

use core::fmt;
use std::collections::BTreeMap;

use crate::builder::SystemBuilder;
use crate::ecu::EcuKind;
use crate::edit::SpecEdit;
use crate::error::ModelError;
use crate::graph::CauseEffectGraph;
use crate::ids::Priority;
use crate::json::{self, JsonError, Value};
use crate::task::TaskSpec;
use crate::time::Duration;

/// One execution resource in a spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EcuSpec {
    /// Unique resource name.
    pub name: String,
    /// Processor or bus.
    pub kind: EcuKind,
}

impl EcuSpec {
    /// A processor resource.
    #[must_use]
    pub fn processor(name: impl Into<String>) -> Self {
        EcuSpec {
            name: name.into(),
            kind: EcuKind::Processor,
        }
    }

    /// A bus resource.
    #[must_use]
    pub fn bus(name: impl Into<String>) -> Self {
        EcuSpec {
            name: name.into(),
            kind: EcuKind::Bus,
        }
    }
}

/// One task in a spec. Durations serialize as integer nanoseconds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskEntry {
    /// Unique task name.
    pub name: String,
    /// Activation period.
    pub period: Duration,
    /// Worst-case execution time (default 0: a stimulus).
    pub wcet: Duration,
    /// Best-case execution time (default 0).
    pub bcet: Duration,
    /// First-release offset (default 0).
    pub offset: Duration,
    /// Name of the resource the task runs on; optional for stimuli.
    pub ecu: Option<String>,
    /// Explicit priority level; rate-monotonic when absent.
    pub priority: Option<u32>,
}

impl TaskEntry {
    /// A zero-cost external stimulus (the paper's source-task convention).
    #[must_use]
    pub fn stimulus(name: impl Into<String>, period: Duration) -> Self {
        TaskEntry {
            name: name.into(),
            period,
            wcet: Duration::ZERO,
            bcet: Duration::ZERO,
            offset: Duration::ZERO,
            ecu: None,
            priority: None,
        }
    }

    /// A computational task mapped to a resource.
    #[must_use]
    pub fn computation(
        name: impl Into<String>,
        period: Duration,
        bcet: Duration,
        wcet: Duration,
        ecu: impl Into<String>,
    ) -> Self {
        TaskEntry {
            name: name.into(),
            period,
            wcet,
            bcet,
            offset: Duration::ZERO,
            ecu: Some(ecu.into()),
            priority: None,
        }
    }
}

/// One channel in a spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelSpec {
    /// Producing task name.
    pub from: String,
    /// Consuming task name.
    pub to: String,
    /// FIFO capacity; 1 (the default) is the base model's register.
    pub capacity: usize,
}

fn default_capacity() -> usize {
    1
}

impl ChannelSpec {
    /// A capacity-1 register channel.
    #[must_use]
    pub fn register(from: impl Into<String>, to: impl Into<String>) -> Self {
        ChannelSpec {
            from: from.into(),
            to: to.into(),
            capacity: 1,
        }
    }

    /// A FIFO channel of the given capacity.
    #[must_use]
    pub fn fifo(from: impl Into<String>, to: impl Into<String>, capacity: usize) -> Self {
        ChannelSpec {
            from: from.into(),
            to: to.into(),
            capacity,
        }
    }
}

/// A complete, serializable system description.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SystemSpec {
    /// Execution resources.
    pub ecus: Vec<EcuSpec>,
    /// Tasks.
    pub tasks: Vec<TaskEntry>,
    /// Channels.
    pub channels: Vec<ChannelSpec>,
}

/// Errors turning a [`SystemSpec`] into a graph or decoding one from JSON.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SpecError {
    /// Two resources or two tasks share a name.
    DuplicateName(String),
    /// A task or channel references an unknown name.
    UnknownName(String),
    /// The underlying graph validation failed.
    Model(ModelError),
    /// The JSON text was malformed.
    Json(JsonError),
    /// The JSON was well-formed but did not describe a spec (a field had
    /// the wrong type, or a required field was missing).
    Schema(String),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::DuplicateName(n) => write!(f, "duplicate name: {n}"),
            SpecError::UnknownName(n) => write!(f, "unknown name: {n}"),
            SpecError::Model(e) => write!(f, "model error: {e}"),
            SpecError::Json(e) => write!(f, "{e}"),
            SpecError::Schema(msg) => write!(f, "spec schema error: {msg}"),
        }
    }
}

impl std::error::Error for SpecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SpecError::Model(e) => Some(e),
            SpecError::Json(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for SpecError {
    fn from(e: ModelError) -> Self {
        SpecError::Model(e)
    }
}

impl From<JsonError> for SpecError {
    fn from(e: JsonError) -> Self {
        SpecError::Json(e)
    }
}

impl SystemSpec {
    /// Validates the spec and builds the cause-effect graph.
    ///
    /// # Errors
    ///
    /// * [`SpecError::DuplicateName`] for name collisions;
    /// * [`SpecError::UnknownName`] for dangling references;
    /// * [`SpecError::Model`] for graph-level violations (cycles, BCET >
    ///   WCET, …).
    pub fn build(&self) -> Result<CauseEffectGraph, SpecError> {
        use std::collections::BTreeMap;
        let mut builder = SystemBuilder::new();
        let mut ecu_ids = BTreeMap::new();
        for ecu in &self.ecus {
            let id = match ecu.kind {
                EcuKind::Processor => builder.add_ecu(ecu.name.clone()),
                EcuKind::Bus => builder.add_bus(ecu.name.clone()),
            };
            if ecu_ids.insert(ecu.name.clone(), id).is_some() {
                return Err(SpecError::DuplicateName(ecu.name.clone()));
            }
        }
        let mut task_ids = BTreeMap::new();
        for task in &self.tasks {
            let mut spec = TaskSpec::periodic(task.name.clone(), task.period)
                .execution(task.bcet, task.wcet)
                .offset(task.offset);
            if let Some(ecu_name) = &task.ecu {
                let &ecu = ecu_ids
                    .get(ecu_name)
                    .ok_or_else(|| SpecError::UnknownName(ecu_name.clone()))?;
                spec = spec.on_ecu(ecu);
            }
            if let Some(level) = task.priority {
                spec = spec.priority(Priority::new(level));
            }
            let id = builder.add_task(spec);
            if task_ids.insert(task.name.clone(), id).is_some() {
                return Err(SpecError::DuplicateName(task.name.clone()));
            }
        }
        for channel in &self.channels {
            let &from = task_ids
                .get(&channel.from)
                .ok_or_else(|| SpecError::UnknownName(channel.from.clone()))?;
            let &to = task_ids
                .get(&channel.to)
                .ok_or_else(|| SpecError::UnknownName(channel.to.clone()))?;
            builder.connect_with_capacity(from, to, channel.capacity);
        }
        Ok(builder.build()?)
    }

    /// Encodes the spec as a JSON value.
    ///
    /// Durations serialize as integer nanoseconds; `ecu` and `priority`
    /// are omitted when absent, matching the format [`Self::from_json`]
    /// accepts.
    #[must_use]
    pub fn to_json(&self) -> Value {
        let ecus = self
            .ecus
            .iter()
            .map(|e| {
                json::object(vec![
                    ("name", Value::from(e.name.clone())),
                    (
                        "kind",
                        Value::from(match e.kind {
                            EcuKind::Processor => "Processor",
                            EcuKind::Bus => "Bus",
                        }),
                    ),
                ])
            })
            .collect();
        let tasks = self
            .tasks
            .iter()
            .map(|t| {
                let mut members = vec![
                    ("name", Value::from(t.name.clone())),
                    ("period", Value::Int(t.period.as_nanos())),
                    ("wcet", Value::Int(t.wcet.as_nanos())),
                    ("bcet", Value::Int(t.bcet.as_nanos())),
                    ("offset", Value::Int(t.offset.as_nanos())),
                ];
                if let Some(ecu) = &t.ecu {
                    members.push(("ecu", Value::from(ecu.clone())));
                }
                if let Some(priority) = t.priority {
                    members.push(("priority", Value::from(priority)));
                }
                json::object(members)
            })
            .collect();
        let channels = self
            .channels
            .iter()
            .map(|c| {
                json::object(vec![
                    ("from", Value::from(c.from.clone())),
                    ("to", Value::from(c.to.clone())),
                    ("capacity", Value::from(c.capacity)),
                ])
            })
            .collect();
        json::object(vec![
            ("ecus", Value::Array(ecus)),
            ("tasks", Value::Array(tasks)),
            ("channels", Value::Array(channels)),
        ])
    }

    /// Pretty-printed JSON text of [`Self::to_json`].
    #[must_use]
    pub fn to_json_pretty(&self) -> String {
        self.to_json().to_pretty()
    }

    /// Decodes a spec from a JSON value.
    ///
    /// Missing `wcet`/`bcet`/`offset` default to zero, a missing channel
    /// `capacity` defaults to 1, and `ecu`/`priority` are optional —
    /// mirroring what [`Self::to_json`] omits.
    ///
    /// # Errors
    ///
    /// [`SpecError::Schema`] when a field is missing or has the wrong
    /// type. The resulting spec is *not* validated against the graph
    /// rules; call [`Self::build`] for that.
    pub fn from_json(value: &Value) -> Result<Self, SpecError> {
        fn schema(msg: impl Into<String>) -> SpecError {
            SpecError::Schema(msg.into())
        }
        fn str_field(v: &Value, ctx: &str, key: &str) -> Result<String, SpecError> {
            v.get(key)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| schema(format!("{ctx}: missing or non-string \"{key}\"")))
        }
        fn nanos_field(v: &Value, ctx: &str, key: &str) -> Result<Duration, SpecError> {
            match v.get(key) {
                None => Ok(Duration::ZERO),
                Some(n) => n
                    .as_i64()
                    .map(Duration::from_nanos)
                    .ok_or_else(|| schema(format!("{ctx}: \"{key}\" must be integer nanoseconds"))),
            }
        }
        fn entries<'v>(value: &'v Value, key: &str) -> Result<&'v [Value], SpecError> {
            match value.get(key) {
                None => Ok(&[]),
                Some(v) => v
                    .as_array()
                    .ok_or_else(|| schema(format!("\"{key}\" must be an array"))),
            }
        }

        if value.as_object().is_none() {
            return Err(schema("top-level value must be an object"));
        }
        let mut ecus = Vec::new();
        for (i, e) in entries(value, "ecus")?.iter().enumerate() {
            let ctx = format!("ecus[{i}]");
            let kind = match e.get("kind").and_then(Value::as_str) {
                None | Some("Processor") => EcuKind::Processor,
                Some("Bus") => EcuKind::Bus,
                Some(other) => {
                    return Err(schema(format!(
                        "{ctx}: unknown kind {other:?} (expected \"Processor\" or \"Bus\")"
                    )))
                }
            };
            ecus.push(EcuSpec {
                name: str_field(e, &ctx, "name")?,
                kind,
            });
        }
        let mut tasks = Vec::new();
        for (i, t) in entries(value, "tasks")?.iter().enumerate() {
            let ctx = format!("tasks[{i}]");
            let period = t
                .get("period")
                .and_then(Value::as_i64)
                .map(Duration::from_nanos)
                .ok_or_else(|| schema(format!("{ctx}: missing or non-integer \"period\"")))?;
            let ecu = match t.get("ecu") {
                None | Some(Value::Null) => None,
                Some(v) => Some(v.as_str().map(str::to_string).ok_or_else(|| {
                    schema(format!("{ctx}: \"ecu\" must be a string"))
                })?),
            };
            let priority = match t.get("priority") {
                None | Some(Value::Null) => None,
                Some(v) => Some(
                    v.as_i64()
                        .and_then(|n| u32::try_from(n).ok())
                        .ok_or_else(|| {
                            schema(format!("{ctx}: \"priority\" must be a non-negative integer"))
                        })?,
                ),
            };
            tasks.push(TaskEntry {
                name: str_field(t, &ctx, "name")?,
                period,
                wcet: nanos_field(t, &ctx, "wcet")?,
                bcet: nanos_field(t, &ctx, "bcet")?,
                offset: nanos_field(t, &ctx, "offset")?,
                ecu,
                priority,
            });
        }
        let mut channels = Vec::new();
        for (i, c) in entries(value, "channels")?.iter().enumerate() {
            let ctx = format!("channels[{i}]");
            let capacity = match c.get("capacity") {
                None => default_capacity(),
                Some(v) => v
                    .as_i64()
                    .and_then(|n| usize::try_from(n).ok())
                    .filter(|&n| n > 0)
                    .ok_or_else(|| {
                        schema(format!("{ctx}: \"capacity\" must be a positive integer"))
                    })?,
            };
            channels.push(ChannelSpec {
                from: str_field(c, &ctx, "from")?,
                to: str_field(c, &ctx, "to")?,
                capacity,
            });
        }
        Ok(SystemSpec {
            ecus,
            tasks,
            channels,
        })
    }

    /// Parses and decodes a spec from JSON text.
    ///
    /// # Errors
    ///
    /// [`SpecError::Json`] for malformed JSON, [`SpecError::Schema`] for
    /// well-formed JSON that is not a spec.
    pub fn from_json_str(text: &str) -> Result<Self, SpecError> {
        Self::from_json(&Value::parse(text)?)
    }

    /// The canonical JSON form of the spec: ECUs sorted by name, tasks
    /// sorted by name, channels sorted by `(from, to, capacity)`, every
    /// optional field written explicitly, rendered compactly.
    ///
    /// Two specs describing the same system modulo declaration order
    /// canonicalize to the same text, so the form is a stable cache /
    /// content-address key (see [`Self::canonical_hash`]).
    #[must_use]
    pub fn canonical_json(&self) -> Value {
        let mut sorted = self.clone();
        sorted.ecus.sort_by(|a, b| a.name.cmp(&b.name));
        sorted.tasks.sort_by(|a, b| a.name.cmp(&b.name));
        sorted
            .channels
            .sort_by(|a, b| (&a.from, &a.to, a.capacity).cmp(&(&b.from, &b.to, b.capacity)));
        let ecus = sorted.ecus.iter().map(canonical_ecu_json).collect();
        let tasks = sorted.tasks.iter().map(canonical_task_json).collect();
        let channels = sorted.channels.iter().map(canonical_channel_json).collect();
        json::object(vec![
            ("ecus", Value::Array(ecus)),
            ("tasks", Value::Array(tasks)),
            ("channels", Value::Array(channels)),
        ])
    }

    /// Compact text of [`Self::canonical_json`].
    #[must_use]
    pub fn canonical_text(&self) -> String {
        self.canonical_json().to_string()
    }

    /// One rendering of the canonical form together with its hash.
    ///
    /// Hot paths that need both the text (for collision verification) and
    /// the hash (as a cache key) should call this once instead of paying
    /// two canonical renderings via [`Self::canonical_text`] +
    /// [`Self::canonical_hash`].
    #[must_use]
    pub fn canonical(&self) -> Canonical {
        let text = self.canonical_text();
        let hash = hash_canonical_text(&text);
        Canonical { text, hash }
    }

    /// A 64-bit FNV-1a content hash of [`Self::canonical_text`].
    ///
    /// Stable across processes and declaration order — the hash of a spec
    /// file equals the hash of the same system with its arrays permuted.
    /// Collision-sensitive callers (caches) should verify candidates by
    /// comparing canonical texts; callers needing text *and* hash should
    /// use [`Self::canonical`] to render only once.
    #[must_use]
    pub fn canonical_hash(&self) -> u64 {
        hash_canonical_text(&self.canonical_text())
    }

    /// Per-subsystem content hashes: one per task entry, one per ECU task
    /// set, one per channel. See [`SubsystemHashes`].
    #[must_use]
    pub fn subsystem_hashes(&self) -> SubsystemHashes {
        let mut tasks = BTreeMap::new();
        for t in &self.tasks {
            tasks.insert(t.name.clone(), task_fragment_hash(t));
        }
        let mut ecus = BTreeMap::new();
        for e in &self.ecus {
            ecus.insert(e.name.clone(), ecu_set_hash(self, e, &tasks));
        }
        let mut channels = BTreeMap::new();
        for c in &self.channels {
            channels.insert((c.from.clone(), c.to.clone()), channel_fragment_hash(c));
        }
        SubsystemHashes {
            tasks,
            ecus,
            channels,
        }
    }

    /// Extracts a spec from an existing graph (names are preserved).
    #[must_use]
    pub fn from_graph(graph: &CauseEffectGraph) -> Self {
        SystemSpec {
            ecus: graph
                .ecus()
                .iter()
                .map(|e| EcuSpec {
                    name: e.name().to_string(),
                    kind: e.kind(),
                })
                .collect(),
            tasks: graph
                .tasks()
                .iter()
                .map(|t| TaskEntry {
                    name: t.name().to_string(),
                    period: t.period(),
                    wcet: t.wcet(),
                    bcet: t.bcet(),
                    offset: t.offset(),
                    ecu: t.ecu().map(|e| graph.ecu(e).name().to_string()),
                    priority: Some(t.priority().level()),
                })
                .collect(),
            channels: graph
                .channels()
                .iter()
                .map(|c| ChannelSpec {
                    from: graph.task(c.src()).name().to_string(),
                    to: graph.task(c.dst()).name().to_string(),
                    capacity: c.capacity(),
                })
                .collect(),
        }
    }
}

/// One canonical rendering of a spec with its content hash.
///
/// Produced by [`SystemSpec::canonical`]; `hash` is always the FNV-1a 64
/// hash of `text`, i.e. exactly [`SystemSpec::canonical_hash`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Canonical {
    /// Compact canonical JSON text (see [`SystemSpec::canonical_text`]).
    pub text: String,
    /// FNV-1a 64 hash of `text`.
    pub hash: u64,
}

/// FNV-1a 64 hash of the given canonical text.
///
/// `hash_canonical_text(&spec.canonical_text()) == spec.canonical_hash()`
/// by construction; exposed so callers holding an already-rendered
/// canonical string (caches, the service `patch` path) can key on it
/// without a second rendering.
#[must_use]
pub fn hash_canonical_text(text: &str) -> u64 {
    fnv1a(text.as_bytes())
}

fn fnv1a(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

fn canonical_ecu_json(e: &EcuSpec) -> Value {
    json::object(vec![
        ("name", Value::from(e.name.clone())),
        (
            "kind",
            Value::from(match e.kind {
                EcuKind::Processor => "Processor",
                EcuKind::Bus => "Bus",
            }),
        ),
    ])
}

fn canonical_task_json(t: &TaskEntry) -> Value {
    json::object(vec![
        ("name", Value::from(t.name.clone())),
        ("period", Value::Int(t.period.as_nanos())),
        ("wcet", Value::Int(t.wcet.as_nanos())),
        ("bcet", Value::Int(t.bcet.as_nanos())),
        ("offset", Value::Int(t.offset.as_nanos())),
        ("ecu", t.ecu.clone().map_or(Value::Null, Value::from)),
        ("priority", t.priority.map_or(Value::Null, Value::from)),
    ])
}

fn canonical_channel_json(c: &ChannelSpec) -> Value {
    json::object(vec![
        ("from", Value::from(c.from.clone())),
        ("to", Value::from(c.to.clone())),
        ("capacity", Value::from(c.capacity)),
    ])
}

/// Fragment hash of one task entry.
fn task_fragment_hash(t: &TaskEntry) -> u64 {
    fnv1a(canonical_task_json(t).to_string().as_bytes())
}

/// Task-set hash of one ECU: the resource record plus the fragment hash
/// of every member task, in name order — exactly the inputs of that
/// ECU's WCRT fixed points. `tasks` must already hold the fragment hash
/// of every member.
fn ecu_set_hash(spec: &SystemSpec, e: &EcuSpec, tasks: &BTreeMap<String, u64>) -> u64 {
    let mut bytes = canonical_ecu_json(e).to_string().into_bytes();
    let mut members: Vec<&TaskEntry> = spec
        .tasks
        .iter()
        .filter(|t| t.ecu.as_deref() == Some(e.name.as_str()))
        .collect();
    members.sort_by(|a, b| a.name.cmp(&b.name));
    for m in members {
        bytes.extend_from_slice(&tasks[&m.name].to_le_bytes());
    }
    fnv1a(&bytes)
}

/// Fragment hash of one channel entry.
fn channel_fragment_hash(c: &ChannelSpec) -> u64 {
    fnv1a(canonical_channel_json(c).to_string().as_bytes())
}

/// Per-subsystem content hashes of a spec.
///
/// Each hash covers exactly the inputs of one analysis subsystem:
///
/// * `tasks[name]` — the task's canonical record (period, WCET, BCET,
///   offset, ECU assignment, explicit priority);
/// * `ecus[name]` — the resource record plus the fragment hashes of every
///   task mapped to it (the inputs of that ECU's WCRT fixed points);
/// * `channels[(from, to)]` — the channel's canonical record (the buffer
///   term of the hop bound over that edge).
///
/// Diffing two hash sets ([`SubsystemHashes::diff`]) yields the dirty
/// slice an edit actually touched — the ground truth the incremental
/// re-analysis engine's per-edit invalidation is property-tested against.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubsystemHashes {
    /// Per-task fragment hash, keyed by task name.
    pub tasks: BTreeMap<String, u64>,
    /// Per-ECU task-set hash, keyed by resource name.
    pub ecus: BTreeMap<String, u64>,
    /// Per-channel hash, keyed by `(from, to)` task names.
    pub channels: BTreeMap<(String, String), u64>,
}

impl SubsystemHashes {
    /// The subsystems whose hashes differ between `self` (before) and
    /// `after`.
    #[must_use]
    pub fn diff(&self, after: &SubsystemHashes) -> SpecDirt {
        fn changed<K: Ord + Clone>(a: &BTreeMap<K, u64>, b: &BTreeMap<K, u64>) -> Vec<K> {
            let mut out: Vec<K> = Vec::new();
            for (k, v) in a {
                if b.get(k) != Some(v) {
                    out.push(k.clone());
                }
            }
            for k in b.keys() {
                if !a.contains_key(k) {
                    out.push(k.clone());
                }
            }
            out.sort();
            out.dedup();
            out
        }
        let tasks = changed(&self.tasks, &after.tasks);
        let ecus = changed(&self.ecus, &after.ecus);
        let channels = changed(&self.channels, &after.channels);
        let shape_changed = self.tasks.len() != after.tasks.len()
            || self.tasks.keys().ne(after.tasks.keys())
            || self.channels.len() != after.channels.len()
            || self.channels.keys().ne(after.channels.keys())
            || self.ecus.keys().ne(after.ecus.keys());
        SpecDirt {
            tasks,
            ecus,
            channels,
            shape_changed,
        }
    }

    /// Rebases this hash set across `edit`, where `spec2` is `edit`
    /// already applied to the spec these hashes were computed from.
    ///
    /// Recomputes exactly the fragments whose canonical inputs the edit
    /// reaches — the edited task(s) plus their ECU task-set hashes, or
    /// the edited channel — and copies everything else. The result
    /// equals `spec2.subsystem_hashes()`; the point is cost: a delta
    /// re-analysis rehashes O(1) fragments instead of the whole spec.
    #[must_use]
    pub fn rebase(&self, spec2: &SystemSpec, edit: &SpecEdit) -> SubsystemHashes {
        let mut out = self.clone();
        match edit {
            SpecEdit::SetWcet { task, .. }
            | SpecEdit::SetBcet { task, .. }
            | SpecEdit::SetPeriod { task, .. } => out.refresh_task(spec2, task),
            SpecEdit::SwapPriority { a, b } => {
                // Order-insensitive: each refresh folds the already
                // updated fragment map into the ECU hash, so a shared
                // ECU settles on the second call.
                out.refresh_task(spec2, a);
                out.refresh_task(spec2, b);
            }
            SpecEdit::ResizeBuffer { from, to, .. } | SpecEdit::AddChannel { from, to, .. } => {
                if let Some(c) = spec2
                    .channels
                    .iter()
                    .find(|c| c.from == *from && c.to == *to)
                {
                    out.channels
                        .insert((from.clone(), to.clone()), channel_fragment_hash(c));
                }
            }
            SpecEdit::RemoveChannel { from, to } => {
                out.channels.remove(&(from.clone(), to.clone()));
            }
        }
        out
    }

    /// Refreshes one task's fragment hash and its ECU's task-set hash
    /// (which folds every member fragment) against the edited spec.
    fn refresh_task(&mut self, spec2: &SystemSpec, name: &str) {
        let Some(t) = spec2.tasks.iter().find(|t| t.name == name) else {
            return;
        };
        self.tasks.insert(name.to_string(), task_fragment_hash(t));
        let ecu = t
            .ecu
            .as_deref()
            .and_then(|n| spec2.ecus.iter().find(|e| e.name == n));
        if let Some(e) = ecu {
            self.ecus
                .insert(e.name.clone(), ecu_set_hash(spec2, e, &self.tasks));
        }
    }
}

/// The dirty slice between two spec revisions, by subsystem.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpecDirt {
    /// Names of tasks whose fragment hash changed (or appeared/vanished).
    pub tasks: Vec<String>,
    /// Names of ECUs whose task-set hash changed.
    pub ecus: Vec<String>,
    /// `(from, to)` channels whose hash changed (or appeared/vanished).
    pub channels: Vec<(String, String)>,
    /// `true` when the task/channel/ECU *sets* themselves differ — chain
    /// enumerations cannot be reused across such a change.
    pub shape_changed: bool,
}

impl SpecDirt {
    /// `true` when nothing differs.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        !self.shape_changed
            && self.tasks.is_empty()
            && self.ecus.is_empty()
            && self.channels.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_spec() -> SystemSpec {
        let ms = Duration::from_millis;
        SystemSpec {
            ecus: vec![EcuSpec::processor("ecu0"), EcuSpec::bus("can0")],
            tasks: vec![
                TaskEntry::stimulus("camera", ms(33)),
                TaskEntry::computation("detect", ms(33), ms(2), ms(6), "ecu0"),
                TaskEntry::computation("msg", ms(33), ms(1), ms(2), "can0"),
            ],
            channels: vec![
                ChannelSpec::register("camera", "detect"),
                ChannelSpec::fifo("detect", "msg", 3),
            ],
        }
    }

    #[test]
    fn build_produces_expected_graph() {
        let g = sample_spec().build().unwrap();
        assert_eq!(g.task_count(), 3);
        assert_eq!(g.channel_count(), 2);
        let detect = g.find_task("detect").unwrap();
        let msg = g.find_task("msg").unwrap();
        assert_eq!(g.channel_between(detect, msg).unwrap().capacity(), 3);
        assert_eq!(g.ecus()[1].kind(), EcuKind::Bus);
    }

    #[test]
    fn round_trip_via_graph() {
        let spec = sample_spec();
        let g = spec.build().unwrap();
        let extracted = SystemSpec::from_graph(&g);
        // The extracted spec pins priorities explicitly but otherwise
        // rebuilds to an identical graph.
        let g2 = extracted.build().unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn unknown_names_are_rejected() {
        let mut spec = sample_spec();
        spec.channels.push(ChannelSpec::register("nope", "detect"));
        assert_eq!(
            spec.build().unwrap_err(),
            SpecError::UnknownName("nope".into())
        );

        let mut spec = sample_spec();
        spec.tasks.push(TaskEntry::computation(
            "x",
            Duration::from_millis(5),
            Duration::ZERO,
            Duration::from_millis(1),
            "missing_ecu",
        ));
        assert_eq!(
            spec.build().unwrap_err(),
            SpecError::UnknownName("missing_ecu".into())
        );
    }

    #[test]
    fn duplicate_names_are_rejected() {
        let mut spec = sample_spec();
        spec.tasks
            .push(TaskEntry::stimulus("camera", Duration::from_millis(10)));
        assert_eq!(
            spec.build().unwrap_err(),
            SpecError::DuplicateName("camera".into())
        );

        let mut spec = sample_spec();
        spec.ecus.push(EcuSpec::processor("ecu0"));
        assert_eq!(
            spec.build().unwrap_err(),
            SpecError::DuplicateName("ecu0".into())
        );
    }

    #[test]
    fn canonical_hash_is_order_insensitive() {
        let spec = sample_spec();
        let mut permuted = spec.clone();
        permuted.tasks.reverse();
        permuted.ecus.reverse();
        permuted.channels.reverse();
        assert_ne!(spec.tasks, permuted.tasks, "permutation is real");
        assert_eq!(spec.canonical_text(), permuted.canonical_text());
        assert_eq!(spec.canonical_hash(), permuted.canonical_hash());
    }

    #[test]
    fn canonical_hash_distinguishes_content() {
        let spec = sample_spec();
        let mut changed = spec.clone();
        changed.tasks[1].wcet = Duration::from_millis(7);
        assert_ne!(spec.canonical_hash(), changed.canonical_hash());
        let mut resized = spec.clone();
        resized.channels[1].capacity = 4;
        assert_ne!(spec.canonical_hash(), resized.canonical_hash());
    }

    #[test]
    fn canonical_json_round_trips_to_equivalent_spec() {
        let spec = sample_spec();
        let text = spec.canonical_json().to_pretty();
        let back = SystemSpec::from_json_str(&text).unwrap();
        // The canonical form spells out optional fields; it still decodes
        // to a spec with the same canonical identity. Task IDs are assigned
        // in declaration order, so compare graphs by name, not by value.
        assert_eq!(back.canonical_hash(), spec.canonical_hash());
        let (a, b) = (back.build().unwrap(), spec.build().unwrap());
        let names = |g: &CauseEffectGraph| {
            let mut v: Vec<String> = g.tasks().iter().map(|t| t.name.clone()).collect();
            v.sort();
            v
        };
        assert_eq!(names(&a), names(&b));
        assert_eq!(a.channels().len(), b.channels().len());
    }

    #[test]
    fn canonical_hash_matches_known_vector() {
        // FNV-1a 64 sanity pin against the published test vector for "a":
        // hashing is the documented algorithm, not an accident of impl.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        h ^= u64::from(b'a');
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
        assert_eq!(h, 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn canonical_renders_once_and_matches_split_api() {
        let spec = sample_spec();
        let canon = spec.canonical();
        assert_eq!(canon.text, spec.canonical_text());
        assert_eq!(canon.hash, spec.canonical_hash());
        assert_eq!(hash_canonical_text(&canon.text), canon.hash);
    }

    #[test]
    fn subsystem_hashes_isolate_the_edited_slice() {
        let spec = sample_spec();
        let before = spec.subsystem_hashes();

        // A WCET change dirties exactly that task and its ECU.
        let mut edited = spec.clone();
        edited.tasks[1].wcet = Duration::from_millis(7); // "detect" on ecu0
        let dirt = before.diff(&edited.subsystem_hashes());
        assert_eq!(dirt.tasks, vec!["detect".to_string()]);
        assert_eq!(dirt.ecus, vec!["ecu0".to_string()]);
        assert!(dirt.channels.is_empty());
        assert!(!dirt.shape_changed);

        // A buffer resize dirties exactly that channel.
        let mut resized = spec.clone();
        resized.channels[1].capacity = 4;
        let dirt = before.diff(&resized.subsystem_hashes());
        assert!(dirt.tasks.is_empty() && dirt.ecus.is_empty());
        assert_eq!(
            dirt.channels,
            vec![("detect".to_string(), "msg".to_string())]
        );
        assert!(!dirt.shape_changed);

        // Adding a channel changes the shape.
        let mut grown = spec.clone();
        grown.channels.push(ChannelSpec::register("camera", "msg"));
        let dirt = before.diff(&grown.subsystem_hashes());
        assert!(dirt.shape_changed);

        // Reassigning a task to another ECU dirties both ECU hashes.
        let mut moved = spec.clone();
        moved.tasks[2].ecu = Some("ecu0".to_string()); // "msg" off can0
        let dirt = before.diff(&moved.subsystem_hashes());
        assert_eq!(dirt.tasks, vec!["msg".to_string()]);
        assert_eq!(dirt.ecus, vec!["can0".to_string(), "ecu0".to_string()]);

        // No edit, no dirt — including across declaration-order permutation.
        let mut permuted = spec.clone();
        permuted.tasks.reverse();
        permuted.channels.reverse();
        assert!(before.diff(&permuted.subsystem_hashes()).is_clean());
    }

    #[test]
    fn model_errors_propagate() {
        let mut spec = sample_spec();
        spec.channels
            .push(ChannelSpec::register("detect", "detect"));
        assert!(matches!(spec.build().unwrap_err(), SpecError::Model(_)));
    }
}
