//! Construction and validation of cause-effect graphs.

use std::collections::{BTreeMap, BTreeSet};

use crate::channel::Channel;
use crate::ecu::{Ecu, EcuKind};
use crate::error::ModelError;
use crate::graph::CauseEffectGraph;
use crate::ids::{ChannelId, EcuId, Priority, TaskId};
use crate::task::{Task, TaskSpec};

/// Incremental builder for a [`CauseEffectGraph`].
///
/// Ids are handed out immediately so they can be wired into edges; all
/// validation happens in [`SystemBuilder::build`].
///
/// Tasks without an explicit priority receive one **rate-monotonically** at
/// build time: on each ECU, unassigned tasks are ordered by ascending period
/// (ties by insertion order) and given the lowest priority levels not
/// claimed explicitly.
///
/// # Examples
///
/// ```
/// use disparity_model::builder::SystemBuilder;
/// use disparity_model::task::TaskSpec;
/// use disparity_model::time::Duration;
///
/// let mut b = SystemBuilder::new();
/// let ecu = b.add_ecu("ecu0");
/// let ms = Duration::from_millis;
/// let sensor = b.add_task(TaskSpec::periodic("sensor", ms(33)));
/// let filter = b.add_task(
///     TaskSpec::periodic("filter", ms(33)).execution(ms(1), ms(4)).on_ecu(ecu),
/// );
/// b.connect(sensor, filter);
/// let graph = b.build()?;
/// assert_eq!(graph.task_count(), 2);
/// # Ok::<(), disparity_model::error::ModelError>(())
/// ```
#[derive(Debug, Default, Clone)]
pub struct SystemBuilder {
    ecus: Vec<Ecu>,
    tasks: Vec<TaskSpec>,
    edges: Vec<(TaskId, TaskId, usize)>,
}

impl SystemBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        SystemBuilder::default()
    }

    /// Registers a processor ECU and returns its id.
    pub fn add_ecu(&mut self, name: impl Into<String>) -> EcuId {
        self.add_resource(name, EcuKind::Processor)
    }

    /// Registers a communication bus and returns its id.
    ///
    /// A bus is scheduled exactly like a processor (non-preemptive fixed
    /// priority — i.e. CAN arbitration); the kind is metadata.
    pub fn add_bus(&mut self, name: impl Into<String>) -> EcuId {
        self.add_resource(name, EcuKind::Bus)
    }

    fn add_resource(&mut self, name: impl Into<String>, kind: EcuKind) -> EcuId {
        let id = EcuId::from_index(self.ecus.len());
        self.ecus.push(Ecu {
            id,
            name: name.into(),
            kind,
        });
        id
    }

    /// Registers a task and returns its id.
    pub fn add_task(&mut self, spec: TaskSpec) -> TaskId {
        let id = TaskId::from_index(self.tasks.len());
        self.tasks.push(spec);
        id
    }

    /// Adds a register channel (capacity 1) from `src` to `dst`.
    pub fn connect(&mut self, src: TaskId, dst: TaskId) -> ChannelId {
        self.connect_with_capacity(src, dst, 1)
    }

    /// Adds a FIFO channel with the given buffer capacity from `src` to
    /// `dst`. Capacity is validated at build time.
    pub fn connect_with_capacity(
        &mut self,
        src: TaskId,
        dst: TaskId,
        capacity: usize,
    ) -> ChannelId {
        let id = ChannelId::from_index(self.edges.len());
        self.edges.push((src, dst, capacity));
        id
    }

    /// Number of tasks registered so far.
    #[must_use]
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Validates everything and produces the graph.
    ///
    /// # Errors
    ///
    /// Returns a [`ModelError`] describing the first violated invariant:
    /// malformed task parameters, unmapped costly tasks, unknown ids,
    /// self-loops, duplicate edges, zero capacities, duplicate explicit
    /// priorities, or a cycle.
    pub fn build(self) -> Result<CauseEffectGraph, ModelError> {
        if self.tasks.is_empty() {
            return Err(ModelError::EmptyGraph);
        }
        let n = self.tasks.len();

        // Per-task parameter validation.
        for (i, spec) in self.tasks.iter().enumerate() {
            let id = TaskId::from_index(i);
            if spec.wcet.is_negative() || spec.bcet.is_negative() {
                return Err(ModelError::NegativeExecutionTime { task: id });
            }
            if spec.bcet > spec.wcet {
                return Err(ModelError::ExecutionTimeOrder {
                    task: id,
                    bcet_nanos: spec.bcet.as_nanos(),
                    wcet_nanos: spec.wcet.as_nanos(),
                });
            }
            if !spec.period.is_positive() {
                return Err(ModelError::NonPositivePeriod {
                    task: id,
                    period_nanos: spec.period.as_nanos(),
                });
            }
            if spec.offset.is_negative() {
                return Err(ModelError::NegativeOffset {
                    task: id,
                    offset_nanos: spec.offset.as_nanos(),
                });
            }
            if let Some(ecu) = spec.ecu {
                if ecu.index() >= self.ecus.len() {
                    return Err(ModelError::UnknownEcu(ecu));
                }
            } else if !spec.wcet.is_zero() {
                return Err(ModelError::UnmappedTask(id));
            }
        }

        // Edge validation and adjacency construction.
        let mut out_edges: Vec<Vec<ChannelId>> = vec![Vec::new(); n];
        let mut in_edges: Vec<Vec<ChannelId>> = vec![Vec::new(); n];
        let mut seen: BTreeSet<(TaskId, TaskId)> = BTreeSet::new();
        let mut channels = Vec::with_capacity(self.edges.len());
        for (i, &(src, dst, capacity)) in self.edges.iter().enumerate() {
            let id = ChannelId::from_index(i);
            if src.index() >= n {
                return Err(ModelError::UnknownTask(src));
            }
            if dst.index() >= n {
                return Err(ModelError::UnknownTask(dst));
            }
            if src == dst {
                return Err(ModelError::SelfLoop(src));
            }
            if capacity == 0 {
                return Err(ModelError::ZeroCapacity { src, dst });
            }
            if !seen.insert((src, dst)) {
                return Err(ModelError::DuplicateEdge { src, dst });
            }
            out_edges[src.index()].push(id);
            in_edges[dst.index()].push(id);
            channels.push(Channel {
                id,
                src,
                dst,
                capacity,
            });
        }

        // Priority assignment: explicit priorities must be unique per ECU;
        // the rest are filled rate-monotonically into unused levels.
        let mut priorities: Vec<Option<Priority>> = self.tasks.iter().map(|t| t.priority).collect();
        let mut per_ecu: BTreeMap<EcuId, Vec<TaskId>> = BTreeMap::new();
        for (i, spec) in self.tasks.iter().enumerate() {
            if let Some(ecu) = spec.ecu {
                per_ecu.entry(ecu).or_default().push(TaskId::from_index(i));
            }
        }
        for (&ecu, members) in &per_ecu {
            let mut used: BTreeMap<Priority, TaskId> = BTreeMap::new();
            for &t in members {
                if let Some(p) = priorities[t.index()] {
                    if let Some(&other) = used.get(&p) {
                        return Err(ModelError::DuplicatePriority {
                            ecu,
                            a: other,
                            b: t,
                            priority: p,
                        });
                    }
                    used.insert(p, t);
                }
            }
            let mut unassigned: Vec<TaskId> = members
                .iter()
                .copied()
                .filter(|t| priorities[t.index()].is_none())
                .collect();
            unassigned.sort_by_key(|t| (self.tasks[t.index()].period, t.index()));
            let mut next_level = 0u32;
            for t in unassigned {
                while used.contains_key(&Priority::new(next_level)) {
                    next_level += 1;
                }
                let p = Priority::new(next_level);
                used.insert(p, t);
                priorities[t.index()] = Some(p);
            }
        }
        // Unmapped (zero-cost) tasks never compete for a CPU; give them the
        // top level so the value is at least well defined.
        for p in priorities.iter_mut() {
            p.get_or_insert(Priority::HIGHEST);
        }

        let tasks: Vec<Task> = self
            .tasks
            .into_iter()
            .enumerate()
            .map(|(i, spec)| Task {
                id: TaskId::from_index(i),
                name: spec.name,
                wcet: spec.wcet,
                bcet: spec.bcet,
                period: spec.period,
                offset: spec.offset,
                ecu: spec.ecu,
                priority: priorities[i].unwrap_or(Priority::HIGHEST),
            })
            .collect();

        let topo = topological_sort(n, &channels, &in_edges)?;

        Ok(CauseEffectGraph {
            tasks,
            channels,
            ecus: self.ecus,
            out_edges,
            in_edges,
            topo,
        })
    }
}

/// Kahn's algorithm; fails with [`ModelError::CycleDetected`] when the edge
/// relation is cyclic. Deterministic: ready vertices are taken in id order.
fn topological_sort(
    n: usize,
    channels: &[Channel],
    in_edges: &[Vec<ChannelId>],
) -> Result<Vec<TaskId>, ModelError> {
    let mut indegree: Vec<usize> = in_edges.iter().map(Vec::len).collect();
    let mut ready: BTreeSet<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(&i) = ready.iter().next() {
        ready.remove(&i);
        order.push(TaskId::from_index(i));
        for ch in channels.iter().filter(|c| c.src.index() == i) {
            let d = ch.dst.index();
            indegree[d] -= 1;
            if indegree[d] == 0 {
                ready.insert(d);
            }
        }
    }
    if order.len() == n {
        Ok(order)
    } else {
        Err(ModelError::CycleDetected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Duration;

    fn ms(v: i64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn empty_graph_is_rejected() {
        assert_eq!(
            SystemBuilder::new().build().unwrap_err(),
            ModelError::EmptyGraph
        );
    }

    #[test]
    fn cycle_is_rejected() {
        let mut b = SystemBuilder::new();
        let ecu = b.add_ecu("e");
        let a = b.add_task(TaskSpec::periodic("a", ms(1)).wcet(ms(1)).on_ecu(ecu));
        let c = b.add_task(TaskSpec::periodic("c", ms(1)).wcet(ms(1)).on_ecu(ecu));
        b.connect(a, c);
        b.connect(c, a);
        assert_eq!(b.build().unwrap_err(), ModelError::CycleDetected);
    }

    #[test]
    fn self_loop_is_rejected() {
        let mut b = SystemBuilder::new();
        let a = b.add_task(TaskSpec::periodic("a", ms(1)));
        b.connect(a, a);
        assert_eq!(b.build().unwrap_err(), ModelError::SelfLoop(a));
    }

    #[test]
    fn duplicate_edge_is_rejected() {
        let mut b = SystemBuilder::new();
        let a = b.add_task(TaskSpec::periodic("a", ms(1)));
        let c = b.add_task(TaskSpec::periodic("c", ms(1)));
        b.connect(a, c);
        b.connect(a, c);
        assert_eq!(
            b.build().unwrap_err(),
            ModelError::DuplicateEdge { src: a, dst: c }
        );
    }

    #[test]
    fn costly_task_needs_mapping() {
        let mut b = SystemBuilder::new();
        let a = b.add_task(TaskSpec::periodic("a", ms(1)).wcet(ms(1)));
        assert_eq!(b.build().unwrap_err(), ModelError::UnmappedTask(a));
    }

    #[test]
    fn zero_cost_task_needs_no_mapping() {
        let mut b = SystemBuilder::new();
        b.add_task(TaskSpec::periodic("stim", ms(5)));
        assert!(b.build().is_ok());
    }

    #[test]
    fn unknown_ecu_is_rejected() {
        let mut b = SystemBuilder::new();
        b.add_task(
            TaskSpec::periodic("a", ms(1))
                .wcet(ms(1))
                .on_ecu(EcuId::from_index(9)),
        );
        assert_eq!(
            b.build().unwrap_err(),
            ModelError::UnknownEcu(EcuId::from_index(9))
        );
    }

    #[test]
    fn unknown_task_in_edge_is_rejected() {
        let mut b = SystemBuilder::new();
        let a = b.add_task(TaskSpec::periodic("a", ms(1)));
        b.connect(a, TaskId::from_index(5));
        assert_eq!(
            b.build().unwrap_err(),
            ModelError::UnknownTask(TaskId::from_index(5))
        );
    }

    #[test]
    fn zero_capacity_is_rejected() {
        let mut b = SystemBuilder::new();
        let a = b.add_task(TaskSpec::periodic("a", ms(1)));
        let c = b.add_task(TaskSpec::periodic("c", ms(1)));
        b.connect_with_capacity(a, c, 0);
        assert!(matches!(
            b.build().unwrap_err(),
            ModelError::ZeroCapacity { .. }
        ));
    }

    #[test]
    fn duplicate_explicit_priorities_rejected() {
        let mut b = SystemBuilder::new();
        let ecu = b.add_ecu("e");
        b.add_task(
            TaskSpec::periodic("a", ms(1))
                .wcet(ms(1))
                .on_ecu(ecu)
                .priority(Priority::new(1)),
        );
        b.add_task(
            TaskSpec::periodic("c", ms(2))
                .wcet(ms(1))
                .on_ecu(ecu)
                .priority(Priority::new(1)),
        );
        assert!(matches!(
            b.build().unwrap_err(),
            ModelError::DuplicatePriority { .. }
        ));
    }

    #[test]
    fn rate_monotonic_fills_around_explicit_levels() {
        let mut b = SystemBuilder::new();
        let ecu = b.add_ecu("e");
        let pinned = b.add_task(
            TaskSpec::periodic("pinned", ms(50))
                .wcet(ms(1))
                .on_ecu(ecu)
                .priority(Priority::new(0)),
        );
        let fast = b.add_task(TaskSpec::periodic("fast", ms(5)).wcet(ms(1)).on_ecu(ecu));
        let slow = b.add_task(TaskSpec::periodic("slow", ms(100)).wcet(ms(1)).on_ecu(ecu));
        let g = b.build().unwrap();
        assert_eq!(g.task(pinned).priority(), Priority::new(0));
        assert_eq!(g.task(fast).priority(), Priority::new(1));
        assert_eq!(g.task(slow).priority(), Priority::new(2));
    }

    #[test]
    fn bcet_above_wcet_rejected() {
        let mut b = SystemBuilder::new();
        let ecu = b.add_ecu("e");
        b.add_task(
            TaskSpec::periodic("a", ms(1))
                .bcet(ms(2))
                .wcet(ms(1))
                .on_ecu(ecu),
        );
        assert!(matches!(
            b.build().unwrap_err(),
            ModelError::ExecutionTimeOrder { .. }
        ));
    }

    #[test]
    fn nonpositive_period_rejected() {
        let mut b = SystemBuilder::new();
        b.add_task(TaskSpec::periodic("a", ms(0)));
        assert!(matches!(
            b.build().unwrap_err(),
            ModelError::NonPositivePeriod { .. }
        ));
    }

    #[test]
    fn negative_offset_rejected() {
        let mut b = SystemBuilder::new();
        b.add_task(TaskSpec::periodic("a", ms(5)).offset(ms(-1)));
        assert!(matches!(
            b.build().unwrap_err(),
            ModelError::NegativeOffset { .. }
        ));
    }
}
