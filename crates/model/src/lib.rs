//! System model for cause-effect chains in automotive systems.
//!
//! This crate provides the substrate shared by the whole `time-disparity`
//! workspace: the formal model of §II of *"Analysis and Optimization of
//! Worst-Case Time Disparity in Cause-Effect Chains"* (DATE 2023).
//!
//! * [`time`] — signed, integer-nanosecond instants and durations, plus the
//!   exact floor/ceiling divisions the analysis needs.
//! * [`task`] / [`ecu`] / [`channel`] — tasks `(W, B, T)`, execution
//!   resources (ECUs and CAN-like buses) and FIFO channels.
//! * [`graph`] / [`builder`] — the validated cause-effect DAG and its
//!   builder.
//! * [`chain`] — cause-effect chains and the pairwise decompositions used
//!   by the fork-join-aware analysis.
//! * [`dot`] — Graphviz export.
//!
//! # Examples
//!
//! Build the two-source fork-join graph of the paper's Fig. 2:
//!
//! ```
//! use disparity_model::prelude::*;
//!
//! let mut b = SystemBuilder::new();
//! let ecu1 = b.add_ecu("ecu1");
//! let ms = Duration::from_millis;
//! let t1 = b.add_task(TaskSpec::periodic("t1", ms(10)));
//! let t2 = b.add_task(TaskSpec::periodic("t2", ms(20)));
//! let t3 = b.add_task(TaskSpec::periodic("t3", ms(10)).execution(ms(1), ms(2)).on_ecu(ecu1));
//! b.connect(t1, t3);
//! b.connect(t2, t3);
//! let graph = b.build()?;
//! assert_eq!(graph.sources().len(), 2);
//! let chains = graph.chains_to(t3, 10)?;
//! assert_eq!(chains.len(), 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod builder;
pub mod chain;
pub mod channel;
pub mod dot;
pub mod ecu;
pub mod edit;
pub mod error;
pub mod graph;
pub mod ids;
pub mod json;
pub mod lints;
pub mod metrics;
pub mod spec;
pub mod task;
pub mod time;

/// Convenient glob-import of the most used items.
pub mod prelude {
    pub use crate::builder::SystemBuilder;
    pub use crate::chain::Chain;
    pub use crate::channel::Channel;
    pub use crate::ecu::{Ecu, EcuKind};
    pub use crate::edit::{EditError, SpecEdit};
    pub use crate::error::ModelError;
    pub use crate::graph::CauseEffectGraph;
    pub use crate::ids::{ChannelId, EcuId, Priority, TaskId};
    pub use crate::spec::{ChannelSpec, EcuSpec, SpecError, SystemSpec, TaskEntry};
    pub use crate::task::{Task, TaskSpec};
    pub use crate::time::{Duration, Instant};
}
