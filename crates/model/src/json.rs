//! Minimal self-contained JSON support.
//!
//! The workspace builds offline with no external dependencies, so this
//! module replaces `serde_json` for the few places that need JSON: system
//! spec files ([`crate::spec::SystemSpec`]) and the structured artifacts
//! emitted by analysis tooling. It provides a dynamic [`Value`] tree, a
//! recursive-descent parser with line/column error reporting, and compact
//! and pretty printers.
//!
//! Numbers distinguish integers from floats: durations and instants are
//! exact `i64` nanosecond counts and must survive a round trip without
//! passing through `f64`.
//!
//! # Examples
//!
//! ```
//! use disparity_model::json::Value;
//!
//! let v = Value::parse(r#"{"name": "camera", "period": 33000000}"#)?;
//! assert_eq!(v.get("period").and_then(Value::as_i64), Some(33_000_000));
//! assert_eq!(v.to_string(), r#"{"name":"camera","period":33000000}"#);
//! # Ok::<(), disparity_model::json::JsonError>(())
//! ```

use core::fmt;

/// A dynamically typed JSON value.
///
/// Object members keep their insertion order so printed artifacts are
/// stable and diff-friendly.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer number (no decimal point or exponent in the source).
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; members keep insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// [`JsonError`] with a line/column position on malformed input,
    /// including trailing garbage after the top-level value.
    pub fn parse(text: &str) -> Result<Value, JsonError> {
        let mut p = Parser::new(text);
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.peek().is_some() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }

    /// Member lookup on objects; `None` for missing keys or non-objects.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The integer payload, widening from `Int` only.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a float (integers convert losslessly up to
    /// 2^53).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(n) => Some(*n as f64),
            Value::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// The string payload.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array payload.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The object payload.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(members) => Some(members),
            _ => None,
        }
    }

    /// Pretty-prints with two-space indentation and a trailing newline,
    /// matching the layout hand-written spec files tend to use.
    #[must_use]
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(n) => write_i64(out, *n),
            Value::Float(x) => write_f64(out, *x),
            Value::Str(s) => write_escaped(out, s),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Value::Object(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Value::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                push_indent(out, indent);
                out.push(']');
            }
            Value::Object(members) if !members.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in members.iter().enumerate() {
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                    if i + 1 < members.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                push_indent(out, indent);
                out.push('}');
            }
            other => other.write_compact(out),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write_compact(&mut out);
        f.write_str(&out)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Self {
        Value::Int(n)
    }
}

impl From<u32> for Value {
    fn from(n: u32) -> Self {
        Value::Int(i64::from(n))
    }
}

impl From<usize> for Value {
    fn from(n: usize) -> Self {
        Value::Int(n as i64)
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Float(x)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<Vec<Value>> for Value {
    fn from(items: Vec<Value>) -> Self {
        Value::Array(items)
    }
}

/// Builds an object value from `(key, value)` pairs, preserving order.
#[must_use]
pub fn object(members: Vec<(&str, Value)>) -> Value {
    Value::Object(
        members
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

// i64::MIN is 20 digits plus sign.
fn write_i64(out: &mut String, mut n: i64) {
    let mut buf = [0u8; 24];
    let negative = n < 0;
    let mut i = buf.len();
    loop {
        let digit = (n % 10).unsigned_abs() as u8;
        i -= 1;
        buf[i] = b'0' + digit;
        n /= 10;
        if n == 0 {
            break;
        }
    }
    if negative {
        i -= 1;
        buf[i] = b'-';
    }
    for &b in &buf[i..] {
        out.push(char::from(b));
    }
}

fn write_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        let s = format!("{x}");
        out.push_str(&s);
        // `{}` prints integral floats without a decimal point; add one so
        // the value parses back as a float.
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        // JSON has no NaN/Infinity; null is the conventional fallback.
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse error with a 1-based line and column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    message: String,
    line: usize,
    column: usize,
}

impl JsonError {
    /// 1-based line of the error.
    #[must_use]
    pub fn line(&self) -> usize {
        self.line
    }

    /// 1-based column of the error.
    #[must_use]
    pub fn column(&self) -> usize {
        self.column
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at line {}, column {}: {}",
            self.line, self.column, self.message
        )
    }
}

impl std::error::Error for JsonError {}

/// Maximum container nesting the parser accepts.
///
/// The parser is recursive-descent, so unbounded nesting turns attacker
/// input (a request line of 100 000 `[`s) into a stack overflow — an
/// abort, not a catchable error. No legitimate spec or request comes
/// close to this depth; exceeding it is a parse error like any other.
pub const MAX_DEPTH: usize = 256;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        }
    }

    fn err(&self, message: &str) -> JsonError {
        let mut line = 1;
        let mut column = 1;
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                column = 1;
            } else {
                column += 1;
            }
        }
        JsonError {
            message: message.to_string(),
            line,
            column,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object_value(),
            Some(b'[') => self.array_value(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn enter(&mut self) -> Result<(), JsonError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("nesting deeper than the supported maximum"));
        }
        self.depth += 1;
        Ok(())
    }

    fn object_value(&mut self) -> Result<Value, JsonError> {
        self.expect_byte(b'{')?;
        self.enter()?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => {
                    self.depth -= 1;
                    return Ok(Value::Object(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array_value(&mut self) -> Result<Value, JsonError> {
        self.expect_byte(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => {
                    self.depth -= 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hi = self.hex4()?;
                        let code = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: a low surrogate must follow.
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.err("expected low surrogate"));
                            }
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                        } else {
                            hi
                        };
                        match char::from_u32(code) {
                            Some(c) => out.push(c),
                            None => return Err(self.err("invalid unicode escape")),
                        }
                    }
                    _ => return Err(self.err("invalid escape sequence")),
                },
                Some(b) if b < 0x20 => {
                    return Err(self.err("unescaped control character in string"))
                }
                Some(b) => {
                    // Re-assemble multi-byte UTF-8 (input was a &str, so the
                    // bytes are valid; find the char boundary).
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    if b < 0x80 {
                        out.push(b as char);
                    } else {
                        let s = core::str::from_utf8(&self.bytes[start..end])
                            .map_err(|_| self.err("invalid utf-8 in string"))?;
                        out.push_str(s);
                        self.pos = end;
                    }
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let d = match self.bump() {
                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                _ => return Err(self.err("invalid hex digit in unicode escape")),
            };
            code = (code << 4) | d;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        if !matches!(self.peek(), Some(b'0'..=b'9')) {
            return Err(self.err("expected digit"));
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digit after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digit in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = core::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.err("invalid number"))
        } else {
            // Integers that overflow i64 degrade to f64 rather than failing.
            match text.parse::<i64>() {
                Ok(n) => Ok(Value::Int(n)),
                Err(_) => text
                    .parse::<f64>()
                    .map(Value::Float)
                    .map_err(|_| self.err("invalid number")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Value::parse("null").unwrap(), Value::Null);
        assert_eq!(Value::parse("true").unwrap(), Value::Bool(true));
        assert_eq!(Value::parse("false").unwrap(), Value::Bool(false));
        assert_eq!(Value::parse("42").unwrap(), Value::Int(42));
        assert_eq!(Value::parse("-7").unwrap(), Value::Int(-7));
        assert_eq!(Value::parse("2.5").unwrap(), Value::Float(2.5));
        assert_eq!(Value::parse("1e3").unwrap(), Value::Float(1000.0));
        assert_eq!(
            Value::parse("\"hi\\nthere\"").unwrap(),
            Value::Str("hi\nthere".into())
        );
    }

    #[test]
    fn integers_round_trip_exactly() {
        for n in [0i64, 1, -1, i64::MAX, i64::MIN, 33_000_000] {
            let text = Value::Int(n).to_string();
            assert_eq!(Value::parse(&text).unwrap(), Value::Int(n), "{n}");
        }
    }

    #[test]
    fn parses_nested_structures() {
        let v = Value::parse(r#"{"a": [1, 2, {"b": null}], "c": "d"}"#).unwrap();
        let a = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(a[0].as_i64(), Some(1));
        assert_eq!(a[2].get("b"), Some(&Value::Null));
        assert_eq!(v.get("c").unwrap().as_str(), Some("d"));
    }

    #[test]
    fn preserves_member_order() {
        let v = Value::parse(r#"{"z": 1, "a": 2}"#).unwrap();
        assert_eq!(v.to_string(), r#"{"z":1,"a":2}"#);
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(
            Value::parse(r#""\u00e9\ud83d\ude00""#).unwrap(),
            Value::Str("é😀".into())
        );
        // Multi-byte UTF-8 passes through unescaped too.
        let v = Value::parse("\"héllo\"").unwrap();
        assert_eq!(v.as_str(), Some("héllo"));
    }

    #[test]
    fn string_escaping_round_trips() {
        let original = Value::Str("line1\nline2\t\"quoted\" \\ \u{1}".into());
        let text = original.to_string();
        assert_eq!(Value::parse(&text).unwrap(), original);
    }

    #[test]
    fn every_control_character_escapes_and_round_trips() {
        // Service request logs embed user-supplied strings; a raw control
        // byte in the encoded output would make the log line invalid JSON.
        for code in 0u32..0x20 {
            let c = char::from_u32(code).unwrap();
            let original = Value::Str(format!("a{c}b"));
            let text = original.to_string();
            assert!(
                text.chars().all(|ch| ch >= '\u{20}'),
                "U+{code:04X} leaked into encoded text {text:?}"
            );
            assert_eq!(Value::parse(&text).unwrap(), original, "U+{code:04X}");
        }
        // Embedded newlines and tabs in one string, as in a task name.
        let messy = Value::Str("row\n\tcol\r\n".into());
        let text = messy.to_string();
        assert_eq!(text, r#""row\n\tcol\r\n""#);
        assert_eq!(Value::parse(&text).unwrap(), messy);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "", "{", "[1,", "{\"a\"}", "{\"a\":}", "tru", "01x", "\"\\q\"", "1 2",
            "{\"a\":1,}",
        ] {
            assert!(Value::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn error_reports_position() {
        let e = Value::parse("{\n  \"a\": oops\n}").unwrap_err();
        assert_eq!(e.line(), 2);
        assert!(e.column() > 1);
    }

    #[test]
    fn pretty_print_round_trips() {
        let v = Value::parse(r#"{"tasks": [{"name": "t", "period": 10}], "empty": []}"#).unwrap();
        let pretty = v.to_pretty();
        assert!(pretty.contains("  \"tasks\": [\n"));
        assert_eq!(Value::parse(&pretty).unwrap(), v);
    }

    #[test]
    fn deeply_nested_input_is_a_parse_error_not_a_stack_overflow() {
        // A hostile request line: 100k-deep nesting used to overflow the
        // recursive-descent parser's stack and abort the process.
        for open in ["[", "{\"k\":"] {
            let deep = open.repeat(100_000);
            let err = Value::parse(&deep).unwrap_err();
            assert!(
                err.to_string().contains("nesting"),
                "wanted a depth error, got: {err}"
            );
        }
        // A fully-closed 100k-deep array fails the same way.
        let mut closed = "[".repeat(100_000);
        closed.push_str(&"]".repeat(100_000));
        assert!(Value::parse(&closed).is_err());
    }

    #[test]
    fn nesting_at_the_limit_parses_and_depth_resets_between_siblings() {
        let deep_ok = format!("{}0{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(Value::parse(&deep_ok).is_ok());
        let too_deep = format!("{}0{}", "[".repeat(MAX_DEPTH + 1), "]".repeat(MAX_DEPTH + 1));
        assert!(Value::parse(&too_deep).is_err());
        // Depth is released on the way out: many sibling containers at the
        // same level never accumulate.
        let siblings = format!("[{}]", vec!["[[[]]]"; 200].join(","));
        assert!(Value::parse(&siblings).is_ok());
    }

    #[test]
    fn float_formatting_reparses_as_float() {
        let text = Value::Float(2.0).to_string();
        assert_eq!(text, "2.0");
        assert_eq!(Value::parse(&text).unwrap(), Value::Float(2.0));
    }
}
