//! Graphviz DOT export for cause-effect graphs.
//!
//! Useful for eyeballing generated workloads; the output clusters tasks by
//! ECU and annotates each vertex with the paper's `(W, B, T)` triple.

use std::fmt::Write as _;

use crate::graph::CauseEffectGraph;

/// Renders the graph in Graphviz DOT syntax.
///
/// Tasks are clustered by ECU (unmapped stimuli float outside clusters),
/// vertices are labeled `name\n(W, B, T)` and non-register channels are
/// labeled with their capacity.
///
/// # Examples
///
/// ```
/// use disparity_model::builder::SystemBuilder;
/// use disparity_model::dot::to_dot;
/// use disparity_model::task::TaskSpec;
/// use disparity_model::time::Duration;
///
/// let mut b = SystemBuilder::new();
/// let ecu = b.add_ecu("ecu0");
/// let ms = Duration::from_millis;
/// let s = b.add_task(TaskSpec::periodic("sensor", ms(10)));
/// let t = b.add_task(TaskSpec::periodic("proc", ms(10)).wcet(ms(1)).on_ecu(ecu));
/// b.connect(s, t);
/// let dot = to_dot(&b.build()?);
/// assert!(dot.contains("digraph cause_effect"));
/// assert!(dot.contains("sensor"));
/// # Ok::<(), disparity_model::error::ModelError>(())
/// ```
#[must_use]
pub fn to_dot(graph: &CauseEffectGraph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph cause_effect {{");
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  node [shape=box, fontsize=10];");

    for ecu in graph.ecus() {
        let _ = writeln!(out, "  subgraph cluster_{} {{", ecu.id().index());
        let _ = writeln!(
            out,
            "    label=\"{} ({})\";",
            escape(ecu.name()),
            ecu.kind()
        );
        for t in graph.tasks_on_ecu(ecu.id()) {
            let task = graph.task(t);
            let _ = writeln!(
                out,
                "    n{} [label=\"{}\\n({}, {}, {})\"];",
                t.index(),
                escape(task.name()),
                task.wcet(),
                task.bcet(),
                task.period(),
            );
        }
        let _ = writeln!(out, "  }}");
    }
    for task in graph.tasks() {
        if task.ecu().is_none() {
            let _ = writeln!(
                out,
                "  n{} [style=dashed, label=\"{}\\nT={}\"];",
                task.id().index(),
                escape(task.name()),
                task.period(),
            );
        }
    }
    for ch in graph.channels() {
        if ch.is_register() {
            let _ = writeln!(out, "  n{} -> n{};", ch.src().index(), ch.dst().index());
        } else {
            let _ = writeln!(
                out,
                "  n{} -> n{} [label=\"fifo({})\"];",
                ch.src().index(),
                ch.dst().index(),
                ch.capacity(),
            );
        }
    }
    let _ = writeln!(out, "}}");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::SystemBuilder;
    use crate::task::TaskSpec;
    use crate::time::Duration;

    #[test]
    fn dot_contains_clusters_edges_and_fifo_labels() {
        let mut b = SystemBuilder::new();
        let ecu = b.add_ecu("ecu0");
        let ms = Duration::from_millis;
        let s = b.add_task(TaskSpec::periodic("sensor", ms(10)));
        let t = b.add_task(TaskSpec::periodic("proc", ms(10)).wcet(ms(1)).on_ecu(ecu));
        b.connect_with_capacity(s, t, 3);
        let dot = to_dot(&b.build().unwrap());
        assert!(dot.contains("cluster_0"));
        assert!(dot.contains("fifo(3)"));
        assert!(dot.contains("style=dashed"), "unmapped stimulus is dashed");
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn names_are_escaped() {
        let mut b = SystemBuilder::new();
        b.add_task(TaskSpec::periodic("we\"ird", Duration::from_millis(1)));
        let dot = to_dot(&b.build().unwrap());
        assert!(dot.contains("we\\\"ird"));
    }
}
